//! # popper-trace
//!
//! Low-overhead structured tracing for the whole Popper stack: spans
//! (durations with parent/child nesting), instant events and counters,
//! collected into a central [`TraceSink`] and exported as a Chrome
//! `trace_event` JSON file, an SVG timeline, or an ASCII summary table.
//!
//! Two clock domains cover the two kinds of work in this repository:
//!
//! * [`ClockDomain::Wall`] — real threads doing real work (CI job
//!   pools, orchestra host fan-out, container builds). Spans are timed
//!   with a monotonic clock via RAII guards ([`Tracer::span`]).
//! * [`ClockDomain::Virtual`] — everything inside popper-sim. The
//!   caller supplies timestamps from the simulation clock
//!   ([`Tracer::span_at`]), so a traced simulation is bit-identical
//!   across runs with the same seed — traces are Popper artifacts and
//!   must be reproducible like any other result.
//!
//! Recording goes through per-thread buffers flushed in batches over a
//! channel, so producer threads never share a lock. A disabled tracer
//! ([`Tracer::disabled`]) reduces every recording call to one branch;
//! the `ablate_trace_overhead` benchmark in popper-bench keeps that
//! honest.
//!
//! Library code deep in the stack (the sim engine, GassyFS RPCs, MPI
//! collectives, the container runtime) records through the *ambient*
//! tracer ([`current`]/[`with_current`]) so instrumentation does not
//! change public signatures; thread-pool layers (popper-ci,
//! popper-orchestra) take an explicit tracer in their `*_traced` entry
//! points and re-enter `with_current` on each worker.

pub mod diff;
pub mod event;
pub mod export;
pub mod sink;
pub mod stream;
pub mod svg;
pub mod tracer;

pub use diff::{diff_traces, DiffOptions, Divergence, DivergenceKind, TraceDiff};
pub use event::{EventKind, SpanId, TraceEvent};
pub use export::{chrome_trace, chrome_trace_json, parse_chrome_trace, summary_table};
pub use sink::TraceSink;
pub use stream::{ChromeStream, TraceRecorder, TraceRecording};
pub use svg::{timeline_svg, timeline_svg_filtered};
pub use tracer::{current, with_current, ClockDomain, SpanGuard, Tracer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.domain(), None);
        {
            let _g = t.span("test", "track", "noop");
            t.instant("test", "track", "point");
            t.counter("track", "gauge", 1.0);
            assert!(t.span_at("test", "track", "virt", 0, 10).is_none());
        }
        t.flush();
    }

    #[test]
    fn wall_spans_nest_and_time() {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Wall);
        {
            let outer = t.span("test", "main", "outer");
            assert!(!outer.id().is_none());
            {
                let _inner = t.span("test", "main", "inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        t.flush();
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert!(outer.parent.is_none());
        assert!(inner.duration_ns() >= 1_000_000, "slept 2ms, got {}", inner.duration_ns());
        assert!(outer.duration_ns() >= inner.duration_ns());
        assert!(outer.start_ns() <= inner.start_ns());
    }

    #[test]
    fn virtual_spans_use_explicit_time() {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        let a = t.span_at("sim", "res", "first", 100, 200);
        t.span_at_child(a, "sim", "res", "second", 120, 180);
        t.instant_at("sim", "res", "tick", 150);
        t.counter_at("res", "depth", 3.0, 160);
        t.flush();
        let events = sink.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[0].kind, EventKind::Span { start_ns: 100, end_ns: 200 });
        let second = events.iter().find(|e| e.name == "second").unwrap();
        assert_eq!(second.parent, a);
        assert!(matches!(events[2].kind, EventKind::Instant { ts_ns: 150 }));
        assert!(matches!(events[3].kind, EventKind::Counter { ts_ns: 160, .. }));
    }

    #[test]
    fn threads_flush_on_exit_and_drain_is_deterministic() {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..100u64 {
                    t.span_at("test", format!("worker-{i}"), format!("op{j}"), j * 10, j * 10 + 5);
                }
                // No explicit flush: the TLS destructor must deliver.
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = sink.drain();
        assert_eq!(events.len(), 400);
        // Deterministic order regardless of delivery interleaving.
        let mut expect = events.clone();
        expect.sort_by(|a, b| {
            a.start_ns()
                .cmp(&b.start_ns())
                .then_with(|| a.track.cmp(&b.track))
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.id.cmp(&b.id))
        });
        assert_eq!(events, expect);
    }

    #[test]
    fn ambient_tracer_scoping() {
        assert!(!current().is_enabled());
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        with_current(t.clone(), || {
            assert!(current().is_enabled());
            current().span_at("test", "amb", "inside", 0, 1);
            with_current(Tracer::disabled(), || {
                assert!(!current().is_enabled());
            });
            assert!(current().is_enabled());
        });
        assert!(!current().is_enabled());
        t.flush();
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        let p = t.span_at("sim", "serial", "admit", 1_000, 5_000);
        t.span_at_child(p, "sim", "serial", "service", 2_000, 4_000);
        t.instant_at("sim", "engine", "dispatch", 1_500);
        t.counter_at("engine", "pending", 7.0, 1_600);
        t.flush();
        let events = sink.drain();
        let json = chrome_trace_json(&events);
        let doc = popper_format::json::parse(&json).expect("exporter must emit valid JSON");
        let Value::Map(top) = &doc else { panic!("top level must be an object") };
        let te = top.iter().find(|(k, _)| k == "traceEvents").expect("traceEvents");
        let Value::List(items) = &te.1 else { panic!("traceEvents must be a list") };
        // 1 process_name + 2 thread_name + 4 events.
        assert_eq!(items.len(), 7);
        let phases: Vec<&str> = items
            .iter()
            .filter_map(|v| match v {
                Value::Map(m) => m.iter().find(|(k, _)| k == "ph").and_then(|(_, v)| match v {
                    Value::Str(s) => Some(s.as_str()),
                    _ => None,
                }),
                _ => None,
            })
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 3);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert!(phases.contains(&"i") && phases.contains(&"C"));
        // ts is microseconds: the admit span starts at 1µs.
        assert!(json.contains("\"ts\": 1") || json.contains("\"ts\":1"));

        use popper_format::Value;
        let svg = timeline_svg(&events);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("serial"));

        let table = summary_table(&events);
        assert!(table.contains("admit"));
        assert!(table.contains("1 instants, 1 counter samples"));
    }

    #[test]
    fn filtered_timeline_keeps_only_matching_tracks() {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        t.span_at("farm", "tenant-a/jobs", "job 1", 0, 1_000);
        t.span_at("farm", "tenant-b/jobs", "job 2", 500, 2_000);
        t.flush();
        let events = sink.drain();
        let svg = timeline_svg_filtered(&events, "tenant-a");
        assert!(svg.contains("tenant-a/jobs"));
        assert!(!svg.contains("tenant-b"));
        // An unmatched prefix still renders a valid (empty) document.
        let empty = timeline_svg_filtered(&events, "tenant-z");
        assert!(empty.starts_with("<svg"));
    }

    #[test]
    fn export_is_byte_stable() {
        let record = || {
            let sink = TraceSink::new();
            let t = sink.tracer(ClockDomain::Virtual);
            for i in 0..50u64 {
                let s = t.span_at("sim", "a", format!("op{i}"), i * 100, i * 100 + 40);
                t.span_at_child(s, "sim", "b", "sub", i * 100 + 10, i * 100 + 20);
            }
            t.flush();
            chrome_trace_json(&sink.drain())
        };
        assert_eq!(record(), record());
    }
}
