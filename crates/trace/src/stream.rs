//! Incremental Chrome-JSON export and the lifecycle trace recorder.
//!
//! [`ChromeStream`] is the streaming half of the exporter: it writes
//! `traceEvents` array elements as batches are absorbed from the sink's
//! ring buffer instead of buffering the whole run, so a long soak can
//! record through a bounded ring without ever materialising the full
//! event vector. A single batch containing a fully-drained run streams
//! byte-identically to [`crate::chrome_trace_json`] (pinned by test).
//!
//! [`TraceRecorder`] packages the sink + wall-domain tracer + exporter
//! wiring every lifecycle mode used to hand-roll: `ordered()` buffers
//! and globally sorts (stable bytes for `popper trace` and the CI
//! selfcheck), `streaming()` flushes each absorbed wave straight to the
//! encoder (the default record-stage sink for `popper chaos` soaks).

use crate::event::TraceEvent;
use crate::export::{event_value, meta_value, summary_table};
use crate::sink::TraceSink;
use crate::tracer::{ClockDomain, Tracer};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Streaming Chrome `trace_event` encoder over any [`Write`] target.
///
/// Tracks gain tids in sorted order *within each batch*, continuing
/// from tracks already seen; `thread_name` metadata is emitted the
/// moment a track first appears, which `parse_chrome_trace` tolerates
/// (its first pass scans the whole document for metadata).
pub struct ChromeStream<W: Write> {
    out: W,
    tids: BTreeMap<String, u64>,
    events_written: u64,
}

impl<W: Write> ChromeStream<W> {
    /// Open the document: array preamble plus the process metadata.
    pub fn new(mut out: W) -> io::Result<ChromeStream<W>> {
        out.write_all(b"{\"traceEvents\":[")?;
        let process = popper_format::json::to_string(&meta_value("process_name", None, "popper"));
        out.write_all(process.as_bytes())?;
        Ok(ChromeStream { out, tids: BTreeMap::new(), events_written: 0 })
    }

    fn element(&mut self, value: &popper_format::Value) -> io::Result<()> {
        self.out.write_all(b",")?;
        self.out.write_all(popper_format::json::to_string(value).as_bytes())
    }

    /// Encode one absorbed batch. New tracks are assigned tids in
    /// sorted order so that a lone full-drain batch reproduces the
    /// buffered exporter's bytes exactly.
    pub fn write_batch(&mut self, events: &[TraceEvent]) -> io::Result<()> {
        let mut fresh: Vec<&str> = events
            .iter()
            .map(|e| e.track.as_str())
            .filter(|t| !self.tids.contains_key(*t))
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        for track in fresh {
            let tid = self.tids.len() as u64 + 1;
            self.tids.insert(track.to_string(), tid);
            self.element(&meta_value("thread_name", Some(tid), track))?;
        }
        for e in events {
            let tid = self.tids[e.track.as_str()];
            self.element(&event_value(e, tid))?;
            self.events_written += 1;
        }
        Ok(())
    }

    /// Events encoded so far (metadata elements excluded).
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Close the array and document, returning the writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(b"],\"displayTimeUnit\":\"ms\"}")?;
        Ok(self.out)
    }
}

/// How a [`TraceRecorder`] turns absorbed events into JSON.
enum RecordMode {
    /// Buffer everything; one globally-sorted batch at `finish()`.
    /// Byte-identical to the pre-streaming exporter, and keeps the
    /// event vector for SVG/summary rendering.
    Ordered,
    /// Stream every absorbed wave (each wave is drain-sorted) straight
    /// into the encoder; events are not retained.
    Streaming(ChromeStream<Vec<u8>>),
}

/// A self-contained trace recording session for one lifecycle run:
/// owns the sink, hands out a wall-clock [`Tracer`], and exports to
/// Chrome JSON when finished.
pub struct TraceRecorder {
    sink: TraceSink,
    tracer: Tracer,
    mode: RecordMode,
}

/// The output of [`TraceRecorder::finish`].
pub struct TraceRecording {
    /// The complete Chrome `trace_event` JSON document.
    pub json: String,
    /// The recorded events — empty in streaming mode, where retaining
    /// them would defeat the bounded ring.
    pub events: Vec<TraceEvent>,
    /// Events exported (streaming mode counts what it encoded).
    pub count: u64,
    /// Events shed by a bounded ring before they could be absorbed.
    pub dropped: u64,
}

impl TraceRecorder {
    fn with_sink(sink: TraceSink, mode: RecordMode) -> TraceRecorder {
        let tracer = sink.tracer(ClockDomain::Wall);
        TraceRecorder { sink, tracer, mode }
    }

    /// Buffering recorder: globally-sorted, byte-stable output that
    /// also keeps the events for timeline SVG / summary rendering.
    pub fn ordered() -> TraceRecorder {
        TraceRecorder::with_sink(TraceSink::new(), RecordMode::Ordered)
    }

    /// Streaming recorder over an unbounded sink.
    pub fn streaming() -> TraceRecorder {
        let stream = ChromeStream::new(Vec::new()).expect("Vec sink cannot fail");
        TraceRecorder::with_sink(TraceSink::new(), RecordMode::Streaming(stream))
    }

    /// Streaming recorder over a bounded ring: between absorbs at most
    /// `capacity` events are held, older ones are shed (and counted).
    pub fn streaming_with_capacity(capacity: usize) -> TraceRecorder {
        let stream = ChromeStream::new(Vec::new()).expect("Vec sink cannot fail");
        TraceRecorder::with_sink(TraceSink::with_capacity(capacity), RecordMode::Streaming(stream))
    }

    /// The tracer lifecycle stages should record through.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Absorb whatever has been recorded since the last call. In
    /// streaming mode the wave (sorted by the drain) is encoded
    /// immediately; in ordered mode events stay in the sink so the
    /// final drain can sort the whole run.
    pub fn absorb(&mut self) {
        match &mut self.mode {
            RecordMode::Ordered => {
                self.sink.absorb();
            }
            RecordMode::Streaming(stream) => {
                self.tracer.flush();
                let wave = self.sink.drain();
                stream.write_batch(&wave).expect("Vec sink cannot fail");
            }
        }
    }

    /// Flush, drain the residue, and close the document.
    pub fn finish(self) -> TraceRecording {
        self.tracer.flush();
        let residue = self.sink.drain();
        let dropped = self.sink.dropped();
        match self.mode {
            RecordMode::Ordered => {
                let json = crate::export::chrome_trace_json(&residue);
                let count = residue.len() as u64;
                TraceRecording { json, events: residue, count, dropped }
            }
            RecordMode::Streaming(mut stream) => {
                stream.write_batch(&residue).expect("Vec sink cannot fail");
                let count = stream.events_written();
                let bytes = stream.finish().expect("Vec sink cannot fail");
                let json = String::from_utf8(bytes).expect("encoder emits UTF-8");
                TraceRecording { json, events: Vec::new(), count, dropped }
            }
        }
    }
}

impl TraceRecording {
    /// The per-track span summary (empty-events recordings included).
    pub fn summary(&self) -> String {
        summary_table(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{chrome_trace_json, parse_chrome_trace};

    fn sample_events(n: u64) -> Vec<TraceEvent> {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        for i in 0..n {
            let track = format!("track-{}", i % 3);
            let s = t.span_at("sim", &track, format!("op{i}"), i * 100, i * 100 + 50);
            t.span_at_child(s, "sim", &track, "sub", i * 100 + 10, i * 100 + 20);
        }
        t.instant_at("chaos", "chaos/faults", "crash", 42);
        t.counter_at("engine", "pending", 3.0, 99);
        t.flush();
        sink.drain()
    }

    #[test]
    fn single_batch_matches_buffered_exporter_bytes() {
        let events = sample_events(40);
        let mut stream = ChromeStream::new(Vec::new()).unwrap();
        stream.write_batch(&events).unwrap();
        assert_eq!(stream.events_written(), events.len() as u64);
        let streamed = String::from_utf8(stream.finish().unwrap()).unwrap();
        assert_eq!(streamed, chrome_trace_json(&events));
    }

    #[test]
    fn empty_stream_is_a_valid_document() {
        let stream = ChromeStream::new(Vec::new()).unwrap();
        let json = String::from_utf8(stream.finish().unwrap()).unwrap();
        assert_eq!(parse_chrome_trace(&json).unwrap(), Vec::new());
        assert_eq!(json, chrome_trace_json(&[]));
    }

    #[test]
    fn multi_batch_stream_parses_back_to_the_same_events() {
        let events = sample_events(60);
        let mut stream = ChromeStream::new(Vec::new()).unwrap();
        for chunk in events.chunks(7) {
            stream.write_batch(chunk).unwrap();
        }
        let json = String::from_utf8(stream.finish().unwrap()).unwrap();
        let back = parse_chrome_trace(&json).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn ordered_recorder_matches_hand_rolled_export() {
        let record = |ordered: bool| {
            let mut rec =
                if ordered { TraceRecorder::ordered() } else { TraceRecorder::streaming() };
            let t = rec.tracer();
            {
                let _a = t.span("core", "core/lifecycle", "execute");
                t.instant("chaos", "chaos", "tick");
            }
            rec.absorb();
            {
                let _b = t.span("core", "core/lifecycle", "record");
            }
            rec.finish()
        };
        let ordered = record(true);
        let streaming = record(false);
        assert_eq!(ordered.count, 3);
        assert_eq!(streaming.count, 3);
        assert_eq!(ordered.events.len(), 3);
        assert!(streaming.events.is_empty());
        // Both are valid documents with the same span population.
        let a = parse_chrome_trace(&ordered.json).unwrap();
        let b = parse_chrome_trace(&streaming.json).unwrap();
        assert_eq!(a.len(), b.len());
        let names = |evs: &[TraceEvent]| {
            let mut n: Vec<String> = evs.iter().map(|e| e.name.clone()).collect();
            n.sort();
            n
        };
        assert_eq!(names(&a), names(&b));
        assert!(ordered.summary().contains("execute"));
    }

    #[test]
    fn bounded_streaming_recorder_counts_shed_events() {
        let rec = TraceRecorder::streaming_with_capacity(8);
        let t = rec.tracer();
        for i in 0..600u64 {
            t.counter("pressure", "n", i as f64);
        }
        // No absorb between: the ring must shed.
        let out = rec.finish();
        assert!(out.dropped > 0, "ring of 8 must shed most of 600 events");
        assert!(out.count <= 8);
        parse_chrome_trace(&out.json).unwrap();
    }
}
