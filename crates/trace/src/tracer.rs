//! The tracer: the producer half of the subsystem.
//!
//! A [`Tracer`] is a cheap handle (`Option<Arc>`), cloned freely into
//! every layer that wants to emit events. The disabled tracer is `None`
//! inside, so the hot path of every recording method is one branch —
//! measured by `ablate_trace_overhead` in popper-bench.
//!
//! Events are buffered in per-thread buffers (a `thread_local!`
//! registry keyed by tracer core) and flushed to the sink's channel in
//! batches, so threads never contend on a shared lock while recording.
//! Buffers flush on batch overflow, on [`Tracer::flush`], and on thread
//! exit (TLS destructor).

use crate::event::{EventKind, SpanId, TraceEvent};
use crossbeam::channel::Sender;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which clock a tracer stamps events with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Real time: nanoseconds since the tracer was created, read from a
    /// monotonic clock. For thread pools doing real work (CI jobs,
    /// orchestra hosts, container builds).
    Wall,
    /// Simulated time: the caller supplies every timestamp explicitly
    /// (`*_at` methods). Same seed ⇒ bit-identical trace.
    Virtual,
}

/// Flush to the sink after this many buffered events.
const BATCH: usize = 256;

pub(crate) struct Core {
    pub(crate) tx: Sender<Vec<TraceEvent>>,
    next_id: AtomicU64,
    epoch: Instant,
    domain: ClockDomain,
}

impl Core {
    pub(crate) fn new(tx: Sender<Vec<TraceEvent>>, domain: ClockDomain) -> Core {
        Core { tx, next_id: AtomicU64::new(1), epoch: Instant::now(), domain }
    }

    fn alloc_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn now_ns(&self) -> u64 {
        debug_assert_eq!(self.domain, ClockDomain::Wall, "virtual-domain tracers need *_at methods");
        self.epoch.elapsed().as_nanos() as u64
    }
}

// ---- per-thread buffering ----

struct ThreadBuffer {
    // Holding the core keeps its address stable, so the key (the Arc's
    // pointer) cannot be reused by another tracer while this entry lives.
    core: Arc<Core>,
    events: Vec<TraceEvent>,
    // Stack of open wall-clock spans on this thread (for parent links).
    open: Vec<SpanId>,
}

impl ThreadBuffer {
    fn flush(&mut self) {
        if !self.events.is_empty() {
            // The receiver may already be gone during shutdown; losing
            // the batch then is fine — nobody is left to read it.
            let _ = self.core.tx.send(std::mem::take(&mut self.events));
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUFFERS: RefCell<Vec<ThreadBuffer>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with this thread's buffer for `core`.
fn with_buffer<R>(core: &Arc<Core>, f: impl FnOnce(&mut ThreadBuffer) -> R) -> R {
    BUFFERS.with(|cell| {
        let mut buffers = cell.borrow_mut();
        let key = Arc::as_ptr(core);
        let idx = match buffers.iter().position(|b| Arc::as_ptr(&b.core) == key) {
            Some(i) => i,
            None => {
                buffers.push(ThreadBuffer { core: Arc::clone(core), events: Vec::new(), open: Vec::new() });
                buffers.len() - 1
            }
        };
        f(&mut buffers[idx])
    })
}

fn push_event(core: &Arc<Core>, event: TraceEvent) {
    with_buffer(core, |buf| {
        buf.events.push(event);
        if buf.events.len() >= BATCH {
            buf.flush();
        }
    });
}

// ---- the handle ----

/// A handle for recording events. Clone it anywhere; a disabled tracer
/// records nothing and costs one branch per call.
#[derive(Clone)]
pub struct Tracer {
    pub(crate) core: Option<Arc<Core>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            Some(c) => write!(f, "Tracer({:?})", c.domain),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer { core: None }
    }

    /// Is this tracer recording?
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The clock domain, if enabled.
    pub fn domain(&self) -> Option<ClockDomain> {
        self.core.as_ref().map(|c| c.domain)
    }

    /// Open a wall-clock span; it records itself when the guard drops.
    /// Guards on one thread must drop in LIFO order for parent links to
    /// be right (the natural shape of scoped instrumentation).
    pub fn span(
        &self,
        category: &'static str,
        track: impl AsRef<str>,
        name: impl AsRef<str>,
    ) -> SpanGuard {
        let Some(core) = &self.core else { return SpanGuard { inner: None } };
        let id = core.alloc_id();
        let parent = with_buffer(core, |buf| {
            let parent = buf.open.last().copied().unwrap_or(SpanId::NONE);
            buf.open.push(id);
            parent
        });
        SpanGuard {
            inner: Some(GuardInner {
                core: Arc::clone(core),
                id,
                parent,
                category,
                track: track.as_ref().to_string(),
                name: name.as_ref().to_string(),
                start_ns: core.now_ns(),
            }),
        }
    }

    /// Record a complete span with explicit timestamps (virtual time, or
    /// wall spans measured elsewhere). Returns the span's id so callers
    /// can parent further spans under it.
    pub fn span_at(
        &self,
        category: &'static str,
        track: impl AsRef<str>,
        name: impl AsRef<str>,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanId {
        self.span_at_child(SpanId::NONE, category, track, name, start_ns, end_ns)
    }

    /// Like [`Tracer::span_at`], nested under `parent`.
    pub fn span_at_child(
        &self,
        parent: SpanId,
        category: &'static str,
        track: impl AsRef<str>,
        name: impl AsRef<str>,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanId {
        let Some(core) = &self.core else { return SpanId::NONE };
        let id = core.alloc_id();
        push_event(
            core,
            TraceEvent {
                name: name.as_ref().to_string(),
                category,
                track: track.as_ref().to_string(),
                kind: EventKind::Span { start_ns, end_ns: end_ns.max(start_ns) },
                id,
                parent,
            },
        );
        id
    }

    /// Record a point event at the wall clock's current time.
    pub fn instant(&self, category: &'static str, track: impl AsRef<str>, name: impl AsRef<str>) {
        let Some(core) = &self.core else { return };
        let ts = core.now_ns();
        self.instant_at(category, track, name, ts);
    }

    /// Record a point event at an explicit timestamp.
    pub fn instant_at(
        &self,
        category: &'static str,
        track: impl AsRef<str>,
        name: impl AsRef<str>,
        ts_ns: u64,
    ) {
        let Some(core) = &self.core else { return };
        push_event(
            core,
            TraceEvent {
                name: name.as_ref().to_string(),
                category,
                track: track.as_ref().to_string(),
                kind: EventKind::Instant { ts_ns },
                id: SpanId::NONE,
                parent: SpanId::NONE,
            },
        );
    }

    /// Sample a counter at the wall clock's current time.
    pub fn counter(&self, track: impl AsRef<str>, name: impl AsRef<str>, value: f64) {
        let Some(core) = &self.core else { return };
        let ts = core.now_ns();
        self.counter_at(track, name, value, ts);
    }

    /// Sample a counter at an explicit timestamp.
    pub fn counter_at(&self, track: impl AsRef<str>, name: impl AsRef<str>, value: f64, ts_ns: u64) {
        let Some(core) = &self.core else { return };
        push_event(
            core,
            TraceEvent {
                name: name.as_ref().to_string(),
                category: "counter",
                track: track.as_ref().to_string(),
                kind: EventKind::Counter { ts_ns, value },
                id: SpanId::NONE,
                parent: SpanId::NONE,
            },
        );
    }

    /// Flush this thread's buffered events for this tracer to the sink.
    /// Call before draining the sink on the same thread; worker threads
    /// flush automatically when they exit.
    pub fn flush(&self) {
        if let Some(core) = &self.core {
            with_buffer(core, |buf| buf.flush());
        }
    }
}

struct GuardInner {
    core: Arc<Core>,
    id: SpanId,
    parent: SpanId,
    category: &'static str,
    track: String,
    name: String,
    start_ns: u64,
}

/// An open wall-clock span; records itself on drop.
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl SpanGuard {
    /// The span's id (`NONE` when the tracer is disabled).
    pub fn id(&self) -> SpanId {
        self.inner.as_ref().map(|g| g.id).unwrap_or(SpanId::NONE)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(g) = self.inner.take() else { return };
        let end_ns = g.core.now_ns();
        with_buffer(&g.core, |buf| {
            // LIFO discipline: this span should be on top.
            if let Some(pos) = buf.open.iter().rposition(|&s| s == g.id) {
                buf.open.remove(pos);
            }
        });
        push_event(
            &g.core,
            TraceEvent {
                name: g.name,
                category: g.category,
                track: g.track,
                kind: EventKind::Span { start_ns: g.start_ns, end_ns: end_ns.max(g.start_ns) },
                id: g.id,
                parent: g.parent,
            },
        );
    }
}

// ---- ambient tracer ----

thread_local! {
    static CURRENT: RefCell<Tracer> = const { RefCell::new(Tracer { core: None }) };
}

/// The thread's ambient tracer (disabled unless inside [`with_current`]).
/// Library code deep in the stack uses this so instrumentation does not
/// thread a `Tracer` argument through every signature.
pub fn current() -> Tracer {
    CURRENT.with(|c| c.borrow().clone())
}

/// Run `f` with `tracer` as the thread's ambient tracer, restoring the
/// previous one afterwards (also on panic). Worker threads do not
/// inherit the ambient tracer — pass one explicitly and re-enter
/// `with_current` inside the thread.
pub fn with_current<R>(tracer: Tracer, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Tracer>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
    }
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), tracer));
    let _restore = Restore(Some(prev));
    f()
}
