//! The sink: the consumer half of the subsystem.

use crate::event::TraceEvent;
use crate::tracer::{ClockDomain, Core, Tracer};
use crossbeam::channel::{self, Receiver, Sender};
use std::sync::Arc;

/// Central collection point for trace events. Create one per traced
/// run, hand out tracers, then [`TraceSink::drain`] after the work.
pub struct TraceSink {
    tx: Sender<Vec<TraceEvent>>,
    rx: Receiver<Vec<TraceEvent>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> TraceSink {
        let (tx, rx) = channel::unbounded();
        TraceSink { tx, rx }
    }

    /// A new enabled tracer feeding this sink. Each call creates an
    /// independent span-id space; use one tracer per clock domain and
    /// clone it, rather than calling this per thread.
    pub fn tracer(&self, domain: ClockDomain) -> Tracer {
        Tracer { core: Some(Arc::new(Core::new(self.tx.clone(), domain))) }
    }

    /// Collect everything flushed so far, in a deterministic order
    /// (time, then track, then name, then id) regardless of which
    /// thread delivered which batch first. Call `tracer.flush()` on the
    /// recording thread(s) first; exited threads have already flushed.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        while let Ok(batch) = self.rx.try_recv() {
            events.extend(batch);
        }
        events.sort_by(|a, b| {
            a.start_ns()
                .cmp(&b.start_ns())
                .then_with(|| a.track.cmp(&b.track))
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.id.cmp(&b.id))
        });
        events
    }
}
