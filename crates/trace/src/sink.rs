//! The sink: the consumer half of the subsystem.

use crate::event::TraceEvent;
use crate::tracer::{ClockDomain, Core, Tracer};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Central collection point for trace events. Create one per traced
/// run, hand out tracers, then [`TraceSink::drain`] after the work.
///
/// By default the sink is unbounded. [`TraceSink::with_capacity`] puts
/// it in ring-buffer mode: only the most recent `capacity` events are
/// retained and [`TraceSink::dropped`] counts what was shed — the mode
/// for long chaos soaks where the tail of the timeline is what matters.
pub struct TraceSink {
    tx: Sender<Vec<TraceEvent>>,
    rx: Receiver<Vec<TraceEvent>>,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: Option<usize>,
    dropped: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// An empty, unbounded sink.
    pub fn new() -> TraceSink {
        let (tx, rx) = channel::unbounded();
        TraceSink { tx, rx, ring: Mutex::new(VecDeque::new()), capacity: None, dropped: AtomicU64::new(0) }
    }

    /// A sink in ring-buffer mode: keeps at most `capacity` events
    /// (the most recently delivered), dropping the oldest. Call
    /// [`TraceSink::absorb`] periodically during long runs to bound
    /// memory; [`TraceSink::drain`] absorbs automatically.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        let (tx, rx) = channel::unbounded();
        TraceSink {
            tx,
            rx,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: Some(capacity),
            dropped: AtomicU64::new(0),
        }
    }

    /// The ring capacity, if in ring-buffer mode.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Events shed by the ring so far (0 for unbounded sinks).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A new enabled tracer feeding this sink. Each call creates an
    /// independent span-id space; use one tracer per clock domain and
    /// clone it, rather than calling this per thread.
    pub fn tracer(&self, domain: ClockDomain) -> Tracer {
        Tracer { core: Some(Arc::new(Core::new(self.tx.clone(), domain))) }
    }

    /// Pull everything flushed so far into the internal buffer,
    /// enforcing the ring capacity. Returns how many events were
    /// dropped by this call.
    pub fn absorb(&self) -> u64 {
        let mut ring = self.ring.lock();
        while let Ok(batch) = self.rx.try_recv() {
            ring.extend(batch);
        }
        let mut shed = 0u64;
        if let Some(cap) = self.capacity {
            while ring.len() > cap {
                ring.pop_front();
                shed += 1;
            }
        }
        self.dropped.fetch_add(shed, Ordering::Relaxed);
        shed
    }

    /// Collect everything retained so far, in a deterministic order
    /// (time, then track, then name, then id) regardless of which
    /// thread delivered which batch first. Call `tracer.flush()` on the
    /// recording thread(s) first; exited threads have already flushed.
    /// In ring-buffer mode this is the surviving suffix of the stream;
    /// check [`TraceSink::dropped`] for what was shed.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.absorb();
        let mut events: Vec<TraceEvent> = self.ring.lock().drain(..).collect();
        events.sort_by(|a, b| {
            a.start_ns()
                .cmp(&b.start_ns())
                .then_with(|| a.track.cmp(&b.track))
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.id.cmp(&b.id))
        });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_mode_keeps_the_tail_and_counts_drops() {
        let sink = TraceSink::with_capacity(10);
        assert_eq!(sink.capacity(), Some(10));
        let tracer = sink.tracer(ClockDomain::Virtual);
        for i in 0..25u64 {
            tracer.instant_at("test", "t", format!("ev{i}"), i);
        }
        tracer.flush();
        let events = sink.drain();
        assert_eq!(events.len(), 10);
        assert_eq!(sink.dropped(), 15);
        // The survivors are the most recent events.
        assert_eq!(events.first().unwrap().name, "ev15");
        assert_eq!(events.last().unwrap().name, "ev24");
        // Draining again yields nothing new but keeps the counter.
        assert!(sink.drain().is_empty());
        assert_eq!(sink.dropped(), 15);
    }

    #[test]
    fn absorb_bounds_memory_incrementally() {
        let sink = TraceSink::with_capacity(5);
        let tracer = sink.tracer(ClockDomain::Virtual);
        for round in 0..4u64 {
            for i in 0..5u64 {
                tracer.instant_at("test", "t", format!("r{round}e{i}"), round * 5 + i);
            }
            tracer.flush();
            sink.absorb();
        }
        assert_eq!(sink.dropped(), 15, "three full rounds shed");
        assert_eq!(sink.drain().len(), 5);
    }

    #[test]
    fn unbounded_sink_never_drops() {
        let sink = TraceSink::new();
        assert_eq!(sink.capacity(), None);
        let tracer = sink.tracer(ClockDomain::Virtual);
        for i in 0..1000u64 {
            tracer.instant_at("test", "t", "e", i);
        }
        tracer.flush();
        assert_eq!(sink.drain().len(), 1000);
        assert_eq!(sink.dropped(), 0);
    }
}
