//! The trace event model.

/// Identity of a span, for parent/child nesting. Ids are allocated from
/// a per-tracer counter starting at 1; `SpanId::NONE` (0) means "no
/// span".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (top level).
    pub const NONE: SpanId = SpanId(0);

    /// Is this the absent span?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// What kind of event this is. All timestamps are nanoseconds in the
/// tracer's clock domain (wall nanoseconds since the sink's epoch, or
/// virtual nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A duration with a start and an end.
    Span {
        /// Start timestamp, ns.
        start_ns: u64,
        /// End timestamp, ns (`>= start_ns`).
        end_ns: u64,
    },
    /// A point in time.
    Instant {
        /// Timestamp, ns.
        ts_ns: u64,
    },
    /// A sampled numeric series (queue depth, cache hits, …).
    Counter {
        /// Timestamp, ns.
        ts_ns: u64,
        /// Sample value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Human-readable name ("admit", "job build/exp", "read_page").
    pub name: String,
    /// Coarse category used for grouping and coloring ("sim", "ci",
    /// "rpc", "mpi", "container", "lifecycle", …).
    pub category: &'static str,
    /// The horizontal lane this event belongs to ("sim/serial",
    /// "ci/worker-0", "orchestra/node3", …). Becomes the thread name in
    /// Chrome's viewer and a row in the SVG timeline.
    pub track: String,
    /// Timing payload.
    pub kind: EventKind,
    /// This event's span id (`NONE` for instants and counters).
    pub id: SpanId,
    /// Enclosing span, or `NONE`.
    pub parent: SpanId,
}

impl TraceEvent {
    /// The event's position on the time axis (span start, or timestamp).
    pub fn start_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { start_ns, .. } => start_ns,
            EventKind::Instant { ts_ns } | EventKind::Counter { ts_ns, .. } => ts_ns,
        }
    }

    /// The event's end on the time axis (equals `start_ns` for points).
    pub fn end_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { end_ns, .. } => end_ns,
            EventKind::Instant { ts_ns } | EventKind::Counter { ts_ns, .. } => ts_ns,
        }
    }

    /// Span duration in ns (0 for points).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns().saturating_sub(self.start_ns())
    }
}
