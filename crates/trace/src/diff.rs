//! Trace diffing: align two recorded traces and classify divergences.
//!
//! Virtual-time traces are byte-identical for identical workloads, so
//! *any* divergence between two commits' traces is signal — a changed
//! schedule, an extra RPC, a fault firing at a different instant.
//! Wall-domain traces drift run-to-run, so durations are compared under
//! a configurable relative tolerance (or skipped entirely in
//! structure-only mode, which the CI self-check uses).
//!
//! Alignment is per-track sequence alignment (longest common
//! subsequence on `(name, category)` keys in stream order), not tree
//! edit distance: traces are flat event streams with parent *pointers*,
//! so per-track LCS plus a parent-key comparison on matched pairs
//! recovers structural changes at O(n·m) per track without
//! reconstructing trees, and insertions/deletions stay local instead of
//! cascading.

use crate::event::{EventKind, SpanId, TraceEvent};
use popper_format::{Table, Value};
use std::collections::BTreeMap;

/// What kind of divergence was found between trace A and trace B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Event present in B but not in A.
    Added,
    /// Event present in A but not in B.
    Removed,
    /// Same event on both sides, but at a different position in its
    /// track (or under a different parent span).
    Reordered,
    /// Matched span whose duration drifted beyond the tolerance.
    DurationDrift,
    /// Counter series with a different sample count or sample values
    /// beyond the tolerance.
    CounterDrift,
    /// A fault-injection instant (category `"chaos"`) added, removed,
    /// or moved to a different timestamp.
    FaultMismatch,
}

impl DivergenceKind {
    /// Short stable label used in reports and `trace-diff.json`.
    pub fn label(self) -> &'static str {
        match self {
            DivergenceKind::Added => "added",
            DivergenceKind::Removed => "removed",
            DivergenceKind::Reordered => "reordered",
            DivergenceKind::DurationDrift => "duration-drift",
            DivergenceKind::CounterDrift => "counter-drift",
            DivergenceKind::FaultMismatch => "fault-mismatch",
        }
    }

    /// Structural divergences make two traces non-equivalent regardless
    /// of any duration tolerance.
    pub fn is_structural(self) -> bool {
        !matches!(self, DivergenceKind::DurationDrift | DivergenceKind::CounterDrift)
    }

    /// Inverse of [`DivergenceKind::label`].
    pub fn from_label(label: &str) -> Option<DivergenceKind> {
        Some(match label {
            "added" => DivergenceKind::Added,
            "removed" => DivergenceKind::Removed,
            "reordered" => DivergenceKind::Reordered,
            "duration-drift" => DivergenceKind::DurationDrift,
            "counter-drift" => DivergenceKind::CounterDrift,
            "fault-mismatch" => DivergenceKind::FaultMismatch,
            _ => return None,
        })
    }
}

/// One divergence between the two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Classification.
    pub kind: DivergenceKind,
    /// Track the event lives on.
    pub track: String,
    /// Event name.
    pub name: String,
    /// Event category.
    pub category: String,
    /// Human-readable specifics ("120ns vs 180ns (+50.0%)", …).
    pub detail: String,
}

/// Knobs for [`diff_traces`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative tolerance (percent) for duration and counter-value
    /// drift. 0.0 demands exact equality — right for virtual-time
    /// traces, which are deterministic.
    pub tolerance_pct: f64,
    /// When false, skip duration, counter-value and fault-timestamp
    /// comparison entirely and compare structure only. Use for
    /// wall-domain traces, whose timings drift run-to-run.
    pub compare_durations: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { tolerance_pct: 0.0, compare_durations: true }
    }
}

impl DiffOptions {
    /// Structure-only comparison (the CI self-check default for
    /// wall-domain traces).
    pub fn structure_only() -> Self {
        DiffOptions { tolerance_pct: 0.0, compare_durations: false }
    }
}

/// The result of diffing two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Total events in trace A.
    pub events_a: usize,
    /// Total events in trace B.
    pub events_b: usize,
    /// All divergences found, in deterministic (track-sorted) order.
    pub divergences: Vec<Divergence>,
    /// Largest relative duration/counter drift observed across *all*
    /// matched pairs, even below the diff tolerance — so an `.aver`
    /// check can apply a tolerance of its own.
    pub max_drift_pct: f64,
    /// The options the diff ran with.
    pub options: DiffOptions,
}

impl TraceDiff {
    /// Number of structural divergences (added/removed/reordered/fault).
    pub fn structural_count(&self) -> usize {
        self.divergences.iter().filter(|d| d.kind.is_structural()).count()
    }

    /// Equivalent under `tolerance_pct`: no structural divergence and
    /// every observed drift within the tolerance.
    pub fn is_equivalent(&self, tolerance_pct: f64) -> bool {
        self.structural_count() == 0 && self.max_drift_pct <= tolerance_pct
    }

    /// The diff as a JSON-ready [`Value`] (the `trace-diff.json` body).
    pub fn to_value(&self) -> Value {
        let divs: Vec<Value> = self
            .divergences
            .iter()
            .map(|d| {
                Value::Map(vec![
                    ("kind".to_string(), Value::Str(d.kind.label().to_string())),
                    ("track".to_string(), Value::Str(d.track.clone())),
                    ("name".to_string(), Value::Str(d.name.clone())),
                    ("category".to_string(), Value::Str(d.category.clone())),
                    ("detail".to_string(), Value::Str(d.detail.clone())),
                ])
            })
            .collect();
        Value::Map(vec![
            ("events_a".to_string(), Value::Num(self.events_a as f64)),
            ("events_b".to_string(), Value::Num(self.events_b as f64)),
            ("divergences".to_string(), Value::Num(self.divergences.len() as f64)),
            ("structural".to_string(), Value::Num(self.structural_count() as f64)),
            ("max_drift_pct".to_string(), Value::Num(self.max_drift_pct)),
            ("tolerance_pct".to_string(), Value::Num(self.options.tolerance_pct)),
            ("structure_only".to_string(), Value::Bool(!self.options.compare_durations)),
            ("details".to_string(), Value::List(divs)),
        ])
    }

    /// Inverse of [`TraceDiff::to_value`]: rebuild the diff from its
    /// `trace-diff.json` body. `to_value` carries every field, so the
    /// round trip is lossless — which lets a pipeline stage park a diff
    /// in the run context as a plain [`Value`] instead of closure state.
    pub fn from_value(v: &Value) -> Result<TraceDiff, String> {
        let num = |key: &str| {
            v.get_num(key).ok_or_else(|| format!("trace-diff value: missing number '{key}'"))
        };
        let mut divergences = Vec::new();
        for (idx, d) in v
            .get_list("details")
            .ok_or("trace-diff value: missing list 'details'")?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                d.get_str(key)
                    .map(str::to_string)
                    .ok_or_else(|| format!("trace-diff value: detail {idx} missing '{key}'"))
            };
            let label = field("kind")?;
            divergences.push(Divergence {
                kind: DivergenceKind::from_label(&label)
                    .ok_or_else(|| format!("trace-diff value: unknown kind '{label}'"))?,
                track: field("track")?,
                name: field("name")?,
                category: field("category")?,
                detail: field("detail")?,
            });
        }
        Ok(TraceDiff {
            events_a: num("events_a")? as usize,
            events_b: num("events_b")? as usize,
            divergences,
            max_drift_pct: num("max_drift_pct")?,
            options: DiffOptions {
                tolerance_pct: num("tolerance_pct")?,
                compare_durations: !v
                    .get_bool("structure_only")
                    .ok_or("trace-diff value: missing bool 'structure_only'")?,
            },
        })
    }

    /// An always-one-row summary table for Aver (`trace_equivalent`
    /// evaluates over it; a per-divergence table would be empty exactly
    /// when the check should pass, and Aver treats an empty filtered
    /// table as a failure).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["events_a", "events_b", "divergences", "structural", "max_drift_pct"]);
        t.push_row(vec![
            Value::Num(self.events_a as f64),
            Value::Num(self.events_b as f64),
            Value::Num(self.divergences.len() as f64),
            Value::Num(self.structural_count() as f64),
            Value::Num(self.max_drift_pct),
        ])
        .expect("summary row matches its own schema");
        t
    }

    /// ASCII divergence report. A pure function of the diff, so the
    /// report bytes are stable across invocations.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace-diff: {} event(s) vs {} event(s), {} divergence(s) ({} structural), max drift {:.3}%\n",
            self.events_a,
            self.events_b,
            self.divergences.len(),
            self.structural_count(),
            self.max_drift_pct,
        ));
        if !self.options.compare_durations {
            out.push_str("(structure-only: durations, counter values and fault instants not compared)\n");
        }
        // Cap the per-divergence listing: a wholesale divergence (say, a
        // full execution timeline diffed against a replay-only one) has
        // hundreds of thousands of entries, and this string is also the
        // committed `trace-diff.txt` artifact. The counts above and the
        // JSON artifact still carry the full diff.
        const MAX_LISTED: usize = 50;
        for d in self.divergences.iter().take(MAX_LISTED) {
            out.push_str(&format!(
                "  [{:<14}] {:<24} {} ({}): {}\n",
                d.kind.label(),
                d.track,
                d.name,
                d.category,
                d.detail
            ));
        }
        if self.divergences.len() > MAX_LISTED {
            out.push_str(&format!(
                "  ... and {} more divergence(s)\n",
                self.divergences.len() - MAX_LISTED
            ));
        }
        if self.divergences.is_empty() {
            out.push_str("  traces are equivalent\n");
        }
        out
    }
}

/// Relative drift between two magnitudes, in percent of the larger one
/// (symmetric, and defined when one side is zero).
fn drift_pct(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom * 100.0
    }
}

/// Longest-common-subsequence alignment of two key sequences. Returns
/// `(Some(i), Some(j))` for matches, `(Some(i), None)` for A-only
/// items, `(None, Some(j))` for B-only items, in stream order.
fn lcs_align<K: PartialEq>(a: &[K], b: &[K]) -> Vec<(Option<usize>, Option<usize>)> {
    let (n, m) = (a.len(), b.len());
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((Some(i), Some(j)));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            out.push((Some(i), None));
            i += 1;
        } else {
            out.push((None, Some(j)));
            j += 1;
        }
    }
    while i < n {
        out.push((Some(i), None));
        i += 1;
    }
    while j < m {
        out.push((None, Some(j)));
        j += 1;
    }
    out
}

/// Key a span/instant aligns on: `(name, category)` within its track.
fn key_of(e: &TraceEvent) -> (&str, &str) {
    (e.name.as_str(), e.category)
}

/// Map span id → "track/name" for parent-structure comparison.
fn span_names(events: &[TraceEvent]) -> BTreeMap<SpanId, String> {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }))
        .map(|e| (e.id, format!("{}/{}", e.track, e.name)))
        .collect()
}

fn parent_key(names: &BTreeMap<SpanId, String>, parent: SpanId) -> String {
    if parent.is_none() {
        "(root)".to_string()
    } else {
        names.get(&parent).cloned().unwrap_or_else(|| "(unknown)".to_string())
    }
}

fn fmt_side(removed: bool) -> &'static str {
    if removed {
        "present in A, missing in B"
    } else {
        "present in B, missing in A"
    }
}

/// Diff two recorded traces. Events must be in stream order (as drained
/// from a [`crate::TraceSink`] or re-imported via
/// [`crate::export::parse_chrome_trace`]).
pub fn diff_traces(a: &[TraceEvent], b: &[TraceEvent], options: DiffOptions) -> TraceDiff {
    let mut diff = TraceDiff {
        events_a: a.len(),
        events_b: b.len(),
        divergences: Vec::new(),
        max_drift_pct: 0.0,
        options,
    };
    // Fast path: identical event streams cannot diverge.
    if a == b {
        return diff;
    }

    let names_a = span_names(a);
    let names_b = span_names(b);

    // Partition both traces by track, preserving stream order.
    let mut tracks: BTreeMap<&str, (Vec<&TraceEvent>, Vec<&TraceEvent>)> = BTreeMap::new();
    for e in a {
        tracks.entry(e.track.as_str()).or_default().0.push(e);
    }
    for e in b {
        tracks.entry(e.track.as_str()).or_default().1.push(e);
    }

    for (ea, eb) in tracks.values() {
        diff_spans(ea, eb, &names_a, &names_b, &mut diff);
        diff_instants(ea, eb, &mut diff);
        diff_counters(ea, eb, &mut diff);
    }
    diff
}

fn push(diff: &mut TraceDiff, kind: DivergenceKind, e: &TraceEvent, detail: String) {
    diff.divergences.push(Divergence {
        kind,
        track: e.track.clone(),
        name: e.name.clone(),
        category: e.category.to_string(),
        detail,
    });
}

fn diff_spans(
    ea: &[&TraceEvent],
    eb: &[&TraceEvent],
    names_a: &BTreeMap<SpanId, String>,
    names_b: &BTreeMap<SpanId, String>,
    diff: &mut TraceDiff,
) {
    let sa: Vec<&TraceEvent> =
        ea.iter().copied().filter(|e| matches!(e.kind, EventKind::Span { .. })).collect();
    let sb: Vec<&TraceEvent> =
        eb.iter().copied().filter(|e| matches!(e.kind, EventKind::Span { .. })).collect();
    let ka: Vec<(&str, &str)> = sa.iter().map(|e| key_of(e)).collect();
    let kb: Vec<(&str, &str)> = sb.iter().map(|e| key_of(e)).collect();

    let mut only_a: Vec<&TraceEvent> = Vec::new();
    let mut only_b: Vec<&TraceEvent> = Vec::new();
    for (i, j) in lcs_align(&ka, &kb) {
        match (i, j) {
            (Some(i), Some(j)) => {
                let (x, y) = (sa[i], sb[j]);
                // Parent structure: same span under a different parent
                // is a reorder, not a match.
                let (pa, pb) = (parent_key(names_a, x.parent), parent_key(names_b, y.parent));
                if pa != pb {
                    push(
                        diff,
                        DivergenceKind::Reordered,
                        x,
                        format!("parent differs: {pa} vs {pb}"),
                    );
                }
                if diff.options.compare_durations {
                    let (da, db) = (x.duration_ns() as f64, y.duration_ns() as f64);
                    let drift = drift_pct(da, db);
                    diff.max_drift_pct = diff.max_drift_pct.max(drift);
                    if drift > diff.options.tolerance_pct {
                        push(
                            diff,
                            DivergenceKind::DurationDrift,
                            x,
                            format!(
                                "{}ns vs {}ns ({:.3}% > {:.3}%)",
                                x.duration_ns(),
                                y.duration_ns(),
                                drift,
                                diff.options.tolerance_pct
                            ),
                        );
                    }
                }
            }
            (Some(i), None) => only_a.push(sa[i]),
            (None, Some(j)) => only_b.push(sb[j]),
            (None, None) => unreachable!(),
        }
    }
    emit_unmatched(diff, only_a, only_b, false);
}

/// Pair up unmatched events with the same key across sides as reorders;
/// the remainder become added/removed (or fault mismatches for chaos
/// instants).
fn emit_unmatched(
    diff: &mut TraceDiff,
    only_a: Vec<&TraceEvent>,
    mut only_b: Vec<&TraceEvent>,
    instants: bool,
) {
    for x in only_a {
        if let Some(pos) = only_b.iter().position(|y| key_of(y) == key_of(x)) {
            let y = only_b.remove(pos);
            push(
                diff,
                DivergenceKind::Reordered,
                x,
                format!("moved within track (ts {}ns vs {}ns)", x.start_ns(), y.start_ns()),
            );
        } else if instants && x.category == "chaos" {
            push(diff, DivergenceKind::FaultMismatch, x, fmt_side(true).to_string());
        } else {
            push(diff, DivergenceKind::Removed, x, fmt_side(true).to_string());
        }
    }
    for y in only_b {
        if instants && y.category == "chaos" {
            push(diff, DivergenceKind::FaultMismatch, y, fmt_side(false).to_string());
        } else {
            push(diff, DivergenceKind::Added, y, fmt_side(false).to_string());
        }
    }
}

fn diff_instants(ea: &[&TraceEvent], eb: &[&TraceEvent], diff: &mut TraceDiff) {
    let ia: Vec<&TraceEvent> =
        ea.iter().copied().filter(|e| matches!(e.kind, EventKind::Instant { .. })).collect();
    let ib: Vec<&TraceEvent> =
        eb.iter().copied().filter(|e| matches!(e.kind, EventKind::Instant { .. })).collect();
    let ka: Vec<(&str, &str)> = ia.iter().map(|e| key_of(e)).collect();
    let kb: Vec<(&str, &str)> = ib.iter().map(|e| key_of(e)).collect();

    let mut only_a: Vec<&TraceEvent> = Vec::new();
    let mut only_b: Vec<&TraceEvent> = Vec::new();
    for (i, j) in lcs_align(&ka, &kb) {
        match (i, j) {
            (Some(i), Some(j)) => {
                let (x, y) = (ia[i], ib[j]);
                // Fault instants carry meaning in their timestamp:
                // the same fault firing at a different virtual instant
                // is a schedule change, not noise.
                if diff.options.compare_durations
                    && x.category == "chaos"
                    && x.start_ns() != y.start_ns()
                {
                    push(
                        diff,
                        DivergenceKind::FaultMismatch,
                        x,
                        format!("fires at {}ns vs {}ns", x.start_ns(), y.start_ns()),
                    );
                }
            }
            (Some(i), None) => only_a.push(ia[i]),
            (None, Some(j)) => only_b.push(ib[j]),
            (None, None) => unreachable!(),
        }
    }
    emit_unmatched(diff, only_a, only_b, true);
}

fn diff_counters(ea: &[&TraceEvent], eb: &[&TraceEvent], diff: &mut TraceDiff) {
    // Group samples by counter name within the track.
    let series = |events: &[&TraceEvent]| {
        let mut m: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for e in events {
            if let EventKind::Counter { value, .. } = e.kind {
                m.entry(e.name.clone()).or_default().push(value);
            }
        }
        m
    };
    let (ca, cb) = (series(ea), series(eb));
    let mut names: Vec<&String> = ca.keys().chain(cb.keys()).collect();
    names.sort();
    names.dedup();
    fn find_counter<'a>(events: &[&'a TraceEvent], name: &str) -> Option<&'a TraceEvent> {
        events
            .iter()
            .copied()
            .find(|e| matches!(e.kind, EventKind::Counter { .. }) && e.name == name)
    }
    for name in names {
        let holder =
            find_counter(ea, name).or_else(|| find_counter(eb, name)).expect("name came from a counter");
        let (va, vb) = (ca.get(name), cb.get(name));
        match (va, vb) {
            (Some(va), Some(vb)) => {
                if va.len() != vb.len() {
                    push(
                        diff,
                        DivergenceKind::CounterDrift,
                        holder,
                        format!("{} samples vs {} samples", va.len(), vb.len()),
                    );
                } else if diff.options.compare_durations {
                    let mut worst = 0.0f64;
                    let mut at = 0usize;
                    for (idx, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
                        let d = drift_pct(*x, *y);
                        if d > worst {
                            worst = d;
                            at = idx;
                        }
                    }
                    diff.max_drift_pct = diff.max_drift_pct.max(worst);
                    if worst > diff.options.tolerance_pct {
                        push(
                            diff,
                            DivergenceKind::CounterDrift,
                            holder,
                            format!(
                                "sample {}: {} vs {} ({:.3}% > {:.3}%)",
                                at, va[at], vb[at], worst, diff.options.tolerance_pct
                            ),
                        );
                    }
                }
            }
            (Some(_), None) => {
                push(diff, DivergenceKind::CounterDrift, holder, fmt_side(true).to_string())
            }
            (None, Some(_)) => {
                push(diff, DivergenceKind::CounterDrift, holder, fmt_side(false).to_string())
            }
            (None, None) => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::tracer::ClockDomain;

    fn virt(build: impl Fn(&crate::tracer::Tracer)) -> Vec<TraceEvent> {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        build(&t);
        t.flush();
        sink.drain()
    }

    fn base_trace() -> Vec<TraceEvent> {
        virt(|t| {
            let a = t.span_at("sim", "serial", "admit", 100, 200);
            t.span_at_child(a, "sim", "serial", "service", 120, 180);
            t.instant_at("chaos", "chaos/faults", "crash", 150);
            t.counter_at("engine", "pending", 3.0, 160);
            t.counter_at("engine", "pending", 5.0, 170);
        })
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let d = diff_traces(&base_trace(), &base_trace(), DiffOptions::default());
        assert!(d.divergences.is_empty());
        assert_eq!(d.max_drift_pct, 0.0);
        assert!(d.is_equivalent(0.0));
        assert_eq!(d.structural_count(), 0);
        assert!(d.report().contains("traces are equivalent"));
    }

    #[test]
    fn report_and_json_are_byte_stable() {
        let mk = || diff_traces(&base_trace(), &base_trace(), DiffOptions::default());
        assert_eq!(mk().report(), mk().report());
        assert_eq!(
            popper_format::json::to_string(&mk().to_value()),
            popper_format::json::to_string(&mk().to_value())
        );
    }

    #[test]
    fn added_and_removed_spans_are_flagged() {
        let a = base_trace();
        let b = virt(|t| {
            let s = t.span_at("sim", "serial", "admit", 100, 200);
            t.span_at_child(s, "sim", "serial", "service", 120, 180);
            t.span_at("sim", "serial", "retry", 185, 195);
            t.instant_at("chaos", "chaos/faults", "crash", 150);
            t.counter_at("engine", "pending", 3.0, 160);
            t.counter_at("engine", "pending", 5.0, 170);
        });
        let d = diff_traces(&a, &b, DiffOptions::default());
        assert_eq!(d.divergences.len(), 1);
        assert_eq!(d.divergences[0].kind, DivergenceKind::Added);
        assert_eq!(d.divergences[0].name, "retry");
        assert!(!d.is_equivalent(100.0));

        let d = diff_traces(&b, &a, DiffOptions::default());
        assert_eq!(d.divergences.len(), 1);
        assert_eq!(d.divergences[0].kind, DivergenceKind::Removed);
    }

    #[test]
    fn duration_drift_respects_tolerance() {
        let a = base_trace();
        let b = virt(|t| {
            let s = t.span_at("sim", "serial", "admit", 100, 210);
            t.span_at_child(s, "sim", "serial", "service", 120, 180);
            t.instant_at("chaos", "chaos/faults", "crash", 150);
            t.counter_at("engine", "pending", 3.0, 160);
            t.counter_at("engine", "pending", 5.0, 170);
        });
        // admit: 100ns vs 110ns ≈ 9.09% drift.
        let strict = diff_traces(&a, &b, DiffOptions::default());
        assert_eq!(strict.divergences.len(), 1);
        assert_eq!(strict.divergences[0].kind, DivergenceKind::DurationDrift);
        assert!(strict.max_drift_pct > 9.0 && strict.max_drift_pct < 9.2);
        assert!(!strict.is_equivalent(5.0));
        assert!(strict.is_equivalent(10.0));

        let loose = diff_traces(&a, &b, DiffOptions { tolerance_pct: 15.0, compare_durations: true });
        assert!(loose.divergences.is_empty());
        // Drift is still recorded even below tolerance.
        assert!(loose.max_drift_pct > 9.0);

        let structural = diff_traces(&a, &b, DiffOptions::structure_only());
        assert!(structural.divergences.is_empty());
        assert_eq!(structural.max_drift_pct, 0.0);
    }

    #[test]
    fn fault_instant_mismatch_is_flagged() {
        let a = base_trace();
        let moved = virt(|t| {
            let s = t.span_at("sim", "serial", "admit", 100, 200);
            t.span_at_child(s, "sim", "serial", "service", 120, 180);
            t.instant_at("chaos", "chaos/faults", "crash", 155);
            t.counter_at("engine", "pending", 3.0, 160);
            t.counter_at("engine", "pending", 5.0, 170);
        });
        let d = diff_traces(&a, &moved, DiffOptions::default());
        assert_eq!(d.divergences.len(), 1);
        assert_eq!(d.divergences[0].kind, DivergenceKind::FaultMismatch);
        assert!(d.divergences[0].detail.contains("150ns vs 155ns"));
        assert_eq!(d.structural_count(), 1);

        let extra = virt(|t| {
            let s = t.span_at("sim", "serial", "admit", 100, 200);
            t.span_at_child(s, "sim", "serial", "service", 120, 180);
            t.instant_at("chaos", "chaos/faults", "crash", 150);
            t.instant_at("chaos", "chaos/faults", "partition", 190);
            t.counter_at("engine", "pending", 3.0, 160);
            t.counter_at("engine", "pending", 5.0, 170);
        });
        let d = diff_traces(&a, &extra, DiffOptions::default());
        assert_eq!(d.divergences.len(), 1);
        assert_eq!(d.divergences[0].kind, DivergenceKind::FaultMismatch);
        assert_eq!(d.divergences[0].name, "partition");
    }

    #[test]
    fn counter_drift_and_sample_count() {
        let a = base_trace();
        let b = virt(|t| {
            let s = t.span_at("sim", "serial", "admit", 100, 200);
            t.span_at_child(s, "sim", "serial", "service", 120, 180);
            t.instant_at("chaos", "chaos/faults", "crash", 150);
            t.counter_at("engine", "pending", 3.0, 160);
            t.counter_at("engine", "pending", 8.0, 170);
        });
        let d = diff_traces(&a, &b, DiffOptions::default());
        assert_eq!(d.divergences.len(), 1);
        assert_eq!(d.divergences[0].kind, DivergenceKind::CounterDrift);
        // 5 vs 8 = 37.5% of the larger value.
        assert!((d.max_drift_pct - 37.5).abs() < 1e-9);

        let fewer = virt(|t| {
            let s = t.span_at("sim", "serial", "admit", 100, 200);
            t.span_at_child(s, "sim", "serial", "service", 120, 180);
            t.instant_at("chaos", "chaos/faults", "crash", 150);
            t.counter_at("engine", "pending", 3.0, 160);
        });
        let d = diff_traces(&a, &fewer, DiffOptions::structure_only());
        assert_eq!(d.divergences.len(), 1);
        assert!(d.divergences[0].detail.contains("2 samples vs 1 samples"));
    }

    #[test]
    fn reorder_and_parent_change_are_structural() {
        let a = virt(|t| {
            t.span_at("sim", "serial", "first", 100, 110);
            t.span_at("sim", "serial", "second", 120, 130);
        });
        let b = virt(|t| {
            t.span_at("sim", "serial", "second", 100, 110);
            t.span_at("sim", "serial", "first", 120, 130);
        });
        let d = diff_traces(&a, &b, DiffOptions::structure_only());
        assert!(!d.divergences.is_empty());
        assert!(d.divergences.iter().all(|x| x.kind == DivergenceKind::Reordered));
        assert!(d.structural_count() >= 1);

        let nested = virt(|t| {
            let p = t.span_at("sim", "serial", "first", 100, 110);
            t.span_at_child(p, "sim", "serial", "second", 102, 108);
        });
        let d = diff_traces(&a, &nested, DiffOptions::structure_only());
        assert!(d.divergences.iter().any(|x| x.kind == DivergenceKind::Reordered
            && x.detail.contains("parent differs")));
    }

    #[test]
    fn value_round_trip_is_lossless() {
        let a = base_trace();
        let b = virt(|t| {
            let s = t.span_at("sim", "serial", "admit", 100, 210);
            t.span_at_child(s, "sim", "serial", "service", 120, 180);
            t.instant_at("chaos", "chaos/faults", "crash", 155);
            t.counter_at("engine", "pending", 3.0, 160);
            t.counter_at("engine", "pending", 8.0, 170);
        });
        for opts in [DiffOptions::default(), DiffOptions::structure_only(),
            DiffOptions { tolerance_pct: 12.5, compare_durations: true }]
        {
            let d = diff_traces(&a, &b, opts);
            assert_eq!(TraceDiff::from_value(&d.to_value()).unwrap(), d);
        }
        assert!(TraceDiff::from_value(&Value::empty_map()).is_err());
    }

    #[test]
    fn summary_table_has_one_row() {
        let d = diff_traces(&base_trace(), &base_trace(), DiffOptions::default());
        let t = d.to_table();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "structural"), Some(&Value::Num(0.0)));
        assert_eq!(t.cell(0, "max_drift_pct"), Some(&Value::Num(0.0)));
    }
}
