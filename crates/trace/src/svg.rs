//! SVG timeline rendering: one row per track, spans as colored bars
//! (nesting shown by inset), instants as markers, plus a time axis.

use crate::event::{EventKind, SpanId, TraceEvent};
use popper_viz::svg::{ticks, SvgDoc};
use std::collections::BTreeMap;

const LEFT: f64 = 190.0;
const WIDTH: u32 = 1060;
const ROW: f64 = 26.0;
const TOP: f64 = 34.0;
const BAR: f64 = 15.0;

/// Flat-UI palette, assigned to categories in sorted order.
const PALETTE: &[&str] = &[
    "#4472c4", "#ed7d31", "#70ad47", "#ffc000", "#7030a0", "#c00000", "#2e9e9e", "#8a6d3b",
];

fn fmt_axis(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.0}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render the events as a timeline SVG document.
pub fn timeline_svg(events: &[TraceEvent]) -> String {
    // Stable row and color assignment.
    let mut tracks: Vec<&str> = events.iter().map(|e| e.track.as_str()).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let rows: BTreeMap<&str, usize> = tracks.iter().copied().zip(0..).collect();
    let mut cats: Vec<&str> = events.iter().map(|e| e.category).collect();
    cats.sort_unstable();
    cats.dedup();
    let colors: BTreeMap<&str, &str> =
        cats.iter().copied().zip(PALETTE.iter().cycle().copied()).collect();

    let t_max = events.iter().map(|e| e.end_ns()).max().unwrap_or(0).max(1);
    let scale = (WIDTH as f64 - LEFT - 20.0) / t_max as f64;
    let x = |ns: u64| LEFT + ns as f64 * scale;

    // Nesting depth per span id (parents recorded in the same batch).
    let parent_of: BTreeMap<SpanId, SpanId> = events
        .iter()
        .filter(|e| !e.id.is_none())
        .map(|e| (e.id, e.parent))
        .collect();
    let depth = |mut id: SpanId| -> usize {
        let mut d = 0;
        while let Some(&p) = parent_of.get(&id) {
            if p.is_none() || d > 8 {
                break;
            }
            d += 1;
            id = p;
        }
        d
    };

    let height = (TOP + tracks.len() as f64 * ROW + 40.0) as u32;
    let mut doc = SvgDoc::new(WIDTH, height);
    doc.rect(0.0, 0.0, WIDTH as f64, height as f64, "#ffffff");
    doc.text(8.0, 18.0, "popper trace timeline", 13, "start");

    // Axis.
    let axis_y = TOP + tracks.len() as f64 * ROW + 6.0;
    for t in ticks(0.0, t_max as f64, 8) {
        let tx = LEFT + t * scale;
        doc.line(tx, TOP - 4.0, tx, axis_y, "#dddddd", 1.0);
        doc.text(tx, axis_y + 14.0, &fmt_axis(t), 10, "middle");
    }

    // Rows.
    for (track, row) in &rows {
        let y = TOP + *row as f64 * ROW;
        if row % 2 == 1 {
            doc.rect(LEFT, y, WIDTH as f64 - LEFT - 20.0, ROW, "#f6f6f6");
        }
        doc.text(LEFT - 8.0, y + ROW / 2.0 + 4.0, track, 11, "end");
    }

    // Events.
    for e in events {
        let y0 = TOP + rows[e.track.as_str()] as f64 * ROW;
        let color = colors[e.category];
        match e.kind {
            EventKind::Span { start_ns, end_ns } => {
                let d = depth(e.id) as f64;
                let w = ((end_ns - start_ns) as f64 * scale).max(0.8);
                let inset = (d * 3.0).min(9.0);
                doc.rect(x(start_ns), y0 + 4.0 + inset, w, (BAR - inset).max(3.0), color);
                // Label spans wide enough to hold text.
                if w > e.name.len() as f64 * 6.5 {
                    doc.text(x(start_ns) + 3.0, y0 + 15.0 + inset, &e.name, 9, "start");
                }
            }
            EventKind::Instant { ts_ns } => {
                doc.circle(x(ts_ns), y0 + ROW - 5.0, 2.2, color);
            }
            EventKind::Counter { ts_ns, .. } => {
                doc.line(x(ts_ns), y0 + ROW - 3.0, x(ts_ns), y0 + ROW - 8.0, color, 1.0);
            }
        }
    }

    // Legend.
    let mut lx = LEFT;
    let ly = axis_y + 26.0;
    for cat in &cats {
        doc.rect(lx, ly - 9.0, 10.0, 10.0, colors[cat]);
        doc.text(lx + 14.0, ly, cat, 10, "start");
        lx += 14.0 + cat.len() as f64 * 7.0 + 18.0;
    }

    doc.finish()
}

/// Render only the events whose track starts with `track_prefix` — the
/// per-tenant or per-worker slice of a multiplexed recording (the CI
/// farm serves `/tenants/<t>/timeline.svg` from this). Timestamps keep
/// the full recording's epoch, so slices of one recording stay
/// mutually comparable.
pub fn timeline_svg_filtered(events: &[TraceEvent], track_prefix: &str) -> String {
    let slice: Vec<TraceEvent> =
        events.iter().filter(|e| e.track.starts_with(track_prefix)).cloned().collect();
    timeline_svg(&slice)
}
