//! Exporters: Chrome `trace_event` JSON and an ASCII summary table.

use crate::event::{EventKind, TraceEvent};
use popper_format::Value;
use std::collections::BTreeMap;

/// Microseconds as f64, the unit `chrome://tracing` expects. Exact for
/// any virtual time below ~104 days, and deterministic always.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Stable track → tid assignment: sorted track names, tids from 1.
fn track_ids(events: &[TraceEvent]) -> BTreeMap<&str, u64> {
    let mut tracks: Vec<&str> = events.iter().map(|e| e.track.as_str()).collect();
    tracks.sort_unstable();
    tracks.dedup();
    tracks.into_iter().zip(1u64..).collect()
}

/// Build a Chrome `trace_event` document (the object form, with a
/// `traceEvents` array) as a [`popper_format::Value`]. Load the JSON in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let tids = track_ids(events);
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + tids.len() + 1);

    let meta = |name: &str, tid: Option<u64>, value: &str| {
        let mut m = vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::Num(1.0)),
        ];
        if let Some(tid) = tid {
            m.push(("tid".to_string(), Value::Num(tid as f64)));
        }
        m.push((
            "args".to_string(),
            Value::Map(vec![("name".to_string(), Value::Str(value.to_string()))]),
        ));
        Value::Map(m)
    };
    out.push(meta("process_name", None, "popper"));
    for (track, tid) in &tids {
        out.push(meta("thread_name", Some(*tid), track));
    }

    for e in events {
        let tid = tids[e.track.as_str()];
        let mut m = vec![
            ("name".to_string(), Value::Str(e.name.clone())),
            ("cat".to_string(), Value::Str(e.category.to_string())),
            ("pid".to_string(), Value::Num(1.0)),
            ("tid".to_string(), Value::Num(tid as f64)),
        ];
        match e.kind {
            EventKind::Span { start_ns, end_ns } => {
                m.push(("ph".to_string(), Value::Str("X".to_string())));
                m.push(("ts".to_string(), Value::Num(us(start_ns))));
                m.push(("dur".to_string(), Value::Num(us(end_ns - start_ns))));
                let mut args = vec![("id".to_string(), Value::Num(e.id.0 as f64))];
                if !e.parent.is_none() {
                    args.push(("parent".to_string(), Value::Num(e.parent.0 as f64)));
                }
                m.push(("args".to_string(), Value::Map(args)));
            }
            EventKind::Instant { ts_ns } => {
                m.push(("ph".to_string(), Value::Str("i".to_string())));
                m.push(("ts".to_string(), Value::Num(us(ts_ns))));
                m.push(("s".to_string(), Value::Str("t".to_string())));
            }
            EventKind::Counter { ts_ns, value } => {
                m.push(("ph".to_string(), Value::Str("C".to_string())));
                m.push(("ts".to_string(), Value::Num(us(ts_ns))));
                m.push((
                    "args".to_string(),
                    Value::Map(vec![(e.name.clone(), Value::Num(value))]),
                ));
            }
        }
        out.push(Value::Map(m));
    }

    Value::Map(vec![
        ("traceEvents".to_string(), Value::List(out)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// Chrome trace as a JSON string (stable output: same events ⇒ same
/// bytes).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    popper_format::json::to_string(&chrome_trace(events))
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A fixed-width per-(track, span-name) summary: call count, total,
/// mean and max duration. The `popper trace` command prints this.
pub fn summary_table(events: &[TraceEvent]) -> String {
    #[derive(Default)]
    struct Agg {
        count: u64,
        total: u64,
        max: u64,
    }
    let mut rows: BTreeMap<(String, String), Agg> = BTreeMap::new();
    let mut instants = 0u64;
    let mut counters = 0u64;
    for e in events {
        match e.kind {
            EventKind::Span { .. } => {
                let a = rows.entry((e.track.clone(), e.name.clone())).or_default();
                a.count += 1;
                a.total += e.duration_ns();
                a.max = a.max.max(e.duration_ns());
            }
            EventKind::Instant { .. } => instants += 1,
            EventKind::Counter { .. } => counters += 1,
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<24} {:>7} {:>10} {:>10} {:>10}\n",
        "track", "span", "count", "total", "mean", "max"
    ));
    for ((track, name), a) in &rows {
        out.push_str(&format!(
            "{:<28} {:<24} {:>7} {:>10} {:>10} {:>10}\n",
            track,
            name,
            a.count,
            fmt_ns(a.total),
            fmt_ns(a.total / a.count.max(1)),
            fmt_ns(a.max),
        ));
    }
    out.push_str(&format!(
        "({} span kinds, {instants} instants, {counters} counter samples)\n",
        rows.len()
    ));
    out
}
