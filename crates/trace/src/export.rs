//! Exporters: Chrome `trace_event` JSON and an ASCII summary table —
//! plus the inverse importer ([`parse_chrome_trace`]) that trace-diff
//! uses to reload committed `trace.json` artifacts.

use crate::event::{EventKind, SpanId, TraceEvent};
use popper_format::{FormatError, Value};
use std::collections::BTreeMap;

/// Microseconds as f64, the unit `chrome://tracing` expects. Exact for
/// any virtual time below ~104 days, and deterministic always.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Stable track → tid assignment: sorted track names, tids from 1.
fn track_ids(events: &[TraceEvent]) -> BTreeMap<&str, u64> {
    let mut tracks: Vec<&str> = events.iter().map(|e| e.track.as_str()).collect();
    tracks.sort_unstable();
    tracks.dedup();
    tracks.into_iter().zip(1u64..).collect()
}

/// A `ph: "M"` metadata element (`process_name` / `thread_name`).
/// Shared between the buffered exporter and [`crate::ChromeStream`] so
/// both emit byte-identical elements.
pub(crate) fn meta_value(name: &str, tid: Option<u64>, value: &str) -> Value {
    let mut m = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::Num(1.0)),
    ];
    if let Some(tid) = tid {
        m.push(("tid".to_string(), Value::Num(tid as f64)));
    }
    m.push((
        "args".to_string(),
        Value::Map(vec![("name".to_string(), Value::Str(value.to_string()))]),
    ));
    Value::Map(m)
}

/// One trace-event array element for `e` on thread `tid`.
pub(crate) fn event_value(e: &TraceEvent, tid: u64) -> Value {
    let mut m = vec![
        ("name".to_string(), Value::Str(e.name.clone())),
        ("cat".to_string(), Value::Str(e.category.to_string())),
        ("pid".to_string(), Value::Num(1.0)),
        ("tid".to_string(), Value::Num(tid as f64)),
    ];
    match e.kind {
        EventKind::Span { start_ns, .. } => {
            m.push(("ph".to_string(), Value::Str("X".to_string())));
            m.push(("ts".to_string(), Value::Num(us(start_ns))));
            // duration_ns() saturates: a skewed span (end < start,
            // possible in hand-built or imported traces) must not
            // panic the exporter.
            m.push(("dur".to_string(), Value::Num(us(e.duration_ns()))));
            let mut args = vec![("id".to_string(), Value::Num(e.id.0 as f64))];
            if !e.parent.is_none() {
                args.push(("parent".to_string(), Value::Num(e.parent.0 as f64)));
            }
            m.push(("args".to_string(), Value::Map(args)));
        }
        EventKind::Instant { ts_ns } => {
            m.push(("ph".to_string(), Value::Str("i".to_string())));
            m.push(("ts".to_string(), Value::Num(us(ts_ns))));
            m.push(("s".to_string(), Value::Str("t".to_string())));
        }
        EventKind::Counter { ts_ns, value } => {
            m.push(("ph".to_string(), Value::Str("C".to_string())));
            m.push(("ts".to_string(), Value::Num(us(ts_ns))));
            m.push((
                "args".to_string(),
                Value::Map(vec![(e.name.clone(), Value::Num(value))]),
            ));
        }
    }
    Value::Map(m)
}

/// Build a Chrome `trace_event` document (the object form, with a
/// `traceEvents` array) as a [`popper_format::Value`]. Load the JSON in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let tids = track_ids(events);
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + tids.len() + 1);
    out.push(meta_value("process_name", None, "popper"));
    for (track, tid) in &tids {
        out.push(meta_value("thread_name", Some(*tid), track));
    }
    for e in events {
        out.push(event_value(e, tids[e.track.as_str()]));
    }
    Value::Map(vec![
        ("traceEvents".to_string(), Value::List(out)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// Chrome trace as a JSON string (stable output: same events ⇒ same
/// bytes).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    popper_format::json::to_string(&chrome_trace(events))
}

/// Intern a category string. [`TraceEvent::category`] is `&'static str`
/// (recording never allocates for it), so the importer maps categories
/// back onto a known list and leaks each distinct unknown category once
/// (bounded by the number of distinct categories ever imported).
fn intern_category(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "sim", "ci", "rpc", "mpi", "container", "lifecycle", "core", "vcs", "store", "chaos",
        "counter", "orchestra", "test", "bench",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == s) {
        return k;
    }
    use std::sync::{Mutex, OnceLock};
    static EXTRA: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut extra = EXTRA.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(k) = extra.iter().find(|k| **k == s) {
        return k;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

/// Nanoseconds from a Chrome-JSON microsecond field.
fn ns_of(us: f64) -> u64 {
    (us * 1000.0).round().max(0.0) as u64
}

fn imp_err(msg: impl Into<String>) -> FormatError {
    FormatError::new("trace", msg)
}

/// Parse a Chrome `trace_event` JSON document (as produced by
/// [`chrome_trace_json`]) back into a stream of [`TraceEvent`]s, in the
/// order they appear in the file. The inverse of the exporter:
/// `parse_chrome_trace(&chrome_trace_json(&events))` reproduces
/// `events` for any drained trace, which the round-trip test pins.
pub fn parse_chrome_trace(json: &str) -> Result<Vec<TraceEvent>, FormatError> {
    let doc = popper_format::json::parse(json)?;
    let items = doc
        .get_list("traceEvents")
        .ok_or_else(|| imp_err("missing traceEvents array"))?;

    // First pass: recover tid → track from thread_name metadata.
    let mut track_of: BTreeMap<u64, String> = BTreeMap::new();
    for item in items {
        if item.get_str("ph") == Some("M") && item.get_str("name") == Some("thread_name") {
            let tid = item
                .get_num("tid")
                .ok_or_else(|| imp_err("thread_name metadata without tid"))? as u64;
            let name = item
                .get("args")
                .and_then(|a| a.get_str("name"))
                .ok_or_else(|| imp_err("thread_name metadata without args.name"))?;
            track_of.insert(tid, name.to_string());
        }
    }

    let mut events = Vec::new();
    for item in items {
        let ph = item.get_str("ph").ok_or_else(|| imp_err("event without ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = item.get_num("tid").ok_or_else(|| imp_err("event without tid"))? as u64;
        let track = track_of
            .get(&tid)
            .ok_or_else(|| imp_err(format!("tid {tid} has no thread_name metadata")))?
            .clone();
        let name = item
            .get_str("name")
            .ok_or_else(|| imp_err("event without name"))?
            .to_string();
        let category = intern_category(item.get_str("cat").unwrap_or(""));
        let ts = item.get_num("ts").ok_or_else(|| imp_err("event without ts"))?;
        let (kind, id, parent) = match ph {
            "X" => {
                let dur = item.get_num("dur").ok_or_else(|| imp_err("span without dur"))?;
                let start_ns = ns_of(ts);
                let id = item
                    .get("args")
                    .and_then(|a| a.get_num("id"))
                    .map(|n| SpanId(n as u64))
                    .unwrap_or(SpanId::NONE);
                let parent = item
                    .get("args")
                    .and_then(|a| a.get_num("parent"))
                    .map(|n| SpanId(n as u64))
                    .unwrap_or(SpanId::NONE);
                (EventKind::Span { start_ns, end_ns: start_ns + ns_of(dur) }, id, parent)
            }
            "i" | "I" => (EventKind::Instant { ts_ns: ns_of(ts) }, SpanId::NONE, SpanId::NONE),
            "C" => {
                let value = item
                    .get("args")
                    .and_then(|a| a.get_num(&name))
                    .ok_or_else(|| imp_err(format!("counter {name} without args sample")))?;
                (EventKind::Counter { ts_ns: ns_of(ts), value }, SpanId::NONE, SpanId::NONE)
            }
            other => return Err(imp_err(format!("unsupported event phase {other:?}"))),
        };
        events.push(TraceEvent { name, category, track, kind, id, parent });
    }
    Ok(events)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A fixed-width per-(track, span-name) summary: call count, total,
/// mean and max duration. The `popper trace` command prints this.
pub fn summary_table(events: &[TraceEvent]) -> String {
    #[derive(Default)]
    struct Agg {
        count: u64,
        total: u64,
        max: u64,
    }
    let mut rows: BTreeMap<(String, String), Agg> = BTreeMap::new();
    let mut instants = 0u64;
    let mut counters = 0u64;
    for e in events {
        match e.kind {
            EventKind::Span { .. } => {
                let a = rows.entry((e.track.clone(), e.name.clone())).or_default();
                a.count += 1;
                a.total += e.duration_ns();
                a.max = a.max.max(e.duration_ns());
            }
            EventKind::Instant { .. } => instants += 1,
            EventKind::Counter { .. } => counters += 1,
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<24} {:>7} {:>10} {:>10} {:>10}\n",
        "track", "span", "count", "total", "mean", "max"
    ));
    for ((track, name), a) in &rows {
        out.push_str(&format!(
            "{:<28} {:<24} {:>7} {:>10} {:>10} {:>10}\n",
            track,
            name,
            a.count,
            fmt_ns(a.total),
            fmt_ns(a.total / a.count.max(1)),
            fmt_ns(a.max),
        ));
    }
    out.push_str(&format!(
        "({} span kinds, {instants} instants, {counters} counter samples)\n",
        rows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::tracer::ClockDomain;

    /// Regression: a skewed span (end < start, as wall clocks can
    /// produce across cores) used to panic the exporter in debug builds
    /// via `end_ns - start_ns`. It must export with dur 0 instead.
    #[test]
    fn skewed_span_exports_without_panicking() {
        let skewed = TraceEvent {
            name: "skewed".to_string(),
            category: "test",
            track: "wall".to_string(),
            kind: EventKind::Span { start_ns: 2_000, end_ns: 1_000 },
            id: crate::SpanId(1),
            parent: crate::SpanId::NONE,
        };
        let json = chrome_trace_json(&[skewed]);
        assert!(json.contains("\"dur\":0") || json.contains("\"dur\": 0"));
        let back = parse_chrome_trace(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].duration_ns(), 0);
    }

    #[test]
    fn chrome_json_round_trips_through_importer() {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        let p = t.span_at("sim", "serial", "admit", 1_000, 5_000);
        t.span_at_child(p, "sim", "serial", "service", 2_000, 4_000);
        t.instant_at("chaos", "chaos/faults", "crash", 1_500);
        t.counter_at("engine", "pending", 7.0, 1_600);
        t.flush();
        let events = sink.drain();
        let back = parse_chrome_trace(&chrome_trace_json(&events)).unwrap();
        assert_eq!(back, events);
        // And re-exporting the imported stream is byte-identical.
        assert_eq!(chrome_trace_json(&back), chrome_trace_json(&events));
    }

    #[test]
    fn importer_rejects_malformed_documents() {
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("not json").is_err());
        // An event referencing a tid with no thread_name metadata.
        let doc = r#"{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":9,"ts":1,"s":"t"}]}"#;
        assert!(parse_chrome_trace(doc).is_err());
    }

    #[test]
    fn importer_interns_categories() {
        let a = intern_category("sim");
        assert_eq!(a, "sim");
        let b = intern_category("custom-cat");
        let c = intern_category("custom-cat");
        assert_eq!(b, "custom-cat");
        assert!(std::ptr::eq(b.as_ptr(), c.as_ptr()));
    }
}
