//! The checkpoint-interval study.
//!
//! GassyFS data is ephemeral: "file systems in GassyFS are explicitly
//! saved/loaded to/from durable storage". That turns checkpoint policy
//! into a classic trade-off — checkpoint often and pay overhead, or
//! rarely and risk losing work when a node dies. This study drives a
//! write workload and a periodic stop-the-world checkpoint daemon as
//! *concurrent processes on the discrete-event engine*
//! ([`popper_sim::Sim`]), sweeping the interval.
//!
//! Two effects fall out:
//!
//! * overhead decreases as the interval grows (fewer pauses);
//! * the worst-case loss window grows with the interval;
//! * checkpoints are *incremental for free*: the durable store is
//!   content-chunked, so unchanged files dedup across checkpoints.

use crate::fs::{GassyFs, MountOptions};
use crate::vfs::FsError;
use popper_format::{Table, Value};
use popper_sim::{platforms, Cluster, Nanos, Sim};
use popper_store::ChunkStore;

/// Study configuration.
#[derive(Debug, Clone)]
pub struct CheckpointStudy {
    /// Checkpoint intervals to sweep (virtual time). `Nanos::MAX` means
    /// "never checkpoint" and provides the overhead baseline.
    pub intervals: Vec<Nanos>,
    /// Number of files the workload writes.
    pub files: usize,
    /// Bytes per file.
    pub file_bytes: usize,
    /// Cluster size.
    pub nodes: usize,
}

impl Default for CheckpointStudy {
    fn default() -> Self {
        CheckpointStudy {
            intervals: vec![
                Nanos::from_millis(25),
                Nanos::from_millis(100),
                Nanos::from_millis(400),
                Nanos::MAX,
            ],
            files: 400,
            file_bytes: 64 * 1024,
            nodes: 4,
        }
    }
}

/// One interval's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPoint {
    /// The interval (`None` = never).
    pub interval: Option<Nanos>,
    /// Workload completion time.
    pub completion: Nanos,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total virtual time spent inside checkpoints.
    pub pause_total: Nanos,
    /// Worst-case loss window observed (longest gap between consecutive
    /// checkpoint completions, or the whole run when never).
    pub worst_loss_window: Nanos,
    /// Durable bytes actually stored (after chunk dedup).
    pub durable_stored_bytes: u64,
    /// Durable bytes ingested (before dedup) — the incremental savings
    /// are the gap to `durable_stored_bytes`.
    pub durable_ingested_bytes: u64,
}

/// The event-driven world.
struct World {
    fs: GassyFs,
    durable: ChunkStore,
    files: usize,
    file_bytes: usize,
    next_file: usize,
    /// The FS is unavailable until this time (stop-the-world checkpoint).
    busy_until: Nanos,
    checkpoints: u64,
    pause_total: Nanos,
    last_ckpt_done: Nanos,
    worst_loss_window: Nanos,
    done_at: Option<Nanos>,
    error: Option<FsError>,
}

fn write_next(sim: &mut Sim<World>) {
    if sim.world.error.is_some() {
        return;
    }
    let now = sim.now().max(sim.world.busy_until);
    let i = sim.world.next_file;
    if i >= sim.world.files {
        let done = sim.now();
        sim.world.done_at = Some(sim.world.done_at.map_or(done, |d: Nanos| d.max(done)));
        return;
    }
    sim.world.next_file += 1;
    let data = vec![(i % 251) as u8; sim.world.file_bytes];
    match sim.world.fs.write_file(&format!("/work/f{i}"), &data, now) {
        Ok(done) => {
            // Chain the next write at this one's completion.
            sim.schedule_at(done, write_next);
        }
        Err(e) => sim.world.error = Some(e),
    }
}

fn checkpoint_tick(interval: Nanos) -> impl Fn(&mut Sim<World>) + Clone + 'static {
    move |sim: &mut Sim<World>| {
        if sim.world.done_at.is_some() || sim.world.error.is_some() {
            return; // workload finished; daemon stops
        }
        let start = sim.now().max(sim.world.busy_until);
        let World { fs, durable, .. } = &mut sim.world;
        match fs.checkpoint(durable, start) {
            Ok((_manifests, done)) => {
                sim.world.busy_until = done;
                sim.world.checkpoints += 1;
                sim.world.pause_total += done.saturating_sub(start);
                let window = done.saturating_sub(sim.world.last_ckpt_done);
                sim.world.worst_loss_window = sim.world.worst_loss_window.max(window);
                sim.world.last_ckpt_done = done;
                let tick = checkpoint_tick(interval);
                sim.schedule_at(done + interval, move |s| tick(s));
            }
            Err(e) => sim.world.error = Some(e),
        }
    }
}

/// Run one interval.
pub fn run_one(study: &CheckpointStudy, interval: Option<Nanos>) -> Result<CheckpointPoint, FsError> {
    let cluster = Cluster::new(platforms::gassyfs_node(), study.nodes);
    let mut fs = GassyFs::mount(cluster, MountOptions::default());
    fs.mkdir_p("/work", Nanos::ZERO)?;
    let world = World {
        fs,
        durable: ChunkStore::new(),
        files: study.files,
        file_bytes: study.file_bytes,
        next_file: 0,
        busy_until: Nanos::ZERO,
        checkpoints: 0,
        pause_total: Nanos::ZERO,
        last_ckpt_done: Nanos::ZERO,
        worst_loss_window: Nanos::ZERO,
        done_at: None,
        error: None,
    };
    let mut sim = Sim::new(world);
    sim.schedule_at(Nanos::ZERO, write_next);
    if let Some(iv) = interval {
        let tick = checkpoint_tick(iv);
        sim.schedule_at(iv, move |s| tick(s));
    }
    sim.run();
    if let Some(e) = sim.world.error {
        return Err(e);
    }
    let completion = sim.world.done_at.expect("workload finished");
    let worst = if sim.world.checkpoints == 0 {
        completion
    } else {
        // Tail window: work after the last checkpoint is also at risk.
        sim.world.worst_loss_window.max(completion.saturating_sub(sim.world.last_ckpt_done))
    };
    let stats = sim.world.durable.stats();
    Ok(CheckpointPoint {
        interval,
        completion,
        checkpoints: sim.world.checkpoints,
        pause_total: sim.world.pause_total,
        worst_loss_window: worst,
        durable_stored_bytes: stats.stored_bytes,
        durable_ingested_bytes: stats.ingested_bytes,
    })
}

/// Run the sweep.
pub fn run_checkpoint_study(study: &CheckpointStudy) -> Result<Vec<CheckpointPoint>, FsError> {
    study
        .intervals
        .iter()
        .map(|&iv| run_one(study, if iv == Nanos::MAX { None } else { Some(iv) }))
        .collect()
}

/// Results table: `interval_ms, time_s, checkpoints, pause_s,
/// loss_window_ms, stored_mb, ingested_mb`.
pub fn to_table(points: &[CheckpointPoint]) -> Table {
    let mut t = Table::new([
        "interval_ms",
        "time_s",
        "checkpoints",
        "pause_s",
        "loss_window_ms",
        "stored_mb",
        "ingested_mb",
    ]);
    for p in points {
        t.push_row(vec![
            match p.interval {
                Some(iv) => Value::Num(iv.as_millis_f64()),
                None => Value::Str("never".into()),
            },
            Value::Num(p.completion.as_secs_f64()),
            Value::from(p.checkpoints as i64),
            Value::Num(p.pause_total.as_secs_f64()),
            Value::Num(p.worst_loss_window.as_millis_f64()),
            Value::Num(p.durable_stored_bytes as f64 / 1e6),
            Value::Num(p.durable_ingested_bytes as f64 / 1e6),
        ])
        .expect("fixed schema");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> CheckpointStudy {
        CheckpointStudy {
            intervals: vec![Nanos::from_millis(5), Nanos::from_millis(100), Nanos::MAX],
            files: 60,
            file_bytes: 32 * 1024,
            nodes: 2,
        }
    }

    #[test]
    fn overhead_falls_and_risk_rises_with_interval() {
        let points = run_checkpoint_study(&small_study()).unwrap();
        assert_eq!(points.len(), 3);
        let frequent = &points[0];
        let rare = &points[1];
        let never = &points[2];
        // More checkpoints at the short interval.
        assert!(frequent.checkpoints > rare.checkpoints, "{frequent:?} vs {rare:?}");
        assert_eq!(never.checkpoints, 0);
        // Checkpointing costs completion time.
        assert!(frequent.completion > never.completion);
        assert!(frequent.pause_total > rare.pause_total);
        // Risk ordering: worst loss window grows with the interval.
        assert!(frequent.worst_loss_window <= rare.worst_loss_window);
        assert!(rare.worst_loss_window <= never.worst_loss_window);
        assert_eq!(never.worst_loss_window, never.completion);
    }

    #[test]
    fn checkpoints_are_incremental_via_dedup() {
        let points = run_checkpoint_study(&small_study()).unwrap();
        let frequent = &points[0];
        assert!(frequent.checkpoints >= 2);
        // Ingested counts every checkpointed byte; stored dedups the
        // unchanged prefix of the namespace across checkpoints.
        assert!(
            frequent.durable_ingested_bytes > 2 * frequent.durable_stored_bytes,
            "dedup should save >2x: stored {} ingested {}",
            frequent.durable_stored_bytes,
            frequent.durable_ingested_bytes
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_checkpoint_study(&small_study()).unwrap();
        let b = run_checkpoint_study(&small_study()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn table_and_aver_shape_check() {
        let points = run_checkpoint_study(&small_study()).unwrap();
        let t = to_table(&points);
        assert_eq!(t.len(), 3);
        // Among the finite intervals: pauses shrink as the interval grows.
        let finite = t.filter(|r| r.str("interval_ms").is_none());
        let verdict =
            popper_aver::check("expect decreasing(interval_ms, pause_s)", &finite).unwrap();
        assert!(verdict.passed, "{:?}", verdict.failures);
    }
}
