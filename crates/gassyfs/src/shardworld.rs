//! The sharded GassyFS world: one fabric shard per gasnet node.
//!
//! The serial scalability experiment ([`experiment`](crate::experiment))
//! walks a page workload through [`Cluster`](popper_sim::Cluster) on a
//! single thread. This world maps each gasnet node onto a shard of the
//! shard-native fabric ([`popper_sim::FabricSim`]) and replays the
//! store's write path as cross-shard transfers: the client streams
//! pages out round-robin, each page lands on its primary (`page %
//! nodes`), the primary forwards a replica copy to the next node
//! (`(primary + 1) % nodes` — the same placement
//! [`GasnetStore`](crate::gasnet::GasnetStore) uses), and the replica
//! acks back to the client with a small control message. The client
//! keeps `streams` pages in flight, so primaries and replicas across
//! the cluster serialize concurrently while the shared fabric core and
//! each node's ingress meter the contention.
//!
//! Determinism is inherited from the engine: per-node page counts,
//! traffic counters, the virtual clock and the trace bytes are
//! identical at every worker count.

use crate::gasnet::PAGE_SIZE;
use popper_sim::{FabricSim, Nanos, NetCtx, NodeTraffic, PlatformSpec};

/// Size of the replica's acknowledgement back to the client.
const CTRL_BYTES: u64 = 64;

/// Configuration of one sharded world run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedGassyConfig {
    /// Gasnet nodes (= shards). Node 0 is also the writing client.
    pub nodes: usize,
    /// Pages the client writes, round-robin across primaries.
    pub pages: u64,
    /// Write chains the client keeps in flight.
    pub streams: usize,
}

impl Default for ShardedGassyConfig {
    fn default() -> Self {
        ShardedGassyConfig { nodes: 8, pages: 256, streams: 4 }
    }
}

/// Per-node (per-shard) state.
struct NodeState {
    /// Pages this node holds as primary.
    primary_pages: u64,
    /// Pages this node holds as replica.
    replica_pages: u64,
    /// Client only: next page index to push.
    next_page: u64,
    /// Client only: pages fully replicated and acked.
    completed: u64,
    /// Client only: virtual time the last ack landed.
    finish: Nanos,
}

/// Result of one sharded world run — identical at every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedGassyReport {
    /// End-to-end virtual runtime.
    pub elapsed: Nanos,
    /// Virtual time the client saw its last ack.
    pub client_finish: Nanos,
    /// Primary page placement, node order.
    pub per_node_primary: Vec<u64>,
    /// Replica page placement, node order.
    pub per_node_replica: Vec<u64>,
    /// Fabric traffic counters, node order.
    pub traffic: Vec<NodeTraffic>,
    /// Pages written (echoes the config).
    pub pages: u64,
    /// Total events dispatched.
    pub events: u64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
}

/// Run the sharded world with `workers` threads (1 = the
/// single-threaded reference; results are identical either way). The
/// platform supplies the NIC the fabric is built from.
pub fn run_sharded(
    config: &ShardedGassyConfig,
    platform: &PlatformSpec,
    workers: usize,
) -> ShardedGassyReport {
    assert!(config.nodes >= 2, "a gasnet world needs at least two nodes");
    assert!(config.pages >= 1 && config.streams >= 1);
    let latency = Nanos(platform.nic_lat_ns as u64).max(Nanos(1));
    let states = (0..config.nodes)
        .map(|_| NodeState {
            primary_pages: 0,
            replica_pages: 0,
            next_page: 0,
            completed: 0,
            finish: Nanos::ZERO,
        })
        .collect();
    let mut sim = FabricSim::new(states, platform.nic_gbit, latency, 1.0);
    let total = config.pages;
    let streams = (config.streams as u64).min(total);
    for _ in 0..streams {
        sim.schedule(0, Nanos::ZERO, move |ctx| write_next(ctx, total));
    }
    let elapsed = sim.run_sharded(workers);
    ShardedGassyReport {
        elapsed,
        client_finish: sim.state(0).finish,
        per_node_primary: sim.states().map(|s| s.primary_pages).collect(),
        per_node_replica: sim.states().map(|s| s.replica_pages).collect(),
        traffic: (0..config.nodes).map(|n| sim.traffic(n)).collect(),
        pages: total,
        events: sim.events_fired(),
        epochs: sim.epochs(),
        workers: workers.max(1),
    }
}

/// Client: pop the next page and push it down the replication chain —
/// primary write, replica forward, ack. The chain re-enters here on
/// ack, so each call keeps exactly one stream busy.
fn write_next(ctx: &mut NetCtx<'_, '_, NodeState>, total: u64) {
    let nodes = ctx.nodes();
    let state = ctx.state();
    if state.next_page >= total {
        return;
    }
    let page = state.next_page;
    state.next_page += 1;
    let primary = (page % nodes as u64) as usize;
    let replica = (primary + 1) % nodes;
    ctx.transfer(primary, PAGE_SIZE, move |c| {
        c.state().primary_pages += 1;
        c.transfer(replica, PAGE_SIZE, move |c| {
            c.state().replica_pages += 1;
            c.transfer(0, CTRL_BYTES, move |c| {
                let now = c.now();
                let state = c.state();
                state.completed += 1;
                if state.completed == total {
                    state.finish = now;
                } else {
                    write_next(c, total);
                }
            });
        });
    });
}

// ---- chaos variant: the same write path under a scheduled-fault ----
// ---- timeline, with the gasnet store's replica failover ported  ----
// ---- onto the sharded world                                     ----

/// Write attempts per page before the client declares it lost.
const MAX_ATTEMPTS: usize = 12;

/// Retry backoff: 1, 2, 4, ... ms, capped at 32 ms — generous enough
/// that any schedule ending healed is outlasted.
fn backoff(attempt: usize) -> Nanos {
    Nanos::from_millis(1 << attempt.min(5))
}

/// Per-node state of the chaos run: the healthy world's placement
/// counters plus failure bookkeeping.
struct ChaosNodeState {
    primary_pages: u64,
    replica_pages: u64,
    /// Client only: next page index to push.
    next_page: u64,
    /// Client only: pages resolved (acked or abandoned).
    completed: u64,
    /// Client only: pages that needed a failover or retry.
    degraded: u64,
    /// Client only: pages abandoned after `MAX_ATTEMPTS`.
    lost: u64,
    /// Pages written straight to the replica after a primary failure.
    failovers: u64,
    /// Failures this node observed (timeouts on its sends).
    detections: u64,
    /// Earliest failure this node observed.
    first_fail: Option<Nanos>,
    /// Latest recovered completion this node observed.
    last_recovery: Nanos,
    finish: Nanos,
}

impl ChaosNodeState {
    fn note_fail(&mut self, at: Nanos) {
        self.detections += 1;
        self.first_fail = Some(self.first_fail.map_or(at, |f| f.min(at)));
    }
}

/// Result of one sharded chaos run — identical at every worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedGassyChaosReport {
    /// End-to-end virtual runtime.
    pub elapsed: Nanos,
    /// Primary page placement, node order.
    pub per_node_primary: Vec<u64>,
    /// Replica page placement, node order.
    pub per_node_replica: Vec<u64>,
    /// Fabric traffic counters, node order.
    pub traffic: Vec<NodeTraffic>,
    /// Pages the client attempted.
    pub pages: u64,
    /// Pages acked back to the client.
    pub completed: u64,
    /// Pages that needed a failover or retry before acking.
    pub degraded: u64,
    /// Pages abandoned after `MAX_ATTEMPTS` (the corruption signal —
    /// expected 0 for every schedule that ends healed).
    pub lost: u64,
    /// Pages written straight to the replica after a primary failure.
    pub failovers: u64,
    /// Send timeouts observed across the cluster.
    pub detections: u64,
    /// First failure to last recovered ack, in milliseconds.
    pub recovery_ms: f64,
    /// Fraction of pages that saw any failure.
    pub degraded_fraction: f64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
}

/// Start gap between consecutive pages so the workload spans the
/// schedule (1.25x its horizon): a chaos run must still be mid-write
/// when the last fault lands.
fn page_pace(horizon: Nanos, pages: u64) -> Nanos {
    Nanos(horizon.0 * 5 / 4 / pages.max(1))
}

/// Run the sharded world under a scheduled-fault timeline (see
/// [`popper_sim::FabricSim::set_fault_timeline`]): faults land at
/// epoch barriers mid-run, the client fails over to the replica when a
/// primary is unreachable and retries with backoff when both copies
/// are, and the primary acks degraded (single-copy) pages when the
/// replica is down. Deterministic: the same seed and timeline produce
/// identical reports and trace bytes at every worker count.
pub fn run_sharded_chaos(
    config: &ShardedGassyConfig,
    platform: &PlatformSpec,
    workers: usize,
    seed: u64,
    timeline: Vec<(Nanos, popper_sim::PlaneCmd)>,
) -> ShardedGassyChaosReport {
    assert!(config.nodes >= 2, "a gasnet world needs at least two nodes");
    assert!(config.pages >= 1 && config.streams >= 1);
    let latency = Nanos(platform.nic_lat_ns as u64).max(Nanos(1));
    let states = (0..config.nodes)
        .map(|_| ChaosNodeState {
            primary_pages: 0,
            replica_pages: 0,
            next_page: 0,
            completed: 0,
            degraded: 0,
            lost: 0,
            failovers: 0,
            detections: 0,
            first_fail: None,
            last_recovery: Nanos::ZERO,
            finish: Nanos::ZERO,
        })
        .collect();
    let mut sim = FabricSim::new(states, platform.nic_gbit, latency, 1.0);
    let horizon = timeline.iter().map(|(at, _)| *at).max().unwrap_or(Nanos::ZERO);
    sim.set_fault_timeline(seed, timeline);
    let total = config.pages;
    let pace = page_pace(horizon, total);
    let streams = (config.streams as u64).min(total);
    for _ in 0..streams {
        sim.schedule(0, Nanos::ZERO, move |ctx| chaos_write_next(ctx, total, pace));
    }
    let elapsed = sim.run_sharded(workers);

    let first_fail =
        sim.states().filter_map(|s| s.first_fail).min();
    let last_recovery = sim.states().map(|s| s.last_recovery).max().unwrap_or(Nanos::ZERO);
    let recovery_ms = match first_fail {
        Some(f) if last_recovery > f => (last_recovery - f).0 as f64 / 1e6,
        _ => 0.0,
    };
    let client = sim.state(0);
    let (completed, degraded, lost) = (client.completed, client.degraded, client.lost);
    ShardedGassyChaosReport {
        elapsed,
        per_node_primary: sim.states().map(|s| s.primary_pages).collect(),
        per_node_replica: sim.states().map(|s| s.replica_pages).collect(),
        traffic: (0..config.nodes).map(|n| sim.traffic(n)).collect(),
        pages: total,
        completed,
        degraded,
        lost,
        failovers: sim.states().map(|s| s.failovers).sum(),
        detections: sim.states().map(|s| s.detections).sum(),
        recovery_ms,
        degraded_fraction: (degraded + lost) as f64 / total as f64,
        epochs: sim.epochs(),
        workers: workers.max(1),
    }
}

type ChaosCtx<'a, 'b> = NetCtx<'a, 'b, ChaosNodeState>;

/// Client: pop the next page (paced onto its start slot) and push it
/// down the replication chain.
fn chaos_write_next(ctx: &mut ChaosCtx<'_, '_>, total: u64, pace: Nanos) {
    let now = ctx.now();
    let state = ctx.state();
    if state.next_page >= total {
        return;
    }
    let page = state.next_page;
    state.next_page += 1;
    let slot = pace * page;
    if slot > now {
        ctx.schedule_at(slot, move |c| write_page(c, page, 0, false, total, pace));
    } else {
        write_page(ctx, page, 0, false, total, pace);
    }
}

/// One write attempt of `page`: primary first; on a primary timeout,
/// fail over to the replica; when both are unreachable, back off and
/// retry the whole page.
fn write_page(
    ctx: &mut ChaosCtx<'_, '_>,
    page: u64,
    attempt: usize,
    touched: bool,
    total: u64,
    pace: Nanos,
) {
    let nodes = ctx.nodes();
    if attempt >= MAX_ATTEMPTS {
        let state = ctx.state();
        state.lost += 1;
        state.completed += 1;
        chaos_write_next(ctx, total, pace);
        return;
    }
    let primary = (page % nodes as u64) as usize;
    let replica = (primary + 1) % nodes;
    ctx.transfer_or(
        primary,
        PAGE_SIZE,
        move |c| primary_store(c, page, replica, touched, total, pace),
        move |c, u| {
            c.state().note_fail(u.gave_up_at);
            // Replica failover: write the single surviving copy
            // directly (the gasnet store's recovery path).
            c.transfer_or(
                replica,
                PAGE_SIZE,
                move |cc| {
                    let st = cc.state();
                    st.replica_pages += 1;
                    st.failovers += 1;
                    send_ack(cc, true, total, pace, 0);
                },
                move |cc, u2| {
                    cc.state().note_fail(u2.gave_up_at);
                    cc.schedule_in(backoff(attempt), move |c3| {
                        write_page(c3, page, attempt + 1, true, total, pace)
                    });
                },
            );
        },
    );
}

/// Primary: store the page and forward the replica copy; when the
/// replica is unreachable, ack the client directly (the page survives
/// with one copy — degraded, not lost).
fn primary_store(
    ctx: &mut ChaosCtx<'_, '_>,
    _page: u64,
    replica: usize,
    touched: bool,
    total: u64,
    pace: Nanos,
) {
    ctx.state().primary_pages += 1;
    ctx.transfer_or(
        replica,
        PAGE_SIZE,
        move |c| {
            c.state().replica_pages += 1;
            send_ack(c, touched, total, pace, 0);
        },
        move |c, u| {
            c.state().note_fail(u.gave_up_at);
            send_ack(c, true, total, pace, 0);
        },
    );
}

/// Ack the client (retrying with backoff — a lost ack would strand a
/// write stream); the chain re-enters `chaos_write_next` there.
fn send_ack(ctx: &mut ChaosCtx<'_, '_>, degraded: bool, total: u64, pace: Nanos, attempt: usize) {
    if attempt >= MAX_ATTEMPTS {
        return; // Stream stranded; the client reports the page lost-in-flight.
    }
    ctx.transfer_or(
        0,
        CTRL_BYTES,
        move |c| {
            let now = c.now();
            let state = c.state();
            state.completed += 1;
            if degraded {
                state.degraded += 1;
                state.last_recovery = state.last_recovery.max(now);
            }
            if state.completed == total {
                state.finish = now;
            } else {
                chaos_write_next(c, total, pace);
            }
        },
        move |c, u| {
            c.state().note_fail(u.gave_up_at);
            c.schedule_in(backoff(attempt), move |cc| {
                send_ack(cc, degraded, total, pace, attempt + 1)
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_sim::platforms;

    #[test]
    fn sharded_world_matches_reference_at_every_worker_count() {
        let config = ShardedGassyConfig { nodes: 6, pages: 96, streams: 3 };
        let platform = platforms::gassyfs_node();
        let reference = run_sharded(&config, &platform, 1);
        assert!(reference.client_finish > Nanos::ZERO);
        for workers in [2, 4, 8] {
            let parallel = run_sharded(&config, &platform, workers);
            assert_eq!(
                ShardedGassyReport { workers: 1, ..parallel },
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn placement_matches_the_gasnet_store() {
        // Round-robin primaries, replica one node over — the same
        // layout GasnetStore::alloc produces.
        let config = ShardedGassyConfig { nodes: 4, pages: 10, streams: 2 };
        let report = run_sharded(&config, &platforms::gassyfs_node(), 2);
        assert_eq!(report.per_node_primary, vec![3, 3, 2, 2]);
        assert_eq!(report.per_node_replica, vec![2, 3, 3, 2]);
    }

    #[test]
    fn every_page_pays_two_copies_and_an_ack() {
        let config = ShardedGassyConfig { nodes: 5, pages: 40, streams: 4 };
        let report = run_sharded(&config, &platforms::gassyfs_node(), 2);
        let wire: u64 = report.traffic.iter().map(|t| t.tx_bytes).sum();
        assert_eq!(wire, config.pages * (2 * PAGE_SIZE + CTRL_BYTES));
    }

    #[test]
    fn chaos_run_fails_over_and_stays_deterministic() {
        use popper_sim::PlaneCmd;
        let config = ShardedGassyConfig { nodes: 6, pages: 64, streams: 3 };
        let platform = platforms::gassyfs_node();
        // Crash the primary for pages ≡ 2 mid-run, restart it later:
        // in-flight writes fail over to the replica, later writes land
        // on the primary again once the restart crosses a barrier.
        let timeline = vec![
            (Nanos::from_millis(2), PlaneCmd::Crash(2)),
            (Nanos::from_millis(9), PlaneCmd::Restart(2)),
        ];
        let reference = run_sharded_chaos(&config, &platform, 1, 7, timeline.clone());
        assert_eq!(reference.completed, config.pages);
        assert_eq!(reference.lost, 0, "the schedule heals; no page may be abandoned");
        assert!(reference.failovers > 0, "the crash must force replica failovers");
        assert!(reference.degraded > 0);
        assert!(reference.recovery_ms > 0.0);
        for workers in [2, 8] {
            let parallel = run_sharded_chaos(&config, &platform, workers, 7, timeline.clone());
            assert_eq!(
                ShardedGassyChaosReport { workers: 1, ..parallel },
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn chaos_run_with_empty_timeline_sees_no_failures() {
        let config = ShardedGassyConfig { nodes: 4, pages: 24, streams: 2 };
        let report = run_sharded_chaos(&config, &platforms::gassyfs_node(), 2, 1, Vec::new());
        assert_eq!(report.completed, config.pages);
        assert_eq!(report.degraded + report.lost + report.failovers + report.detections, 0);
        assert_eq!(report.recovery_ms, 0.0);
    }

    #[test]
    fn more_streams_finish_no_later() {
        let platform = platforms::gassyfs_node();
        let narrow = run_sharded(&ShardedGassyConfig { streams: 1, ..Default::default() }, &platform, 2);
        let wide = run_sharded(&ShardedGassyConfig { streams: 8, ..Default::default() }, &platform, 2);
        assert!(wide.elapsed <= narrow.elapsed);
    }
}
