//! The sharded GassyFS world: one fabric shard per gasnet node.
//!
//! The serial scalability experiment ([`experiment`](crate::experiment))
//! walks a page workload through [`Cluster`](popper_sim::Cluster) on a
//! single thread. This world maps each gasnet node onto a shard of the
//! shard-native fabric ([`popper_sim::FabricSim`]) and replays the
//! store's write path as cross-shard transfers: the client streams
//! pages out round-robin, each page lands on its primary (`page %
//! nodes`), the primary forwards a replica copy to the next node
//! (`(primary + 1) % nodes` — the same placement
//! [`GasnetStore`](crate::gasnet::GasnetStore) uses), and the replica
//! acks back to the client with a small control message. The client
//! keeps `streams` pages in flight, so primaries and replicas across
//! the cluster serialize concurrently while the shared fabric core and
//! each node's ingress meter the contention.
//!
//! Determinism is inherited from the engine: per-node page counts,
//! traffic counters, the virtual clock and the trace bytes are
//! identical at every worker count.

use crate::gasnet::PAGE_SIZE;
use popper_sim::{FabricSim, Nanos, NetCtx, NodeTraffic, PlatformSpec};

/// Size of the replica's acknowledgement back to the client.
const CTRL_BYTES: u64 = 64;

/// Configuration of one sharded world run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedGassyConfig {
    /// Gasnet nodes (= shards). Node 0 is also the writing client.
    pub nodes: usize,
    /// Pages the client writes, round-robin across primaries.
    pub pages: u64,
    /// Write chains the client keeps in flight.
    pub streams: usize,
}

impl Default for ShardedGassyConfig {
    fn default() -> Self {
        ShardedGassyConfig { nodes: 8, pages: 256, streams: 4 }
    }
}

/// Per-node (per-shard) state.
struct NodeState {
    /// Pages this node holds as primary.
    primary_pages: u64,
    /// Pages this node holds as replica.
    replica_pages: u64,
    /// Client only: next page index to push.
    next_page: u64,
    /// Client only: pages fully replicated and acked.
    completed: u64,
    /// Client only: virtual time the last ack landed.
    finish: Nanos,
}

/// Result of one sharded world run — identical at every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedGassyReport {
    /// End-to-end virtual runtime.
    pub elapsed: Nanos,
    /// Virtual time the client saw its last ack.
    pub client_finish: Nanos,
    /// Primary page placement, node order.
    pub per_node_primary: Vec<u64>,
    /// Replica page placement, node order.
    pub per_node_replica: Vec<u64>,
    /// Fabric traffic counters, node order.
    pub traffic: Vec<NodeTraffic>,
    /// Pages written (echoes the config).
    pub pages: u64,
    /// Total events dispatched.
    pub events: u64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
}

/// Run the sharded world with `workers` threads (1 = the
/// single-threaded reference; results are identical either way). The
/// platform supplies the NIC the fabric is built from.
pub fn run_sharded(
    config: &ShardedGassyConfig,
    platform: &PlatformSpec,
    workers: usize,
) -> ShardedGassyReport {
    assert!(config.nodes >= 2, "a gasnet world needs at least two nodes");
    assert!(config.pages >= 1 && config.streams >= 1);
    let latency = Nanos(platform.nic_lat_ns as u64).max(Nanos(1));
    let states = (0..config.nodes)
        .map(|_| NodeState {
            primary_pages: 0,
            replica_pages: 0,
            next_page: 0,
            completed: 0,
            finish: Nanos::ZERO,
        })
        .collect();
    let mut sim = FabricSim::new(states, platform.nic_gbit, latency, 1.0);
    let total = config.pages;
    let streams = (config.streams as u64).min(total);
    for _ in 0..streams {
        sim.schedule(0, Nanos::ZERO, move |ctx| write_next(ctx, total));
    }
    let elapsed = sim.run_sharded(workers);
    ShardedGassyReport {
        elapsed,
        client_finish: sim.state(0).finish,
        per_node_primary: sim.states().map(|s| s.primary_pages).collect(),
        per_node_replica: sim.states().map(|s| s.replica_pages).collect(),
        traffic: (0..config.nodes).map(|n| sim.traffic(n)).collect(),
        pages: total,
        events: sim.events_fired(),
        epochs: sim.epochs(),
        workers: workers.max(1),
    }
}

/// Client: pop the next page and push it down the replication chain —
/// primary write, replica forward, ack. The chain re-enters here on
/// ack, so each call keeps exactly one stream busy.
fn write_next(ctx: &mut NetCtx<'_, '_, NodeState>, total: u64) {
    let nodes = ctx.nodes();
    let state = ctx.state();
    if state.next_page >= total {
        return;
    }
    let page = state.next_page;
    state.next_page += 1;
    let primary = (page % nodes as u64) as usize;
    let replica = (primary + 1) % nodes;
    ctx.transfer(primary, PAGE_SIZE, move |c| {
        c.state().primary_pages += 1;
        c.transfer(replica, PAGE_SIZE, move |c| {
            c.state().replica_pages += 1;
            c.transfer(0, CTRL_BYTES, move |c| {
                let now = c.now();
                let state = c.state();
                state.completed += 1;
                if state.completed == total {
                    state.finish = now;
                } else {
                    write_next(c, total);
                }
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_sim::platforms;

    #[test]
    fn sharded_world_matches_reference_at_every_worker_count() {
        let config = ShardedGassyConfig { nodes: 6, pages: 96, streams: 3 };
        let platform = platforms::gassyfs_node();
        let reference = run_sharded(&config, &platform, 1);
        assert!(reference.client_finish > Nanos::ZERO);
        for workers in [2, 4, 8] {
            let parallel = run_sharded(&config, &platform, workers);
            assert_eq!(
                ShardedGassyReport { workers: 1, ..parallel },
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn placement_matches_the_gasnet_store() {
        // Round-robin primaries, replica one node over — the same
        // layout GasnetStore::alloc produces.
        let config = ShardedGassyConfig { nodes: 4, pages: 10, streams: 2 };
        let report = run_sharded(&config, &platforms::gassyfs_node(), 2);
        assert_eq!(report.per_node_primary, vec![3, 3, 2, 2]);
        assert_eq!(report.per_node_replica, vec![2, 3, 3, 2]);
    }

    #[test]
    fn every_page_pays_two_copies_and_an_ack() {
        let config = ShardedGassyConfig { nodes: 5, pages: 40, streams: 4 };
        let report = run_sharded(&config, &platforms::gassyfs_node(), 2);
        let wire: u64 = report.traffic.iter().map(|t| t.tx_bytes).sum();
        assert_eq!(wire, config.pages * (2 * PAGE_SIZE + CTRL_BYTES));
    }

    #[test]
    fn more_streams_finish_no_later() {
        let platform = platforms::gassyfs_node();
        let narrow = run_sharded(&ShardedGassyConfig { streams: 1, ..Default::default() }, &platform, 2);
        let wide = run_sharded(&ShardedGassyConfig { streams: 8, ..Default::default() }, &platform, 2);
        assert!(wide.elapsed <= narrow.elapsed);
    }
}
