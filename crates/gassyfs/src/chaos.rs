//! The fault-tolerance experiment: GassyFS under a chaos schedule.
//!
//! The scalability experiment asks "how fast?"; this one asks "does it
//! *survive*?". A [`ChaosDriver`] injects a deterministic
//! [`FaultSchedule`] into the cluster's fault plane while the client
//! sweeps verify-reads over a pre-written dataset in fixed epochs.
//! Every byte is checked against the expected contents, so the headline
//! claim — *degraded but correct* — is measured, not assumed. The
//! report carries the recovery metrics the Aver assertions
//! (`recovers_within`, `degraded_at_most`) are written against.

use crate::fs::{GassyFs, MountOptions};
use crate::gasnet::PAGE_SIZE;
use popper_chaos::{ChaosDriver, FaultKind, FaultSchedule};
use popper_format::{Table, Value};
use popper_sim::{Cluster, Nanos, PlatformSpec};

/// Configuration of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Number of files pre-written before faults start.
    pub files: usize,
    /// Pages per file.
    pub file_pages: usize,
    /// Verify-read epochs to sweep.
    pub epochs: usize,
    /// Virtual-time gap between epochs (the schedule plays out against
    /// this clock).
    pub epoch_gap: Nanos,
    /// The node platform.
    pub platform: PlatformSpec,
    /// Mount options (the default disables the page cache so every read
    /// exercises the fabric — otherwise failovers would be invisible).
    pub mount: MountOptions,
    /// Label recorded in the `machine` column.
    pub machine_label: String,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            nodes: 8,
            files: 12,
            file_pages: 4,
            epochs: 10,
            epoch_gap: Nanos::from_millis(20),
            platform: popper_sim::platforms::gassyfs_node(),
            mount: MountOptions { page_cache_pages: 0, ..Default::default() },
            machine_label: "gassyfs-node".into(),
        }
    }
}

/// One verify-read epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Virtual start time.
    pub start: Nanos,
    /// Sweep duration.
    pub duration: Nanos,
    /// Page accesses this epoch.
    pub reads: u64,
    /// Accesses served by replicas this epoch.
    pub failovers: u64,
    /// Fault labels injected just before this epoch's sweep.
    pub faults: Vec<String>,
}

/// The result of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Schedule name.
    pub schedule: String,
    /// Schedule seed.
    pub seed: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Per-epoch measurements.
    pub epochs: Vec<ChaosEpoch>,
    /// Total faults injected.
    pub faults_injected: usize,
    /// Total accesses served by replicas.
    pub failovers: u64,
    /// Total page accesses over all epochs.
    pub total_reads: u64,
    /// Files whose bytes came back wrong (must be 0).
    pub corrupt: u64,
    /// Pages re-fetched while rebuilding restarted nodes.
    pub repaired_pages: usize,
    /// Time from the first fault to full recovery, in milliseconds:
    /// rebuild completion for crash schedules, the healing event for
    /// degradation-only schedules, 0 for an empty schedule.
    pub recovery_ms: f64,
    /// Fraction of epoch accesses served in degraded mode.
    pub degraded_fraction: f64,
    /// Virtual end time of the run.
    pub elapsed: Nanos,
}

impl ChaosReport {
    /// The recovery metrics as a JSON-able map (what `popper chaos`
    /// records next to `faults.json`).
    pub fn metrics(&self) -> Value {
        let mut m = Value::empty_map();
        m.insert("schedule", Value::from(self.schedule.as_str()));
        m.insert("seed", Value::from(self.seed as i64));
        m.insert("nodes", Value::from(self.nodes));
        m.insert("epochs", Value::from(self.epochs.len()));
        m.insert("faults_injected", Value::from(self.faults_injected));
        m.insert("failovers", Value::from(self.failovers as i64));
        m.insert("total_reads", Value::from(self.total_reads as i64));
        m.insert("corrupt", Value::from(self.corrupt as i64));
        m.insert("repaired_pages", Value::from(self.repaired_pages));
        m.insert("recovery_ms", Value::Num(self.recovery_ms));
        m.insert("degraded_fraction", Value::Num(self.degraded_fraction));
        m.insert("elapsed_ms", Value::Num(self.elapsed.0 as f64 / 1e6));
        m
    }
}

/// Deterministic file contents: distinct per file, byte-checkable.
fn pattern(file: usize, len: usize) -> Vec<u8> {
    (0..len).map(|b| ((b as u32).wrapping_mul(31).wrapping_add(file as u32 * 7) % 251) as u8).collect()
}

/// Run the fault-tolerance experiment.
pub fn run_fault_tolerance(
    cfg: &ChaosConfig,
    schedule: &FaultSchedule,
) -> Result<ChaosReport, String> {
    let cluster = Cluster::new(cfg.platform.clone(), cfg.nodes);
    let mut fs = GassyFs::mount(cluster, cfg.mount.clone());
    let tracer = popper_trace::current();

    // Pre-write the dataset (healthy cluster).
    let file_len = cfg.file_pages * PAGE_SIZE as usize;
    let mut t = fs.mkdir_p("/data", Nanos::ZERO).map_err(|e| e.to_string())?;
    let expected: Vec<Vec<u8>> = (0..cfg.files).map(|i| pattern(i, file_len)).collect();
    for (i, data) in expected.iter().enumerate() {
        t = fs.write_file(&format!("/data/f{i}"), data, t).map_err(|e| e.to_string())?;
    }

    let mut driver = ChaosDriver::new(schedule.clone());
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut corrupt = 0u64;
    let mut recovery_end: Option<Nanos> = None;

    for epoch in 0..cfg.epochs {
        // Inject everything due, rebuilding any node that restarted.
        let before_inj = driver.injected();
        let labels = driver.advance(fs.cluster.faults_mut(), t);
        let fired: Vec<_> =
            driver.schedule().events[before_inj..driver.injected()].to_vec();
        for ev in &fired {
            if let FaultKind::Restart { node } = ev.kind {
                let (_pages, done) = fs.rebuild_node(node, t);
                t = done;
                recovery_end = Some(done);
            }
        }

        // Verify-read sweep: every file, every byte.
        let stats_before = fs.access_stats();
        let start = t;
        for (i, want) in expected.iter().enumerate() {
            let (back, done) =
                fs.read_file(&format!("/data/f{i}"), t).map_err(|e| e.to_string())?;
            if &back != want {
                corrupt += 1;
            }
            t = done;
        }
        let stats = fs.access_stats();
        let reads = (stats.local + stats.remote) - (stats_before.local + stats_before.remote);
        let failovers = stats.failover - stats_before.failover;
        if tracer.is_enabled() {
            tracer.span_at("chaos", "chaos/epochs", format!("epoch{epoch}"), start.0, t.0);
            tracer.counter_at("chaos/metrics", "failovers", stats.failover as f64, t.0);
        }
        epochs.push(ChaosEpoch { epoch, start, duration: t.saturating_sub(start), reads, failovers, faults: labels });
        t += cfg.epoch_gap;
    }

    // Drain events scheduled past the last epoch (e.g. a late restart)
    // so recovery always completes within the run.
    while !driver.done() {
        let at = driver.schedule().events[driver.injected()].at.max(t);
        let before_inj = driver.injected();
        driver.advance(fs.cluster.faults_mut(), at);
        t = at;
        for ev in driver.schedule().events[before_inj..driver.injected()].iter().cloned() {
            if let FaultKind::Restart { node } = ev.kind {
                let (_pages, done) = fs.rebuild_node(node, t);
                t = done;
                recovery_end = Some(done);
            }
        }
    }

    let total_reads: u64 = epochs.iter().map(|e| e.reads).sum();
    let failovers: u64 = epochs.iter().map(|e| e.failovers).sum();
    let recovery_ms = match (schedule.events.first(), schedule.first_crash()) {
        (None, _) => 0.0,
        (Some(first), crash) => {
            let start = crash.unwrap_or(first.at);
            let end = recovery_end.unwrap_or_else(|| schedule.horizon());
            end.saturating_sub(start).0 as f64 / 1e6
        }
    };
    Ok(ChaosReport {
        schedule: schedule.name.clone(),
        seed: schedule.seed,
        nodes: cfg.nodes,
        faults_injected: driver.injected(),
        failovers,
        total_reads,
        corrupt,
        repaired_pages: fs.access_stats().repaired as usize,
        recovery_ms,
        degraded_fraction: if total_reads == 0 { 0.0 } else { failovers as f64 / total_reads as f64 },
        elapsed: t,
        epochs,
    })
}

/// Render a chaos report as the experiment's `results.csv` table with
/// the columns the chaos Aver assertions name. The aggregate recovery
/// metrics repeat on every row so `recovers_within` / `degraded_at_most`
/// can be asserted over any grouping.
pub fn to_table(report: &ChaosReport, machine: &str) -> Table {
    let mut t = Table::new([
        "schedule",
        "machine",
        "nodes",
        "epoch",
        "time_ms",
        "reads",
        "failovers",
        "corrupt",
        "recovery_ms",
        "degraded_fraction",
    ]);
    for e in &report.epochs {
        t.push_row(vec![
            Value::from(report.schedule.as_str()),
            Value::from(machine),
            Value::from(report.nodes),
            Value::from(e.epoch),
            Value::Num(e.duration.0 as f64 / 1e6),
            Value::from(e.reads as i64),
            Value::from(e.failovers as i64),
            Value::from(report.corrupt as i64),
            Value::Num(report.recovery_ms),
            Value::Num(report.degraded_fraction),
        ])
        .expect("fixed schema");
    }
    t
}

/// The default chaos assertions, checked when an experiment ships no
/// `chaos.aver` of its own.
pub use popper_chaos::DEFAULT_ASSERTIONS as DEFAULT_CHAOS_ASSERTIONS;

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosConfig {
        ChaosConfig { nodes: 4, files: 6, epochs: 8, ..Default::default() }
    }

    #[test]
    fn node_crash_degrades_but_stays_correct() {
        let cfg = small();
        let s = FaultSchedule::named("node-crash", cfg.nodes, 1).unwrap();
        let r = run_fault_tolerance(&cfg, &s).unwrap();
        assert_eq!(r.corrupt, 0, "degraded reads must return correct bytes");
        assert!(r.failovers > 0, "crash must force replica failovers");
        assert!(r.repaired_pages > 0, "restart must trigger a rebuild");
        assert!(r.recovery_ms > 0.0);
        assert!(r.degraded_fraction > 0.0 && r.degraded_fraction < 1.0);
        assert_eq!(r.faults_injected, 2);
    }

    #[test]
    fn same_seed_reproduces_identical_reports() {
        let cfg = small();
        let s = FaultSchedule::named("gremlin", cfg.nodes, 42).unwrap();
        let a = run_fault_tolerance(&cfg, &s).unwrap();
        let b = run_fault_tolerance(&cfg, &s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_schedule_is_fault_free() {
        let cfg = small();
        let s = FaultSchedule { name: "none".into(), seed: 1, nodes: cfg.nodes, events: vec![] };
        let r = run_fault_tolerance(&cfg, &s).unwrap();
        assert_eq!(r.failovers, 0);
        assert_eq!(r.recovery_ms, 0.0);
        assert_eq!(r.degraded_fraction, 0.0);
        assert_eq!(r.corrupt, 0);
    }

    #[test]
    fn default_assertions_pass_on_crash_run() {
        let cfg = small();
        let s = FaultSchedule::named("node-crash", cfg.nodes, 1).unwrap();
        let r = run_fault_tolerance(&cfg, &s).unwrap();
        let table = to_table(&r, &cfg.machine_label);
        for line in DEFAULT_CHAOS_ASSERTIONS.lines().filter(|l| !l.trim().is_empty()) {
            let verdict = popper_aver::check(line, &table).unwrap();
            assert!(verdict.passed, "{line}: {:?}", verdict.failures);
        }
    }

    #[test]
    fn packet_loss_slows_epochs_without_failover() {
        let cfg = small();
        let s = FaultSchedule::named("packet-loss", cfg.nodes, 7).unwrap();
        let r = run_fault_tolerance(&cfg, &s).unwrap();
        assert_eq!(r.corrupt, 0);
        assert_eq!(r.failovers, 0, "loss degrades latency, not placement");
        // Epochs under loss are slower than the first (healthy) epoch.
        let healthy = r.epochs[0].duration;
        let lossy = r.epochs.iter().map(|e| e.duration).max().unwrap();
        assert!(lossy > healthy, "lossy {lossy} vs healthy {healthy}");
    }

    #[test]
    fn table_round_trips_through_csv() {
        let cfg = small();
        let s = FaultSchedule::named("partition", cfg.nodes, 1).unwrap();
        let r = run_fault_tolerance(&cfg, &s).unwrap();
        let t = to_table(&r, "gassyfs-node");
        assert_eq!(t.len(), cfg.epochs);
        let t2 = Table::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t, t2);
    }
}
