//! GassyFS proper: VFS + page store + virtual-time accounting +
//! checkpoint/restore.
//!
//! Every operation takes the caller's current virtual time and returns
//! the completion time, so concurrent "make jobs" (see
//! [`crate::workload`]) can interleave their I/O through the shared
//! fabric exactly like processes sharing one FUSE mount. Each operation
//! also pays a FUSE/syscall overhead on the client node — the paper
//! notes GassyFS "uses FUSE, which can be given more than 30 different
//! options"; the ones that matter to performance are modeled in
//! [`MountOptions`].

use crate::gasnet::{GasnetStore, PAGE_SIZE};
use crate::vfs::{FsError, Stat, Vfs};
use popper_sim::{Cluster, Demand, Nanos};
use popper_store::{ChunkStore, Manifest};
use std::collections::VecDeque;

/// FUSE mount options that affect the performance model. (The real
/// mount accepts 30+; these are the load-bearing ones.)
#[derive(Debug, Clone, PartialEq)]
pub struct MountOptions {
    /// Keep a client-side page cache of this many pages (0 disables —
    /// FUSE `direct_io`).
    pub page_cache_pages: usize,
    /// Maximum bytes per FUSE write request (`max_write`).
    pub max_write: u64,
    /// Writeback caching: object writes return after the local copy
    /// (remote placement happens asynchronously and is charged at half
    /// cost to model overlap).
    pub writeback: bool,
    /// Extra syscall cost multiplier for FUSE user-kernel crossings.
    pub fuse_crossing_cost: f64,
}

impl Default for MountOptions {
    fn default() -> Self {
        MountOptions { page_cache_pages: 1024, max_write: 128 * 1024, writeback: false, fuse_crossing_cost: 1.0 }
    }
}

/// The mounted filesystem.
#[derive(Debug, Clone)]
pub struct GassyFs {
    vfs: Vfs,
    store: GasnetStore,
    /// The simulated cluster backing the mount.
    pub cluster: Cluster,
    opts: MountOptions,
    /// FIFO page cache (ids currently cached on the client).
    cache: VecDeque<u64>,
    ops: u64,
}

impl GassyFs {
    /// Mount GassyFS over `cluster` with the client (FUSE) on node 0.
    pub fn mount(cluster: Cluster, opts: MountOptions) -> Self {
        GassyFs { vfs: Vfs::new(), store: GasnetStore::new(0), cluster, opts, cache: VecDeque::new(), ops: 0 }
    }

    /// The FUSE/syscall overhead of one operation.
    fn op_overhead(&mut self) -> Nanos {
        self.ops += 1;
        let d = Demand { syscalls: 2.0 * self.opts.fuse_crossing_cost, int_ops: 2_000.0, ..Default::default() };
        self.cluster.compute_duration(self.store.client, &d)
    }

    fn cache_hit(&mut self, page: u64) -> bool {
        if self.opts.page_cache_pages == 0 {
            return false;
        }
        if let Some(pos) = self.cache.iter().position(|p| *p == page) {
            // Move to the back (LRU touch).
            self.cache.remove(pos);
            self.cache.push_back(page);
            true
        } else {
            false
        }
    }

    fn cache_insert(&mut self, page: u64) {
        if self.opts.page_cache_pages == 0 {
            return;
        }
        if self.cache.len() >= self.opts.page_cache_pages {
            self.cache.pop_front();
        }
        self.cache.push_back(page);
    }

    fn cache_evict(&mut self, pages: &[u64]) {
        self.cache.retain(|p| !pages.contains(p));
    }

    // ---- namespace operations ----

    /// `mkdir -p`.
    pub fn mkdir_p(&mut self, path: &str, now: Nanos) -> Result<Nanos, FsError> {
        self.vfs.mkdir_p(path)?;
        Ok(now + self.op_overhead())
    }

    /// Create an empty file.
    pub fn create(&mut self, path: &str, now: Nanos) -> Result<Nanos, FsError> {
        self.vfs.create(path)?;
        Ok(now + self.op_overhead())
    }

    /// Write a whole file (create-or-truncate then append), returning
    /// the completion time.
    pub fn write_file(&mut self, path: &str, data: &[u8], now: Nanos) -> Result<Nanos, FsError> {
        let ino = match self.vfs.file_ino(path) {
            Ok(ino) => {
                let freed = self.vfs.truncate(ino);
                self.store.free(&mut self.cluster, &freed);
                self.cache_evict(&freed);
                ino
            }
            Err(FsError::NotFound(_)) => {
                self.vfs.create(path)?;
                self.vfs.file_ino(path)?
            }
            Err(e) => return Err(e),
        };
        let mut t = now + self.op_overhead();
        let n_pages = data.len().div_ceil(PAGE_SIZE as usize);
        let pages = self.store.alloc(&mut self.cluster, n_pages).map_err(|_| FsError::NoSpace)?;
        // One FUSE crossing per max_write request.
        let requests = (data.len() as u64).div_ceil(self.opts.max_write).max(1);
        for _ in 1..requests {
            t += self.op_overhead();
        }
        for (i, page) in pages.iter().enumerate() {
            let start = i * PAGE_SIZE as usize;
            let end = ((i + 1) * PAGE_SIZE as usize).min(data.len());
            self.store.set_contents(*page, data[start..end].to_vec());
            let done = self.store.write_page(&mut self.cluster, *page, t);
            t = if self.opts.writeback {
                // Overlap remote placement with the writer: charge half.
                t + (done.saturating_sub(t)) / 2
            } else {
                done
            };
            self.cache_insert(*page);
        }
        self.vfs.append_pages(ino, &pages, data.len() as u64);
        Ok(t)
    }

    /// Read a whole file; returns `(contents, completion time)`.
    pub fn read_file(&mut self, path: &str, now: Nanos) -> Result<(Vec<u8>, Nanos), FsError> {
        let ino = self.vfs.file_ino(path)?;
        let size = self.vfs.stat(path)?.size as usize;
        let mut t = now + self.op_overhead();
        let pages: Vec<u64> = self.vfs.pages(ino).to_vec();
        let mut out = Vec::with_capacity(size);
        for page in pages {
            if !self.cache_hit(page) {
                t = self.store.read_page(&mut self.cluster, page, t);
                self.cache_insert(page);
            }
            out.extend_from_slice(&self.store.get_contents(page));
        }
        out.truncate(size);
        Ok((out, t))
    }

    /// Timing-only read (contents discarded) — what workload replay uses.
    pub fn read_timing(&mut self, path: &str, now: Nanos) -> Result<Nanos, FsError> {
        let ino = self.vfs.file_ino(path)?;
        let mut t = now + self.op_overhead();
        let pages: Vec<u64> = self.vfs.pages(ino).to_vec();
        for page in pages {
            if !self.cache_hit(page) {
                t = self.store.read_page(&mut self.cluster, page, t);
                self.cache_insert(page);
            }
        }
        Ok(t)
    }

    /// Unlink a file.
    pub fn unlink(&mut self, path: &str, now: Nanos) -> Result<Nanos, FsError> {
        let freed = self.vfs.unlink(path)?;
        self.store.free(&mut self.cluster, &freed);
        self.cache_evict(&freed);
        Ok(now + self.op_overhead())
    }

    /// Rename.
    pub fn rename(&mut self, from: &str, to: &str, now: Nanos) -> Result<Nanos, FsError> {
        self.vfs.rename(from, to)?;
        Ok(now + self.op_overhead())
    }

    /// Stat.
    pub fn stat(&self, path: &str) -> Result<Stat, FsError> {
        self.vfs.stat(path)
    }

    /// Readdir.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        self.vfs.readdir(path)
    }

    /// Locality counters.
    pub fn access_stats(&self) -> crate::gasnet::AccessStats {
        self.store.stats()
    }

    /// FUSE operations served.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    // ---- resilience (degraded mode + repair) ----

    /// Re-fetch the page stripes of a restarted node from their
    /// replicas, restoring full redundancy. Returns `(pages, done)`.
    pub fn rebuild_node(&mut self, node: usize, now: Nanos) -> (usize, Nanos) {
        self.store.rebuild_node(&mut self.cluster, node, now)
    }

    /// The disk-slowdown factor currently applied to the client's disk
    /// (1.0 when the fault plane is healthy).
    fn disk_factor(&self) -> f64 {
        if self.cluster.faults().is_active() {
            self.cluster.faults().disk_factor(self.store.client)
        } else {
            1.0
        }
    }

    // ---- persistence (the paper: "file systems in GassyFS are
    // ephemeral … explicitly saved/loaded to/from durable storage,
    // e.g. local disk or Amazon S3") ----

    /// Checkpoint every file into `durable`; returns `(path, manifest)`
    /// pairs plus the completion time (reading remote pages + writing
    /// to the client's disk).
    pub fn checkpoint(
        &mut self,
        durable: &mut ChunkStore,
        now: Nanos,
    ) -> Result<(Vec<(String, Manifest)>, Nanos), FsError> {
        let mut t = now;
        let mut out = Vec::new();
        let files = self.vfs.walk_files();
        for (path, _ino) in files {
            let (data, t2) = self.read_file(&path, t)?;
            // Disk write on the client (inflated under a disk-slowdown fault).
            let disk = self.cluster.platform().disk_io(data.len() as u64).scale(self.disk_factor());
            t = t2 + disk;
            out.push((path.clone(), durable.put(&data)));
        }
        Ok((out, t))
    }

    /// Restore a checkpoint into this (empty) filesystem.
    pub fn restore(
        &mut self,
        durable: &ChunkStore,
        checkpoint: &[(String, Manifest)],
        now: Nanos,
    ) -> Result<Nanos, FsError> {
        let mut t = now;
        for (path, manifest) in checkpoint {
            let data = durable.get(manifest).map_err(|_| FsError::NotFound(path.clone()))?;
            if let Some(dir) = path.rfind('/') {
                if dir > 0 {
                    self.mkdir_p(&path[..dir], t)?;
                }
            }
            let disk = self.cluster.platform().disk_io(data.len() as u64).scale(self.disk_factor());
            t = self.write_file(path, &data, t + disk)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_sim::platforms;

    fn mount(nodes: usize) -> GassyFs {
        GassyFs::mount(Cluster::new(platforms::gassyfs_node(), nodes), MountOptions::default())
    }

    #[test]
    fn write_read_round_trip() {
        let mut fs = mount(4);
        fs.mkdir_p("/src", Nanos::ZERO).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let t1 = fs.write_file("/src/main.c", &data, Nanos::ZERO).unwrap();
        assert!(t1 > Nanos::ZERO);
        let (back, _t2) = fs.read_file("/src/main.c", t1).unwrap();
        assert_eq!(back, data);
        assert_eq!(fs.stat("/src/main.c").unwrap().size, 20_000);
        assert_eq!(fs.stat("/src/main.c").unwrap().pages, 5);
    }

    #[test]
    fn overwrite_frees_old_pages() {
        let mut fs = mount(2);
        fs.write_file("/f", &[1u8; 8192], Nanos::ZERO).unwrap();
        let used_before = fs.cluster.total_mem_used();
        fs.write_file("/f", &[2u8; 4096], Nanos::ZERO).unwrap();
        assert!(fs.cluster.total_mem_used() < used_before);
        let (back, _) = fs.read_file("/f", Nanos::ZERO).unwrap();
        assert_eq!(back, vec![2u8; 4096]);
    }

    #[test]
    fn more_nodes_more_remote_accesses() {
        let data = vec![7u8; 64 * PAGE_SIZE as usize];
        let frac = |nodes: usize| {
            let mut fs = GassyFs::mount(
                Cluster::new(platforms::gassyfs_node(), nodes),
                MountOptions { page_cache_pages: 0, ..Default::default() },
            );
            fs.write_file("/big", &data, Nanos::ZERO).unwrap();
            fs.read_timing("/big", Nanos::ZERO).unwrap();
            fs.access_stats().remote_fraction()
        };
        assert_eq!(frac(1), 0.0);
        let f2 = frac(2);
        let f4 = frac(4);
        let f8 = frac(8);
        assert!(f2 > 0.4 && f2 < 0.6, "f2={f2}");
        assert!(f4 > f2 && f8 > f4, "remote fraction must grow: {f2} {f4} {f8}");
    }

    #[test]
    fn page_cache_eliminates_repeat_transfers() {
        let data = vec![1u8; 32 * PAGE_SIZE as usize];
        let mut fs = mount(4);
        fs.write_file("/f", &data, Nanos::ZERO).unwrap();
        // Writes populated the cache, so reads never touch the fabric.
        let remote_after_write = fs.access_stats().remote;
        let t1 = fs.read_timing("/f", Nanos::ZERO).unwrap();
        fs.read_timing("/f", t1).unwrap();
        assert_eq!(fs.access_stats().remote, remote_after_write);
        // A cached read costs only the FUSE overhead — far less than one
        // fabric latency per page.
        assert!(t1 < fs.cluster.fabric.latency(), "cached read {t1} should beat one fabric RTT");
    }

    #[test]
    fn direct_io_disables_cache() {
        let data = vec![1u8; 8 * PAGE_SIZE as usize];
        let mut fs = GassyFs::mount(
            Cluster::new(platforms::gassyfs_node(), 4),
            MountOptions { page_cache_pages: 0, ..Default::default() },
        );
        fs.write_file("/f", &data, Nanos::ZERO).unwrap();
        let before = fs.access_stats().remote;
        fs.read_timing("/f", Nanos::ZERO).unwrap();
        fs.read_timing("/f", Nanos::ZERO).unwrap();
        let after = fs.access_stats().remote;
        assert!(after >= before + 12, "both reads must hit the fabric (remote {before} -> {after})");
    }

    #[test]
    fn writeback_mode_is_faster() {
        let data = vec![1u8; 128 * PAGE_SIZE as usize];
        let mut sync_fs = GassyFs::mount(Cluster::new(platforms::gassyfs_node(), 4), MountOptions::default());
        let mut wb_fs = GassyFs::mount(
            Cluster::new(platforms::gassyfs_node(), 4),
            MountOptions { writeback: true, ..Default::default() },
        );
        let t_sync = sync_fs.write_file("/f", &data, Nanos::ZERO).unwrap();
        let t_wb = wb_fs.write_file("/f", &data, Nanos::ZERO).unwrap();
        assert!(t_wb < t_sync, "writeback {t_wb} should beat sync {t_sync}");
    }

    #[test]
    fn unlink_returns_memory() {
        let mut fs = mount(2);
        fs.write_file("/f", &[1u8; 4 * PAGE_SIZE as usize], Nanos::ZERO).unwrap();
        assert!(fs.cluster.total_mem_used() > 0);
        fs.unlink("/f", Nanos::ZERO).unwrap();
        assert_eq!(fs.cluster.total_mem_used(), 0);
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let mut fs = mount(4);
        fs.mkdir_p("/proj/src", Nanos::ZERO).unwrap();
        fs.write_file("/proj/src/a.c", b"int a;", Nanos::ZERO).unwrap();
        fs.write_file("/proj/Makefile", b"all: a.o", Nanos::ZERO).unwrap();
        let mut durable = ChunkStore::new();
        let (ckpt, t) = fs.checkpoint(&mut durable, Nanos::ZERO).unwrap();
        assert_eq!(ckpt.len(), 2);
        assert!(t > Nanos::ZERO);

        // Cluster "crashes"; restore into a fresh mount.
        let mut fresh = mount(2);
        fresh.restore(&durable, &ckpt, Nanos::ZERO).unwrap();
        let (a, _) = fresh.read_file("/proj/src/a.c", Nanos::ZERO).unwrap();
        assert_eq!(a, b"int a;");
        let (mk, _) = fresh.read_file("/proj/Makefile", Nanos::ZERO).unwrap();
        assert_eq!(mk, b"all: a.o");
    }

    #[test]
    fn reads_survive_a_node_crash_with_correct_bytes() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 249) as u8).collect();
        let mut fs = GassyFs::mount(
            Cluster::new(platforms::gassyfs_node(), 4),
            MountOptions { page_cache_pages: 0, ..Default::default() },
        );
        fs.write_file("/f", &data, Nanos::ZERO).unwrap();
        fs.cluster.faults_mut().crash(2);
        let (back, t) = fs.read_file("/f", Nanos::ZERO).unwrap();
        assert_eq!(back, data, "degraded read must stay correct");
        assert!(t > Nanos::ZERO);
        assert!(fs.access_stats().failover > 0, "pages on node 2 must fail over");
        // Restart and rebuild: redundancy restored, failovers stop.
        fs.cluster.faults_mut().restart(2);
        let (repaired, _) = fs.rebuild_node(2, Nanos::ZERO);
        assert!(repaired > 0);
        let before = fs.access_stats().failover;
        fs.read_file("/f", Nanos::ZERO).unwrap();
        assert_eq!(fs.access_stats().failover, before);
    }

    #[test]
    fn disk_slowdown_inflates_checkpoint_time() {
        let mk = || {
            let mut fs = mount(2);
            fs.write_file("/big", &vec![3u8; 64 * PAGE_SIZE as usize], Nanos::ZERO).unwrap();
            fs
        };
        let mut healthy = mk();
        let mut slow = mk();
        slow.cluster.faults_mut().set_disk_factor(0, 8.0);
        let mut d1 = ChunkStore::new();
        let mut d2 = ChunkStore::new();
        let (_, t_healthy) = healthy.checkpoint(&mut d1, Nanos::ZERO).unwrap();
        let (_, t_slow) = slow.checkpoint(&mut d2, Nanos::ZERO).unwrap();
        assert!(t_slow > t_healthy, "slow disk {t_slow} must beat healthy {t_healthy}");
    }

    #[test]
    fn op_count_tracks_fuse_crossings() {
        let mut fs = mount(1);
        fs.mkdir_p("/d", Nanos::ZERO).unwrap();
        fs.write_file("/d/f", &[0u8; 10], Nanos::ZERO).unwrap();
        fs.read_timing("/d/f", Nanos::ZERO).unwrap();
        assert!(fs.op_count() >= 3);
    }
}
