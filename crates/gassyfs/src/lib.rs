//! # popper-gassyfs
//!
//! **GassyFS** — the in-memory distributed filesystem of the paper's
//! flagship use case (§Use case: *Evaluating the Scalability of an
//! In-memory File System*). GassyFS aggregates the memory of multiple
//! nodes over a GASNet-like remote-memory fabric into a single
//! POSIX-ish namespace mounted through a FUSE-like layer; data is
//! *ephemeral* — persistence is an explicit checkpoint to stable
//! storage.
//!
//! This reproduction implements the whole stack:
//!
//! * [`vfs`] — the metadata layer: inodes, directories, open files,
//!   page-granular extents, and the (in)famous pile of mount options.
//! * [`gasnet`] — the remote-memory page store: pages striped
//!   round-robin across the cluster's nodes, every access charged
//!   through the [`popper_sim`] fabric (local pages are free — the
//!   property the scalability experiment hinges on).
//! * [`fs`] — GassyFS proper: VFS + page store + virtual-time
//!   accounting + checkpoint/restore into a
//!   [`popper_store::ChunkStore`] ("file systems in GassyFS are
//!   explicitly saved/loaded to/from durable storage").
//! * [`workload`] — the paper's workload: a synthetic *compile git*
//!   build DAG (plus archive-extract and metadata-churn workloads),
//!   replayed by parallel "make jobs".
//! * [`experiment`] — Figure `gassyfs-git`: runtime vs cluster size,
//!   with the Listing-3 Aver assertion (`sublinear(nodes, time)`)
//!   checked over the result table.

pub mod chaos;
pub mod checkpointing;
pub mod experiment;
pub mod fs;
pub mod gasnet;
pub mod shardworld;
pub mod vfs;
pub mod workload;

pub use chaos::{run_fault_tolerance, ChaosConfig, ChaosReport};
pub use checkpointing::{run_checkpoint_study, CheckpointStudy};
pub use experiment::{run_scalability, ScalabilityConfig, ScalabilityPoint};
pub use fs::{GassyFs, MountOptions};
pub use gasnet::{GasnetStore, PAGE_SIZE};
pub use shardworld::{run_sharded, run_sharded_chaos, ShardedGassyChaosReport, ShardedGassyConfig, ShardedGassyReport};
pub use vfs::{FsError, Vfs};
