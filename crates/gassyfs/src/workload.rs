//! Workloads replayed against GassyFS.
//!
//! The paper's Figure `gassyfs-git` uses "a workload \[that\] compiles
//! Git": several hundred translation units reading shared headers and
//! writing object files, followed by a link step, driven by parallel
//! make jobs. [`CompileWorkload::git`] reproduces that shape
//! synthetically (≈450 TUs, ≈200 shared headers); [`run_compile`]
//! replays it with a greedy parallel-job scheduler over virtual time.
//!
//! Two secondary workloads exercise other I/O mixes: archive
//! extraction (streaming writes) and metadata churn (tiny namespace
//! operations).

use crate::fs::GassyFs;
use crate::vfs::FsError;
use popper_sim::{Demand, Nanos};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The compile-a-project workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileWorkload {
    /// Number of translation units (git ≈ 450).
    pub translation_units: usize,
    /// Number of shared headers (git ≈ 200).
    pub shared_headers: usize,
    /// Headers each TU includes (sampled with the seed).
    pub headers_per_tu: usize,
    /// Average source-file size, bytes.
    pub source_bytes: usize,
    /// Average header size, bytes.
    pub header_bytes: usize,
    /// Average object-file size, bytes.
    pub object_bytes: usize,
    /// Parallel make jobs.
    pub jobs: usize,
    /// CPU demand to compile one KiB of source.
    pub compile_demand_per_kib: Demand,
    /// Workload seed (header sampling, size jitter).
    pub seed: u64,
}

impl CompileWorkload {
    /// The git-compilation shape used by the paper's figure.
    pub fn git() -> Self {
        CompileWorkload {
            translation_units: 450,
            shared_headers: 200,
            headers_per_tu: 15,
            source_bytes: 12 * 1024,
            header_bytes: 6 * 1024,
            object_bytes: 30 * 1024,
            jobs: 8,
            compile_demand_per_kib: Demand {
                int_ops: 2.5e5,
                branch_misses: 5.0e3,
                mem_stream_bytes: 8.0e3,
                mem_random_accesses: 2.5e2,
                ..Default::default()
            },
            seed: 42,
        }
    }

    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        CompileWorkload { translation_units: 40, shared_headers: 30, headers_per_tu: 6, jobs: 4, ..Self::git() }
    }
}

/// What a workload run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Wall-clock (virtual) time of the measured phase.
    pub elapsed: Nanos,
    /// FUSE operations during the whole run.
    pub ops: u64,
    /// Fraction of page accesses that crossed the fabric.
    pub remote_fraction: f64,
    /// Bytes written by the measured phase.
    pub bytes_written: u64,
}

fn jitter(rng: &mut StdRng, base: usize) -> usize {
    // ±25% size jitter, never zero.
    let lo = (base as f64 * 0.75) as usize;
    let hi = (base as f64 * 1.25) as usize;
    rng.gen_range(lo.max(1)..=hi.max(2))
}

/// Replay the compile workload. Populates the tree (untimed), then
/// measures compile + link under `jobs` parallel make jobs.
pub fn run_compile(fs: &mut GassyFs, w: &CompileWorkload) -> Result<WorkloadResult, FsError> {
    assert!(w.jobs >= 1 && w.translation_units >= 1 && w.shared_headers >= 1);
    let mut rng = StdRng::seed_from_u64(w.seed);

    // --- populate (untimed: `git clone` happened before the benchmark) ---
    fs.mkdir_p("/git/src", Nanos::ZERO)?;
    fs.mkdir_p("/git/include", Nanos::ZERO)?;
    fs.mkdir_p("/git/obj", Nanos::ZERO)?;
    let mut header_sizes = Vec::with_capacity(w.shared_headers);
    for h in 0..w.shared_headers {
        let size = jitter(&mut rng, w.header_bytes);
        header_sizes.push(size);
        fs.write_file(&format!("/git/include/h{h}.h"), &vec![b'h'; size], Nanos::ZERO)?;
    }
    let mut tu_plans = Vec::with_capacity(w.translation_units);
    for tu in 0..w.translation_units {
        let size = jitter(&mut rng, w.source_bytes);
        fs.write_file(&format!("/git/src/tu{tu}.c"), &vec![b'c'; size], Nanos::ZERO)?;
        let headers: Vec<usize> = (0..w.headers_per_tu).map(|_| rng.gen_range(0..w.shared_headers)).collect();
        let obj_size = jitter(&mut rng, w.object_bytes);
        tu_plans.push((size, headers, obj_size));
    }

    // --- measured phase: parallel make ---
    let ops_before = fs.op_count();
    let stats_before = fs.access_stats();
    let mut bytes_written = 0u64;
    // Greedy list scheduling: each job owns a time cursor; the
    // least-loaded job takes the next TU. Deterministic (ties by index).
    let mut job_time = vec![Nanos::ZERO; w.jobs];
    for (tu, (src_size, headers, obj_size)) in tu_plans.iter().enumerate() {
        let (j, _) = job_time
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("jobs >= 1");
        let mut t = job_time[j];
        // Read headers then the source.
        for h in headers {
            t = fs.read_timing(&format!("/git/include/h{h}.h"), t)?;
        }
        t = fs.read_timing(&format!("/git/src/tu{tu}.c"), t)?;
        // Compile on one client core.
        let kib = (*src_size as f64 + headers.iter().map(|h| header_sizes[*h] as f64).sum::<f64>()) / 1024.0;
        let demand = w.compile_demand_per_kib.scaled(kib);
        t += fs.cluster.compute_duration(0, &demand);
        // Write the object file.
        t = fs.write_file(&format!("/git/obj/tu{tu}.o"), &vec![b'o'; *obj_size], t)?;
        bytes_written += *obj_size as u64;
        job_time[j] = t;
    }
    let compile_done = job_time.iter().copied().max().unwrap_or(Nanos::ZERO);

    // Link: read every object, write the binary.
    let mut t = compile_done;
    let mut binary_size = 0usize;
    for (tu, (_, _, obj_size)) in tu_plans.iter().enumerate() {
        t = fs.read_timing(&format!("/git/obj/tu{tu}.o"), t)?;
        binary_size += obj_size / 3;
    }
    let link_demand = w.compile_demand_per_kib.scaled(binary_size as f64 / 1024.0);
    t += fs.cluster.compute_duration(0, &link_demand);
    t = fs.write_file("/git/git-binary", &vec![b'b'; binary_size.max(1)], t)?;
    bytes_written += binary_size as u64;

    let stats_after = fs.access_stats();
    let delta_local = stats_after.local - stats_before.local;
    let delta_remote = stats_after.remote - stats_before.remote;
    let remote_fraction = if delta_local + delta_remote == 0 {
        0.0
    } else {
        delta_remote as f64 / (delta_local + delta_remote) as f64
    };
    Ok(WorkloadResult {
        elapsed: t,
        ops: fs.op_count() - ops_before,
        remote_fraction,
        bytes_written,
    })
}

/// Archive extraction: stream `files` files of `bytes` each into the
/// mount (sequential, single job) — a pure write-bandwidth workload.
pub fn run_extract(fs: &mut GassyFs, files: usize, bytes: usize) -> Result<WorkloadResult, FsError> {
    fs.mkdir_p("/extract", Nanos::ZERO)?;
    let ops_before = fs.op_count();
    let stats_before = fs.access_stats();
    let data = vec![b'x'; bytes];
    let mut t = Nanos::ZERO;
    for i in 0..files {
        t = fs.write_file(&format!("/extract/f{i}"), &data, t)?;
    }
    let s = fs.access_stats();
    let denom = (s.local + s.remote) - (stats_before.local + stats_before.remote);
    Ok(WorkloadResult {
        elapsed: t,
        ops: fs.op_count() - ops_before,
        remote_fraction: if denom == 0 {
            0.0
        } else {
            (s.remote - stats_before.remote) as f64 / denom as f64
        },
        bytes_written: (files * bytes) as u64,
    })
}

/// Metadata churn: create, stat, rename and unlink `files` tiny files —
/// a namespace/latency workload where the FUSE crossing dominates.
pub fn run_churn(fs: &mut GassyFs, files: usize) -> Result<WorkloadResult, FsError> {
    fs.mkdir_p("/churn", Nanos::ZERO)?;
    let ops_before = fs.op_count();
    let mut t = Nanos::ZERO;
    for i in 0..files {
        let path = format!("/churn/f{i}");
        t = fs.write_file(&path, b"x", t)?;
        fs.stat(&path)?;
        let renamed = format!("/churn/g{i}");
        t = fs.rename(&path, &renamed, t)?;
        t = fs.unlink(&renamed, t)?;
    }
    Ok(WorkloadResult {
        elapsed: t,
        ops: fs.op_count() - ops_before,
        remote_fraction: 0.0,
        bytes_written: files as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MountOptions;
    use popper_sim::{platforms, Cluster};

    fn mount(nodes: usize) -> GassyFs {
        GassyFs::mount(Cluster::new(platforms::gassyfs_node(), nodes), MountOptions::default())
    }

    #[test]
    fn compile_runs_and_produces_objects() {
        let mut fs = mount(2);
        let w = CompileWorkload::small();
        let r = run_compile(&mut fs, &w).unwrap();
        assert!(r.elapsed > Nanos::ZERO);
        assert!(r.ops > w.translation_units as u64 * 2);
        assert!(r.bytes_written > 0);
        // All objects plus the binary exist.
        assert_eq!(fs.readdir("/git/obj").unwrap().len(), w.translation_units);
        assert!(fs.stat("/git/git-binary").unwrap().size > 0);
    }

    #[test]
    fn compile_is_deterministic() {
        let run = || {
            let mut fs = mount(4);
            run_compile(&mut fs, &CompileWorkload::small()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_node_is_fastest_and_fully_local() {
        let w = CompileWorkload::small();
        let mut one = mount(1);
        let r1 = run_compile(&mut one, &w).unwrap();
        assert_eq!(r1.remote_fraction, 0.0);
        let mut eight = mount(8);
        let r8 = run_compile(&mut eight, &w).unwrap();
        assert!(r8.remote_fraction > 0.5);
        assert!(r8.elapsed > r1.elapsed, "remote traffic must cost time: {} vs {}", r8.elapsed, r1.elapsed);
    }

    #[test]
    fn more_jobs_help_when_local() {
        let mut w = CompileWorkload::small();
        w.jobs = 1;
        let mut fs1 = mount(1);
        let serial = run_compile(&mut fs1, &w).unwrap();
        w.jobs = 8;
        let mut fs8 = mount(1);
        let parallel = run_compile(&mut fs8, &w).unwrap();
        assert!(
            parallel.elapsed < serial.elapsed,
            "8 jobs {} must beat 1 job {}",
            parallel.elapsed,
            serial.elapsed
        );
    }

    #[test]
    fn extract_scales_with_bytes() {
        let mut fs = mount(4);
        let small = run_extract(&mut fs, 10, 4096).unwrap();
        let mut fs2 = mount(4);
        let big = run_extract(&mut fs2, 10, 64 * 4096).unwrap();
        assert!(big.elapsed > small.elapsed);
        assert_eq!(big.bytes_written, 10 * 64 * 4096);
    }

    #[test]
    fn churn_is_metadata_bound() {
        let mut fs = mount(4);
        let r = run_churn(&mut fs, 50).unwrap();
        assert!(r.ops >= 150, "3 timed namespace ops per file (stat is free)");
        // Nothing left behind.
        assert!(fs.readdir("/churn").unwrap().is_empty());
    }
}
