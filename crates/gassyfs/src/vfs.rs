//! The VFS metadata layer: inodes, directories, extents.
//!
//! File *contents* live in the page store ([`crate::gasnet`]); the VFS
//! tracks which pages belong to which inode. Operations mirror the
//! POSIX subset GassyFS exposes through FUSE: create, open-for-append,
//! read, truncate, unlink, mkdir, readdir, rename, stat.

use std::collections::BTreeMap;
use std::fmt;

/// Inode number.
pub type Ino = u64;

/// Page identifier within the page store.
pub type PageId = u64;

/// Errors from VFS operations (the errno analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component not found.
    NotFound(String),
    /// Path already exists.
    Exists(String),
    /// Operated on a directory where a file was expected (or vice versa).
    WrongType(String),
    /// Directory not empty on rmdir.
    NotEmpty(String),
    /// Invalid path syntax.
    BadPath(String),
    /// The page store refused an allocation (out of aggregate memory).
    NoSpace,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "ENOENT: {p}"),
            FsError::Exists(p) => write!(f, "EEXIST: {p}"),
            FsError::WrongType(p) => write!(f, "EISDIR/ENOTDIR: {p}"),
            FsError::NotEmpty(p) => write!(f, "ENOTEMPTY: {p}"),
            FsError::BadPath(p) => write!(f, "EINVAL: {p}"),
            FsError::NoSpace => write!(f, "ENOSPC"),
        }
    }
}

impl std::error::Error for FsError {}

/// What an inode is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A regular file: size in bytes plus its page extents in order.
    File {
        /// Logical size in bytes.
        size: u64,
        /// The file's pages, in offset order.
        pages: Vec<PageId>,
    },
    /// A directory: name → child inode.
    Dir {
        /// Directory entries.
        entries: BTreeMap<String, Ino>,
    },
}

/// File metadata returned by [`Vfs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Is this a directory?
    pub is_dir: bool,
    /// Number of pages backing the file.
    pub pages: usize,
}

/// The in-memory namespace.
#[derive(Debug, Clone)]
pub struct Vfs {
    nodes: BTreeMap<Ino, Node>,
    next_ino: Ino,
}

const ROOT: Ino = 1;

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// A namespace containing only `/`.
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(ROOT, Node::Dir { entries: BTreeMap::new() });
        Vfs { nodes, next_ino: 2 }
    }

    fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::BadPath(path.to_string()));
        }
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        if parts.iter().any(|p| *p == "." || *p == "..") {
            return Err(FsError::BadPath(path.to_string()));
        }
        Ok(parts)
    }

    fn lookup(&self, path: &str) -> Result<Ino, FsError> {
        let mut cur = ROOT;
        for part in Self::split_path(path)? {
            match self.nodes.get(&cur) {
                Some(Node::Dir { entries }) => {
                    cur = *entries.get(part).ok_or_else(|| FsError::NotFound(path.to_string()))?;
                }
                _ => return Err(FsError::WrongType(path.to_string())),
            }
        }
        Ok(cur)
    }

    fn parent_of<'a>(&self, path: &'a str) -> Result<(Ino, &'a str), FsError> {
        let parts = Self::split_path(path)?;
        let (name, dirs) = parts.split_last().ok_or_else(|| FsError::BadPath(path.to_string()))?;
        let mut cur = ROOT;
        for part in dirs {
            match self.nodes.get(&cur) {
                Some(Node::Dir { entries }) => {
                    cur = *entries.get(*part).ok_or_else(|| FsError::NotFound(path.to_string()))?;
                }
                _ => return Err(FsError::WrongType(path.to_string())),
            }
        }
        match self.nodes.get(&cur) {
            Some(Node::Dir { .. }) => Ok((cur, name)),
            _ => Err(FsError::WrongType(path.to_string())),
        }
    }

    /// Create a directory. Parents must exist.
    pub fn mkdir(&mut self, path: &str) -> Result<Ino, FsError> {
        let (parent, name) = self.parent_of(path)?;
        let ino = self.next_ino;
        match self.nodes.get_mut(&parent) {
            Some(Node::Dir { entries }) => {
                if entries.contains_key(name) {
                    return Err(FsError::Exists(path.to_string()));
                }
                entries.insert(name.to_string(), ino);
            }
            _ => unreachable!("parent_of returns dirs"),
        }
        self.nodes.insert(ino, Node::Dir { entries: BTreeMap::new() });
        self.next_ino += 1;
        Ok(ino)
    }

    /// Create all missing directories along `path`.
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), FsError> {
        let parts = Self::split_path(path)?;
        let mut so_far = String::new();
        for part in parts {
            so_far.push('/');
            so_far.push_str(part);
            match self.mkdir(&so_far) {
                Ok(_) | Err(FsError::Exists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Create an empty regular file.
    pub fn create(&mut self, path: &str) -> Result<Ino, FsError> {
        let (parent, name) = self.parent_of(path)?;
        let ino = self.next_ino;
        match self.nodes.get_mut(&parent) {
            Some(Node::Dir { entries }) => {
                if entries.contains_key(name) {
                    return Err(FsError::Exists(path.to_string()));
                }
                entries.insert(name.to_string(), ino);
            }
            _ => unreachable!(),
        }
        self.nodes.insert(ino, Node::File { size: 0, pages: Vec::new() });
        self.next_ino += 1;
        Ok(ino)
    }

    /// Stat a path.
    pub fn stat(&self, path: &str) -> Result<Stat, FsError> {
        let ino = self.lookup(path)?;
        Ok(match &self.nodes[&ino] {
            Node::File { size, pages } => Stat { ino, size: *size, is_dir: false, pages: pages.len() },
            Node::Dir { .. } => Stat { ino, size: 0, is_dir: true, pages: 0 },
        })
    }

    /// Resolve a file's inode (error for directories).
    pub fn file_ino(&self, path: &str) -> Result<Ino, FsError> {
        let ino = self.lookup(path)?;
        match &self.nodes[&ino] {
            Node::File { .. } => Ok(ino),
            Node::Dir { .. } => Err(FsError::WrongType(path.to_string())),
        }
    }

    /// The pages of a file, in order.
    pub fn pages(&self, ino: Ino) -> &[PageId] {
        match &self.nodes[&ino] {
            Node::File { pages, .. } => pages,
            Node::Dir { .. } => &[],
        }
    }

    /// Append pages to a file and grow its size.
    pub fn append_pages(&mut self, ino: Ino, new_pages: &[PageId], bytes: u64) {
        match self.nodes.get_mut(&ino) {
            Some(Node::File { size, pages }) => {
                pages.extend_from_slice(new_pages);
                *size += bytes;
            }
            _ => panic!("append_pages on non-file inode"),
        }
    }

    /// Truncate a file to zero, returning the pages to free.
    pub fn truncate(&mut self, ino: Ino) -> Vec<PageId> {
        match self.nodes.get_mut(&ino) {
            Some(Node::File { size, pages }) => {
                *size = 0;
                std::mem::take(pages)
            }
            _ => panic!("truncate on non-file inode"),
        }
    }

    /// Remove a file; returns its pages for freeing.
    pub fn unlink(&mut self, path: &str) -> Result<Vec<PageId>, FsError> {
        let (parent, name) = self.parent_of(path)?;
        let ino = match self.nodes.get(&parent) {
            Some(Node::Dir { entries }) => {
                *entries.get(name).ok_or_else(|| FsError::NotFound(path.to_string()))?
            }
            _ => unreachable!(),
        };
        match self.nodes.get(&ino) {
            Some(Node::File { .. }) => {}
            _ => return Err(FsError::WrongType(path.to_string())),
        }
        if let Some(Node::Dir { entries }) = self.nodes.get_mut(&parent) {
            entries.remove(name);
        }
        match self.nodes.remove(&ino) {
            Some(Node::File { pages, .. }) => Ok(pages),
            _ => unreachable!(),
        }
    }

    /// Remove an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.parent_of(path)?;
        let ino = match self.nodes.get(&parent) {
            Some(Node::Dir { entries }) => {
                *entries.get(name).ok_or_else(|| FsError::NotFound(path.to_string()))?
            }
            _ => unreachable!(),
        };
        match self.nodes.get(&ino) {
            Some(Node::Dir { entries }) if entries.is_empty() => {}
            Some(Node::Dir { .. }) => return Err(FsError::NotEmpty(path.to_string())),
            _ => return Err(FsError::WrongType(path.to_string())),
        }
        if let Some(Node::Dir { entries }) = self.nodes.get_mut(&parent) {
            entries.remove(name);
        }
        self.nodes.remove(&ino);
        Ok(())
    }

    /// Rename a file or directory (same-namespace move).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        let ino = self.lookup(from)?;
        let (to_parent, to_name) = self.parent_of(to)?;
        match self.nodes.get(&to_parent) {
            Some(Node::Dir { entries }) if entries.contains_key(to_name) => {
                return Err(FsError::Exists(to.to_string()))
            }
            _ => {}
        }
        let (from_parent, from_name) = self.parent_of(from)?;
        if let Some(Node::Dir { entries }) = self.nodes.get_mut(&from_parent) {
            entries.remove(from_name);
        }
        if let Some(Node::Dir { entries }) = self.nodes.get_mut(&to_parent) {
            entries.insert(to_name.to_string(), ino);
        }
        Ok(())
    }

    /// Directory listing (names only, sorted).
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        let ino = self.lookup(path)?;
        match &self.nodes[&ino] {
            Node::Dir { entries } => Ok(entries.keys().cloned().collect()),
            Node::File { .. } => Err(FsError::WrongType(path.to_string())),
        }
    }

    /// Every file path in the namespace, with inode (depth-first,
    /// sorted) — used by checkpointing.
    pub fn walk_files(&self) -> Vec<(String, Ino)> {
        let mut out = Vec::new();
        self.walk(ROOT, String::new(), &mut out);
        out
    }

    fn walk(&self, dir: Ino, prefix: String, out: &mut Vec<(String, Ino)>) {
        if let Node::Dir { entries } = &self.nodes[&dir] {
            for (name, ino) in entries {
                let path = format!("{prefix}/{name}");
                match &self.nodes[ino] {
                    Node::File { .. } => out.push((path, *ino)),
                    Node::Dir { .. } => self.walk(*ino, path, out),
                }
            }
        }
    }

    /// Number of inodes (including the root).
    pub fn inode_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkdir_create_stat() {
        let mut v = Vfs::new();
        v.mkdir("/src").unwrap();
        v.create("/src/main.c").unwrap();
        let st = v.stat("/src/main.c").unwrap();
        assert!(!st.is_dir);
        assert_eq!(st.size, 0);
        assert!(v.stat("/src").unwrap().is_dir);
        assert_eq!(v.inode_count(), 3);
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut v = Vfs::new();
        v.mkdir_p("/a/b/c").unwrap();
        v.mkdir_p("/a/b/c").unwrap();
        v.mkdir_p("/a/b/d").unwrap();
        assert_eq!(v.readdir("/a/b").unwrap(), vec!["c", "d"]);
    }

    #[test]
    fn lookup_errors() {
        let mut v = Vfs::new();
        v.create("/f").unwrap();
        assert!(matches!(v.stat("/missing"), Err(FsError::NotFound(_))));
        assert!(matches!(v.stat("relative"), Err(FsError::BadPath(_))));
        assert!(matches!(v.stat("/a/../b"), Err(FsError::BadPath(_))));
        assert!(matches!(v.mkdir("/f/sub"), Err(FsError::WrongType(_))));
        assert!(matches!(v.create("/f"), Err(FsError::Exists(_))));
        assert!(matches!(v.file_ino("/"), Err(FsError::WrongType(_))));
    }

    #[test]
    fn pages_and_truncate() {
        let mut v = Vfs::new();
        let ino = v.create("/data").unwrap();
        v.append_pages(ino, &[10, 11, 12], 3 * 4096);
        assert_eq!(v.pages(ino), &[10, 11, 12]);
        assert_eq!(v.stat("/data").unwrap().size, 3 * 4096);
        let freed = v.truncate(ino);
        assert_eq!(freed, vec![10, 11, 12]);
        assert_eq!(v.stat("/data").unwrap().size, 0);
    }

    #[test]
    fn unlink_returns_pages() {
        let mut v = Vfs::new();
        let ino = v.create("/obj.o").unwrap();
        v.append_pages(ino, &[7], 100);
        let freed = v.unlink("/obj.o").unwrap();
        assert_eq!(freed, vec![7]);
        assert!(matches!(v.stat("/obj.o"), Err(FsError::NotFound(_))));
        // Unlinking a dir is a type error.
        v.mkdir("/d").unwrap();
        assert!(matches!(v.unlink("/d"), Err(FsError::WrongType(_))));
    }

    #[test]
    fn rmdir_semantics() {
        let mut v = Vfs::new();
        v.mkdir_p("/a/b").unwrap();
        assert!(matches!(v.rmdir("/a"), Err(FsError::NotEmpty(_))));
        v.rmdir("/a/b").unwrap();
        v.rmdir("/a").unwrap();
        assert!(v.readdir("/").unwrap().is_empty());
    }

    #[test]
    fn rename_moves_entries() {
        let mut v = Vfs::new();
        v.mkdir_p("/build").unwrap();
        let ino = v.create("/tmp_out").unwrap();
        v.append_pages(ino, &[1], 10);
        v.rename("/tmp_out", "/build/out").unwrap();
        assert!(matches!(v.stat("/tmp_out"), Err(FsError::NotFound(_))));
        assert_eq!(v.stat("/build/out").unwrap().size, 10);
        // Destination collision.
        v.create("/tmp2").unwrap();
        assert!(matches!(v.rename("/tmp2", "/build/out"), Err(FsError::Exists(_))));
    }

    #[test]
    fn walk_files_lists_all() {
        let mut v = Vfs::new();
        v.mkdir_p("/src/lib").unwrap();
        v.create("/src/main.c").unwrap();
        v.create("/src/lib/util.c").unwrap();
        v.create("/README").unwrap();
        let files: Vec<String> = v.walk_files().into_iter().map(|(p, _)| p).collect();
        assert_eq!(files, vec!["/README", "/src/lib/util.c", "/src/main.c"]);
    }
}
