//! The scalability experiment (Figure `gassyfs-git`).
//!
//! "We evaluate the scalability of GassyFS … as the number of nodes in
//! the GASNet cluster increases. The workload in question compiles
//! Git. … as we increase the number of nodes, performance degrades
//! sublinearly, which is expected for workloads such as the one in
//! question." The Listing-3 Aver assertion
//! (`when workload=* and machine=* expect sublinear(nodes, time)`)
//! guards exactly this table.

use crate::fs::{GassyFs, MountOptions};
use crate::workload::{run_compile, CompileWorkload};
use crate::vfs::FsError;
use popper_format::{Table, Value};
use popper_sim::{Cluster, PlatformSpec};

/// Configuration of the scalability sweep.
#[derive(Debug, Clone)]
pub struct ScalabilityConfig {
    /// Cluster sizes to sweep (the paper's x axis).
    pub node_counts: Vec<usize>,
    /// The node platform.
    pub platform: PlatformSpec,
    /// Mount options.
    pub mount: MountOptions,
    /// The workload.
    pub workload: CompileWorkload,
    /// Label recorded in the `machine` column.
    pub machine_label: String,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            node_counts: vec![1, 2, 4, 8, 16],
            platform: popper_sim::platforms::gassyfs_node(),
            mount: MountOptions::default(),
            workload: CompileWorkload::git(),
            machine_label: "cloudlab".into(),
        }
    }
}

/// One point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Compile time in seconds (virtual).
    pub time_secs: f64,
    /// Remote page-access fraction during the measured phase.
    pub remote_fraction: f64,
    /// FUSE operations during the measured phase.
    pub ops: u64,
}

/// Run the sweep.
pub fn run_scalability(config: &ScalabilityConfig) -> Result<Vec<ScalabilityPoint>, FsError> {
    let mut out = Vec::with_capacity(config.node_counts.len());
    for &nodes in &config.node_counts {
        let cluster = Cluster::new(config.platform.clone(), nodes);
        let mut fs = GassyFs::mount(cluster, config.mount.clone());
        let result = run_compile(&mut fs, &config.workload)?;
        out.push(ScalabilityPoint {
            nodes,
            time_secs: result.elapsed.as_secs_f64(),
            remote_fraction: result.remote_fraction,
            ops: result.ops,
        });
    }
    Ok(out)
}

/// Render sweep results as the experiment's `results.csv` table with
/// the columns the paper's Aver assertion names.
pub fn to_table(points: &[ScalabilityPoint], workload: &str, machine: &str) -> Table {
    let mut t = Table::new(["workload", "machine", "nodes", "time", "remote_fraction", "ops"]);
    for p in points {
        t.push_row(vec![
            Value::from(workload),
            Value::from(machine),
            Value::from(p.nodes),
            Value::Num(p.time_secs),
            Value::Num(p.remote_fraction),
            Value::from(p.ops as i64),
        ])
        .expect("fixed schema");
    }
    t
}

/// The Listing-3 assertion, verbatim.
pub const LISTING3_ASSERTION: &str =
    "when workload=* and machine=* expect sublinear(nodes, time)";

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScalabilityConfig {
        ScalabilityConfig {
            node_counts: vec![1, 2, 4, 8],
            workload: CompileWorkload::small(),
            ..Default::default()
        }
    }

    #[test]
    fn sweep_produces_monotone_sublinear_degradation() {
        let points = run_scalability(&small_config()).unwrap();
        assert_eq!(points.len(), 4);
        // Time grows with nodes…
        for w in points.windows(2) {
            assert!(
                w[1].time_secs >= w[0].time_secs,
                "time must not drop when adding nodes: {w:?}"
            );
        }
        // …and the increments shrink (remote fraction saturates at 1-1/N).
        let d1 = points[1].time_secs - points[0].time_secs; // 1 -> 2
        let d2 = points[3].time_secs - points[2].time_secs; // 4 -> 8
        assert!(d2 < d1, "degradation must flatten: +{d1:.4}s then +{d2:.4}s");
    }

    #[test]
    fn listing3_assertion_passes_on_results() {
        let points = run_scalability(&small_config()).unwrap();
        let table = to_table(&points, "git", "cloudlab");
        let verdict = popper_aver::check(LISTING3_ASSERTION, &table).unwrap();
        assert!(verdict.passed, "{:?}", verdict.failures);
        assert_eq!(verdict.groups, 1);
    }

    #[test]
    fn listing3_assertion_rejects_tampered_results() {
        let points = run_scalability(&small_config()).unwrap();
        let mut table = to_table(&points, "git", "cloudlab");
        // Tamper: make the largest cluster catastrophically slow
        // (superlinear blow-up), as a broken re-execution would.
        let csv = table.to_csv();
        let last_time = points.last().unwrap().time_secs;
        let tampered = csv.replace(&format!("{last_time}"), &format!("{}", last_time * 400.0));
        table = Table::from_csv(&tampered).unwrap();
        let verdict = popper_aver::check(LISTING3_ASSERTION, &table).unwrap();
        assert!(!verdict.passed);
    }

    #[test]
    fn remote_fraction_tracks_one_minus_one_over_n() {
        let points = run_scalability(&small_config()).unwrap();
        for p in &points {
            let expected = 1.0 - 1.0 / p.nodes as f64;
            assert!(
                (p.remote_fraction - expected).abs() < 0.15,
                "nodes={} remote={} expected≈{expected}",
                p.nodes,
                p.remote_fraction
            );
        }
    }

    #[test]
    fn table_shape_matches_paper_columns() {
        let points = run_scalability(&ScalabilityConfig {
            node_counts: vec![1, 2],
            workload: CompileWorkload::small(),
            ..Default::default()
        })
        .unwrap();
        let t = to_table(&points, "git", "cloudlab");
        assert_eq!(t.len(), 2);
        let names = t.column_names();
        assert!(names.contains(&"workload") && names.contains(&"nodes") && names.contains(&"time"));
        // Round-trips through results.csv.
        let t2 = Table::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t, t2);
    }
}

/// The memory-aggregation experiment: GassyFS's raison d'être.
///
/// The paper: GassyFS "aggregates the memory of multiple nodes" — a
/// dataset that cannot fit in one node's RAM fits once enough nodes
/// join the GASNet cluster. Returns, for each cluster size, whether a
/// dataset of `dataset_bytes` could be fully written.
pub fn run_capacity_experiment(
    platform: &PlatformSpec,
    node_counts: &[usize],
    dataset_bytes: u64,
) -> Vec<(usize, bool)> {
    use popper_sim::Nanos;
    node_counts
        .iter()
        .map(|&nodes| {
            let cluster = Cluster::new(platform.clone(), nodes);
            let mut fs = GassyFs::mount(cluster, MountOptions::default());
            // Write in 64 MiB files until the dataset is stored or the
            // cluster runs out of aggregate memory.
            let file_bytes: u64 = 16 * 1024 * 1024;
            let chunk = vec![0u8; file_bytes as usize];
            let mut written = 0u64;
            let mut t = fs.mkdir_p("/data", Nanos::ZERO).expect("fresh mount");
            let mut fits = true;
            let mut i = 0;
            while written < dataset_bytes {
                let remaining = dataset_bytes - written;
                let this = remaining.min(file_bytes) as usize;
                match fs.write_file(&format!("/data/part{i}"), &chunk[..this], t) {
                    Ok(done) => {
                        t = done;
                        written += this as u64;
                        i += 1;
                    }
                    Err(FsError::NoSpace) => {
                        fits = false;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            (nodes, fits)
        })
        .collect()
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn aggregation_fits_datasets_one_node_cannot() {
        // A platform with 64 MiB of RAM per node; a 224 MiB dataset.
        let mut platform = popper_sim::platforms::gassyfs_node();
        platform.mem_gib = 1.0 / 16.0;
        let dataset = 224 * 1024 * 1024;
        let results = run_capacity_experiment(&platform, &[1, 2, 4, 8], dataset);
        assert_eq!(results, vec![(1, false), (2, false), (4, true), (8, true)]);
    }

    #[test]
    fn mkdir_failure_never_panics() {
        // Root /data directory creation happens implicitly via
        // write_file? No: write_file requires the parent to exist. The
        // experiment must create it first — validate the helper handles
        // a fresh mount (regression guard for the panic path).
        let mut platform = popper_sim::platforms::gassyfs_node();
        platform.mem_gib = 0.001;
        let results = run_capacity_experiment(&platform, &[1], 1 << 30);
        assert_eq!(results, vec![(1, false)]);
    }
}
