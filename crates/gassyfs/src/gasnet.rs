//! The GASNet-like remote-memory page store.
//!
//! GassyFS "stripes file data across the aggregated memory of the
//! cluster". Pages are allocated round-robin over the nodes; an access
//! from the client node pays nothing for local pages and one fabric
//! transfer for remote pages. The store also keeps the *contents* of
//! pages (for checkpoint fidelity) and locality counters (for the
//! experiment's metrics).

use crate::vfs::PageId;
use popper_sim::{Cluster, Nanos};
use std::collections::BTreeMap;

/// Page size in bytes (FUSE default transfer granularity).
pub const PAGE_SIZE: u64 = 4096;

/// Locality counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Page accesses served from the client's own memory.
    pub local: u64,
    /// Page accesses that crossed the fabric.
    pub remote: u64,
    /// Degraded-mode accesses served by a page's replica because its
    /// primary node was crashed or partitioned away.
    pub failover: u64,
    /// Pages re-fetched from replicas while rebuilding restarted nodes.
    pub repaired: u64,
}

impl AccessStats {
    /// Fraction of accesses that were remote (0 when idle).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local + self.remote;
        if total == 0 {
            return 0.0;
        }
        self.remote as f64 / total as f64
    }

    /// Fraction of accesses served in degraded mode (0 when idle).
    pub fn degraded_fraction(&self) -> f64 {
        let total = self.local + self.remote;
        if total == 0 {
            return 0.0;
        }
        self.failover as f64 / total as f64
    }
}

/// The striped page store.
#[derive(Debug, Clone)]
pub struct GasnetStore {
    /// Which node each live page resides on.
    placement: BTreeMap<PageId, usize>,
    /// Page contents (zero-filled pages are stored as `None` to keep
    /// memory bounded in big simulations).
    contents: BTreeMap<PageId, Option<Vec<u8>>>,
    next_page: PageId,
    next_node: usize,
    /// The node issuing I/O (where FUSE is mounted).
    pub client: usize,
    stats: AccessStats,
}

impl GasnetStore {
    /// A store for a cluster whose client (FUSE mount) is `client`.
    pub fn new(client: usize) -> Self {
        GasnetStore {
            placement: BTreeMap::new(),
            contents: BTreeMap::new(),
            next_page: 1,
            next_node: 0,
            client,
            stats: AccessStats::default(),
        }
    }

    /// Allocate `n` pages striped over the cluster, charging the
    /// cluster's memory accounting. Returns the new page ids. Crashed
    /// nodes are skipped, so allocation survives a partial outage.
    pub fn alloc(&mut self, cluster: &mut Cluster, n: usize) -> Result<Vec<PageId>, String> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut node = self.next_node % cluster.len();
            if cluster.faults().is_active() {
                let mut hops = 0;
                while cluster.faults().is_crashed(node) && hops < cluster.len() {
                    self.next_node += 1;
                    node = self.next_node % cluster.len();
                    hops += 1;
                }
                if cluster.faults().is_crashed(node) {
                    return Err("every node is crashed; cannot allocate".into());
                }
            }
            cluster.alloc_mem(node, PAGE_SIZE)?;
            let id = self.next_page;
            self.next_page += 1;
            self.next_node += 1;
            self.placement.insert(id, node);
            self.contents.insert(id, None);
            out.push(id);
        }
        Ok(out)
    }

    /// Free pages.
    pub fn free(&mut self, cluster: &mut Cluster, pages: &[PageId]) {
        for p in pages {
            if let Some(node) = self.placement.remove(p) {
                cluster.free_mem(node, PAGE_SIZE);
            }
            self.contents.remove(p);
        }
    }

    /// The node a page lives on.
    pub fn node_of(&self, page: PageId) -> Option<usize> {
        self.placement.get(&page).copied()
    }

    /// Size of a GASNet control message (read request / write ack).
    const CTRL_BYTES: u64 = 64;

    /// The node holding a page's replica stripe: the primary's
    /// round-robin successor. On a single-node cluster the replica
    /// degenerates to the primary (no redundancy to fall back on).
    pub fn replica_of(&self, page: PageId, cluster: &Cluster) -> Option<usize> {
        self.placement.get(&page).map(|p| (p + 1) % cluster.len())
    }

    /// Pick the node to serve a page: the primary, or — in degraded
    /// mode — its replica when the primary is crashed or unreachable
    /// from the client. Counts a failover when the replica is used.
    fn serving_node(&mut self, cluster: &Cluster, page: PageId) -> usize {
        let primary = self.placement[&page];
        if cluster.faults().is_active()
            && cluster.len() > 1
            && (cluster.faults().is_crashed(primary)
                || !cluster.faults().reachable(self.client, primary))
        {
            self.stats.failover += 1;
            (primary + 1) % cluster.len()
        } else {
            primary
        }
    }

    /// Charge one page *read* from the client at `now`; returns the
    /// completion time. A remote read is an RPC: request out, page back.
    /// When the page's primary node is down the read fails over to the
    /// replica stripe (degraded mode): same bytes, different node.
    pub fn read_page(&mut self, cluster: &mut Cluster, page: PageId, now: Nanos) -> Nanos {
        let node = self.serving_node(cluster, page);
        if node == self.client {
            self.stats.local += 1;
            now
        } else {
            self.stats.remote += 1;
            let arrived = cluster.transfer(self.client, node, Self::CTRL_BYTES, now);
            let done = cluster.transfer(node, self.client, PAGE_SIZE, arrived);
            Self::trace_rpc("read_page", node, now, done);
            done
        }
    }

    /// Re-fetch the pages whose primary is `node` from their replica
    /// stripes, restoring full redundancy after a restart. Returns the
    /// number of pages repaired and the completion time; emits one
    /// `rebuild` span on the node's track when tracing is live.
    pub fn rebuild_node(
        &mut self,
        cluster: &mut Cluster,
        node: usize,
        now: Nanos,
    ) -> (usize, Nanos) {
        if cluster.len() < 2 {
            return (0, now);
        }
        let replica = (node + 1) % cluster.len();
        let pages: Vec<PageId> = self
            .placement
            .iter()
            .filter(|(_, n)| **n == node)
            .map(|(p, _)| *p)
            .collect();
        let mut t = now;
        for _ in &pages {
            t = cluster.transfer(replica, node, PAGE_SIZE, t);
        }
        self.stats.repaired += pages.len() as u64;
        let tracer = popper_trace::current();
        if tracer.is_enabled() && !pages.is_empty() {
            tracer.span_at(
                "chaos",
                format!("gassyfs/node{node}"),
                format!("rebuild {} pages", pages.len()),
                now.0,
                t.0,
            );
        }
        (pages.len(), t)
    }

    /// Record one remote-page RPC on the serving node's track.
    fn trace_rpc(name: &'static str, node: usize, start: Nanos, end: Nanos) {
        let tracer = popper_trace::current();
        if tracer.is_enabled() {
            tracer.span_at("rpc", format!("gassyfs/node{node}"), name, start.0, end.0);
        }
    }

    /// Charge one page *write* from the client at `now`; returns the
    /// completion time. A remote write is an RPC: page out, ack back.
    pub fn write_page(&mut self, cluster: &mut Cluster, page: PageId, now: Nanos) -> Nanos {
        let node = self.serving_node(cluster, page);
        if node == self.client {
            self.stats.local += 1;
            now
        } else {
            self.stats.remote += 1;
            let arrived = cluster.transfer(self.client, node, PAGE_SIZE, now);
            let done = cluster.transfer(node, self.client, Self::CTRL_BYTES, arrived);
            Self::trace_rpc("write_page", node, now, done);
            done
        }
    }

    /// Store page contents (checkpoint fidelity; timing is charged
    /// separately by the caller via write_page).
    pub fn set_contents(&mut self, page: PageId, data: Vec<u8>) {
        debug_assert!(data.len() as u64 <= PAGE_SIZE);
        self.contents.insert(page, Some(data));
    }

    /// Fetch page contents (zero page if never written).
    pub fn get_contents(&self, page: PageId) -> Vec<u8> {
        match self.contents.get(&page) {
            Some(Some(d)) => d.clone(),
            _ => vec![0; PAGE_SIZE as usize],
        }
    }

    /// Locality counters so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Number of live pages.
    pub fn live_pages(&self) -> usize {
        self.placement.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_sim::platforms;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(platforms::gassyfs_node(), n)
    }

    #[test]
    fn round_robin_striping() {
        let mut c = cluster(4);
        let mut s = GasnetStore::new(0);
        let pages = s.alloc(&mut c, 8).unwrap();
        let nodes: Vec<usize> = pages.iter().map(|p| s.node_of(*p).unwrap()).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(c.total_mem_used(), 8 * PAGE_SIZE);
    }

    #[test]
    fn local_access_is_free_remote_pays_fabric() {
        let mut c = cluster(2);
        let mut s = GasnetStore::new(0);
        let pages = s.alloc(&mut c, 2).unwrap();
        let t_local = s.read_page(&mut c, pages[0], Nanos::ZERO); // node 0
        let t_remote = s.read_page(&mut c, pages[1], Nanos::ZERO); // node 1
        assert_eq!(t_local, Nanos::ZERO);
        assert!(t_remote > Nanos::ZERO);
        assert_eq!(s.stats(), AccessStats { local: 1, remote: 1, failover: 0, repaired: 0 });
        assert_eq!(s.stats().remote_fraction(), 0.5);
    }

    #[test]
    fn crashed_primary_fails_over_to_replica() {
        let mut c = cluster(4);
        let mut s = GasnetStore::new(0);
        let pages = s.alloc(&mut c, 4).unwrap();
        // Page on node 1; crash node 1 -> reads served by replica node 2.
        c.faults_mut().crash(1);
        let t = s.read_page(&mut c, pages[1], Nanos::ZERO);
        assert!(t > Nanos::ZERO, "degraded read still crosses the fabric");
        assert_eq!(s.stats().failover, 1);
        assert!(s.stats().degraded_fraction() > 0.0);
        // Healthy page unaffected.
        s.read_page(&mut c, pages[2], Nanos::ZERO);
        assert_eq!(s.stats().failover, 1);
    }

    #[test]
    fn replica_of_wraps_round_robin() {
        let mut c = cluster(3);
        let mut s = GasnetStore::new(0);
        let pages = s.alloc(&mut c, 3).unwrap();
        assert_eq!(s.replica_of(pages[0], &c), Some(1));
        assert_eq!(s.replica_of(pages[2], &c), Some(0));
    }

    #[test]
    fn alloc_skips_crashed_nodes() {
        let mut c = cluster(4);
        let mut s = GasnetStore::new(0);
        c.faults_mut().crash(1);
        let pages = s.alloc(&mut c, 4).unwrap();
        let nodes: Vec<usize> = pages.iter().map(|p| s.node_of(*p).unwrap()).collect();
        assert!(!nodes.contains(&1), "crashed node must not receive pages: {nodes:?}");
    }

    #[test]
    fn rebuild_refetches_pages_from_replica() {
        let mut c = cluster(4);
        let mut s = GasnetStore::new(0);
        s.alloc(&mut c, 8).unwrap(); // 2 pages per node
        c.faults_mut().crash(2);
        c.faults_mut().restart(2);
        let (pages, t) = s.rebuild_node(&mut c, 2, Nanos::ZERO);
        assert_eq!(pages, 2);
        assert!(t > Nanos::ZERO);
        assert_eq!(s.stats().repaired, 2);
    }

    #[test]
    fn single_node_cluster_is_all_local() {
        let mut c = cluster(1);
        let mut s = GasnetStore::new(0);
        let pages = s.alloc(&mut c, 16).unwrap();
        let mut t = Nanos::ZERO;
        for p in &pages {
            t = s.read_page(&mut c, *p, t);
        }
        assert_eq!(t, Nanos::ZERO);
        assert_eq!(s.stats().remote_fraction(), 0.0);
    }

    #[test]
    fn free_releases_memory() {
        let mut c = cluster(2);
        let mut s = GasnetStore::new(0);
        let pages = s.alloc(&mut c, 4).unwrap();
        assert_eq!(s.live_pages(), 4);
        s.free(&mut c, &pages);
        assert_eq!(s.live_pages(), 0);
        assert_eq!(c.total_mem_used(), 0);
    }

    #[test]
    fn contents_round_trip() {
        let mut c = cluster(2);
        let mut s = GasnetStore::new(0);
        let pages = s.alloc(&mut c, 2).unwrap();
        assert_eq!(s.get_contents(pages[0]), vec![0; PAGE_SIZE as usize]);
        s.set_contents(pages[0], b"checkpoint me".to_vec());
        assert_eq!(s.get_contents(pages[0]), b"checkpoint me");
    }

    #[test]
    fn alloc_fails_when_cluster_memory_exhausted() {
        // Tiny-memory platform to hit the wall fast.
        let mut platform = platforms::gassyfs_node();
        platform.mem_gib = PAGE_SIZE as f64 * 3.0 / (1024.0 * 1024.0 * 1024.0);
        let mut c = Cluster::new(platform, 1);
        let mut s = GasnetStore::new(0);
        assert!(s.alloc(&mut c, 3).is_ok());
        assert!(s.alloc(&mut c, 1).is_err());
    }
}
