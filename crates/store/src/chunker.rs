//! Content-defined chunking with a gear rolling hash.
//!
//! A fixed pseudo-random gear table drives the classic FastCDC-style
//! boundary test: the hash is `h = (h << 1) + GEAR[byte]`, and a chunk
//! ends when `h & MASK == 0` (once the minimum size is reached) or at the
//! maximum size. Because the hash depends only on a sliding window of
//! recent bytes, editing a dataset moves boundaries only near the edit —
//! the property that makes dataset revisions cheap to store.

/// Default minimum chunk size (bytes).
pub const MIN_CHUNK: usize = 2 * 1024;
/// Default target (average) chunk size; must be a power of two.
pub const AVG_CHUNK: usize = 8 * 1024;
/// Default maximum chunk size.
pub const MAX_CHUNK: usize = 64 * 1024;

/// Chunking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// No boundary before this many bytes.
    pub min: usize,
    /// Average chunk size; the boundary mask is `avg - 1`.
    pub avg: usize,
    /// Hard cut at this many bytes.
    pub max: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        ChunkerConfig { min: MIN_CHUNK, avg: AVG_CHUNK, max: MAX_CHUNK }
    }
}

impl ChunkerConfig {
    /// Validate invariants: `0 < min <= avg <= max`, `avg` a power of two.
    pub fn validated(self) -> Result<Self, String> {
        if self.min == 0 || self.min > self.avg || self.avg > self.max {
            return Err(format!("invalid chunker config {self:?}"));
        }
        if !self.avg.is_power_of_two() {
            return Err("avg chunk size must be a power of two".into());
        }
        Ok(self)
    }
}

/// The fixed gear table (deterministic: derived from SplitMix64 with a
/// pinned seed so chunk boundaries are stable across builds).
fn gear_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for slot in t.iter_mut() {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            *slot = z ^ (z >> 31);
        }
        t
    })
}

/// Split `data` into content-defined chunks. The concatenation of the
/// returned slices is exactly `data`; every chunk length is in
/// `[min, max]` except possibly the final chunk (which may be shorter
/// than `min`).
pub fn chunk<'a>(data: &'a [u8], cfg: &ChunkerConfig) -> Vec<&'a [u8]> {
    let cfg = cfg.validated().expect("valid chunker config");
    let gear = gear_table();
    let mask = (cfg.avg - 1) as u64;
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut h: u64 = 0;
    let mut i = 0usize;
    while i < data.len() {
        h = (h << 1).wrapping_add(gear[data[i] as usize]);
        let len = i - start + 1;
        let boundary = (len >= cfg.min && (h & mask) == 0) || len >= cfg.max;
        if boundary {
            chunks.push(&data[start..=i]);
            start = i + 1;
            h = 0;
        }
        i += 1;
    }
    if start < data.len() {
        chunks.push(&data[start..]);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn concatenation_is_identity() {
        let data = random_bytes(200_000, 1);
        let chunks = chunk(&data, &ChunkerConfig::default());
        let rebuilt: Vec<u8> = chunks.concat();
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let data = random_bytes(300_000, 2);
        let cfg = ChunkerConfig::default();
        let chunks = chunk(&data, &cfg);
        assert!(chunks.len() > 10);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= cfg.max, "chunk {i} too large");
            if i + 1 != chunks.len() {
                assert!(c.len() >= cfg.min, "chunk {i} too small: {}", c.len());
            }
        }
    }

    #[test]
    fn average_size_near_target() {
        let data = random_bytes(2_000_000, 3);
        let cfg = ChunkerConfig::default();
        let chunks = chunk(&data, &cfg);
        let avg = data.len() / chunks.len();
        // Expected mean is avg + min (geometric after the min); accept a
        // generous band.
        assert!(avg > cfg.avg / 2 && avg < cfg.avg * 3, "avg {avg}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cfg = ChunkerConfig::default();
        assert!(chunk(&[], &cfg).is_empty());
        let tiny = vec![7u8; 10];
        let chunks = chunk(&tiny, &cfg);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], &tiny[..]);
    }

    #[test]
    fn deterministic() {
        let data = random_bytes(100_000, 4);
        let a = chunk(&data, &ChunkerConfig::default());
        let b = chunk(&data, &ChunkerConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn local_edit_preserves_most_chunks() {
        // The content-defined property: changing one byte in the middle
        // changes only the chunks near the edit.
        let mut data = random_bytes(500_000, 5);
        let original: Vec<Vec<u8>> = chunk(&data, &ChunkerConfig::default()).iter().map(|c| c.to_vec()).collect();
        data[250_000] ^= 0xff;
        let edited: Vec<Vec<u8>> = chunk(&data, &ChunkerConfig::default()).iter().map(|c| c.to_vec()).collect();
        let orig_set: std::collections::HashSet<&[u8]> = original.iter().map(|c| c.as_slice()).collect();
        let shared = edited.iter().filter(|c| orig_set.contains(c.as_slice())).count();
        let ratio = shared as f64 / edited.len() as f64;
        assert!(ratio > 0.9, "only {ratio:.2} of chunks shared after one-byte edit");
    }

    #[test]
    fn prepend_shifts_only_leading_chunks() {
        // A fixed-size chunker would lose every boundary after a prepend;
        // CDC must keep most of them.
        let data = random_bytes(500_000, 6);
        let original: std::collections::HashSet<Vec<u8>> =
            chunk(&data, &ChunkerConfig::default()).iter().map(|c| c.to_vec()).collect();
        let mut shifted = vec![0xAAu8; 17];
        shifted.extend_from_slice(&data);
        let new_chunks = chunk(&shifted, &ChunkerConfig::default());
        let shared = new_chunks.iter().filter(|c| original.contains(**c)).count();
        let ratio = shared as f64 / new_chunks.len() as f64;
        assert!(ratio > 0.9, "only {ratio:.2} of chunks survived a prepend");
    }

    #[test]
    fn config_validation() {
        assert!(ChunkerConfig { min: 0, avg: 8, max: 16 }.validated().is_err());
        assert!(ChunkerConfig { min: 4, avg: 7, max: 16 }.validated().is_err()); // not pow2
        assert!(ChunkerConfig { min: 32, avg: 8, max: 16 }.validated().is_err());
        assert!(ChunkerConfig { min: 4, avg: 8, max: 4 }.validated().is_err());
        assert!(ChunkerConfig { min: 4, avg: 8, max: 16 }.validated().is_ok());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn identity_and_bounds(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
                let cfg = ChunkerConfig { min: 64, avg: 256, max: 1024 };
                let chunks = chunk(&data, &cfg);
                prop_assert_eq!(chunks.concat(), data.clone());
                for (i, c) in chunks.iter().enumerate() {
                    prop_assert!(c.len() <= cfg.max);
                    if i + 1 != chunks.len() {
                        prop_assert!(c.len() >= cfg.min);
                    }
                }
            }
        }
    }
}
