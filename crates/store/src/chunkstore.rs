//! A content-addressed, deduplicating chunk store.
//!
//! Blobs are split by the content-defined chunker and stored chunk by
//! chunk under their SHA-256. Putting a blob returns a [`Manifest`] — the
//! small "reference" artifact that lives inside the Popper repository
//! while the bytes stay in the store (or a remote it models).

use crate::chunker::{chunk, ChunkerConfig};
use bytes::Bytes;
use popper_vcs::sha256;
use std::collections::HashMap;
use std::fmt;

/// Content address of one chunk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub [u8; 32]);

impl ChunkId {
    /// Hash `data` into its chunk id.
    pub fn of(data: &[u8]) -> ChunkId {
        ChunkId(sha256::digest(data))
    }

    /// Full hex form.
    pub fn to_hex(self) -> String {
        sha256::to_hex(&self.0)
    }

    /// Parse a 64-char hex string.
    pub fn from_hex(s: &str) -> Option<ChunkId> {
        let v = sha256::from_hex(s)?;
        Some(ChunkId(v.try_into().ok()?))
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChunkId({})", &self.to_hex()[..10])
    }
}

/// The recipe for reassembling one blob from chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Chunk ids with their lengths, in order.
    pub chunks: Vec<(ChunkId, u32)>,
    /// Total blob length.
    pub total_len: u64,
    /// SHA-256 of the whole blob — the identifier a Popper repository
    /// references the dataset by.
    pub blob_hash: [u8; 32],
}

impl Manifest {
    /// Hex of the whole-blob hash.
    pub fn blob_hex(&self) -> String {
        sha256::to_hex(&self.blob_hash)
    }

    /// Serialize to a small text descriptor (one line per chunk).
    pub fn to_text(&self) -> String {
        let mut out = format!("manifest v1\nblob {} {}\n", self.blob_hex(), self.total_len);
        for (id, len) in &self.chunks {
            out.push_str(&format!("chunk {} {len}\n", id.to_hex()));
        }
        out
    }

    /// Parse the text descriptor.
    pub fn from_text(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        if lines.next() != Some("manifest v1") {
            return Err("bad manifest magic".into());
        }
        let blob_line = lines.next().ok_or("missing blob line")?;
        let mut parts = blob_line.split(' ');
        if parts.next() != Some("blob") {
            return Err("missing blob header".into());
        }
        let blob_hash: [u8; 32] = sha256::from_hex(parts.next().ok_or("missing blob hash")?)
            .ok_or("bad blob hash")?
            .try_into()
            .map_err(|_| "bad blob hash length")?;
        let total_len: u64 = parts.next().ok_or("missing length")?.parse().map_err(|_| "bad length")?;
        let mut chunks = Vec::new();
        for line in lines {
            let mut parts = line.split(' ');
            if parts.next() != Some("chunk") {
                return Err(format!("bad chunk line '{line}'"));
            }
            let id = ChunkId::from_hex(parts.next().ok_or("missing chunk id")?).ok_or("bad chunk id")?;
            let len: u32 = parts.next().ok_or("missing chunk len")?.parse().map_err(|_| "bad chunk len")?;
            chunks.push((id, len));
        }
        let sum: u64 = chunks.iter().map(|(_, l)| *l as u64).sum();
        if sum != total_len {
            return Err(format!("chunk lengths sum to {sum}, manifest says {total_len}"));
        }
        Ok(Manifest { chunks, total_len, blob_hash })
    }
}

/// Store statistics, for dedup reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Unique chunks held.
    pub unique_chunks: usize,
    /// Bytes held (after dedup).
    pub stored_bytes: u64,
    /// Bytes ingested (before dedup).
    pub ingested_bytes: u64,
}

impl StoreStats {
    /// `ingested / stored`; 1.0 means no dedup.
    pub fn dedup_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            return 1.0;
        }
        self.ingested_bytes as f64 / self.stored_bytes as f64
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chunk(s), {} B stored / {} B ingested (dedup {:.2}x)",
            self.unique_chunks,
            self.stored_bytes,
            self.ingested_bytes,
            self.dedup_ratio()
        )
    }
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A chunk named by a manifest is not present.
    MissingChunk(String),
    /// Reassembled bytes did not hash to the manifest's blob hash.
    IntegrityFailure { expected: String, actual: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::MissingChunk(id) => write!(f, "missing chunk {id}"),
            StoreError::IntegrityFailure { expected, actual } => {
                write!(f, "integrity failure: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// The deduplicating chunk store.
#[derive(Debug, Clone, Default)]
pub struct ChunkStore {
    chunks: HashMap<ChunkId, Bytes>,
    config: ChunkerConfig,
    ingested: u64,
}

impl ChunkStore {
    /// A store with default chunking parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store with custom chunking parameters.
    pub fn with_config(config: ChunkerConfig) -> Result<Self, String> {
        Ok(ChunkStore { chunks: HashMap::new(), config: config.validated()?, ingested: 0 })
    }

    /// Ingest a blob; returns its manifest. Chunks already present are
    /// not stored again.
    pub fn put(&mut self, data: &[u8]) -> Manifest {
        let tracer = popper_trace::current();
        let _span = tracer.span("store", "store/chunks", format!("put {}B", data.len()));
        self.ingested += data.len() as u64;
        // One pass over the pieces feeds both the per-chunk ids and the
        // whole-blob incremental hash — the blob is never re-walked.
        let mut blob_hasher = sha256::Sha256::new();
        let mut chunks = Vec::new();
        for piece in chunk(data, &self.config) {
            blob_hasher.update(piece);
            let id = ChunkId::of(piece);
            self.chunks.entry(id).or_insert_with(|| Bytes::copy_from_slice(piece));
            chunks.push((id, piece.len() as u32));
        }
        Manifest { chunks, total_len: data.len() as u64, blob_hash: blob_hasher.finalize() }
    }

    /// Ingest a batch of blobs in one call; returns their manifests in
    /// order. A caller multiplexing many producers over one shared
    /// store (the CI farm) amortizes its lock acquisition over the
    /// whole batch instead of serializing on the object layer blob by
    /// blob.
    pub fn put_batch<'a>(&mut self, blobs: impl IntoIterator<Item = &'a [u8]>) -> Vec<Manifest> {
        blobs.into_iter().map(|b| self.put(b)).collect()
    }

    /// Reassemble a blob from its manifest, verifying whole-blob
    /// integrity.
    pub fn get(&self, manifest: &Manifest) -> Result<Vec<u8>, StoreError> {
        let tracer = popper_trace::current();
        let _span = tracer.span(
            "store",
            "store/chunks",
            format!("get {} chunk(s), {}B", manifest.chunks.len(), manifest.total_len),
        );
        let mut out = Vec::with_capacity(manifest.total_len as usize);
        let mut blob_hasher = sha256::Sha256::new();
        for (id, _len) in &manifest.chunks {
            let piece = self
                .chunks
                .get(id)
                .ok_or_else(|| StoreError::MissingChunk(id.to_hex()))?;
            blob_hasher.update(piece);
            out.extend_from_slice(piece);
        }
        let actual = blob_hasher.finalize();
        if actual != manifest.blob_hash {
            return Err(StoreError::IntegrityFailure {
                expected: sha256::to_hex(&manifest.blob_hash),
                actual: sha256::to_hex(&actual),
            });
        }
        Ok(out)
    }

    /// Does the store hold every chunk of `manifest`?
    pub fn has_all(&self, manifest: &Manifest) -> bool {
        manifest.chunks.iter().all(|(id, _)| self.chunks.contains_key(id))
    }

    /// Copy the chunks of `manifest` into `other` (a push/fetch between a
    /// local store and a modeled remote). Returns the number of chunks
    /// actually transferred (missing on the receiver).
    pub fn sync_to(&self, manifest: &Manifest, other: &mut ChunkStore) -> Result<usize, StoreError> {
        let mut moved = 0;
        for (id, _) in &manifest.chunks {
            let piece = self
                .chunks
                .get(id)
                .ok_or_else(|| StoreError::MissingChunk(id.to_hex()))?;
            if !other.chunks.contains_key(id) {
                other.chunks.insert(*id, piece.clone());
                other.ingested += piece.len() as u64;
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Current statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            unique_chunks: self.chunks.len(),
            stored_bytes: self.chunks.values().map(|c| c.len() as u64).sum(),
            ingested_bytes: self.ingested,
        }
    }

    /// Drop a chunk (corruption injection for tests).
    pub fn corrupt_drop(&mut self, id: ChunkId) -> bool {
        self.chunks.remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = ChunkStore::new();
        let data = random_bytes(200_000, 1);
        let m = s.put(&data);
        assert_eq!(s.get(&m).unwrap(), data);
        assert_eq!(m.total_len, data.len() as u64);
    }

    #[test]
    fn single_pass_blob_hash_matches_oneshot() {
        let mut s = ChunkStore::new();
        let data = random_bytes(150_000, 11);
        let m = s.put(&data);
        assert_eq!(m.blob_hash, sha256::digest(&data));
    }

    #[test]
    fn empty_blob() {
        let mut s = ChunkStore::new();
        let m = s.put(&[]);
        assert_eq!(m.chunks.len(), 0);
        assert_eq!(s.get(&m).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn identical_blobs_fully_dedup() {
        let mut s = ChunkStore::new();
        let data = random_bytes(100_000, 2);
        let m1 = s.put(&data);
        let before = s.stats();
        let m2 = s.put(&data);
        let after = s.stats();
        assert_eq!(m1, m2);
        assert_eq!(before.unique_chunks, after.unique_chunks);
        assert_eq!(before.stored_bytes, after.stored_bytes);
        assert!(after.dedup_ratio() > 1.9);
    }

    #[test]
    fn similar_blobs_mostly_dedup() {
        let mut s = ChunkStore::new();
        let mut data = random_bytes(500_000, 3);
        s.put(&data);
        let stored_v1 = s.stats().stored_bytes;
        data[100] ^= 1; // one-byte revision
        s.put(&data);
        let growth = s.stats().stored_bytes - stored_v1;
        assert!(
            growth < 200_000,
            "one-byte edit should add few chunks, added {growth} bytes"
        );
    }

    #[test]
    fn put_batch_matches_sequential_puts_and_dedups() {
        let a = random_bytes(80_000, 21);
        let b = random_bytes(80_000, 22);
        let mut seq = ChunkStore::new();
        let expected = vec![seq.put(&a), seq.put(&b), seq.put(&a)];
        let mut batched = ChunkStore::new();
        let got = batched.put_batch([a.as_slice(), b.as_slice(), a.as_slice()]);
        assert_eq!(got, expected);
        assert_eq!(batched.stats(), seq.stats());
        assert!(batched.stats().dedup_ratio() > 1.4, "{}", batched.stats());
        // Display renders the dedup summary the CLI prints.
        let line = batched.stats().to_string();
        assert!(line.contains("dedup"), "{line}");
        assert!(line.contains("chunk(s)"), "{line}");
    }

    #[test]
    fn missing_chunk_detected() {
        let mut s = ChunkStore::new();
        let data = random_bytes(100_000, 4);
        let m = s.put(&data);
        assert!(s.has_all(&m));
        assert!(s.corrupt_drop(m.chunks[0].0));
        assert!(!s.has_all(&m));
        assert!(matches!(s.get(&m), Err(StoreError::MissingChunk(_))));
    }

    #[test]
    fn integrity_failure_detected() {
        let mut s = ChunkStore::new();
        let data = random_bytes(50_000, 5);
        let mut m = s.put(&data);
        // Tamper with the manifest's blob hash.
        m.blob_hash[0] ^= 0xff;
        assert!(matches!(s.get(&m), Err(StoreError::IntegrityFailure { .. })));
    }

    #[test]
    fn manifest_text_round_trip() {
        let mut s = ChunkStore::new();
        let data = random_bytes(123_456, 6);
        let m = s.put(&data);
        let text = m.to_text();
        assert_eq!(Manifest::from_text(&text).unwrap(), m);
    }

    #[test]
    fn manifest_text_rejects_corruption() {
        let mut s = ChunkStore::new();
        let m = s.put(&random_bytes(10_000, 7));
        let text = m.to_text();
        assert!(Manifest::from_text(&text.replace("manifest v1", "manifest v9")).is_err());
        // Drop one chunk line: length check fires.
        let mut lines: Vec<&str> = text.lines().collect();
        if lines.len() > 3 {
            lines.remove(3);
            assert!(Manifest::from_text(&lines.join("\n")).is_err());
        }
        assert!(Manifest::from_text("").is_err());
    }

    #[test]
    fn sync_to_transfers_only_missing() {
        let mut local = ChunkStore::new();
        let mut remote = ChunkStore::new();
        let data = random_bytes(300_000, 8);
        let m = local.put(&data);
        let moved = local.sync_to(&m, &mut remote).unwrap();
        assert_eq!(moved, m.chunks.len());
        assert_eq!(remote.get(&m).unwrap(), data);
        // Second sync is a no-op.
        assert_eq!(local.sync_to(&m, &mut remote).unwrap(), 0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn round_trip_any(data in proptest::collection::vec(any::<u8>(), 0..30_000)) {
                let mut s = ChunkStore::with_config(
                    crate::chunker::ChunkerConfig { min: 64, avg: 256, max: 1024 }
                ).unwrap();
                let m = s.put(&data);
                prop_assert_eq!(s.get(&m).unwrap(), data);
                let text = m.to_text();
                prop_assert_eq!(Manifest::from_text(&text).unwrap(), m);
            }
        }
    }
}

impl ChunkStore {
    /// Garbage-collect chunks not referenced by any of `live` manifests.
    /// Returns `(chunks dropped, bytes reclaimed)`.
    pub fn gc(&mut self, live: &[&Manifest]) -> (usize, u64) {
        let keep: std::collections::HashSet<ChunkId> =
            live.iter().flat_map(|m| m.chunks.iter().map(|(id, _)| *id)).collect();
        let before = self.chunks.len();
        let mut reclaimed = 0u64;
        self.chunks.retain(|id, data| {
            if keep.contains(id) {
                true
            } else {
                reclaimed += data.len() as u64;
                false
            }
        });
        (before - self.chunks.len(), reclaimed)
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;

    #[test]
    fn gc_keeps_live_chunks_only() {
        let mut s = ChunkStore::new();
        let keep_data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let drop_data: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
        let keep = s.put(&keep_data);
        let dropme = s.put(&drop_data);
        let (dropped, reclaimed) = s.gc(&[&keep]);
        assert!(dropped > 0);
        assert!(reclaimed > 0);
        assert_eq!(s.get(&keep).unwrap(), keep_data);
        assert!(s.get(&dropme).is_err());
        // GC with everything live is a no-op.
        assert_eq!(s.gc(&[&keep]), (0, 0));
    }

    #[test]
    fn gc_respects_shared_chunks() {
        let mut s = ChunkStore::new();
        let mut a_data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let _a = s.put(&a_data);
        a_data[100] ^= 1;
        let b = s.put(&a_data); // shares most chunks with a
        let (_, _) = s.gc(&[&b]);
        // b must still fully reassemble even though a was collected.
        assert_eq!(s.get(&b).unwrap(), a_data);
    }
}
