//! Datapackage descriptors and a `dpm`-style registry.
//!
//! The paper's weather use case references its input dataset through the
//! datapackage manager (`dpm install datapackages/air-temperature`,
//! Listing `bootstrap`). A [`DataPackage`] is the small descriptor that
//! lives *inside* the Popper repository; the bytes live in a
//! [`Registry`] (standing in for a remote datapackage host) backed by
//! the chunk store.

use crate::chunkstore::{ChunkStore, Manifest, StoreError};
use popper_format::{pml, Value};
use std::collections::BTreeMap;
use std::fmt;

/// One file within a data package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Resource name (unique within the package).
    pub name: String,
    /// Relative path the resource materializes at on install.
    pub path: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Hex SHA-256 of the contents.
    pub hash: String,
    /// Free-form format tag ("csv", "netcdf", …).
    pub format: String,
}

/// A datapackage descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPackage {
    /// Package name, e.g. `air-temperature`.
    pub name: String,
    /// Semantic-ish version string.
    pub version: String,
    /// Human description.
    pub description: String,
    /// The package's resources.
    pub resources: Vec<Resource>,
}

impl DataPackage {
    /// Serialize the descriptor as PML (the file checked into a Popper
    /// repository's `datasets/` folder).
    pub fn to_pml(&self) -> String {
        let mut root = Value::empty_map();
        root.insert("name", Value::from(self.name.as_str()));
        root.insert("version", Value::from(self.version.as_str()));
        root.insert("description", Value::from(self.description.as_str()));
        let resources: Vec<Value> = self
            .resources
            .iter()
            .map(|r| {
                let mut m = Value::empty_map();
                m.insert("name", Value::from(r.name.as_str()));
                m.insert("path", Value::from(r.path.as_str()));
                m.insert("bytes", Value::from(r.bytes as i64));
                m.insert("hash", Value::from(r.hash.as_str()));
                m.insert("format", Value::from(r.format.as_str()));
                m
            })
            .collect();
        root.insert("resources", Value::List(resources));
        pml::to_string(&root)
    }

    /// Parse a PML descriptor.
    pub fn from_pml(text: &str) -> Result<DataPackage, String> {
        let v = pml::parse(text).map_err(|e| e.to_string())?;
        let name = v.get_str("name").ok_or("missing 'name'")?.to_string();
        let version = v.get_str("version").map(str::to_string).unwrap_or_else(|| "0.0.0".into());
        let description = v.get_str("description").unwrap_or("").to_string();
        let mut resources = Vec::new();
        for r in v.get_list("resources").unwrap_or(&[]) {
            resources.push(Resource {
                name: r.get_str("name").ok_or("resource missing 'name'")?.to_string(),
                path: r.get_str("path").ok_or("resource missing 'path'")?.to_string(),
                bytes: r.get_num("bytes").unwrap_or(0.0) as u64,
                hash: r.get_str("hash").unwrap_or("").to_string(),
                format: r.get_str("format").unwrap_or("bin").to_string(),
            });
        }
        Ok(DataPackage { name, version, description, resources })
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No package with that name.
    UnknownPackage(String),
    /// Resource contents failed integrity or were missing.
    Store(String),
    /// Publishing with a resource whose bytes were not supplied.
    MissingResource(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPackage(p) => write!(f, "unknown data package '{p}'"),
            RegistryError::Store(e) => write!(f, "store error: {e}"),
            RegistryError::MissingResource(r) => write!(f, "no bytes supplied for resource '{r}'"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<StoreError> for RegistryError {
    fn from(e: StoreError) -> Self {
        RegistryError::Store(e.to_string())
    }
}

/// A datapackage registry: descriptors plus a chunk store holding the
/// bytes. Models the remote host `dpm install` talks to.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    packages: BTreeMap<String, (DataPackage, BTreeMap<String, Manifest>)>,
    store: ChunkStore,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a package: `files` maps resource names to their bytes.
    /// The descriptor's hashes and sizes are computed here, so published
    /// metadata can never disagree with the data.
    pub fn publish(
        &mut self,
        name: &str,
        version: &str,
        description: &str,
        files: &[(&str, &str, &[u8])], // (resource name, path, bytes)
    ) -> Result<DataPackage, RegistryError> {
        let mut resources = Vec::new();
        let mut manifests = BTreeMap::new();
        for (res_name, path, bytes) in files {
            let manifest = self.store.put(bytes);
            resources.push(Resource {
                name: res_name.to_string(),
                path: path.to_string(),
                bytes: bytes.len() as u64,
                hash: manifest.blob_hex(),
                format: path.rsplit('.').next().unwrap_or("bin").to_string(),
            });
            manifests.insert(res_name.to_string(), manifest);
        }
        let pkg = DataPackage {
            name: name.to_string(),
            version: version.to_string(),
            description: description.to_string(),
            resources,
        };
        self.packages.insert(name.to_string(), (pkg.clone(), manifests));
        Ok(pkg)
    }

    /// The descriptor for a package.
    pub fn describe(&self, name: &str) -> Result<&DataPackage, RegistryError> {
        self.packages
            .get(name)
            .map(|(p, _)| p)
            .ok_or_else(|| RegistryError::UnknownPackage(name.to_string()))
    }

    /// List package names.
    pub fn list(&self) -> Vec<&str> {
        self.packages.keys().map(String::as_str).collect()
    }

    /// Install a package: fetch and verify every resource, returning
    /// `(path, bytes)` pairs ready to materialize. This is the `dpm
    /// install` step of the weather use case.
    pub fn install(&self, name: &str) -> Result<Vec<(String, Vec<u8>)>, RegistryError> {
        let (pkg, manifests) = self
            .packages
            .get(name)
            .ok_or_else(|| RegistryError::UnknownPackage(name.to_string()))?;
        let mut out = Vec::with_capacity(pkg.resources.len());
        for r in &pkg.resources {
            let manifest = manifests
                .get(&r.name)
                .ok_or_else(|| RegistryError::MissingResource(r.name.clone()))?;
            let bytes = self.store.get(manifest)?;
            debug_assert_eq!(manifest.blob_hex(), r.hash);
            out.push((r.path.clone(), bytes));
        }
        Ok(out)
    }

    /// Total unique bytes stored (after dedup) — for reporting.
    pub fn stored_bytes(&self) -> u64 {
        self.store.stats().stored_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish_sample(reg: &mut Registry) -> DataPackage {
        reg.publish(
            "air-temperature",
            "1.0.0",
            "NCEP/NCAR Reanalysis 1 surface air temperature (synthetic stand-in)",
            &[
                ("grid", "air-temperature/air.mon.mean.csv", b"time,lat,lon,temp\n" as &[u8]),
                ("readme", "air-temperature/README.md", b"# dataset\n"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn publish_and_install() {
        let mut reg = Registry::new();
        let pkg = publish_sample(&mut reg);
        assert_eq!(pkg.resources.len(), 2);
        assert_eq!(pkg.resources[0].format, "csv");
        let files = reg.install("air-temperature").unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].0, "air-temperature/air.mon.mean.csv");
        assert_eq!(files[0].1, b"time,lat,lon,temp\n");
    }

    #[test]
    fn install_unknown_package_fails() {
        let reg = Registry::new();
        assert!(matches!(reg.install("nope"), Err(RegistryError::UnknownPackage(_))));
    }

    #[test]
    fn descriptor_hashes_match_contents() {
        let mut reg = Registry::new();
        let pkg = publish_sample(&mut reg);
        let files = reg.install("air-temperature").unwrap();
        for (r, (_, bytes)) in pkg.resources.iter().zip(&files) {
            assert_eq!(r.hash, popper_vcs::sha256::to_hex(&popper_vcs::sha256::digest(bytes)));
            assert_eq!(r.bytes, bytes.len() as u64);
        }
    }

    #[test]
    fn pml_descriptor_round_trip() {
        let mut reg = Registry::new();
        let pkg = publish_sample(&mut reg);
        let text = pkg.to_pml();
        let parsed = DataPackage::from_pml(&text).unwrap();
        assert_eq!(parsed, pkg);
    }

    #[test]
    fn from_pml_requires_name() {
        assert!(DataPackage::from_pml("version: \"1.0\"\n").is_err());
        let minimal = DataPackage::from_pml("name: x\n").unwrap();
        assert_eq!(minimal.name, "x");
        assert!(minimal.resources.is_empty());
    }

    #[test]
    fn list_and_describe() {
        let mut reg = Registry::new();
        publish_sample(&mut reg);
        reg.publish("other", "0.1.0", "", &[]).unwrap();
        assert_eq!(reg.list(), vec!["air-temperature", "other"]);
        assert_eq!(reg.describe("other").unwrap().version, "0.1.0");
        assert!(reg.describe("missing").is_err());
    }

    #[test]
    fn republish_replaces_version() {
        let mut reg = Registry::new();
        publish_sample(&mut reg);
        reg.publish("air-temperature", "2.0.0", "", &[("grid", "f.csv", b"v2")]).unwrap();
        assert_eq!(reg.describe("air-temperature").unwrap().version, "2.0.0");
        let files = reg.install("air-temperature").unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].1, b"v2");
    }

    #[test]
    fn dedup_across_packages() {
        let mut reg = Registry::new();
        let big = vec![42u8; 100_000];
        reg.publish("p1", "1", "", &[("d", "d.bin", &big)]).unwrap();
        let after_one = reg.stored_bytes();
        reg.publish("p2", "1", "", &[("d", "d.bin", &big)]).unwrap();
        assert_eq!(reg.stored_bytes(), after_one, "identical resources must dedup");
    }
}
