//! # popper-store
//!
//! Dataset and artifact management — the "git-lfs / datapackages /
//! Artifactory" slot of the Popper toolkit (§Toolkit, *Dataset
//! Management*). Version-control systems are not designed for large
//! binary artifacts, so Popper repositories keep datasets *by reference*:
//! an experiment's `datasets/` folder holds small descriptors whose
//! content hashes name the real bytes, which live in a chunked,
//! deduplicated store.
//!
//! * [`chunker`] — content-defined chunking with a gear rolling hash
//!   (FastCDC-style): insertions shift chunk boundaries only locally, so
//!   revised datasets share most chunks with their ancestors.
//! * [`chunkstore`] — a content-addressed chunk store with manifests and
//!   dedup accounting.
//! * [`datapackage`] — datapackage descriptors and a [`datapackage::Registry`]
//!   implementing the `dpm install` flow from the paper's weather use
//!   case (Listing `bootstrap`).

pub mod chunker;
pub mod chunkstore;
pub mod datapackage;

pub use chunkstore::{ChunkId, ChunkStore, Manifest, StoreStats};
pub use datapackage::{DataPackage, Registry, Resource};
