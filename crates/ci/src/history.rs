//! Build history, badges, and the performance-regression gate step.

use crate::runner::{BuildReport, StepOutcome};
use popper_monitor::{RegressionCheck, RegressionVerdict};
use std::fmt;

/// One recorded build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildRecord {
    /// Monotonic build number.
    pub number: u64,
    /// Commit the build ran against (opaque id).
    pub commit: String,
    /// Did the build pass?
    pub passed: bool,
}

/// The project's build history (what the badge and "last good commit"
/// queries read).
#[derive(Debug, Clone, Default)]
pub struct BuildHistory {
    records: Vec<BuildRecord>,
}

impl BuildHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a finished build; returns its number.
    pub fn record(&mut self, commit: &str, report: &BuildReport) -> u64 {
        let number = self.records.len() as u64 + 1;
        self.records.push(BuildRecord { number, commit: commit.to_string(), passed: report.passed() });
        number
    }

    /// The latest build, if any.
    pub fn latest(&self) -> Option<&BuildRecord> {
        self.records.last()
    }

    /// The most recent passing build.
    pub fn last_good(&self) -> Option<&BuildRecord> {
        self.records.iter().rev().find(|r| r.passed)
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[BuildRecord] {
        &self.records
    }

    /// Pass rate over the whole history (1.0 for empty).
    pub fn pass_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.passed).count() as f64 / self.records.len() as f64
    }
}

impl fmt::Display for BuildHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(
                f,
                "#{:<4} {}  {}",
                r.number,
                &r.commit[..r.commit.len().min(10)],
                if r.passed { "passed" } else { "failed" }
            )?;
        }
        Ok(())
    }
}

/// The README badge text for the latest build.
pub fn badge(history: &BuildHistory) -> String {
    match history.latest() {
        None => "build: unknown".to_string(),
        Some(r) if r.passed => "build: passing".to_string(),
        Some(_) => "build: failing".to_string(),
    }
}

/// Run a performance-regression gate as a CI step: compares candidate
/// runtimes against the baseline with `check` and converts the verdict
/// into a [`StepOutcome`] (regressions fail, improvements and no-change
/// pass, inconclusive fails loudly — silence must never masquerade as
/// green).
pub fn regression_gate_step(
    metric: &str,
    baseline: &[f64],
    candidate: &[f64],
    check: &RegressionCheck,
) -> StepOutcome {
    let verdict = check.compare(baseline, candidate);
    let line = format!("regression gate [{metric}]: {verdict}");
    match verdict {
        RegressionVerdict::Regression { .. } => StepOutcome::fail(line),
        RegressionVerdict::Inconclusive => {
            StepOutcome::fail(format!("{line} — collect more samples"))
        }
        _ => StepOutcome::pass(line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::runner::{run_pipeline, Executor, StepCtx};
    use std::sync::Arc;

    fn report(pass: bool) -> BuildReport {
        let cfg = PipelineConfig::from_pml(
            "stages: [t]\njobs:\n  - name: j\n    stage: t\n    steps: [s]\n",
        )
        .unwrap();
        let executor: Executor = Arc::new(move |_: &StepCtx| {
            if pass {
                StepOutcome::pass("ok")
            } else {
                StepOutcome::fail("boom")
            }
        });
        run_pipeline(&cfg, executor, 1)
    }

    #[test]
    fn history_and_badge() {
        let mut h = BuildHistory::new();
        assert_eq!(badge(&h), "build: unknown");
        h.record("abc123", &report(true));
        assert_eq!(badge(&h), "build: passing");
        h.record("def456", &report(false));
        assert_eq!(badge(&h), "build: failing");
        assert_eq!(h.latest().unwrap().number, 2);
        assert_eq!(h.last_good().unwrap().commit, "abc123");
        assert_eq!(h.pass_rate(), 0.5);
        let text = h.to_string();
        assert!(text.contains("#1"));
        assert!(text.contains("failed"));
    }

    #[test]
    fn regression_gate_outcomes() {
        let check = RegressionCheck::default();
        let baseline: Vec<f64> = (0..20).map(|i| 100.0 + (i % 5) as f64).collect();
        // Clearly slower candidate fails the gate.
        let slower: Vec<f64> = baseline.iter().map(|v| v * 1.3).collect();
        let out = regression_gate_step("gassyfs-git", &baseline, &slower, &check);
        assert!(!out.success);
        assert!(out.log.contains("REGRESSION"));
        // Same distribution passes.
        let out = regression_gate_step("gassyfs-git", &baseline, &baseline.clone(), &check);
        assert!(out.success);
        // Faster candidate passes and says so.
        let faster: Vec<f64> = baseline.iter().map(|v| v * 0.7).collect();
        let out = regression_gate_step("gassyfs-git", &baseline, &faster, &check);
        assert!(out.success);
        assert!(out.log.contains("improvement"));
        // Too little data fails loudly.
        let out = regression_gate_step("gassyfs-git", &[1.0], &[2.0], &check);
        assert!(!out.success);
        assert!(out.log.contains("more samples"));
    }
}
