//! Build history, badges, and the performance-regression gate step.

use crate::runner::{BuildReport, StepOutcome};
use popper_monitor::{RegressionCheck, RegressionVerdict};
use std::fmt;

/// One recorded build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildRecord {
    /// Monotonic build number.
    pub number: u64,
    /// Commit the build ran against (opaque id).
    pub commit: String,
    /// Did the build pass?
    pub passed: bool,
    /// Milliseconds the build sat in a scheduler queue before its
    /// first dispatch (0 when the build ran immediately — the
    /// single-pipeline `popper ci` path has no queue).
    pub queue_wait_ms: u64,
    /// Times the build was re-dispatched after a worker loss (0 when
    /// the first attempt completed).
    pub retries: u32,
}

/// The project's build history (what the badge and "last good commit"
/// queries read, and what the farm's fairness evidence is built from).
#[derive(Debug, Clone, Default)]
pub struct BuildHistory {
    records: Vec<BuildRecord>,
}

impl BuildHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a finished build; returns its number.
    pub fn record(&mut self, commit: &str, report: &BuildReport) -> u64 {
        self.record_outcome(commit, report.passed(), 0, 0)
    }

    /// Record a finished build with scheduler provenance: how long it
    /// queued before dispatch and how many times it was retried. The
    /// farm uses this for per-tenant fairness evidence.
    pub fn record_outcome(
        &mut self,
        commit: &str,
        passed: bool,
        queue_wait_ms: u64,
        retries: u32,
    ) -> u64 {
        let number = self.records.len() as u64 + 1;
        self.records.push(BuildRecord {
            number,
            commit: commit.to_string(),
            passed,
            queue_wait_ms,
            retries,
        });
        number
    }

    /// The latest build, if any.
    pub fn latest(&self) -> Option<&BuildRecord> {
        self.records.last()
    }

    /// The most recent passing build.
    pub fn last_good(&self) -> Option<&BuildRecord> {
        self.records.iter().rev().find(|r| r.passed)
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[BuildRecord] {
        &self.records
    }

    /// Pass rate over the whole history (1.0 for empty).
    pub fn pass_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.passed).count() as f64 / self.records.len() as f64
    }

    /// Mean queue wait across the history, in milliseconds (0 for
    /// empty histories).
    pub fn mean_queue_wait_ms(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.queue_wait_ms as f64).sum::<f64>()
            / self.records.len() as f64
    }

    /// Total retries across the history.
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| r.retries as u64).sum()
    }

    /// Serialize to the on-disk history format. Emits the v2 format,
    /// which carries queue-wait and retry provenance per record:
    ///
    /// ```text
    /// popper-history v2
    /// #1 abc123 passed wait_ms=12 retries=0
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("popper-history v2\n");
        for r in &self.records {
            out.push_str(&format!(
                "#{} {} {} wait_ms={} retries={}\n",
                r.number,
                r.commit,
                if r.passed { "passed" } else { "failed" },
                r.queue_wait_ms,
                r.retries
            ));
        }
        out
    }

    /// Parse the on-disk history format. Accepts both the v2 header
    /// and headerless v1 files (`#1 abc123 passed` lines only — old
    /// histories predate queue/retry provenance, which defaults to 0).
    pub fn from_text(text: &str) -> Result<BuildHistory, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line == "popper-history v2" {
                continue;
            }
            if line.starts_with("popper-history") {
                return Err(format!("unknown history version '{line}'"));
            }
            let mut parts = line.split_whitespace();
            let number: u64 = parts
                .next()
                .and_then(|p| p.strip_prefix('#'))
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("line {}: expected '#<number>'", i + 1))?;
            let commit = parts
                .next()
                .ok_or_else(|| format!("line {}: missing commit", i + 1))?
                .to_string();
            let passed = match parts.next() {
                Some("passed") => true,
                Some("failed") => false,
                other => {
                    return Err(format!("line {}: expected passed/failed, got {other:?}", i + 1))
                }
            };
            // v1 lines stop here; v2 appends key=value provenance.
            let mut queue_wait_ms = 0;
            let mut retries = 0;
            for extra in parts {
                match extra.split_once('=') {
                    Some(("wait_ms", v)) => {
                        queue_wait_ms = v
                            .parse()
                            .map_err(|_| format!("line {}: bad wait_ms '{v}'", i + 1))?;
                    }
                    Some(("retries", v)) => {
                        retries = v
                            .parse()
                            .map_err(|_| format!("line {}: bad retries '{v}'", i + 1))?;
                    }
                    // Unknown keys from future versions are skipped, not
                    // fatal — old binaries must keep reading new files.
                    Some(_) => {}
                    None => return Err(format!("line {}: bad field '{extra}'", i + 1)),
                }
            }
            records.push(BuildRecord { number, commit, passed, queue_wait_ms, retries });
        }
        Ok(BuildHistory { records })
    }
}

impl fmt::Display for BuildHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            write!(
                f,
                "#{:<4} {}  {}",
                r.number,
                &r.commit[..r.commit.len().min(10)],
                if r.passed { "passed" } else { "failed" }
            )?;
            if r.queue_wait_ms > 0 || r.retries > 0 {
                write!(f, "  (waited {}ms, {} retr{})", r.queue_wait_ms, r.retries, if r.retries == 1 { "y" } else { "ies" })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The README badge text for the latest build.
pub fn badge(history: &BuildHistory) -> String {
    match history.latest() {
        None => "build: unknown".to_string(),
        Some(r) if r.passed => "build: passing".to_string(),
        Some(_) => "build: failing".to_string(),
    }
}

/// Run a performance-regression gate as a CI step: compares candidate
/// runtimes against the baseline with `check` and converts the verdict
/// into a [`StepOutcome`] (regressions fail, improvements and no-change
/// pass, inconclusive fails loudly — silence must never masquerade as
/// green).
pub fn regression_gate_step(
    metric: &str,
    baseline: &[f64],
    candidate: &[f64],
    check: &RegressionCheck,
) -> StepOutcome {
    let verdict = check.compare(baseline, candidate);
    let line = format!("regression gate [{metric}]: {verdict}");
    match verdict {
        RegressionVerdict::Regression { .. } => StepOutcome::fail(line),
        RegressionVerdict::Inconclusive => {
            StepOutcome::fail(format!("{line} — collect more samples"))
        }
        _ => StepOutcome::pass(line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::runner::{run_pipeline, Executor, StepCtx};
    use std::sync::Arc;

    fn report(pass: bool) -> BuildReport {
        let cfg = PipelineConfig::from_pml(
            "stages: [t]\njobs:\n  - name: j\n    stage: t\n    steps: [s]\n",
        )
        .unwrap();
        let executor: Executor = Arc::new(move |_: &StepCtx| {
            if pass {
                StepOutcome::pass("ok")
            } else {
                StepOutcome::fail("boom")
            }
        });
        run_pipeline(&cfg, executor, 1)
    }

    #[test]
    fn history_and_badge() {
        let mut h = BuildHistory::new();
        assert_eq!(badge(&h), "build: unknown");
        h.record("abc123", &report(true));
        assert_eq!(badge(&h), "build: passing");
        h.record("def456", &report(false));
        assert_eq!(badge(&h), "build: failing");
        assert_eq!(h.latest().unwrap().number, 2);
        assert_eq!(h.last_good().unwrap().commit, "abc123");
        assert_eq!(h.pass_rate(), 0.5);
        let text = h.to_string();
        assert!(text.contains("#1"));
        assert!(text.contains("failed"));
    }

    #[test]
    fn queue_and_retry_provenance_round_trips() {
        let mut h = BuildHistory::new();
        h.record_outcome("abc123", true, 42, 0);
        h.record_outcome("def456", false, 0, 3);
        assert_eq!(h.latest().unwrap().retries, 3);
        assert_eq!(h.mean_queue_wait_ms(), 21.0);
        assert_eq!(h.total_retries(), 3);
        let text = h.to_text();
        assert!(text.starts_with("popper-history v2\n"), "{text}");
        assert!(text.contains("wait_ms=42"), "{text}");
        assert!(text.contains("retries=3"), "{text}");
        let parsed = BuildHistory::from_text(&text).unwrap();
        assert_eq!(parsed.records(), h.records());
        // Display annotates only records with provenance.
        let shown = h.to_string();
        assert!(shown.contains("waited 42ms"), "{shown}");
        assert!(shown.contains("3 retries"), "{shown}");
    }

    #[test]
    fn parses_v1_history_files() {
        // Old histories: no header, no provenance fields.
        let old = "#1 abc123 passed\n#2 def456 failed\n";
        let h = BuildHistory::from_text(old).unwrap();
        assert_eq!(h.records().len(), 2);
        assert_eq!(h.records()[0].queue_wait_ms, 0);
        assert_eq!(h.records()[0].retries, 0);
        assert!(h.records()[0].passed);
        assert!(!h.records()[1].passed);
        // Unknown future keys are tolerated; junk fields are not.
        assert!(BuildHistory::from_text("#1 abc passed shards=4\n").is_ok());
        assert!(BuildHistory::from_text("#1 abc passed garbage\n").is_err());
        assert!(BuildHistory::from_text("popper-history v9\n").is_err());
        assert!(BuildHistory::from_text("#x abc passed\n").is_err());
        assert!(BuildHistory::from_text("#1 abc maybe\n").is_err());
    }

    #[test]
    fn regression_gate_outcomes() {
        let check = RegressionCheck::default();
        let baseline: Vec<f64> = (0..20).map(|i| 100.0 + (i % 5) as f64).collect();
        // Clearly slower candidate fails the gate.
        let slower: Vec<f64> = baseline.iter().map(|v| v * 1.3).collect();
        let out = regression_gate_step("gassyfs-git", &baseline, &slower, &check);
        assert!(!out.success);
        assert!(out.log.contains("REGRESSION"));
        // Same distribution passes.
        let out = regression_gate_step("gassyfs-git", &baseline, &baseline.clone(), &check);
        assert!(out.success);
        // Faster candidate passes and says so.
        let faster: Vec<f64> = baseline.iter().map(|v| v * 0.7).collect();
        let out = regression_gate_step("gassyfs-git", &baseline, &faster, &check);
        assert!(out.success);
        assert!(out.log.contains("improvement"));
        // Too little data fails loudly.
        let out = regression_gate_step("gassyfs-git", &[1.0], &[2.0], &check);
        assert!(!out.success);
        assert!(out.log.contains("more samples"));
    }
}
