//! The pipeline runner.

use crate::config::{Job, PipelineConfig};
use crossbeam::channel;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// What a step sees when it runs.
#[derive(Debug, Clone)]
pub struct StepCtx {
    /// The step command string from the config.
    pub command: String,
    /// Job environment (config env + matrix combo).
    pub env: BTreeMap<String, String>,
    /// Job name (for logs).
    pub job: String,
}

/// What a step returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// Success?
    pub success: bool,
    /// Log text appended to the job log.
    pub log: String,
}

impl StepOutcome {
    /// A passing step with a log line.
    pub fn pass(log: impl Into<String>) -> Self {
        StepOutcome { success: true, log: log.into() }
    }

    /// A failing step with a log line.
    pub fn fail(log: impl Into<String>) -> Self {
        StepOutcome { success: false, log: log.into() }
    }
}

/// Step semantics are supplied by the embedder.
pub type Executor = Arc<dyn Fn(&StepCtx) -> StepOutcome + Send + Sync>;

/// Final state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// All steps passed.
    Passed,
    /// A step failed.
    Failed,
    /// A step failed but the job allows failure.
    SoftFailed,
    /// The job's stage never ran (an earlier stage failed).
    Canceled,
}

/// The record of one job run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job name (matrix-expanded).
    pub name: String,
    /// Stage name.
    pub stage: String,
    /// Final status.
    pub status: JobStatus,
    /// Concatenated step logs.
    pub log: String,
    /// How many steps ran (including the failing one).
    pub steps_run: usize,
}

/// The whole build's report.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Per-job results in execution order (stage order, then job order).
    pub jobs: Vec<JobResult>,
}

impl BuildReport {
    /// A build passes when no job hard-failed and no stage was canceled.
    pub fn passed(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| matches!(j.status, JobStatus::Passed | JobStatus::SoftFailed))
    }

    /// Results for one stage.
    pub fn stage(&self, stage: &str) -> Vec<&JobResult> {
        self.jobs.iter().filter(|j| j.stage == stage).collect()
    }

    /// Travis-style one-line-per-job summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for j in &self.jobs {
            let mark = match j.status {
                JobStatus::Passed => "ok",
                JobStatus::Failed => "FAILED",
                JobStatus::SoftFailed => "failed (allowed)",
                JobStatus::Canceled => "canceled",
            };
            out.push_str(&format!("{:<10} {:<40} {mark}\n", j.stage, j.name));
        }
        out
    }
}

impl fmt::Display for BuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Run a pipeline: stages sequentially; a stage's (matrix-expanded)
/// jobs in parallel on `workers` threads; if any hard-failing job fails
/// in a stage, later stages are canceled (their jobs report
/// [`JobStatus::Canceled`]).
pub fn run_pipeline(config: &PipelineConfig, executor: Executor, workers: usize) -> BuildReport {
    run_pipeline_traced(config, executor, workers, popper_trace::Tracer::disabled())
}

/// [`run_pipeline`] with a wall-clock [`popper_trace::Tracer`]: one span
/// per stage (`ci/pipeline` track) and one span per job on the worker
/// thread that ran it (`ci/worker-N` tracks).
pub fn run_pipeline_traced(
    config: &PipelineConfig,
    executor: Executor,
    workers: usize,
    tracer: popper_trace::Tracer,
) -> BuildReport {
    assert!(workers >= 1);
    let all_jobs = config.expanded_jobs();
    let mut report = BuildReport { jobs: Vec::with_capacity(all_jobs.len()) };
    let mut canceled = false;

    for stage in &config.stages {
        let stage_jobs: Vec<&Job> = all_jobs.iter().filter(|j| &j.stage == stage).collect();
        if stage_jobs.is_empty() {
            continue;
        }
        if canceled {
            for job in stage_jobs {
                report.jobs.push(JobResult {
                    name: job.name.clone(),
                    stage: stage.clone(),
                    status: JobStatus::Canceled,
                    log: String::new(),
                    steps_run: 0,
                });
            }
            continue;
        }

        // Work queue: indices into stage_jobs; results slot per job.
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..stage_jobs.len() {
            tx.send(i).expect("queue open");
        }
        drop(tx);
        let results: Vec<parking_lot::Mutex<Option<JobResult>>> =
            stage_jobs.iter().map(|_| parking_lot::Mutex::new(None)).collect();

        let _stage_span = tracer.span("ci", "ci/pipeline", format!("stage {stage}"));
        crossbeam::scope(|scope| {
            for w in 0..workers.min(stage_jobs.len()) {
                let rx = rx.clone();
                let executor = executor.clone();
                let results = &results;
                let stage_jobs = &stage_jobs;
                let tracer = tracer.clone();
                scope.spawn(move |_| {
                    while let Ok(i) = rx.recv() {
                        let job = stage_jobs[i];
                        let _job_span = tracer.span("ci", format!("ci/worker-{w}"), &job.name);
                        *results[i].lock() = Some(run_job(job, &executor));
                    }
                    // Scoped threads exit here; the TLS destructor
                    // flushes this worker's trace buffer.
                });
            }
        })
        .expect("CI worker threads must not panic");

        for slot in results {
            let result = slot.into_inner().expect("job ran");
            if result.status == JobStatus::Failed {
                canceled = true;
            }
            report.jobs.push(result);
        }
    }
    report
}

fn run_job(job: &Job, executor: &Executor) -> JobResult {
    let mut log = String::new();
    let mut steps_run = 0;
    let mut failed = false;
    for step in &job.steps {
        steps_run += 1;
        let ctx = StepCtx { command: step.clone(), env: job.env.clone(), job: job.name.clone() };
        // Flaky-job policy: a failing step gets `retries` extra attempts
        // before it fails the job; every attempt is logged.
        let mut outcome = executor(&ctx);
        log.push_str(&format!("$ {step}\n{}\n", outcome.log.trim_end()));
        let mut attempt = 1;
        while !outcome.success && attempt <= job.retries {
            attempt += 1;
            outcome = executor(&ctx);
            log.push_str(&format!(
                "$ {step} (retry {}/{})\n{}\n",
                attempt - 1,
                job.retries,
                outcome.log.trim_end()
            ));
        }
        if !outcome.success {
            failed = true;
            break;
        }
    }
    let status = if !failed {
        JobStatus::Passed
    } else if job.allow_failure {
        JobStatus::SoftFailed
    } else {
        JobStatus::Failed
    };
    JobResult { name: job.name.clone(), stage: job.stage.clone(), status, log, steps_run }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn config(text: &str) -> PipelineConfig {
        PipelineConfig::from_pml(text).unwrap()
    }

    fn echo_executor() -> Executor {
        Arc::new(|ctx: &StepCtx| {
            if ctx.command.starts_with("fail") {
                StepOutcome::fail(format!("step '{}' exploded", ctx.command))
            } else {
                StepOutcome::pass(format!("ran '{}'", ctx.command))
            }
        })
    }

    const GREEN: &str = "\
stages: [lint, test]
jobs:
  - name: syntax
    stage: lint
    steps: [check-a, check-b]
  - name: exp
    stage: test
    steps: [run]
";

    #[test]
    fn green_pipeline_passes() {
        let report = run_pipeline(&config(GREEN), echo_executor(), 4);
        assert!(report.passed());
        assert_eq!(report.jobs.len(), 2);
        assert!(report.jobs.iter().all(|j| j.status == JobStatus::Passed));
        assert!(report.jobs[0].log.contains("ran 'check-b'"));
        assert_eq!(report.jobs[0].steps_run, 2);
    }

    #[test]
    fn failing_step_stops_job_and_cancels_later_stages() {
        let src = "\
stages: [build, test]
jobs:
  - name: broken
    stage: build
    steps: [ok-step, fail-here, never-runs]
  - name: exp
    stage: test
    steps: [run]
";
        let report = run_pipeline(&config(src), echo_executor(), 2);
        assert!(!report.passed());
        let broken = &report.jobs[0];
        assert_eq!(broken.status, JobStatus::Failed);
        assert_eq!(broken.steps_run, 2, "third step must not run");
        assert!(!broken.log.contains("never-runs\n$"));
        let exp = &report.jobs[1];
        assert_eq!(exp.status, JobStatus::Canceled);
    }

    #[test]
    fn allow_failure_keeps_build_green() {
        let src = "\
stages: [test]
jobs:
  - name: flaky
    stage: test
    steps: [fail-flaky]
    allow_failure: true
  - name: solid
    stage: test
    steps: [run]
";
        let report = run_pipeline(&config(src), echo_executor(), 2);
        assert!(report.passed());
        assert!(report.jobs.iter().any(|j| j.status == JobStatus::SoftFailed));
    }

    #[test]
    fn retries_rescue_flaky_jobs_and_log_attempts() {
        let src = "\
stages: [test]
jobs:
  - name: flaky
    stage: test
    steps: [sometimes]
    retries: 2
  - name: fragile
    stage: test
    steps: [sometimes]
";
        // Fails the first two calls per run, then passes: the retried
        // job recovers, the unretried one does not.
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = calls.clone();
        let executor: Executor = Arc::new(move |ctx: &StepCtx| {
            // Count per job: the first two attempts of 'flaky' fail, the
            // single attempt of 'fragile' fails.
            if ctx.job == "flaky" && c2.fetch_add(1, Ordering::SeqCst) < 2 {
                StepOutcome::fail("transient network burp")
            } else if ctx.job == "fragile" {
                StepOutcome::fail("no retries for me")
            } else {
                StepOutcome::pass("made it")
            }
        });
        let report = run_pipeline(&config(src), executor, 1);
        let flaky = report.jobs.iter().find(|j| j.name == "flaky").unwrap();
        assert_eq!(flaky.status, JobStatus::Passed, "{}", flaky.log);
        assert!(flaky.log.contains("(retry 1/2)"), "{}", flaky.log);
        assert!(flaky.log.contains("(retry 2/2)"), "{}", flaky.log);
        let fragile = report.jobs.iter().find(|j| j.name == "fragile").unwrap();
        assert_eq!(fragile.status, JobStatus::Failed);
        assert!(!fragile.log.contains("retry"));
    }

    #[test]
    fn negative_retries_rejected() {
        let src = "stages: [t]\njobs:\n  - name: j\n    stage: t\n    steps: [x]\n    retries: -1\n";
        assert!(PipelineConfig::from_pml(src).unwrap_err().contains("retries"));
    }

    #[test]
    fn matrix_jobs_get_their_env() {
        let src = "\
stages: [test]
matrix:
  machine: [a, b, c]
jobs:
  - name: exp
    stage: test
    steps: [show-machine]
";
        let executor: Executor = Arc::new(|ctx: &StepCtx| StepOutcome::pass(format!("machine={}", ctx.env["machine"])));
        let report = run_pipeline(&config(src), executor, 2);
        assert_eq!(report.jobs.len(), 3);
        let logs: Vec<&str> = report.jobs.iter().map(|j| j.log.as_str()).collect();
        assert!(logs.iter().any(|l| l.contains("machine=a")));
        assert!(logs.iter().any(|l| l.contains("machine=c")));
    }

    #[test]
    fn jobs_run_in_parallel() {
        // 4 jobs that each wait for the others via a barrier-ish counter
        // would deadlock on a single worker; with 4 workers they finish.
        let src = "\
stages: [test]
jobs:
  - name: j1
    stage: test
    steps: [sync]
  - name: j2
    stage: test
    steps: [sync]
  - name: j3
    stage: test
    steps: [sync]
  - name: j4
    stage: test
    steps: [sync]
";
        let arrived = Arc::new(AtomicUsize::new(0));
        let a2 = arrived.clone();
        let executor: Executor = Arc::new(move |_ctx: &StepCtx| {
            a2.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while a2.load(Ordering::SeqCst) < 4 {
                if std::time::Instant::now() > deadline {
                    return StepOutcome::fail("peers never arrived: jobs did not run in parallel");
                }
                std::thread::yield_now();
            }
            StepOutcome::pass("all four ran concurrently")
        });
        let report = run_pipeline(&config(src), executor, 4);
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn report_accessors() {
        let report = run_pipeline(&config(GREEN), echo_executor(), 1);
        assert_eq!(report.stage("lint").len(), 1);
        assert_eq!(report.stage("test").len(), 1);
        assert!(report.summary().contains("syntax"));
        assert!(report.to_string().contains("ok"));
    }

    #[test]
    fn results_are_in_deterministic_order() {
        let src = "\
stages: [test]
matrix:
  m: [a, b]
jobs:
  - name: x
    stage: test
    steps: [run]
  - name: y
    stage: test
    steps: [run]
";
        let names = |workers| -> Vec<String> {
            run_pipeline(&config(src), echo_executor(), workers)
                .jobs
                .into_iter()
                .map(|j| j.name)
                .collect()
        };
        let expected = names(1);
        for w in [2, 4, 8] {
            assert_eq!(names(w), expected, "order must not depend on worker count");
        }
    }
}
