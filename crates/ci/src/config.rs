//! Pipeline configuration (`.popper-ci.pml`).

use popper_format::{pml, Value};
use std::collections::BTreeMap;

/// One job: a named list of steps bound to a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Job name.
    pub name: String,
    /// Stage the job belongs to.
    pub stage: String,
    /// Step command strings, run in order.
    pub steps: Vec<String>,
    /// Environment for the steps (matrix combos add to this).
    pub env: BTreeMap<String, String>,
    /// If true, a failure does not fail the build (Travis's
    /// `allow_failures`).
    pub allow_failure: bool,
    /// Re-run a failing step up to this many extra times before
    /// counting the job as failed (the flaky-job retry policy);
    /// 0 means fail on the first error.
    pub retries: u32,
    /// Per-job build matrix: this job alone fans out over the
    /// cartesian product of its axes (composed with the global
    /// matrix). The chaos axis lives here — one job, many schedules.
    pub matrix: Matrix,
}

/// A build matrix: named axes, each with a list of values. Jobs are
/// fanned out over the cartesian product.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Matrix {
    /// Axis name → values, in declaration order.
    pub axes: Vec<(String, Vec<String>)>,
}

impl Matrix {
    /// All combinations (cartesian product) as env maps. An empty
    /// matrix yields one empty combination.
    pub fn combinations(&self) -> Vec<BTreeMap<String, String>> {
        let mut combos: Vec<BTreeMap<String, String>> = vec![BTreeMap::new()];
        for (axis, values) in &self.axes {
            let mut next = Vec::with_capacity(combos.len() * values.len());
            for combo in &combos {
                for v in values {
                    let mut c = combo.clone();
                    c.insert(axis.clone(), v.clone());
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
    }
}

/// A parsed pipeline configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Stage execution order.
    pub stages: Vec<String>,
    /// Jobs (before matrix expansion).
    pub jobs: Vec<Job>,
    /// Optional build matrix.
    pub matrix: Matrix,
}

impl PipelineConfig {
    /// Parse from PML:
    ///
    /// ```text
    /// stages: [lint, build, test]
    /// matrix:
    ///   machine: [cloudlab-c220g, ec2-vm]
    /// jobs:
    ///   - name: paper-builds
    ///     stage: build
    ///     steps:
    ///       - build-paper
    ///   - name: experiment
    ///     stage: test
    ///     env: {RUNS: "10"}
    ///     steps: [run-experiment gassyfs, validate gassyfs]
    ///     allow_failure: false
    /// ```
    pub fn from_pml(text: &str) -> Result<PipelineConfig, String> {
        let doc = pml::parse(text).map_err(|e| e.to_string())?;
        let stages: Vec<String> = doc
            .get_list("stages")
            .ok_or("pipeline missing 'stages'")?
            .iter()
            .map(|s| s.to_display_string())
            .collect();
        if stages.is_empty() {
            return Err("pipeline has no stages".into());
        }
        let matrix = parse_matrix(doc.get("matrix"), "matrix")?;
        let mut jobs = Vec::new();
        for (i, j) in doc.get_list("jobs").ok_or("pipeline missing 'jobs'")?.iter().enumerate() {
            let name = j
                .get_str("name")
                .map(str::to_string)
                .unwrap_or_else(|| format!("job-{}", i + 1));
            let stage = j
                .get_str("stage")
                .ok_or_else(|| format!("job '{name}': missing 'stage'"))?
                .to_string();
            if !stages.contains(&stage) {
                return Err(format!("job '{name}': unknown stage '{stage}'"));
            }
            let steps: Vec<String> = j
                .get_list("steps")
                .ok_or_else(|| format!("job '{name}': missing 'steps'"))?
                .iter()
                .map(|s| s.to_display_string())
                .collect();
            if steps.is_empty() {
                return Err(format!("job '{name}': empty 'steps'"));
            }
            let mut env = BTreeMap::new();
            if let Some(entries) = j.get("env").and_then(Value::as_map) {
                for (k, v) in entries {
                    env.insert(k.clone(), v.to_display_string());
                }
            }
            let allow_failure = j.get_bool("allow_failure").unwrap_or(false);
            let retries = match j.get_num("retries") {
                Some(n) if n < 0.0 => {
                    return Err(format!("job '{name}': 'retries' must be >= 0"));
                }
                Some(n) => n as u32,
                None => 0,
            };
            let matrix = parse_matrix(j.get("matrix"), &format!("job '{name}': matrix"))?;
            jobs.push(Job { name, stage, steps, env, allow_failure, retries, matrix });
        }
        if jobs.is_empty() {
            return Err("pipeline has no jobs".into());
        }
        let config = PipelineConfig { stages, jobs, matrix };
        // Duplicate names are checked on the *expanded* set: two jobs
        // may only collide if their matrix-suffixed names do, and a
        // duplicate base name with disjoint axes is still a duplicate.
        let mut seen = std::collections::BTreeSet::new();
        for job in config.expanded_jobs() {
            if !seen.insert(job.name.clone()) {
                return Err(format!("duplicate job name '{}'", job.name));
            }
        }
        Ok(config)
    }

    /// Expand the matrices: every job fans out over the composition of
    /// the global matrix and its own per-job matrix (per-job axes win
    /// on a name collision), with axis values injected into the job
    /// env and a combo suffix appended to the name
    /// (`experiment [machine=ec2-vm]`,
    /// `chaos-matrix [schedule=gremlin]`).
    pub fn expanded_jobs(&self) -> Vec<Job> {
        let global = self.matrix.combinations();
        let mut out = Vec::with_capacity(self.jobs.len() * global.len());
        for job in &self.jobs {
            let local = job.matrix.combinations();
            for g in &global {
                for l in &local {
                    let mut combo = g.clone();
                    combo.extend(l.iter().map(|(k, v)| (k.clone(), v.clone())));
                    let mut j = job.clone();
                    // A fanned-out job is concrete: its matrix is spent.
                    j.matrix = Matrix::default();
                    if !combo.is_empty() {
                        let suffix: Vec<String> =
                            combo.iter().map(|(k, v)| format!("{k}={v}")).collect();
                        j.name = format!("{} [{}]", job.name, suffix.join(","));
                        for (k, v) in combo {
                            j.env.insert(k, v);
                        }
                    }
                    out.push(j);
                }
            }
        }
        out
    }
}

/// Decode a `matrix:` map (global or per-job) into named axes. An axis
/// with an empty value list is a spec error: the cartesian product
/// would be empty and every job fanning over it would silently vanish
/// from the build (a chaos axis with zero schedules must fail loudly,
/// not fan to nothing).
fn parse_matrix(value: Option<&Value>, what: &str) -> Result<Matrix, String> {
    let mut matrix = Matrix::default();
    if let Some(entries) = value.and_then(Value::as_map) {
        for (axis, values) in entries {
            let values: Vec<String> = values
                .as_list()
                .ok_or_else(|| format!("{what} axis '{axis}' must be a list"))?
                .iter()
                .map(|v| v.to_display_string())
                .collect();
            if values.is_empty() {
                return Err(format!(
                    "{what} axis '{axis}' has no values — jobs would fan out to nothing"
                ));
            }
            matrix.axes.push((axis.clone(), values));
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
stages: [lint, build, test]
matrix:
  machine: [cloudlab-c220g, ec2-vm]
  runs: [\"3\"]
jobs:
  - name: playbook-syntax
    stage: lint
    steps:
      - validate-playbooks
  - name: paper-builds
    stage: build
    steps: [build-paper]
  - name: experiment
    stage: test
    env: {WORKLOAD: git}
    steps:
      - run-experiment gassyfs
      - validate gassyfs
    allow_failure: false
";

    #[test]
    fn parses_sample() {
        let cfg = PipelineConfig::from_pml(SAMPLE).unwrap();
        assert_eq!(cfg.stages, vec!["lint", "build", "test"]);
        assert_eq!(cfg.jobs.len(), 3);
        assert_eq!(cfg.jobs[2].env["WORKLOAD"], "git");
        assert_eq!(cfg.jobs[2].steps.len(), 2);
        assert_eq!(cfg.matrix.axes.len(), 2);
    }

    #[test]
    fn matrix_combinations() {
        let cfg = PipelineConfig::from_pml(SAMPLE).unwrap();
        let combos = cfg.matrix.combinations();
        assert_eq!(combos.len(), 2); // 2 machines × 1 runs
        assert_eq!(combos[0]["machine"], "cloudlab-c220g");
        assert_eq!(combos[0]["runs"], "3");
        // Empty matrix: one empty combo.
        assert_eq!(Matrix::default().combinations(), vec![BTreeMap::new()]);
    }

    #[test]
    fn expansion_injects_env_and_names() {
        let cfg = PipelineConfig::from_pml(SAMPLE).unwrap();
        let jobs = cfg.expanded_jobs();
        assert_eq!(jobs.len(), 6); // 3 jobs × 2 combos
        let exp: Vec<&Job> = jobs.iter().filter(|j| j.name.starts_with("experiment")).collect();
        assert_eq!(exp.len(), 2);
        assert!(exp.iter().any(|j| j.env["machine"] == "ec2-vm"));
        assert!(exp[0].name.contains("machine="));
        // Original env is preserved.
        assert!(exp.iter().all(|j| j.env["WORKLOAD"] == "git"));
    }

    const CHAOS_SAMPLE: &str = "\
stages: [test]
jobs:
  - name: unit
    stage: test
    steps: [build-paper]
  - name: chaos-matrix
    stage: test
    matrix:
      schedule: [node-crash, gremlin]
      seed: [\"7\", \"11\"]
    steps:
      - run-chaos mpi
";

    #[test]
    fn per_job_matrix_fans_out_only_that_job() {
        let cfg = PipelineConfig::from_pml(CHAOS_SAMPLE).unwrap();
        assert_eq!(cfg.jobs[1].matrix.axes.len(), 2);
        let jobs = cfg.expanded_jobs();
        // 1 plain job + 2 schedules × 2 seeds of the chaos job.
        assert_eq!(jobs.len(), 5);
        assert_eq!(jobs[0].name, "unit");
        let chaos: Vec<&Job> = jobs.iter().filter(|j| j.name.starts_with("chaos-matrix")).collect();
        assert_eq!(chaos.len(), 4);
        assert!(chaos.iter().any(|j| j.env["schedule"] == "gremlin" && j.env["seed"] == "11"));
        assert!(chaos.iter().all(|j| j.name.contains("schedule=")));
        assert!(chaos.iter().all(|j| j.matrix.axes.is_empty()), "expanded jobs are concrete");
    }

    #[test]
    fn global_and_per_job_matrices_compose() {
        let cfg = PipelineConfig::from_pml(
            "stages: [test]\nmatrix:\n  machine: [a, b]\njobs:\n  - name: j\n    stage: test\n    matrix:\n      schedule: [x, y]\n    steps: [build-paper]\n",
        )
        .unwrap();
        let jobs = cfg.expanded_jobs();
        assert_eq!(jobs.len(), 4); // 2 machines × 2 schedules
        assert!(jobs.iter().any(|j| j.env["machine"] == "b" && j.env["schedule"] == "x"));
        assert!(jobs.iter().all(|j| j.name.contains("machine=") && j.name.contains("schedule=")));
    }

    #[test]
    fn rejects_malformed_configs() {
        assert!(PipelineConfig::from_pml("jobs: []\n").is_err());
        assert!(PipelineConfig::from_pml("stages: [a]\n").is_err());
        assert!(PipelineConfig::from_pml("stages: [a]\njobs: []\n").is_err());
        // Unknown stage.
        let bad = "stages: [build]\njobs:\n  - name: j\n    stage: test\n    steps: [x]\n";
        assert!(PipelineConfig::from_pml(bad).unwrap_err().contains("unknown stage"));
        // Missing steps.
        let bad = "stages: [build]\njobs:\n  - name: j\n    stage: build\n";
        assert!(PipelineConfig::from_pml(bad).is_err());
        // Per-job matrix axes must be lists.
        let bad = "stages: [t]\njobs:\n  - name: j\n    stage: t\n    matrix:\n      schedule: solo\n    steps: [x]\n";
        assert!(PipelineConfig::from_pml(bad).unwrap_err().contains("must be a list"));
    }

    #[test]
    fn empty_matrix_axis_errors_instead_of_fanning_to_nothing() {
        // A chaos axis with zero schedules would silently drop the job
        // from the build; the parser must refuse the config instead.
        let bad = "stages: [t]\njobs:\n  - name: chaos\n    stage: t\n    matrix:\n      schedule: []\n    steps: [run-chaos g]\n";
        let err = PipelineConfig::from_pml(bad).unwrap_err();
        assert!(err.contains("no values"), "{err}");
        assert!(err.contains("schedule"), "{err}");
        // Same for the global matrix.
        let bad = "stages: [t]\nmatrix:\n  machine: []\njobs:\n  - name: j\n    stage: t\n    steps: [x]\n";
        assert!(PipelineConfig::from_pml(bad).unwrap_err().contains("no values"));
        // A populated axis next to an empty one still errors.
        let bad = "stages: [t]\njobs:\n  - name: j\n    stage: t\n    matrix:\n      schedule: [node-crash]\n      seed: []\n    steps: [x]\n";
        assert!(PipelineConfig::from_pml(bad).unwrap_err().contains("seed"));
    }

    #[test]
    fn duplicate_job_names_rejected() {
        let bad = "stages: [t]\njobs:\n  - name: j\n    stage: t\n    steps: [a]\n  - name: j\n    stage: t\n    steps: [b]\n";
        let err = PipelineConfig::from_pml(bad).unwrap_err();
        assert!(err.contains("duplicate job name 'j'"), "{err}");
        // Duplicates are judged post-expansion: same base name with
        // identical axes collides on every expanded name.
        let bad = "stages: [t]\njobs:\n  - name: j\n    stage: t\n    matrix: {schedule: [a, b]}\n    steps: [x]\n  - name: j\n    stage: t\n    matrix: {schedule: [a, b]}\n    steps: [y]\n";
        assert!(PipelineConfig::from_pml(bad).unwrap_err().contains("duplicate"));
        // Distinct names sharing a matrix are fine.
        let ok = "stages: [t]\njobs:\n  - name: j1\n    stage: t\n    matrix: {schedule: [a, b]}\n    steps: [x]\n  - name: j2\n    stage: t\n    matrix: {schedule: [a, b]}\n    steps: [y]\n";
        assert!(PipelineConfig::from_pml(ok).is_ok());
    }

    #[test]
    fn matrix_chaos_composition_edge_cases() {
        // Global machine axis × per-job chaos axis: the product must
        // cover every (machine, schedule, seed) combination exactly once.
        let cfg = PipelineConfig::from_pml(
            "stages: [t]\nmatrix:\n  machine: [m1, m2]\njobs:\n  - name: chaos\n    stage: t\n    matrix:\n      schedule: [node-crash, gremlin]\n      seed: [\"7\"]\n    steps: [run-chaos g]\n",
        )
        .unwrap();
        let jobs = cfg.expanded_jobs();
        assert_eq!(jobs.len(), 4);
        let names: std::collections::BTreeSet<&str> =
            jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names.len(), 4, "expanded names must be unique");
        assert!(jobs
            .iter()
            .any(|j| j.env["machine"] == "m2" && j.env["schedule"] == "gremlin"));
        assert!(jobs.iter().all(|j| j.env["seed"] == "7"));
    }
}
