//! # popper-ci
//!
//! A continuous-integration engine — the "Travis CI slot" of the Popper
//! toolkit (§Toolkit, *Continuous Integration*). The paper's convention
//! expects a `.travis.yml`-style specification whose tests "get executed
//! every time a new commit is added to the repository"; here that file
//! is `.popper-ci.pml` and the engine is in-process:
//!
//! * [`config`] — pipeline configuration: ordered stages, jobs with
//!   steps, an optional build matrix whose axes fan out into per-combo
//!   jobs with injected environment variables.
//! * [`runner`] — executes a pipeline: stages run sequentially, jobs
//!   within a stage run in parallel on a crossbeam worker pool, steps
//!   within a job run in order and stop at the first failure. Step
//!   semantics are supplied by the caller as an executor callback, so
//!   the engine is generic over what a "step" does (build the paper,
//!   validate playbook syntax, run an experiment, check an Aver
//!   assertion, run a performance-regression gate …).
//! * [`history`] — build history and the README badge
//!   (`build: passing`/`failing`), plus a helper wiring
//!   [`popper_monitor::RegressionCheck`] into a step.

pub mod config;
pub mod history;
pub mod runner;

pub use config::{Job, Matrix, PipelineConfig};
pub use history::{badge, BuildHistory};
pub use runner::{run_pipeline, run_pipeline_traced, BuildReport, JobResult, JobStatus, StepCtx, StepOutcome};
