//! Smoke tests of the real `popper` binary (the artifact a downstream
//! user installs), driven through std::process.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "popper-bin-{tag}-{}",
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn popper(dir: &PathBuf, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_popper"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn binary_end_to_end_session() {
    let dir = temp_dir("session");
    let (ok, stdout, _) = popper(&dir, &["init"]);
    assert!(ok);
    assert!(stdout.contains("Initialized Popper repo"));

    let (ok, stdout, _) = popper(&dir, &["experiment", "list"]);
    assert!(ok);
    assert!(stdout.contains("gassyfs"));

    let (ok, _, _) = popper(&dir, &["add", "cloverleaf", "hydro"]);
    assert!(ok);
    let (ok, stdout, _) = popper(&dir, &["run", "hydro"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("OK"));

    let (ok, stdout, _) = popper(&dir, &["figure", "hydro"]);
    assert!(ok);
    assert!(stdout.contains("workload"), "{stdout}");

    // Exit codes: unknown command fails with stderr.
    let (ok, _, stderr) = popper(&dir, &["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_help_and_pack() {
    let dir = temp_dir("help");
    let (ok, stdout, _) = popper(&dir, &["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    popper(&dir, &["init"]);
    popper(&dir, &["add", "zlog", "z"]);
    let (ok, stdout, _) = popper(&dir, &["pack", "z"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("packed experiment 'z'"));
    fs::remove_dir_all(&dir).ok();
}
