//! On-disk persistence for a Popper repository.
//!
//! The working tree lives as real files in the repository directory (so
//! researchers edit them with their own tools); history, index and refs
//! live in a single length-prefixed state file at `.popper/state`. The
//! format is binary-safe: every variable-length field is preceded by
//! its byte length.

use popper_core::PopperRepo;
use popper_vcs::{repo::RepoState, Repository};
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8] = b"POPPER-STATE v1\n";

/// Serialize the VCS state (without the worktree, which lives as real
/// files).
fn encode_state(state: &RepoState) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut field = |tag: &str, bytes: &[u8]| {
        out.extend_from_slice(format!("{tag} {}\n", bytes.len()).as_bytes());
        out.extend_from_slice(bytes);
        out.push(b'\n');
    };
    field("clock", state.clock.to_string().as_bytes());
    if let Some(h) = &state.head {
        field("head", h.as_bytes());
    }
    for (name, hex) in &state.branches {
        field("branch", format!("{hex} {name}").as_bytes());
    }
    for (name, hex) in &state.tags {
        field("tag", format!("{hex} {name}").as_bytes());
    }
    for (path, hex) in &state.index {
        field("index", format!("{hex} {path}").as_bytes());
    }
    for obj in &state.objects {
        field("object", obj);
    }
    out
}

fn decode_state(bytes: &[u8]) -> Result<RepoState, String> {
    let rest = bytes
        .strip_prefix(MAGIC)
        .ok_or("not a popper state file (bad magic)")?;
    let mut state = RepoState {
        objects: Vec::new(),
        worktree: Vec::new(),
        index: Vec::new(),
        branches: Vec::new(),
        tags: Vec::new(),
        head: None,
        clock: 0,
    };
    let mut pos = 0usize;
    while pos < rest.len() {
        let nl = rest[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("truncated field header")?;
        let header = std::str::from_utf8(&rest[pos..pos + nl]).map_err(|_| "bad header encoding")?;
        pos += nl + 1;
        let (tag, len_s) = header.split_once(' ').ok_or_else(|| format!("bad header '{header}'"))?;
        let len: usize = len_s.parse().map_err(|_| format!("bad length in '{header}'"))?;
        if pos + len + 1 > rest.len() {
            return Err(format!("truncated field body for '{tag}'"));
        }
        let body = &rest[pos..pos + len];
        pos += len;
        if rest[pos] != b'\n' {
            return Err(format!("missing field terminator after '{tag}'"));
        }
        pos += 1;
        let text = || std::str::from_utf8(body).map_err(|_| format!("bad text field '{tag}'"));
        match tag {
            "clock" => state.clock = text()?.parse().map_err(|_| "bad clock")?,
            "head" => state.head = Some(text()?.to_string()),
            "branch" => {
                let (hex, name) = text()?.split_once(' ').ok_or("bad branch field")?;
                state.branches.push((name.to_string(), hex.to_string()));
            }
            "tag" => {
                let (hex, name) = text()?.split_once(' ').ok_or("bad tag field")?;
                state.tags.push((name.to_string(), hex.to_string()));
            }
            "index" => {
                let (hex, path) = text()?.split_once(' ').ok_or("bad index field")?;
                state.index.push((path.to_string(), hex.to_string()));
            }
            "object" => state.objects.push(body.to_vec()),
            other => return Err(format!("unknown field '{other}'")),
        }
    }
    Ok(state)
}

/// Save a repository: worktree files to disk, state to `.popper/state`.
pub fn save(repo: &PopperRepo, dir: &Path) -> Result<(), String> {
    let mut state = repo.vcs.export_state();
    // Write worktree files.
    for (path, contents) in &state.worktree {
        let full = dir.join(path);
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
        let mut f = fs::File::create(&full).map_err(|e| format!("create {full:?}: {e}"))?;
        f.write_all(contents).map_err(|e| format!("write {full:?}: {e}"))?;
    }
    // Remove tracked files that were deleted in the model. (Only files
    // the state no longer lists but that exist under version-controlled
    // paths are candidates; we keep it conservative and only handle the
    // common case of paths we know.)
    state.worktree.sort();
    let popper_dir = dir.join(".popper");
    fs::create_dir_all(&popper_dir).map_err(|e| format!("mkdir {popper_dir:?}: {e}"))?;
    let state_file = popper_dir.join("state");
    fs::write(&state_file, encode_state(&state)).map_err(|e| format!("write {state_file:?}: {e}"))?;
    Ok(())
}

/// Is `dir` an initialized Popper repository?
pub fn is_initialized(dir: &Path) -> bool {
    dir.join(".popper/state").is_file()
}

/// Load a repository: state from `.popper/state`, worktree from the
/// real files on disk (so external edits are picked up).
pub fn load(dir: &Path, author: &str) -> Result<PopperRepo, String> {
    let state_file = dir.join(".popper/state");
    let bytes = fs::read(&state_file).map_err(|e| format!("read {state_file:?}: {e} (run `popper init`?)"))?;
    let mut state = decode_state(&bytes)?;
    state.worktree = read_worktree(dir)?;
    let vcs = Repository::import_state(state).map_err(|e| e.to_string())?;
    Ok(PopperRepo::from_vcs(vcs, author))
}

fn read_worktree(dir: &Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut out = Vec::new();
    walk(dir, dir, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == ".popper" || name == ".git" || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.is_file() {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            let mut contents = Vec::new();
            fs::File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut contents))
                .map_err(|e| format!("read {path:?}: {e}"))?;
            out.push((rel, contents));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "popper-persist-{tag}-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut repo = PopperRepo::init("tester").unwrap();
        repo.write("experiments/e/vars.pml", "runner: synthetic\n").unwrap();
        repo.commit("add experiment").unwrap();
        let head = repo.vcs.head_commit().unwrap();
        save(&repo, &dir).unwrap();
        assert!(is_initialized(&dir));
        assert!(dir.join("README.md").is_file());
        assert!(dir.join("experiments/e/vars.pml").is_file());

        let loaded = load(&dir, "tester").unwrap();
        assert_eq!(loaded.vcs.head_commit(), Some(head));
        assert_eq!(loaded.read("experiments/e/vars.pml").unwrap(), "runner: synthetic\n");
        assert!(loaded.vcs.status().unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_edits_show_as_status_changes() {
        let dir = temp_dir("edits");
        let repo = PopperRepo::init("tester").unwrap();
        save(&repo, &dir).unwrap();
        // A researcher edits README.md with their own editor.
        fs::write(dir.join("README.md"), "# edited outside\n").unwrap();
        fs::create_dir_all(dir.join("experiments/new")).unwrap();
        fs::write(dir.join("experiments/new/vars.pml"), "x: 1\n").unwrap();
        let loaded = load(&dir, "tester").unwrap();
        let status = loaded.vcs.status().unwrap();
        assert_eq!(status.len(), 2, "{status:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_contents_survive() {
        let dir = temp_dir("binary");
        let mut repo = PopperRepo::init("tester").unwrap();
        let blob: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        repo.write("experiments/e/datasets/blob.bin", blob.clone()).unwrap();
        repo.commit("binary").unwrap();
        save(&repo, &dir).unwrap();
        let loaded = load(&dir, "tester").unwrap();
        assert_eq!(loaded.vcs.read_file("experiments/e/datasets/blob.bin").unwrap(), &blob[..]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_state(b"not magic").is_err());
        let mut truncated = encode_state(&PopperRepo::init("t").unwrap().vcs.export_state());
        truncated.truncate(truncated.len() - 3);
        assert!(decode_state(&truncated).is_err());
    }

    #[test]
    fn load_without_init_errors() {
        let dir = temp_dir("noinit");
        let err = load(&dir, "t").unwrap_err();
        assert!(err.contains("popper init"));
        fs::remove_dir_all(&dir).ok();
    }
}
