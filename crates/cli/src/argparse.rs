//! A small argument parser: `popper <command> [subcommand] [args…]
//! [--flag[=value]]`.

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parsed {
    /// Positional arguments in order (command first).
    pub positional: Vec<String>,
    /// `--flag` / `--flag=value` / `--flag value` options.
    pub flags: Vec<(String, Option<String>)>,
}

impl Parsed {
    /// The command (first positional), if any.
    pub fn command(&self) -> Option<&str> {
        self.positional.first().map(String::as_str)
    }

    /// Positional argument `i` (0 = the command itself).
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Is a boolean flag present?
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The value of `--name=value` or `--name value`.
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// A numeric flag with a default.
    pub fn flag_num(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flag_value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got '{v}'")),
        }
    }
}

/// Known flags that take a value; everything else is boolean.
const VALUE_FLAGS: &[&str] = &[
    "author",
    "workers",
    "nodes",
    "seed",
    "column",
    "schedule",
    "tolerance",
    "trace-buffer",
    "tenants",
    "jobs",
    "template",
    "port",
    "sim-workers",
];

/// Parse argv (program name already stripped).
pub fn parse(argv: &[&str]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i];
        if let Some(flag) = arg.strip_prefix("--") {
            if flag.is_empty() {
                return Err("stray '--'".into());
            }
            if let Some((name, value)) = flag.split_once('=') {
                out.flags.push((name.to_string(), Some(value.to_string())));
            } else if VALUE_FLAGS.contains(&flag) {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{flag} expects a value"))?;
                out.flags.push((flag.to_string(), Some(value.to_string())));
                i += 1;
            } else {
                out.flags.push((flag.to_string(), None));
            }
        } else if arg.starts_with('-') && arg.len() > 1 {
            return Err(format!("unknown short option '{arg}' (use --long flags)"));
        } else {
            out.positional.push(arg.to_string());
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_and_flags() {
        let p = parse(&["add", "torpor", "myexp", "--author", "ivo", "--force"]).unwrap();
        assert_eq!(p.command(), Some("add"));
        assert_eq!(p.pos(1), Some("torpor"));
        assert_eq!(p.pos(2), Some("myexp"));
        assert_eq!(p.flag_value("author"), Some("ivo"));
        assert!(p.has_flag("force"));
        assert!(!p.has_flag("missing"));
    }

    #[test]
    fn equals_form() {
        let p = parse(&["ci", "--workers=8", "--verbose"]).unwrap();
        assert_eq!(p.flag_value("workers"), Some("8"));
        assert_eq!(p.flag_num("workers", 2.0).unwrap(), 8.0);
        assert_eq!(p.flag_num("other", 2.0).unwrap(), 2.0);
        assert!(p.has_flag("verbose"));
    }

    #[test]
    fn errors() {
        assert!(parse(&["x", "--author"]).is_err()); // missing value
        assert!(parse(&["--"]).is_err());
        assert!(parse(&["-x"]).is_err());
        let p = parse(&["ci", "--workers=abc"]).unwrap();
        assert!(p.flag_num("workers", 1.0).is_err());
    }

    #[test]
    fn empty_argv() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.command(), None);
    }
}
