//! # popper-cli
//!
//! The `popper` command-line tool — the paper's "experiment
//! bootstrapping tool that makes Popper-compliant experiments readily
//! available to researchers" (Listing 2):
//!
//! ```text
//! $ cd mypaper-repo
//! $ popper init
//! -- Initialized Popper repo
//!
//! $ popper experiment list
//! -- available templates ---------------
//! ceph-rados        proteustm  mpi-comm-variability
//! cloverleaf        gassyfs    zlog
//! spark-standalone  torpor     malacology
//!
//! $ popper add torpor myexp
//! ```
//!
//! * [`argparse`] — a small hand-rolled argument parser (the approved
//!   offline crate set does not include `clap`).
//! * [`persist`] — on-disk persistence: the working tree lives as real
//!   files, the VCS state under `.popper/state`.
//! * [`runners`] — registration of the real experiment runners
//!   (`gassyfs-scalability`, `torpor-variability`, `mpi-variability`,
//!   `bww-airtemp`) with the [`popper_core::ExperimentEngine`].
//! * [`commands`] — the subcommands: `init`, `experiment list`, `add`,
//!   `paper list/add`, `check`, `run`, `ci`, `status`, `log`, `figure`.

pub mod argparse;
pub mod commands;
pub mod error;
pub mod persist;
pub mod runners;

/// Run the CLI against `argv` (without the program name) in `dir`.
/// Returns the text to print, or an error message (exit code 1).
pub fn run(argv: &[&str], dir: &std::path::Path) -> Result<String, String> {
    let parsed = argparse::parse(argv)?;
    commands::dispatch(&parsed, dir)
}
