//! The `popper` subcommands.

use crate::argparse::Parsed;
use crate::error::OrFail;
use crate::persist;
use crate::runners::full_engine;
use parking_lot::Mutex;
use popper_core::{
    check::check_compliance,
    cipipeline::run_ci,
    paper::build_paper,
    templates::{experiment_templates, find_template, paper_template_files, paper_templates},
    PopperRepo,
};
use std::path::Path;
use std::sync::Arc;

/// Dispatch a parsed command line in `dir`.
pub fn dispatch(parsed: &Parsed, dir: &Path) -> Result<String, String> {
    let author = parsed.flag_value("author").unwrap_or("anonymous researcher").to_string();
    // `--sim-workers N` shards every simulation this invocation drives
    // across N worker threads (results are byte-identical to N=1; see
    // `popper_sim::shard`). Runners pick it up via the environment so
    // the knob reaches simulations behind any pipeline depth.
    if let Some(v) = parsed.flag_value("sim-workers") {
        let n = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--sim-workers expects a positive integer, got '{v}'"))?;
        std::env::set_var("POPPER_SIM_WORKERS", n.to_string());
    }
    match parsed.command() {
        None | Some("help") => Ok(help_text()),
        Some("init") => cmd_init(dir, &author),
        Some("experiment") => match parsed.pos(1) {
            Some("list") | None => Ok(template_listing()),
            Some("add") => {
                let tpl = parsed.pos(2).ok_or("usage: popper experiment add <template> <name>")?;
                let name = parsed.pos(3).ok_or("usage: popper experiment add <template> <name>")?;
                cmd_add(dir, &author, tpl, name)
            }
            Some(other) => Err(format!("unknown experiment subcommand '{other}'")),
        },
        Some("add") => {
            let tpl = parsed.pos(1).ok_or("usage: popper add <template> <name>")?;
            let name = parsed.pos(2).ok_or("usage: popper add <template> <name>")?;
            cmd_add(dir, &author, tpl, name)
        }
        Some("paper") => match parsed.pos(1) {
            Some("list") | None => {
                let mut out = String::from("-- available paper templates ---------\n");
                for (name, desc) in paper_templates() {
                    out.push_str(&format!("{name:<10} {desc}\n"));
                }
                Ok(out)
            }
            Some("add") => {
                let tpl = parsed.pos(2).ok_or("usage: popper paper add <template>")?;
                cmd_paper_add(dir, &author, tpl)
            }
            Some("build") => {
                let repo = persist::load(dir, &author)?;
                let built = build_paper(&repo).map_err(|e| e.to_string())?;
                Ok(format!(
                    "-- built '{}' ({} sections, {} figures)\n\n{}",
                    built.title,
                    built.sections.len(),
                    built.figures.len(),
                    built.output
                ))
            }
            Some(other) => Err(format!("unknown paper subcommand '{other}'")),
        },
        Some("check") => {
            let repo = persist::load(dir, &author)?;
            let violations = check_compliance(&repo);
            if violations.is_empty() {
                Ok("-- repository is Popper-compliant\n".into())
            } else {
                let fatal = violations.iter().filter(|v| v.fatal).count();
                let mut out = String::new();
                for v in &violations {
                    out.push_str(&format!("{v}\n"));
                }
                if fatal > 0 {
                    Err(format!("{out}-- {fatal} fatal violation(s)"))
                } else {
                    Ok(format!("{out}-- compliant with warnings\n"))
                }
            }
        }
        Some("run") => {
            let name = parsed.pos(1).ok_or("usage: popper run <experiment> [--no-cache]")?;
            let mut repo = persist::load(dir, &author)?;
            let engine = full_engine();
            let mut ctx = popper_core::RunContext::for_experiment(&repo, name)?;
            if cache_enabled(parsed) {
                ctx = ctx.with_memo(popper_core::lifecycle_session(&repo, name, "run", &[]));
            }
            engine.run_pipeline(&mut repo, &mut ctx)?;
            let memo = memo_line(ctx.memo_stats());
            let report = popper_core::experiment::RunReport::from_ctx(ctx);
            persist::save(&repo, dir)?;
            if report.success() {
                Ok(format!("{report}\n{memo}"))
            } else {
                Err(format!("{report}"))
            }
        }
        Some("validate") => {
            let name = parsed.pos(1).ok_or("usage: popper validate <experiment>")?;
            let repo = persist::load(dir, &author)?;
            let csv = repo
                .read(&format!("experiments/{name}/results.csv"))
                .ok_or_else(|| format!("experiment '{name}' has no results.csv (run it first)"))?;
            let src = repo
                .experiment_validations(name)
                .ok_or_else(|| format!("experiment '{name}' has no validations.aver"))?;
            let table = popper_format::Table::from_csv(&csv).map_err(|e| e.to_string())?;
            let verdict = popper_aver::check(&src, &table).map_err(|e| e.to_string())?;
            if verdict.passed {
                Ok(format!("{verdict}\n"))
            } else {
                Err(verdict.to_string())
            }
        }
        Some("ci") => {
            let workers = parsed.flag_num("workers", 4.0)?.max(1.0) as usize;
            let repo = Arc::new(Mutex::new(persist::load(dir, &author)?));
            let engine = Arc::new(full_engine());
            let report = run_ci(repo.clone(), engine, workers)?;
            persist::save(&repo.lock(), dir)?;
            let badge = if report.passed() { "build: passing" } else { "build: failing" };
            let out = format!("{}\n[{badge}]\n", report.summary());
            if report.passed() {
                Ok(out)
            } else {
                Err(out)
            }
        }
        Some("status") => {
            let repo = persist::load(dir, &author)?;
            let mut out = String::new();
            out.push_str(&repo.tree());
            let status = repo.vcs.status().map_err(|e| e.to_string())?;
            if status.is_empty() {
                out.push_str("\n-- working tree clean\n");
            } else {
                out.push_str("\n-- uncommitted changes:\n");
                for c in status {
                    out.push_str(&format!("  {c:?}\n"));
                }
            }
            Ok(out)
        }
        Some("log") => {
            let repo = persist::load(dir, &author)?;
            let head = repo.vcs.head_commit().ok_or("no commits yet")?;
            let mut out = String::new();
            for (id, commit) in repo.vcs.log(head).map_err(|e| e.to_string())? {
                out.push_str(&format!("{} {}\n", id.short(), commit.message));
            }
            Ok(out)
        }
        Some("diff") => {
            let path = parsed.pos(1).ok_or("usage: popper diff <path>")?;
            let repo = persist::load(dir, &author)?;
            let head = repo.vcs.head_commit().ok_or("no commits yet")?;
            let d = repo.vcs.diff_file(head, path).map_err(|e| e.to_string())?;
            if d.is_empty() {
                Ok(format!("-- '{path}' unchanged since HEAD\n"))
            } else {
                Ok(d)
            }
        }
        Some("verify") => {
            let name = parsed.pos(1).ok_or("usage: popper verify <experiment> [--no-cache]")?;
            let mut repo = persist::load(dir, &author)?;
            let engine = full_engine();
            let mut ctx = popper_core::RunContext::for_experiment(&repo, name)?;
            if cache_enabled(parsed) {
                ctx = ctx.with_memo(popper_core::lifecycle_session(&repo, name, "verify", &[]));
            }
            engine.verify_pipeline(&mut repo, &mut ctx)?;
            let memo = memo_line(ctx.memo_stats());
            let verdict = popper_core::ReproVerdict::from_ctx(&ctx)?;
            persist::save(&repo, dir)?;
            match verdict {
                popper_core::ReproVerdict::Identical => Ok(format!("{verdict}\n{memo}")),
                other => Err(other.to_string()),
            }
        }
        Some("figure") => {
            let name = parsed.pos(1).ok_or("usage: popper figure <experiment>")?;
            let repo = persist::load(dir, &author)?;
            repo.read(&format!("experiments/{name}/figure.txt"))
                .ok_or_else(|| format!("experiment '{name}' has no figure.txt (run it first)"))
        }
        Some("regression") => {
            let name = parsed.pos(1).ok_or("usage: popper regression <experiment> --column <col>")?;
            let column = parsed.flag_value("column").ok_or("usage: popper regression <experiment> --column <col>")?;
            let repo = Arc::new(Mutex::new(persist::load(dir, &author)?));
            let executor = popper_core::cipipeline::popper_steps(repo, Arc::new(full_engine()));
            let outcome = executor(&popper_ci::StepCtx {
                command: format!("regression-gate {name} {column}"),
                env: Default::default(),
                job: "regression".into(),
            });
            if outcome.success {
                Ok(format!("{}\n", outcome.log))
            } else {
                Err(outcome.log)
            }
        }
        Some("branch") => {
            let name = parsed.pos(1).ok_or("usage: popper branch <name>")?;
            let mut repo = persist::load(dir, &author)?;
            repo.vcs.create_branch(name).map_err(|e| e.to_string())?;
            persist::save(&repo, dir)?;
            Ok(format!("-- created and switched to branch '{name}'\n"))
        }
        Some("checkout") => {
            let name = parsed.pos(1).ok_or("usage: popper checkout <branch>")?;
            let mut repo = persist::load(dir, &author)?;
            repo.vcs.checkout(name).map_err(|e| e.to_string())?;
            persist::save(&repo, dir)?;
            Ok(format!("-- switched to branch '{name}'\n"))
        }
        Some("merge") => {
            let name = parsed.pos(1).ok_or("usage: popper merge <branch>")?;
            let mut repo = persist::load(dir, &author)?;
            let outcome = repo.vcs.merge_branch(name, &author).map_err(|e| e.to_string())?;
            persist::save(&repo, dir)?;
            match outcome {
                popper_vcs::MergeOutcome::Merged(id) => Ok(format!("-- merged '{name}' ({})\n", id.short())),
                popper_vcs::MergeOutcome::FastForward(id) => {
                    Ok(format!("-- fast-forwarded to '{name}' ({})\n", id.short()))
                }
                popper_vcs::MergeOutcome::UpToDate => Ok("-- already up to date\n".into()),
                popper_vcs::MergeOutcome::Conflicted(conflicts) => {
                    let mut out = String::from("-- merge conflicts; resolve the markers and `popper commit`:\n");
                    for c in conflicts {
                        out.push_str(&format!("   {}\n", c.path));
                    }
                    Err(out)
                }
            }
        }
        Some("pack") => {
            let name = parsed.pos(1).ok_or("usage: popper pack <experiment>")?;
            let repo = persist::load(dir, &author)?;
            if parsed.has_flag("show-popperfile") {
                return popper_core::pack::popperfile_for(&repo, name).map_err(|e| e.to_string());
            }
            let mut registry = popper_container::ImageRegistry::new();
            let mut cache = popper_container::BuildCache::new();
            let image = popper_core::pack::pack_experiment(&repo, name, &mut registry, &mut cache)
                .map_err(|e| e.to_string())?;
            let commit = image
                .config
                .labels
                .get("org.popper.commit")
                .and_then(|c| c.get(..10))
                .unwrap_or("?");
            Ok(format!(
                "-- packed experiment '{name}' as {} ({} layer(s), commit {commit})\n",
                image.reference(),
                image.layers.len(),
            ))
        }
        Some("trace") => {
            let name = parsed.pos(1).ok_or("usage: popper trace <experiment> [--no-cache]")?;
            let mut repo = persist::load(dir, &author)?;
            let engine = full_engine();
            // The run pipeline with an ordered recorder attached: the
            // recorder buffers the whole lifecycle (engine/CI/orchestra
            // wall-clock spans plus any simulation the runner drives)
            // so the SVG and summary can render from the events.
            let mut ctx = popper_core::RunContext::for_experiment(&repo, name)?
                .with_recorder(popper_trace::TraceRecorder::ordered());
            if cache_enabled(parsed) {
                ctx = ctx.with_memo(popper_core::lifecycle_session(&repo, name, "trace", &[]));
            }
            engine.run_pipeline(&mut repo, &mut ctx)?;
            let mut artifacts = std::mem::take(&mut ctx.artifacts);
            let recording = ctx
                .finish_recording()
                .or_fail("popper trace", "no trace recorder attached to the run context")?;
            let memo = memo_line(ctx.memo_stats());
            let report = popper_core::experiment::RunReport::from_ctx(ctx);
            let svg = popper_trace::timeline_svg(&recording.events);
            let summary = recording.summary();
            artifacts.stage(format!("experiments/{name}/trace.json"), recording.json.into_bytes());
            artifacts.stage(format!("experiments/{name}/trace.svg"), svg.into_bytes());
            artifacts.commit_into(
                &mut repo,
                &format!("popper trace {name}: record trace"),
                popper_core::CommitPolicy::Always,
            )?;
            persist::save(&repo, dir)?;
            let out = format!(
                "{}\n-- traced {} event(s) -> experiments/{name}/trace.json, trace.svg\n{memo}{summary}",
                report, recording.count,
            );
            if report.success() {
                Ok(out)
            } else {
                Err(out)
            }
        }
        Some("trace-diff") => {
            let usage = "usage: popper trace-diff <experiment> <refA>..<refB> [--tolerance <pct>] [--structure-only] [--no-cache]";
            let name = parsed.pos(1).ok_or(usage)?;
            let range = parsed.pos(2).ok_or(usage)?;
            let (ref_a, ref_b) = range
                .split_once("..")
                .filter(|(a, b)| !a.is_empty() && !b.is_empty())
                .ok_or(usage)?;
            let tolerance = parsed.flag_num("tolerance", 0.0)?;
            let options = if parsed.has_flag("structure-only") {
                popper_trace::DiffOptions::structure_only()
            } else {
                popper_trace::DiffOptions { tolerance_pct: tolerance, compare_durations: true }
            };
            let mut repo = persist::load(dir, &author)?;
            let engine = full_engine();
            let (report, stats) =
                engine.trace_diff_cached(&mut repo, name, ref_a, ref_b, options, cache_enabled(parsed))?;
            persist::save(&repo, dir)?;
            let memo = memo_line(stats.as_ref());
            let out = format!(
                "{report}\n-- recorded experiments/{name}/trace-diff.json, trace-diff.txt\n{memo}"
            );
            if report.success() {
                Ok(out)
            } else {
                Err(out)
            }
        }
        Some("chaos") => {
            let name = parsed
                .pos(1)
                .ok_or("usage: popper chaos <experiment> [--schedule <name>] [--seed <n>]")?;
            let schedule = parsed.flag_value("schedule");
            let seed = match parsed.flag_value("seed") {
                None => None,
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--seed expects an unsigned integer, got '{v}'"))?,
                ),
            };
            // Trace the run so faults and failovers are visible on the
            // recorded timeline next to the lifecycle spans. Chaos
            // soaks can be long, so the default sink is the streaming
            // Chrome exporter; `--trace-buffer N` bounds the ring
            // between stage absorbs (older events are shed + counted).
            let recorder = match parsed.flag_value("trace-buffer") {
                None => popper_trace::TraceRecorder::streaming(),
                Some(v) => {
                    let cap = v.parse::<usize>().map_err(|_| {
                        format!("--trace-buffer expects an unsigned integer, got '{v}'")
                    })?;
                    popper_trace::TraceRecorder::streaming_with_capacity(cap)
                }
            };
            let mut repo = persist::load(dir, &author)?;
            let engine = full_engine();
            let mut ctx =
                popper_core::RunContext::for_experiment(&repo, name)?.with_recorder(recorder);
            if cache_enabled(parsed) {
                let mut salt = Vec::new();
                if let Some(s) = schedule {
                    salt.push(("schedule".to_string(), s.to_string()));
                }
                if let Some(n) = seed {
                    salt.push(("seed".to_string(), n.to_string()));
                }
                ctx = ctx.with_memo(popper_core::lifecycle_session(&repo, name, "chaos", &salt));
            }
            engine.chaos_pipeline(&mut repo, &mut ctx, schedule, seed)?;
            let mut artifacts = std::mem::take(&mut ctx.artifacts);
            let recording = ctx
                .finish_recording()
                .or_fail("popper chaos", "no trace recorder attached to the run context")?;
            let memo = memo_line(ctx.memo_stats());
            let report = popper_core::chaosrun::ChaosRunReport::from_ctx(ctx)?;
            artifacts.stage(format!("experiments/{name}/trace.json"), recording.json.into_bytes());
            artifacts.commit_into(
                &mut repo,
                &format!("popper chaos {name}: record trace"),
                popper_core::CommitPolicy::Always,
            )?;
            persist::save(&repo, dir)?;
            let out = format!(
                "{report}\n-- recorded experiments/{name}/faults.json, recovery.json, trace.json ({} event(s))\n{memo}",
                recording.count,
            );
            if report.success() {
                Ok(out)
            } else {
                Err(out)
            }
        }
        Some("farm") => match parsed.pos(1) {
            Some("serve") => cmd_farm_serve(parsed, dir),
            Some("submit") => cmd_farm_submit(parsed, dir, &author),
            Some(other) => Err(format!("unknown farm subcommand '{other}'; try serve or submit")),
            None => Err("usage: popper farm serve|submit [--tenants N] [--jobs M]".into()),
        },
        Some("store") => match parsed.pos(1) {
            Some("stats") => {
                let repo = persist::load(dir, &author)?;
                Ok(format!("-- {}\n", popper_core::cipipeline::store_stats_report(&repo)))
            }
            Some(other) => Err(format!("unknown store subcommand '{other}'; try stats")),
            None => Err("usage: popper store stats".into()),
        },
        Some("commit") => {
            let mut repo = persist::load(dir, &author)?;
            let message = parsed.pos(1).unwrap_or("checkpoint").to_string();
            let id = repo.commit(&message).map_err(|e| e.to_string())?;
            persist::save(&repo, dir)?;
            Ok(format!("-- committed {}\n", id.short()))
        }
        Some(other) => Err(format!("unknown command '{other}'; try `popper help`")),
    }
}

/// Stage memoization is on unless `--no-cache` or `POPPER_NO_CACHE`
/// turns it off for this invocation.
fn cache_enabled(parsed: &Parsed) -> bool {
    !parsed.has_flag("no-cache") && !popper_core::cache_disabled_by_env()
}

/// The one-line `memo: N hits / M misses (X ms saved)` summary, or
/// nothing when the lifecycle ran without a session.
fn memo_line(stats: Option<&popper_core::MemoStats>) -> String {
    match stats {
        Some(s) => format!("{}\n", s.summary()),
        None => String::new(),
    }
}

fn cmd_init(dir: &Path, author: &str) -> Result<String, String> {
    if persist::is_initialized(dir) {
        return Err("already a Popper repository (found .popper/state)".into());
    }
    let repo = PopperRepo::init(author).map_err(|e| e.to_string())?;
    persist::save(&repo, dir)?;
    Ok("-- Initialized Popper repo\n".into())
}

fn cmd_add(dir: &Path, author: &str, tpl: &str, name: &str) -> Result<String, String> {
    let template = find_template(tpl)
        .ok_or_else(|| format!("unknown template '{tpl}'; see `popper experiment list`"))?;
    let mut repo = persist::load(dir, author)?;
    if repo.experiments().contains(&name.to_string()) {
        return Err(format!("experiment '{name}' already exists"));
    }
    for (path, contents) in template.files(name) {
        repo.write(&path, contents).map_err(|e| e.to_string())?;
    }
    repo.commit(&format!("popper add {tpl} {name}")).map_err(|e| e.to_string())?;
    persist::save(&repo, dir)?;
    Ok(format!("-- added experiment '{name}' from template '{tpl}'\n"))
}

fn cmd_paper_add(dir: &Path, author: &str, tpl: &str) -> Result<String, String> {
    let files = paper_template_files(tpl)
        .ok_or_else(|| format!("unknown paper template '{tpl}'; see `popper paper list`"))?;
    let mut repo = persist::load(dir, author)?;
    for (path, contents) in files {
        repo.write(&path, contents).map_err(|e| e.to_string())?;
    }
    repo.commit(&format!("popper paper add {tpl}")).map_err(|e| e.to_string())?;
    persist::save(&repo, dir)?;
    Ok(format!("-- installed paper template '{tpl}'\n"))
}

/// `popper farm serve`: spin up a multi-tenant farm with synthetic
/// tenants seeded from a template, push a batch of jobs through it
/// (optionally under chaos and/or with the status endpoint bound), and
/// print the final report. The canonical event log — deterministic for
/// a given seed — is written to `farm-events.log`.
fn cmd_farm_serve(parsed: &Parsed, dir: &Path) -> Result<String, String> {
    let tenants = parsed.flag_num("tenants", 4.0)?.max(1.0) as usize;
    let jobs = parsed.flag_num("jobs", 4.0)?.max(1.0) as u64;
    let workers = parsed.flag_num("workers", 2.0)?.max(1.0) as usize;
    let template = parsed.flag_value("template").unwrap_or("ceph-rados");
    let seed = parsed.flag_num("seed", 7.0)?.max(0.0) as u64;
    let mut builder = popper_farm::FarmBuilder::new(Arc::new(full_engine()))
        .config(popper_farm::FarmConfig { workers, ..Default::default() });
    if let Some(name) = parsed.flag_value("schedule") {
        let schedule = popper_chaos::FaultSchedule::named(name, workers.max(2), seed)
            .or_fail("popper farm serve", "bad --schedule")?;
        builder = builder.chaos(schedule);
    }
    for i in 1..=tenants {
        builder = builder.tenant(&format!("t{i}"), template, "exp")?;
    }
    let farm = builder.build()?;
    let server = match parsed.flag_value("port") {
        Some(p) => Some(farm.serve(&format!("127.0.0.1:{p}"))?),
        None => None,
    };
    let mut out = format!("-- popper farm: {tenants} tenant(s) x {jobs} job(s), {workers} worker(s)\n");
    if let Some(s) = &server {
        out.push_str(&format!("-- serving status/badges on http://{}\n", s.addr()));
    }
    for _ in 0..jobs {
        for i in 1..=tenants {
            submit_with_backoff(&farm, &format!("t{i}"), "exp")?;
        }
    }
    farm.drain();
    if let Some(s) = &server {
        // Round-trip the badge through the real socket so the endpoint
        // is exercised, not just bound.
        let badge = http_get(s.addr(), "/badge.svg")
            .or_fail("popper farm serve", "badge fetch failed")?;
        let state = ["passing", "failing", "unknown"]
            .iter()
            .find(|w| badge.contains(*w))
            .unwrap_or(&"?");
        out.push_str(&format!("-- badge: {state}\n"));
    }
    std::fs::write(dir.join("farm-events.log"), farm.event_log())
        .or_fail("popper farm serve", "writing farm-events.log")?;
    let report = farm.shutdown();
    if let Some(s) = server {
        s.stop();
    }
    out.push_str(&format!("{report}-- wrote farm-events.log\n"));
    if report.lost == 0 {
        Ok(out)
    } else {
        Err(format!("{out}-- {} job(s) lost\n", report.lost))
    }
}

/// `popper farm submit`: run an experiment from *this* repo across N
/// tenant clones — the "is my experiment farm-ready?" smoke test.
fn cmd_farm_submit(parsed: &Parsed, dir: &Path, author: &str) -> Result<String, String> {
    let name = parsed
        .pos(2)
        .ok_or("usage: popper farm submit <experiment> [--tenants N] [--jobs M]")?;
    let tenants = parsed.flag_num("tenants", 2.0)?.max(1.0) as usize;
    let jobs = parsed.flag_num("jobs", 2.0)?.max(1.0) as u64;
    let workers = parsed.flag_num("workers", 2.0)?.max(1.0) as usize;
    let repo = persist::load(dir, author)?;
    if !repo.experiments().contains(&name.to_string()) {
        return Err(format!("experiment '{name}' not found; `popper add` it first"));
    }
    let mut builder = popper_farm::FarmBuilder::new(Arc::new(full_engine()))
        .config(popper_farm::FarmConfig { workers, ..Default::default() });
    for i in 1..=tenants {
        builder = builder.tenant_repo(&format!("t{i}"), repo.clone());
    }
    let farm = builder.build()?;
    for _ in 0..jobs {
        for i in 1..=tenants {
            submit_with_backoff(&farm, &format!("t{i}"), name)?;
        }
    }
    let report = farm.shutdown();
    let out = format!("-- popper farm: {tenants} clone(s) of this repo, {jobs} job(s) each\n{report}");
    if report.lost == 0 && report.tenants.iter().all(|t| t.failed == 0) {
        Ok(out)
    } else {
        Err(out)
    }
}

/// Submit one job, honoring the farm's retry-after backpressure hint.
fn submit_with_backoff(
    farm: &popper_farm::Farm,
    tenant: &str,
    experiment: &str,
) -> Result<(), String> {
    for _ in 0..1000 {
        match farm.submit(tenant, experiment) {
            Ok(_) => return Ok(()),
            Err(popper_farm::SubmitError::QueueFull { retry_after_ms, .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(50)));
            }
            Err(e) => return Err(format!("popper farm: submit for '{tenant}': {e}")),
        }
    }
    Err(format!("popper farm: tenant '{tenant}' queue stayed full"))
}

/// Minimal HTTP GET against the farm's own endpoint.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: farm\r\n\r\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| e.to_string())?;
    Ok(response)
}

/// The Listing-2 style template listing (three columns).
fn template_listing() -> String {
    let mut out = String::from("-- available templates ---------------\n");
    let templates = experiment_templates();
    let names: Vec<&str> = templates.iter().map(|t| t.name).collect();
    let rows = names.len().div_ceil(3);
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0) + 2;
    for r in 0..rows {
        for c in 0..3 {
            if let Some(name) = names.get(c * rows + r) {
                out.push_str(&format!("{name:<width$}"));
            }
        }
        out.push('\n');
    }
    out
}

fn help_text() -> String {
    "\
popper — the Popper convention CLI

USAGE:
    popper <command> [args] [--author <name>]

COMMANDS:
    init                      initialize a Popper repository here
    experiment list           list curated experiment templates
    add <template> <name>     add an experiment from a template
    paper list|add <tpl>      manuscript templates
    paper build               assemble the article (resolves figures)
    check                     compliance check (is this Popperized?)
    run <experiment>          run the full experiment lifecycle
                              [--sim-workers N] shard simulations across N cores
                              (byte-identical results at every N; sharded
                              runners: lulesh-sharded, gassyfs-sharded,
                              orchestra-sharded — others reject the flag)
    trace <experiment>        run with tracing; records trace.json + trace.svg
    trace-diff <exp> <a>..<b> diff recorded traces between two commits; exit 1 on divergence
                              [--tolerance <pct>] [--structure-only]
    chaos <experiment>        run under fault injection; records faults.json + recovery.json
                              [--schedule node-crash|partition|packet-loss|slow-disk|gremlin] [--seed N]
                              [--trace-buffer N] bound the in-flight trace ring during long soaks
    validate <experiment>     re-check Aver validations on stored results\n    verify <experiment>       numerical reproducibility: re-execute and compare bytes
    pack <experiment>         build a provenance-labeled container image\n    ci [--workers N]          run .popper-ci.pml
    farm serve                multi-tenant CI farm over synthetic tenants
                              [--tenants N] [--jobs M] [--workers W] [--template T]
                              [--schedule S] [--seed K] [--port P]
    farm submit <experiment>  run this repo's experiment across tenant clones
                              [--tenants N] [--jobs M] [--workers W]
    store stats               content-addressed store dedup ratio for this repo
    status | log | commit     repository plumbing\n    branch | checkout | merge collaboration plumbing

CACHING:
    run/trace/chaos/verify/trace-diff memoize their stages: a repeat
    with unchanged inputs replays recorded outputs byte-identically and
    prints `memo: N hits / M misses (X ms saved)`. Disable per
    invocation with --no-cache, or globally with POPPER_NO_CACHE=1.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use crate::run;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "popper-cli-{tag}-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn listing_two_session() {
        // The exact session of Listing 2.
        let dir = temp_dir("listing2");
        let out = run(&["init"], &dir).unwrap();
        assert!(out.contains("-- Initialized Popper repo"));

        let out = run(&["experiment", "list"], &dir).unwrap();
        assert!(out.contains("-- available templates"));
        for name in ["ceph-rados", "proteustm", "mpi-comm-variability", "cloverleaf", "gassyfs", "zlog", "spark-standalone", "torpor", "malacology"] {
            assert!(out.contains(name), "listing missing {name}:\n{out}");
        }

        let out = run(&["add", "torpor", "myexp"], &dir).unwrap();
        assert!(out.contains("added experiment 'myexp'"));
        assert!(dir.join("experiments/myexp/vars.pml").is_file());
        assert!(dir.join("experiments/myexp/validations.aver").is_file());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_init_fails() {
        let dir = temp_dir("doubleinit");
        run(&["init"], &dir).unwrap();
        assert!(run(&["init"], &dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_and_status() {
        let dir = temp_dir("check");
        run(&["init"], &dir).unwrap();
        run(&["add", "ceph-rados", "e"], &dir).unwrap();
        let out = run(&["check"], &dir).unwrap();
        assert!(out.contains("results.csv"), "warns about missing results: {out}");
        let out = run(&["status"], &dir).unwrap();
        assert!(out.contains("paper-repo"));
        assert!(out.contains("working tree clean"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_and_validate_synthetic_experiment() {
        let dir = temp_dir("run");
        run(&["init"], &dir).unwrap();
        run(&["add", "ceph-rados", "e"], &dir).unwrap();
        let out = run(&["run", "e"], &dir).unwrap();
        assert!(out.contains("OK"), "{out}");
        assert!(dir.join("experiments/e/results.csv").is_file());
        assert!(dir.join("experiments/e/figure.txt").is_file());
        let out = run(&["validate", "e"], &dir).unwrap();
        assert!(out.contains("PASS"));
        let out = run(&["log"], &dir).unwrap();
        assert!(out.contains("record results"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ci_pipeline_via_cli() {
        let dir = temp_dir("ci");
        run(&["init"], &dir).unwrap();
        run(&["add", "zlog", "z"], &dir).unwrap();
        let out = run(&["ci", "--workers=2"], &dir).unwrap();
        assert!(out.contains("build: passing"), "{out}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paper_build_via_cli() {
        let dir = temp_dir("paper");
        run(&["init"], &dir).unwrap();
        let out = run(&["paper", "build"], &dir).unwrap();
        assert!(out.contains("built"));
        let out = run(&["paper", "list"], &dir).unwrap();
        assert!(out.contains("bams"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_edit_then_commit() {
        let dir = temp_dir("edit");
        run(&["init"], &dir).unwrap();
        fs::write(dir.join("README.md"), "# my paper\n").unwrap();
        let out = run(&["status"], &dir).unwrap();
        assert!(out.contains("uncommitted"));
        run(&["commit", "edit readme"], &dir).unwrap();
        let out = run(&["status"], &dir).unwrap();
        assert!(out.contains("working tree clean"));
        let out = run(&["log"], &dir).unwrap();
        assert!(out.contains("edit readme"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_via_cli() {
        let dir = temp_dir("chaos");
        run(&["init"], &dir).unwrap();
        run(&["add", "gassyfs", "g"], &dir).unwrap();
        let out = run(&["chaos", "g", "--schedule", "node-crash", "--seed", "7"], &dir).unwrap();
        assert!(out.contains("SURVIVED"), "{out}");
        assert!(out.contains("recovery:"), "{out}");
        for artifact in ["faults.json", "recovery.json", "results.csv", "trace.json"] {
            assert!(dir.join(format!("experiments/g/{artifact}")).is_file(), "missing {artifact}");
        }
        let faults = fs::read_to_string(dir.join("experiments/g/faults.json")).unwrap();
        assert!(faults.contains("\"crash\""), "{faults}");
        let trace = fs::read_to_string(dir.join("experiments/g/trace.json")).unwrap();
        assert!(trace.contains("chaos"), "fault injections must appear in the trace");
        let log = run(&["log"], &dir).unwrap();
        assert!(log.contains("record fault timeline"), "{log}");
        assert!(run(&["chaos", "g", "--schedule", "warp"], &dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn farm_serve_via_cli() {
        let dir = temp_dir("farm-serve");
        // No repo needed: farm serve seeds synthetic tenants. Bind port
        // 0 so the badge round-trip exercises the real HTTP endpoint.
        let out = run(
            &["farm", "serve", "--tenants", "2", "--jobs", "2", "--port", "0"],
            &dir,
        )
        .unwrap();
        assert!(out.contains("serving status/badges"), "{out}");
        assert!(out.contains("badge: passing"), "{out}");
        assert!(out.contains("0 lost"), "{out}");
        let log = fs::read_to_string(dir.join("farm-events.log")).unwrap();
        assert!(log.starts_with("farm-events v1"), "{log}");
        assert!(log.contains("t1#1"), "{log}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn farm_submit_via_cli() {
        let dir = temp_dir("farm-submit");
        run(&["init"], &dir).unwrap();
        run(&["add", "ceph-rados", "e"], &dir).unwrap();
        let out = run(&["farm", "submit", "e", "--tenants", "2", "--jobs", "2"], &dir).unwrap();
        assert!(out.contains("2 clone(s)"), "{out}");
        assert!(out.contains("0 lost"), "{out}");
        assert!(run(&["farm", "submit", "ghost"], &dir).is_err());
        assert!(run(&["farm", "frobnicate"], &dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_stats_via_cli() {
        let dir = temp_dir("store-stats");
        run(&["init"], &dir).unwrap();
        run(&["add", "ceph-rados", "e"], &dir).unwrap();
        let out = run(&["store", "stats"], &dir).unwrap();
        assert!(out.contains("vcs object(s)"), "{out}");
        assert!(out.contains("dedup"), "{out}");
        assert!(run(&["store", "frobnicate"], &dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_paths() {
        let dir = temp_dir("errors");
        assert!(run(&["run", "e"], &dir).is_err(), "not initialized");
        run(&["init"], &dir).unwrap();
        assert!(run(&["add", "no-such-template", "e"], &dir).is_err());
        assert!(run(&["frobnicate"], &dir).is_err());
        assert!(run(&["validate", "ghost"], &dir).is_err());
        run(&["add", "zlog", "z"], &dir).unwrap();
        assert!(run(&["add", "zlog", "z"], &dir).is_err(), "duplicate experiment");
        let help = run(&[], &dir).unwrap();
        assert!(help.contains("USAGE"));
        fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod pack_tests {
    use crate::run;
    use std::fs;

    #[test]
    fn pack_via_cli() {
        let dir = std::env::temp_dir().join(format!(
            "popper-cli-pack-{}",
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        run(&["init"], &dir).unwrap();
        run(&["add", "torpor", "t"], &dir).unwrap();
        let out = run(&["pack", "t"], &dir).unwrap();
        assert!(out.contains("packed experiment 't' as popper/t:"), "{out}");
        let pf = run(&["pack", "t", "--show-popperfile"], &dir).unwrap();
        assert!(pf.starts_with("FROM scratch"));
        assert!(pf.contains("LABEL org.popper.commit"));
        assert!(run(&["pack", "ghost"], &dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod merge_tests {
    use crate::run;
    use std::fs;

    #[test]
    fn reviewer_branch_merge_via_cli() {
        let dir = std::env::temp_dir().join(format!(
            "popper-cli-merge-{}",
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        run(&["init"], &dir).unwrap();
        run(&["add", "zlog", "z"], &dir).unwrap();

        // Reviewer scales the experiment on a branch.
        run(&["branch", "reviewer"], &dir).unwrap();
        let vars = fs::read_to_string(dir.join("experiments/z/vars.pml")).unwrap();
        fs::write(dir.join("experiments/z/vars.pml"), vars.replace("[1, 2, 4, 8]", "[1, 2, 4, 8, 16]")).unwrap();
        run(&["commit", "reviewer: scale to 16"], &dir).unwrap();

        // Authors edit the paper on main.
        run(&["checkout", "main"], &dir).unwrap();
        assert!(fs::read_to_string(dir.join("experiments/z/vars.pml")).unwrap().contains("[1, 2, 4, 8]"));
        fs::write(dir.join("paper/paper.md"), "# updated on main\n").unwrap();
        run(&["commit", "main: paper edit"], &dir).unwrap();

        // Merge the reviewer branch; both changes land.
        let out = run(&["merge", "reviewer"], &dir).unwrap();
        assert!(out.contains("merged 'reviewer'"), "{out}");
        assert!(fs::read_to_string(dir.join("experiments/z/vars.pml")).unwrap().contains("16]"));
        assert!(fs::read_to_string(dir.join("paper/paper.md")).unwrap().contains("updated on main"));
        let log = run(&["log"], &dir).unwrap();
        assert!(log.contains("merge 'reviewer'"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn conflicting_merge_reports_paths() {
        let dir = std::env::temp_dir().join(format!(
            "popper-cli-conflict-{}",
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        run(&["init"], &dir).unwrap();
        run(&["branch", "other"], &dir).unwrap();
        fs::write(dir.join("README.md"), "# other version\n").unwrap();
        run(&["commit", "other readme"], &dir).unwrap();
        run(&["checkout", "main"], &dir).unwrap();
        fs::write(dir.join("README.md"), "# main version\n").unwrap();
        run(&["commit", "main readme"], &dir).unwrap();
        let err = run(&["merge", "other"], &dir).unwrap_err();
        assert!(err.contains("README.md"), "{err}");
        // The marked file is on disk for manual resolution.
        let text = fs::read_to_string(dir.join("README.md")).unwrap();
        assert!(text.contains("<<<<<<< ours"));
        fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod diff_verify_tests {
    use crate::run;
    use std::fs;

    #[test]
    fn diff_and_verify_via_cli() {
        let dir = std::env::temp_dir().join(format!(
            "popper-cli-dv-{}",
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        run(&["init"], &dir).unwrap();
        run(&["add", "proteustm", "p"], &dir).unwrap();
        run(&["run", "p"], &dir).unwrap();

        // verify: deterministic re-execution matches.
        let out = run(&["verify", "p"], &dir).unwrap();
        assert!(out.contains("byte-identical"), "{out}");

        // diff: edit a file, see the hunk.
        let out = run(&["diff", "README.md"], &dir).unwrap();
        assert!(out.contains("unchanged"));
        fs::write(dir.join("README.md"), "# changed title\n").unwrap();
        let out = run(&["diff", "README.md"], &dir).unwrap();
        assert!(out.contains("+# changed title"), "{out}");

        // verify fails after tampering with results.
        let results = dir.join("experiments/p/results.csv");
        let csv = fs::read_to_string(&results).unwrap();
        fs::write(&results, csv.replacen('1', "9", 1)).unwrap();
        run(&["commit", "tamper"], &dir).unwrap();
        let err = run(&["verify", "p"], &dir).unwrap_err();
        assert!(err.contains("NOT reproducible"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }
}
