//! CLI error values with command context.
//!
//! `dispatch` returns `Result<String, String>` (the shell boundary
//! wants text either way), but errors raised *inside* a command should
//! say which command failed and why — and must never panic the process
//! on a user-reachable path. [`PopperError`] carries that context and
//! renders as the final message; [`OrFail`] converts the `Option`s and
//! `Result`s on command hot paths without `unwrap`/`expect`.

use std::fmt;

/// An error on a CLI path: the command that failed and the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopperError {
    /// The command being executed ("popper trace", "popper farm serve").
    pub context: String,
    /// What went wrong.
    pub cause: String,
}

impl PopperError {
    /// An error in `context` caused by `cause`.
    pub fn new(context: impl Into<String>, cause: impl Into<String>) -> PopperError {
        PopperError { context: context.into(), cause: cause.into() }
    }
}

impl fmt::Display for PopperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.cause)
    }
}

impl From<PopperError> for String {
    fn from(e: PopperError) -> String {
        e.to_string()
    }
}

/// Attach command context when converting fallible values into the
/// dispatch error type.
pub trait OrFail<T> {
    /// The success value, or a contextualized error string.
    fn or_fail(self, context: &str, cause: &str) -> Result<T, String>;
}

impl<T> OrFail<T> for Option<T> {
    fn or_fail(self, context: &str, cause: &str) -> Result<T, String> {
        self.ok_or_else(|| PopperError::new(context, cause).to_string())
    }
}

impl<T, E: fmt::Display> OrFail<T> for Result<T, E> {
    fn or_fail(self, context: &str, cause: &str) -> Result<T, String> {
        self.map_err(|e| PopperError::new(context, format!("{cause}: {e}")).to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_context() {
        let e = PopperError::new("popper trace", "recorder missing");
        assert_eq!(e.to_string(), "popper trace: recorder missing");
        let s: String = e.into();
        assert!(s.contains("popper trace"));
    }

    #[test]
    fn or_fail_converts_options_and_results() {
        let some: Option<u32> = Some(7);
        assert_eq!(some.or_fail("popper x", "gone").unwrap(), 7);
        let none: Option<u32> = None;
        let err = none.or_fail("popper x", "gone").unwrap_err();
        assert_eq!(err, "popper x: gone");
        let ok: Result<u32, String> = Ok(1);
        assert_eq!(ok.or_fail("popper y", "ctx").unwrap(), 1);
        let bad: Result<u32, String> = Err("boom".into());
        let err = bad.or_fail("popper y", "while frobbing").unwrap_err();
        assert_eq!(err, "popper y: while frobbing: boom");
    }
}
