//! The `popper` binary.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("popper: cannot determine working directory: {e}");
            std::process::exit(2);
        }
    };
    match popper_cli::run(&argv, &cwd) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
