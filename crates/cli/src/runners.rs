//! Registration of the real experiment runners.
//!
//! Each use-case crate exposes its experiment as a library function;
//! these adapters translate `vars.pml` into the crate's configuration
//! and its results into a table. This is the "toolchain agnosticism"
//! seam: the engine only knows runner names.

use popper_core::ExperimentEngine;
use popper_format::{Table, Value};
use popper_gassyfs::experiment as gassyfs_exp;
use popper_gassyfs::workload::CompileWorkload;
use popper_minimpi::experiment as mpi_exp;
use popper_minimpi::lulesh::LuleshConfig;
use popper_sim::platforms;
use popper_torpor::experiment as torpor_exp;
use popper_weather::{analyze, generate, ReanalysisConfig};

/// Register the use-case runners with an engine.
pub fn register_builtin_runners(engine: &mut ExperimentEngine) {
    engine.register("gassyfs-scalability", gassyfs_runner);
    engine.register("torpor-variability", torpor_runner);
    engine.register("mpi-variability", mpi_runner);
    engine.register("lulesh-chaos", lulesh_chaos_runner);
    engine.register("lulesh-sharded", lulesh_sharded_runner);
    engine.register("gassyfs-sharded", gassyfs_sharded_runner);
    engine.register("orchestra-sharded", orchestra_sharded_runner);
    engine.register("farm-sharded", farm_sharded_runner);
    engine.register("bww-airtemp", bww_runner);
}

/// Parse the worker count for a sharded runner from `sim_workers:` (or
/// the CLI's `--sim-workers`, via `POPPER_SIM_WORKERS`).
fn sharded_workers(vars: &Value) -> Result<usize, String> {
    match vars.get_num("sim_workers") {
        Some(w) if w >= 1.0 => Ok(w as usize),
        Some(w) => Err(format!("'sim_workers' must be >= 1, got {w}")),
        None => Ok(popper_sim::shard::configured_workers()),
    }
}

/// Guard for runners whose world has no sharded port: asking them to
/// shard is a configuration error, not a silent no-op.
fn reject_sim_workers(vars: &Value, runner: &str) -> Result<(), String> {
    if vars.get("sim_workers").is_some() || std::env::var("POPPER_SIM_WORKERS").is_ok() {
        return Err(format!(
            "runner '{runner}' has no sharded world; drop 'sim_workers:' / --sim-workers \
             (sharded runners: lulesh-sharded, gassyfs-sharded, orchestra-sharded, farm-sharded)"
        ));
    }
    Ok(())
}

/// A sharded runner's chaos schedule must fit its world: every shard a
/// fault event targets must exist. The schedule's node count comes
/// from `faults.nodes` (else the top-level `nodes`, else 8 — see
/// [`popper_chaos::FaultSchedule::from_vars`]), so a smaller world
/// needs it set explicitly.
fn check_schedule_fits(
    schedule: &popper_chaos::FaultSchedule,
    world_nodes: usize,
    runner: &str,
) -> Result<(), String> {
    if schedule.nodes > world_nodes {
        return Err(format!(
            "runner '{runner}': fault schedule '{}' targets {} nodes but the world has \
             {world_nodes} shards; set 'faults: nodes:' to the world size",
            schedule.name, schedule.nodes
        ));
    }
    Ok(())
}

/// An engine with both the synthetic and the use-case runners.
pub fn full_engine() -> ExperimentEngine {
    let mut engine = ExperimentEngine::new();
    register_builtin_runners(&mut engine);
    engine
}

fn num_list(vars: &Value, key: &str) -> Option<Vec<f64>> {
    vars.get_list(key)
        .map(|l| l.iter().filter_map(Value::as_num).collect())
}

fn gassyfs_runner(vars: &Value) -> Result<Table, String> {
    reject_sim_workers(vars, "gassyfs-scalability")?;
    // A `faults:` spec flips the runner into chaos mode: same cluster,
    // same workload shape, but a fault schedule plays out against the
    // verify-read sweep and the table carries recovery metrics.
    if let Some(schedule) = popper_chaos::FaultSchedule::from_vars(vars)? {
        let machine = vars.get_str("machine").unwrap_or("gassyfs-node");
        let platform =
            platforms::by_name(machine).ok_or_else(|| format!("unknown machine '{machine}'"))?;
        let mut config = popper_gassyfs::ChaosConfig {
            nodes: schedule.nodes,
            platform,
            machine_label: machine.to_string(),
            ..Default::default()
        };
        if let Some(e) = vars.get_num("epochs") {
            config.epochs = e.max(1.0) as usize;
        }
        if let Some(f) = vars.get_num("files") {
            config.files = f.max(1.0) as usize;
        }
        let report = popper_gassyfs::run_fault_tolerance(&config, &schedule)?;
        return Ok(popper_gassyfs::chaos::to_table(&report, machine));
    }
    let nodes: Vec<usize> = num_list(vars, "nodes")
        .unwrap_or_else(|| vec![1.0, 2.0, 4.0, 8.0, 16.0])
        .into_iter()
        .map(|n| n.max(1.0) as usize)
        .collect();
    let machine = vars.get_str("machine").unwrap_or("gassyfs-node");
    let platform = platforms::by_name(machine).ok_or_else(|| format!("unknown machine '{machine}'"))?;
    let mut workload = CompileWorkload::git();
    if let Some(tu) = vars.get_num("translation_units") {
        workload.translation_units = tu.max(1.0) as usize;
    }
    if let Some(jobs) = vars.get_num("jobs") {
        workload.jobs = jobs.max(1.0) as usize;
    }
    let config = gassyfs_exp::ScalabilityConfig {
        node_counts: nodes,
        platform,
        workload,
        machine_label: machine.to_string(),
        ..Default::default()
    };
    let points = gassyfs_exp::run_scalability(&config).map_err(|e| e.to_string())?;
    let workload_name = vars.get_str("workload").unwrap_or("git");
    Ok(gassyfs_exp::to_table(&points, workload_name, machine))
}

fn torpor_runner(vars: &Value) -> Result<Table, String> {
    reject_sim_workers(vars, "torpor-variability")?;
    let base_name = vars.get_str("base").unwrap_or("xeon-2006");
    let base =
        platforms::by_name(base_name).ok_or_else(|| format!("unknown base machine '{base_name}'"))?;
    let targets = match vars.get_list("targets") {
        Some(list) => list
            .iter()
            .filter_map(Value::as_str)
            .map(|n| platforms::by_name(n).ok_or_else(|| format!("unknown target machine '{n}'")))
            .collect::<Result<Vec<_>, _>>()?,
        None => vec![platforms::cloudlab_c220g()],
    };
    let config = torpor_exp::VariabilityExperiment {
        base,
        targets,
        units: vars.get_num("units").unwrap_or(1.0),
        bin_width: vars.get_num("bin_width").unwrap_or(0.1),
    };
    let results = torpor_exp::run_variability_experiment(&config);
    Ok(torpor_exp::results_table(&results))
}

/// Decode the shared LULESH app shape (`grid`, `elements`,
/// `iterations`) used by both MPI runners.
fn lulesh_app(vars: &Value) -> Result<LuleshConfig, String> {
    let grid = num_list(vars, "grid").unwrap_or_else(|| vec![3.0, 3.0, 3.0]);
    if grid.len() != 3 {
        return Err("'grid' must have three entries".into());
    }
    let mut app = LuleshConfig::paper();
    app.grid = (grid[0] as usize, grid[1] as usize, grid[2] as usize);
    if let Some(e) = vars.get_num("elements") {
        app.elements_per_rank = e.max(2.0) as usize;
    }
    if let Some(i) = vars.get_num("iterations") {
        app.iterations = i.max(1.0) as usize;
    }
    Ok(app)
}

fn mpi_runner(vars: &Value) -> Result<Table, String> {
    reject_sim_workers(vars, "mpi-variability")?;
    // A `faults:` spec flips the runner into chaos mode: the same
    // LULESH proxy, but a fault schedule crashes nodes under it and
    // the configured recovery policy (shrink / checkpoint-restart)
    // keeps it running; the table carries recovery metrics.
    if vars.get("faults").is_some() {
        return lulesh_chaos_runner(vars);
    }
    let app = lulesh_app(vars)?;
    let machine = vars.get_str("machine").unwrap_or("hpc-node");
    let platform = platforms::by_name(machine).ok_or_else(|| format!("unknown machine '{machine}'"))?;
    let study = mpi_exp::VariabilityStudy {
        app,
        platform,
        nodes: vars.get_num("nodes").unwrap_or(9.0).max(1.0) as usize,
        repetitions: vars.get_num("repetitions").unwrap_or(10.0).max(1.0) as usize,
        seed: vars.get_num("seed").unwrap_or(7.0) as u64,
        ..Default::default()
    };
    let result = mpi_exp::run_variability_study(&study);
    Ok(result.to_table())
}

/// The fault-tolerant LULESH experiment: run the proxy to completion
/// while a fault schedule plays out, recovering rank failures per the
/// `faults.policy` (`shrink` or `checkpoint-restart`). One row per
/// communicator epoch.
fn lulesh_chaos_runner(vars: &Value) -> Result<Table, String> {
    reject_sim_workers(vars, "lulesh-chaos")?;
    let schedule = popper_chaos::FaultSchedule::from_vars(vars)?.ok_or_else(|| {
        "lulesh-chaos needs a 'faults:' spec (run it via 'popper chaos')".to_string()
    })?;
    let policy = popper_minimpi::RecoveryPolicy::from_vars(vars)?;
    let machine = vars.get_str("machine").unwrap_or("hpc-node");
    let platform =
        platforms::by_name(machine).ok_or_else(|| format!("unknown machine '{machine}'"))?;
    let study = mpi_exp::ChaosStudy { app: lulesh_app(vars)?, platform, schedule, policy };
    let result = mpi_exp::run_lulesh_chaos(&study)?;
    Ok(result.to_table())
}

/// The sharded LULESH proxy: one shard per rank, run across the worker
/// count from `sim_workers:` (or the CLI's `--sim-workers`, via
/// `POPPER_SIM_WORKERS`). One row per rank; the table is identical at
/// every worker count, so an Aver gate over it doubles as a
/// determinism check.
fn lulesh_sharded_runner(vars: &Value) -> Result<Table, String> {
    let app = lulesh_app(vars)?;
    let machine = vars.get_str("machine").unwrap_or("hpc-node");
    let platform =
        platforms::by_name(machine).ok_or_else(|| format!("unknown machine '{machine}'"))?;
    let workers = sharded_workers(vars)?;
    // A `faults:` spec flips the runner into chaos mode: the same
    // sharded proxy, but the schedule lands at epoch barriers mid-run
    // and ranks retry halos with backoff; the table carries the
    // recovery metrics the chaos gate asserts on.
    if let Some(schedule) = popper_chaos::FaultSchedule::from_vars(vars)? {
        check_schedule_fits(&schedule, app.ranks(), "lulesh-sharded")?;
        let run = popper_minimpi::run_sharded_chaos(
            &app,
            &platform,
            workers,
            schedule.seed,
            schedule.plane_timeline(),
        );
        let mut t = Table::new([
            "schedule",
            "machine",
            "workers",
            "epochs",
            "rank",
            "finish_ms",
            "elapsed_ms",
            "detections",
            "recovered",
            "recovery_ms",
            "degraded_fraction",
            "corrupt",
        ]);
        for (rank, finish) in run.per_rank_finish.iter().enumerate() {
            t.push_row(vec![
                Value::from(schedule.name.as_str()),
                Value::from(machine),
                Value::from(run.workers),
                Value::from(run.epochs as usize),
                Value::from(rank),
                Value::Num(finish.as_millis_f64()),
                Value::Num(run.elapsed.as_millis_f64()),
                Value::from(run.detections as usize),
                Value::from(run.recovered as usize),
                Value::Num(run.recovery_ms),
                Value::Num(run.degraded_fraction),
                Value::from(run.lost as usize),
            ])
            .expect("fixed schema");
        }
        return Ok(t);
    }
    let run = popper_minimpi::run_sharded(&app, &platform, workers);
    let mut t = Table::new(["machine", "workers", "epochs", "rank", "finish_ms", "elapsed_ms"]);
    for (rank, finish) in run.per_rank_finish.iter().enumerate() {
        t.push_row(vec![
            Value::from(machine),
            Value::from(run.workers),
            Value::from(run.epochs as usize),
            Value::from(rank),
            Value::Num(finish.as_millis_f64()),
            Value::Num(run.elapsed.as_millis_f64()),
        ])
        .expect("fixed schema");
    }
    Ok(t)
}

/// The sharded GassyFS world: one shard per gasnet node, page writes
/// replicated primary-then-replica through the shard-native fabric.
/// One row per node; like every sharded runner, the table is identical
/// at every worker count.
fn gassyfs_sharded_runner(vars: &Value) -> Result<Table, String> {
    let machine = vars.get_str("machine").unwrap_or("gassyfs-node");
    let platform =
        platforms::by_name(machine).ok_or_else(|| format!("unknown machine '{machine}'"))?;
    let mut config = popper_gassyfs::ShardedGassyConfig::default();
    if let Some(n) = vars.get_num("nodes") {
        config.nodes = n.max(2.0) as usize;
    }
    if let Some(p) = vars.get_num("pages") {
        config.pages = p.max(1.0) as u64;
    }
    if let Some(s) = vars.get_num("streams") {
        config.streams = s.max(1.0) as usize;
    }
    let workers = sharded_workers(vars)?;
    // Chaos mode: the same sharded write path, but the schedule lands
    // at epoch barriers mid-run and the client fails over to replicas.
    if let Some(schedule) = popper_chaos::FaultSchedule::from_vars(vars)? {
        check_schedule_fits(&schedule, config.nodes, "gassyfs-sharded")?;
        let report = popper_gassyfs::shardworld::run_sharded_chaos(
            &config,
            &platform,
            workers,
            schedule.seed,
            schedule.plane_timeline(),
        );
        let mut t = Table::new([
            "schedule",
            "machine",
            "workers",
            "epochs",
            "node",
            "primary_pages",
            "replica_pages",
            "failovers",
            "detections",
            "recovery_ms",
            "degraded_fraction",
            "corrupt",
            "elapsed_ms",
        ]);
        for node in 0..config.nodes {
            t.push_row(vec![
                Value::from(schedule.name.as_str()),
                Value::from(machine),
                Value::from(report.workers),
                Value::from(report.epochs as usize),
                Value::from(node),
                Value::from(report.per_node_primary[node] as usize),
                Value::from(report.per_node_replica[node] as usize),
                Value::from(report.failovers as usize),
                Value::from(report.detections as usize),
                Value::Num(report.recovery_ms),
                Value::Num(report.degraded_fraction),
                Value::from(report.lost as usize),
                Value::Num(report.elapsed.as_millis_f64()),
            ])
            .expect("fixed schema");
        }
        return Ok(t);
    }
    let report = popper_gassyfs::shardworld::run_sharded(&config, &platform, workers);
    let mut t = Table::new([
        "machine",
        "workers",
        "epochs",
        "node",
        "primary_pages",
        "replica_pages",
        "tx_bytes",
        "rx_bytes",
        "elapsed_ms",
    ]);
    for node in 0..config.nodes {
        t.push_row(vec![
            Value::from(machine),
            Value::from(report.workers),
            Value::from(report.epochs as usize),
            Value::from(node),
            Value::from(report.per_node_primary[node] as usize),
            Value::from(report.per_node_replica[node] as usize),
            Value::from(report.traffic[node].tx_bytes as usize),
            Value::from(report.traffic[node].rx_bytes as usize),
            Value::Num(report.elapsed.as_millis_f64()),
        ])
        .expect("fixed schema");
    }
    Ok(t)
}

/// The sharded orchestra world: one shard per managed host plus the
/// controller, playbook tasks fanned out and collected through the
/// shard-native fabric. One row per task.
fn orchestra_sharded_runner(vars: &Value) -> Result<Table, String> {
    let mut config = popper_orchestra::ShardedOrchestraConfig::default();
    if let Some(h) = vars.get_num("hosts") {
        config.hosts = h.max(1.0) as usize;
    }
    if let Some(t) = vars.get_num("tasks") {
        config.tasks = t.max(1.0) as usize;
    }
    if let Some(s) = vars.get_num("seed") {
        config.seed = s as u64;
    }
    let workers = sharded_workers(vars)?;
    // Chaos mode: the same linear strategy, but the schedule lands at
    // epoch barriers mid-playbook and RPCs retry with backoff.
    if let Some(schedule) = popper_chaos::FaultSchedule::from_vars(vars)? {
        check_schedule_fits(&schedule, config.hosts + 1, "orchestra-sharded")?;
        let report = popper_orchestra::shardworld::run_sharded_chaos(
            &config,
            workers,
            schedule.seed,
            schedule.plane_timeline(),
        );
        let mut t = Table::new([
            "schedule",
            "hosts",
            "workers",
            "epochs",
            "task",
            "finish_ms",
            "elapsed_ms",
            "detections",
            "recovered",
            "recovery_ms",
            "degraded_fraction",
            "corrupt",
        ]);
        for (task, finish) in report.task_finish.iter().enumerate() {
            t.push_row(vec![
                Value::from(schedule.name.as_str()),
                Value::from(config.hosts),
                Value::from(report.workers),
                Value::from(report.epochs as usize),
                Value::from(task),
                Value::Num(finish.as_millis_f64()),
                Value::Num(report.elapsed.as_millis_f64()),
                Value::from(report.detections as usize),
                Value::from(report.recovered as usize),
                Value::Num(report.recovery_ms),
                Value::Num(report.degraded_fraction),
                Value::from(report.lost as usize),
            ])
            .expect("fixed schema");
        }
        return Ok(t);
    }
    let report = popper_orchestra::shardworld::run_sharded(&config, workers);
    let mut t =
        Table::new(["hosts", "workers", "epochs", "task", "finish_ms", "elapsed_ms"]);
    for (task, finish) in report.task_finish.iter().enumerate() {
        t.push_row(vec![
            Value::from(config.hosts),
            Value::from(report.workers),
            Value::from(report.epochs as usize),
            Value::from(task),
            Value::Num(finish.as_millis_f64()),
            Value::Num(report.elapsed.as_millis_f64()),
        ])
        .expect("fixed schema");
    }
    Ok(t)
}

/// The sharded farm model: one shard per tenant pipeline plus the
/// shared chunk store, archives shipped through the shard-native
/// fabric. One row per tenant. A `faults:` spec flips it into chaos
/// mode — the schedule lands at epoch barriers mid-run and tenants
/// requeue failed archives with backoff (the service's worker-crash
/// requeue, projected onto the store link).
fn farm_sharded_runner(vars: &Value) -> Result<Table, String> {
    let mut config = popper_farm::FarmSimConfig::default();
    if let Some(t) = vars.get_num("tenants") {
        config.tenants = t.max(1.0) as usize;
    }
    if let Some(j) = vars.get_num("jobs") {
        config.jobs_per_tenant = j.max(1.0) as usize;
    }
    if let Some(s) = vars.get_num("seed") {
        config.seed = s as u64;
    }
    let workers = sharded_workers(vars)?;
    if let Some(schedule) = popper_chaos::FaultSchedule::from_vars(vars)? {
        check_schedule_fits(&schedule, config.tenants + 1, "farm-sharded")?;
        let report = popper_farm::simulate_chaos(
            &config,
            workers,
            schedule.seed,
            schedule.plane_timeline(),
        );
        let mut t = Table::new([
            "schedule",
            "tenants",
            "workers",
            "epochs",
            "tenant",
            "finish_ms",
            "requeued",
            "recovered",
            "recovery_ms",
            "degraded_fraction",
            "corrupt",
            "elapsed_ms",
        ]);
        for (tenant, finish) in report.tenant_finish.iter().enumerate() {
            t.push_row(vec![
                Value::from(schedule.name.as_str()),
                Value::from(config.tenants),
                Value::from(report.workers),
                Value::from(report.epochs as usize),
                Value::from(tenant),
                Value::Num(finish.as_millis_f64()),
                Value::from(report.requeued as usize),
                Value::from(report.recovered as usize),
                Value::Num(report.recovery_ms),
                Value::Num(report.degraded_fraction),
                Value::from(report.lost as usize),
                Value::Num(report.elapsed.as_millis_f64()),
            ])
            .expect("fixed schema");
        }
        return Ok(t);
    }
    let report = popper_farm::simulate(&config, workers);
    let mut t = Table::new([
        "tenants",
        "workers",
        "tenant",
        "finish_ms",
        "store_jobs",
        "store_bytes",
        "elapsed_ms",
    ]);
    for (tenant, finish) in report.tenant_finish.iter().enumerate() {
        t.push_row(vec![
            Value::from(config.tenants),
            Value::from(workers.max(1)),
            Value::from(tenant),
            Value::Num(finish.as_millis_f64()),
            Value::from(report.store_jobs as usize),
            Value::from(report.store_bytes as usize),
            Value::Num(report.elapsed.as_millis_f64()),
        ])
        .expect("fixed schema");
    }
    Ok(t)
}

fn bww_runner(vars: &Value) -> Result<Table, String> {
    reject_sim_workers(vars, "bww-airtemp")?;
    let mut config = ReanalysisConfig::default();
    if let Some(y) = vars.get_num("years") {
        config.years = y.max(1.0) as usize;
    }
    if let Some(grid) = num_list(vars, "grid") {
        if grid.len() == 2 {
            config.n_lat = (grid[0] as usize).max(2);
            config.n_lon = (grid[1] as usize).max(2);
        }
    }
    // A `faults:` spec flips the runner into chaos mode: the same
    // dataset, but fetched chunk-by-chunk from datapackage mirrors
    // under the fault schedule, with retry/backoff and failover; the
    // table carries the recovery metrics the chaos gate asserts on.
    if let Some(schedule) = popper_chaos::FaultSchedule::from_vars(vars)? {
        let mut fetch = popper_weather::FetchConfig { data: config, ..Default::default() };
        if let Some(b) = vars.get_num("fetch_ms") {
            fetch.base_ms = b.max(0.1);
        }
        let report = popper_weather::fetch_with_faults(&fetch, &schedule)?;
        return Ok(popper_weather::chaos::to_table(&report));
    }
    let data = generate(&config);
    let analysis = analyze(&data);
    Ok(analysis.zonal_table())
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_core::{templates::find_template, PopperRepo};

    fn run_template(tpl: &str) -> popper_core::RunReport {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files("e") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let engine = full_engine();
        engine.run(&mut repo, "e").unwrap()
    }

    #[test]
    fn gassyfs_template_runs_and_validates() {
        // Use the template but shrink the workload for test speed.
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("gassyfs").unwrap().files("e") {
            let contents = if path.ends_with("vars.pml") {
                format!("{contents}translation_units: 60\njobs: 4\n")
            } else {
                contents
            };
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let engine = full_engine();
        let report = engine.run(&mut repo, "e").unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        assert_eq!(report.results.len(), 5);
        // The recorded CSV carries the paper's columns.
        let csv = repo.read("experiments/e/results.csv").unwrap();
        assert!(csv.starts_with("workload,machine,nodes,time"));
    }

    #[test]
    fn torpor_template_runs_and_validates() {
        let report = run_template("torpor");
        assert!(report.success(), "{:?}", report.verdict.failures);
        // 3 targets × battery size rows.
        assert_eq!(report.results.len() % 3, 0);
        assert!(report.results.len() >= 48);
    }

    #[test]
    fn mpi_template_runs_and_validates() {
        let report = run_template("mpi-comm-variability");
        assert!(report.success(), "{:?}", report.verdict.failures);
        // 3 scenarios × 8 repetitions.
        assert_eq!(report.results.len(), 24);
    }

    #[test]
    fn bww_template_runs_and_validates() {
        let report = run_template("jupyter-bww");
        assert!(report.success(), "{:?}", report.verdict.failures);
        assert_eq!(report.results.len(), 19);
    }

    #[test]
    fn bww_chaos_fetch_survives_node_crash() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("jupyter-bww").unwrap().files("e") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let engine = full_engine();
        let report = engine.run_chaos(&mut repo, "e", Some("node-crash"), Some(7)).unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        // The fetch failed over and the template's tighter degraded
        // bound (25% of the record) held.
        assert!(report.metrics.get_num("failovers").unwrap_or(0.0) > 0.0);
        assert!(report.metrics.get_num("degraded_fraction").unwrap() <= 0.25);
        assert_eq!(report.metrics.get_num("corrupt"), Some(0.0));
        let csv = repo.read("experiments/e/results.csv").unwrap();
        assert!(csv.starts_with("schedule,mirrors,epoch"), "{csv}");
    }

    #[test]
    fn bww_chaos_same_seed_is_byte_identical() {
        let run = |seed| {
            let mut repo = PopperRepo::init("t").unwrap();
            for (path, contents) in find_template("jupyter-bww").unwrap().files("e") {
                repo.write(&path, contents).unwrap();
            }
            repo.commit("add").unwrap();
            full_engine().run_chaos(&mut repo, "e", Some("gremlin"), Some(seed)).unwrap();
            (
                repo.read("experiments/e/results.csv").unwrap(),
                repo.read("experiments/e/faults.json").unwrap(),
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1, run(6).1);
    }

    #[test]
    fn full_engine_lists_all_runners() {
        let engine = full_engine();
        let names = engine.runners();
        for expected in ["synthetic", "gassyfs-scalability", "torpor-variability", "mpi-variability", "lulesh-chaos", "lulesh-sharded", "gassyfs-sharded", "orchestra-sharded", "bww-airtemp"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lulesh_chaos_survives_node_crash_and_shrinks() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("mpi-comm-variability").unwrap().files("e") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let engine = full_engine();
        let report = engine.run_chaos(&mut repo, "e", Some("node-crash"), Some(7)).unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        // Default policy is shrink: one failover, bounded degradation.
        assert!(report.metrics.get_num("failovers").unwrap_or(0.0) > 0.0);
        let degraded = report.metrics.get_num("degraded_fraction").unwrap();
        assert!(degraded > 0.0 && degraded <= 0.5, "degraded {degraded}");
        assert_eq!(report.metrics.get_num("corrupt"), Some(0.0));
        let csv = repo.read("experiments/e/results.csv").unwrap();
        assert!(csv.starts_with("schedule,policy,epoch"), "{csv}");
        assert!(repo.exists("experiments/e/recovery.json"));
    }

    #[test]
    fn lulesh_chaos_checkpoint_restart_policy_from_vars() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("mpi-comm-variability").unwrap().files("e") {
            let contents = if path.ends_with("vars.pml") {
                format!("{contents}faults:\n  schedule: node-crash\n  policy: checkpoint-restart\n  checkpoint_interval: 5\n")
            } else {
                contents
            };
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let report = full_engine().run_chaos(&mut repo, "e", None, None).unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        // Checkpoint-restart conserves the problem: zero degradation,
        // paid for in checkpoints and replayed steps.
        assert_eq!(report.metrics.get_num("degraded_fraction"), Some(0.0));
        assert!(report.metrics.get_num("checkpoints").unwrap_or(0.0) > 0.0);
        assert!(report.metrics.get_num("replayed").unwrap_or(0.0) > 0.0);
        let csv = repo.read("experiments/e/results.csv").unwrap();
        assert!(csv.contains("checkpoint-restart"), "{csv}");
    }

    #[test]
    fn lulesh_chaos_same_seed_is_byte_identical() {
        let run = |seed| {
            let mut repo = PopperRepo::init("t").unwrap();
            for (path, contents) in find_template("mpi-comm-variability").unwrap().files("e") {
                repo.write(&path, contents).unwrap();
            }
            repo.commit("add").unwrap();
            full_engine().run_chaos(&mut repo, "e", Some("gremlin"), Some(seed)).unwrap();
            (
                repo.read("experiments/e/results.csv").unwrap(),
                repo.read("experiments/e/faults.json").unwrap(),
                repo.read("experiments/e/recovery.json").unwrap(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).1, run(12).1);
    }

    #[test]
    fn lulesh_sharded_runner_is_worker_count_invariant() {
        let vars_for = |workers: i64| {
            let mut vars = Value::empty_map();
            vars.insert("grid", Value::from(vec![2i64, 2, 2]));
            vars.insert("elements", Value::from(4i64));
            vars.insert("iterations", Value::from(10i64));
            vars.insert("sim_workers", Value::from(workers));
            vars
        };
        let serial = lulesh_sharded_runner(&vars_for(1)).unwrap();
        assert_eq!(serial.len(), 8); // 2x2x2 ranks, one row each
        let sharded = lulesh_sharded_runner(&vars_for(4)).unwrap();
        // Everything but the recorded worker count is identical.
        for (a, b) in serial.iter().zip(sharded.iter()) {
            assert_eq!(a.get("finish_ms"), b.get("finish_ms"));
            assert_eq!(a.get("elapsed_ms"), b.get("elapsed_ms"));
            assert_eq!(a.get("epochs"), b.get("epochs"));
        }
        assert!(lulesh_sharded_runner(&vars_for(0)).is_err());
    }

    #[test]
    fn gassyfs_sharded_runner_is_worker_count_invariant() {
        let vars_for = |workers: i64| {
            let mut vars = Value::empty_map();
            vars.insert("nodes", Value::from(5i64));
            vars.insert("pages", Value::from(60i64));
            vars.insert("streams", Value::from(3i64));
            vars.insert("sim_workers", Value::from(workers));
            vars
        };
        let serial = gassyfs_sharded_runner(&vars_for(1)).unwrap();
        assert_eq!(serial.len(), 5); // one row per node
        let sharded = gassyfs_sharded_runner(&vars_for(4)).unwrap();
        for (a, b) in serial.iter().zip(sharded.iter()) {
            assert_eq!(a.get("primary_pages"), b.get("primary_pages"));
            assert_eq!(a.get("tx_bytes"), b.get("tx_bytes"));
            assert_eq!(a.get("elapsed_ms"), b.get("elapsed_ms"));
            assert_eq!(a.get("epochs"), b.get("epochs"));
        }
        assert!(gassyfs_sharded_runner(&vars_for(0)).is_err());
    }

    #[test]
    fn orchestra_sharded_runner_is_worker_count_invariant() {
        let vars_for = |workers: i64| {
            let mut vars = Value::empty_map();
            vars.insert("hosts", Value::from(6i64));
            vars.insert("tasks", Value::from(5i64));
            vars.insert("sim_workers", Value::from(workers));
            vars
        };
        let serial = orchestra_sharded_runner(&vars_for(1)).unwrap();
        assert_eq!(serial.len(), 5); // one row per task
        let sharded = orchestra_sharded_runner(&vars_for(8)).unwrap();
        for (a, b) in serial.iter().zip(sharded.iter()) {
            assert_eq!(a.get("finish_ms"), b.get("finish_ms"));
            assert_eq!(a.get("elapsed_ms"), b.get("elapsed_ms"));
            assert_eq!(a.get("epochs"), b.get("epochs"));
        }
    }

    #[test]
    fn runners_without_a_sharded_world_reject_sim_workers() {
        let mut vars = Value::empty_map();
        vars.insert("sim_workers", Value::from(4i64));
        for (name, runner) in [
            ("gassyfs-scalability", gassyfs_runner as fn(&Value) -> Result<Table, String>),
            ("torpor-variability", torpor_runner),
            ("mpi-variability", mpi_runner),
            ("lulesh-chaos", lulesh_chaos_runner),
            ("bww-airtemp", bww_runner),
            ("synthetic", popper_core::experiment::synthetic_runner),
        ] {
            let err = runner(&vars).unwrap_err();
            assert!(err.contains("no sharded world"), "{name}: {err}");
            assert!(err.contains(name), "{name}: {err}");
        }
    }

    /// Vars that arm every sharded runner's chaos mode with the same
    /// healing built-in schedule.
    fn chaos_vars(extra: &[(&str, i64)]) -> Value {
        let mut vars = Value::empty_map();
        let mut faults = Value::empty_map();
        faults.insert("schedule", Value::from("node-crash"));
        faults.insert("seed", Value::from(7i64));
        vars.insert("faults", faults);
        for &(k, v) in extra {
            vars.insert(k, Value::from(v));
        }
        vars
    }

    #[test]
    fn sharded_chaos_runners_are_worker_count_invariant() {
        type Runner = fn(&Value) -> Result<Table, String>;
        let cases: [(&str, Runner, Vec<(&str, i64)>); 4] = [
            ("lulesh-sharded", lulesh_sharded_runner, vec![("elements", 4), ("iterations", 10), ("nodes", 8)]),
            ("gassyfs-sharded", gassyfs_sharded_runner, vec![("nodes", 6), ("pages", 48)]),
            ("orchestra-sharded", orchestra_sharded_runner, vec![("hosts", 6), ("tasks", 6), ("nodes", 6)]),
            ("farm-sharded", farm_sharded_runner, vec![("tenants", 5), ("jobs", 16), ("nodes", 5)]),
        ];
        for (name, runner, extra) in cases {
            let table_for = |workers: i64| {
                let mut vars = chaos_vars(&extra);
                vars.insert("sim_workers", Value::from(workers));
                runner(&vars).unwrap_or_else(|e| panic!("{name}: {e}"))
            };
            let serial = table_for(1);
            // The schedule heals, so the run must end clean.
            for row in serial.iter() {
                assert_eq!(row.get("corrupt").and_then(Value::as_num), Some(0.0), "{name}");
            }
            assert!(
                serial.iter().any(|r| r.get("detections").map_or(true, |d| d.as_num() != Some(0.0))
                    || r.get("requeued").map_or(true, |d| d.as_num() != Some(0.0))),
                "{name}: mid-run faults must be observed"
            );
            for workers in [2, 8] {
                let sharded = table_for(workers);
                for (a, b) in serial.iter().zip(sharded.iter()) {
                    for col in serial.columns() {
                        let col = col.name.as_str();
                        if col == "workers" {
                            continue;
                        }
                        assert_eq!(a.get(col), b.get(col), "{name} workers={workers} col={col}");
                    }
                }
            }
        }
    }

    #[test]
    fn farm_sharded_runner_is_worker_count_invariant() {
        let vars_for = |workers: i64| {
            let mut vars = Value::empty_map();
            vars.insert("tenants", Value::from(5i64));
            vars.insert("jobs", Value::from(12i64));
            vars.insert("sim_workers", Value::from(workers));
            vars
        };
        let serial = farm_sharded_runner(&vars_for(1)).unwrap();
        assert_eq!(serial.len(), 5); // one row per tenant
        let sharded = farm_sharded_runner(&vars_for(4)).unwrap();
        for (a, b) in serial.iter().zip(sharded.iter()) {
            assert_eq!(a.get("finish_ms"), b.get("finish_ms"));
            assert_eq!(a.get("store_jobs"), b.get("store_jobs"));
            assert_eq!(a.get("elapsed_ms"), b.get("elapsed_ms"));
        }
        assert!(farm_sharded_runner(&vars_for(0)).is_err());
    }

    #[test]
    fn sharded_chaos_schedule_must_fit_the_world() {
        // 8-node default schedule against a 4-node world: a clear
        // error, not an out-of-range fault.
        let mut vars = chaos_vars(&[("hosts", 3)]);
        vars.insert("faults", {
            let mut f = Value::empty_map();
            f.insert("schedule", Value::from("node-crash"));
            f.insert("nodes", Value::from(8i64));
            f
        });
        let err = orchestra_sharded_runner(&vars).unwrap_err();
        assert!(err.contains("targets 8 nodes"), "{err}");
        assert!(err.contains("4 shards"), "{err}");
    }

    #[test]
    fn sharded_chaos_lifecycle_artifacts_are_worker_count_invariant() {
        // The full `popper chaos` lifecycle over a sharded world:
        // faults.json and recovery.json must come out byte-identical
        // at every worker count (results.csv differs only in the
        // recorded `workers` column).
        let run = |workers: i64| {
            let mut repo = PopperRepo::init("t").unwrap();
            repo.write(
                "experiments/e/vars.pml",
                format!("runner: gassyfs-sharded\nnodes: 6\npages: 48\nsim_workers: {workers}\n"),
            )
            .unwrap();
            repo.commit("add").unwrap();
            let report = full_engine().run_chaos(&mut repo, "e", Some("node-crash"), Some(7)).unwrap();
            assert!(report.success(), "{:?}", report.verdict.failures);
            assert!(report.metrics.get_num("failovers").unwrap_or(0.0) > 0.0);
            assert_eq!(report.metrics.get_num("corrupt"), Some(0.0));
            (
                repo.read("experiments/e/faults.json").unwrap(),
                repo.read("experiments/e/recovery.json").unwrap(),
            )
        };
        let reference = run(1);
        assert_eq!(run(2), reference);
        assert_eq!(run(8), reference);
    }

    #[test]
    fn runner_errors_are_reported() {
        let mut vars = Value::empty_map();
        vars.insert("machine", Value::from("warp-drive"));
        assert!(gassyfs_runner(&vars).is_err());
        let mut vars = Value::empty_map();
        vars.insert("grid", Value::from(vec![1i64, 2]));
        assert!(mpi_runner(&vars).is_err());
        let mut vars = Value::empty_map();
        vars.insert("base", Value::from("nope"));
        assert!(torpor_runner(&vars).is_err());
    }
}
