//! The chaos driver: applies a schedule to a fault plane as virtual
//! time advances.

use crate::schedule::{FaultKind, FaultSchedule};
use popper_sim::{FaultPlane, Nanos};

/// Applies a [`FaultSchedule`] to a [`FaultPlane`] event by event.
/// Experiments call [`advance`](ChaosDriver::advance) with their current
/// virtual time between workload steps; every due event mutates the
/// plane and emits a trace instant on the `chaos/faults` track.
#[derive(Debug, Clone)]
pub struct ChaosDriver {
    schedule: FaultSchedule,
    next: usize,
}

impl ChaosDriver {
    /// A driver over `schedule`. The plane's loss sampler is seeded from
    /// the schedule on the first `advance`.
    pub fn new(schedule: FaultSchedule) -> Self {
        ChaosDriver { schedule, next: 0 }
    }

    /// The schedule being driven.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Number of events injected so far.
    pub fn injected(&self) -> usize {
        self.next
    }

    /// True once every event has fired.
    pub fn done(&self) -> bool {
        self.next >= self.schedule.events.len()
    }

    /// Apply every event due at or before `now`. Returns the labels of
    /// the events injected (empty when nothing was due).
    pub fn advance(&mut self, plane: &mut FaultPlane, now: Nanos) -> Vec<String> {
        if self.next == 0 {
            plane.set_seed(self.schedule.seed);
        }
        let tracer = popper_trace::current();
        let mut fired = Vec::new();
        while let Some(ev) = self.schedule.events.get(self.next) {
            if ev.at > now {
                break;
            }
            apply(&ev.kind, plane);
            if tracer.is_enabled() {
                tracer.instant_at("chaos", "chaos/faults", ev.kind.label(), ev.at.0);
            }
            fired.push(ev.kind.label());
            self.next += 1;
        }
        fired
    }
}

fn apply(kind: &FaultKind, plane: &mut FaultPlane) {
    // One lowering for both chaos paths: the driver applies the same
    // `PlaneCmd` the sharded fabric applies at its epoch barriers.
    plane.apply(&kind.to_cmd());
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_trace::{ClockDomain, TraceSink};

    #[test]
    fn advance_applies_due_events_in_order() {
        let s = FaultSchedule::named("node-crash", 4, 1).unwrap();
        let mut plane = FaultPlane::new(4);
        let mut d = ChaosDriver::new(s);
        assert!(d.advance(&mut plane, Nanos::from_millis(10)).is_empty());
        assert!(!plane.is_active());
        let fired = d.advance(&mut plane, Nanos::from_millis(50));
        assert_eq!(fired, vec!["crash node3".to_string()]);
        assert!(plane.is_crashed(3));
        let fired = d.advance(&mut plane, Nanos::from_millis(500));
        assert_eq!(fired, vec!["restart node3".to_string()]);
        assert!(!plane.is_crashed(3));
        assert!(d.done());
        assert_eq!(d.injected(), 2);
    }

    #[test]
    fn injections_emit_trace_instants() {
        let sink = TraceSink::new();
        let tracer = sink.tracer(ClockDomain::Virtual);
        popper_trace::with_current(tracer.clone(), || {
            let s = FaultSchedule::named("node-crash", 2, 1).unwrap();
            let mut plane = FaultPlane::new(2);
            let mut d = ChaosDriver::new(s);
            d.advance(&mut plane, Nanos::from_millis(200));
        });
        tracer.flush();
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.track == "chaos/faults"));
        assert!(events.iter().any(|e| e.name.contains("crash node1")));
        assert!(events.iter().any(|e| e.name.contains("restart node1")));
    }

    #[test]
    fn advance_seeds_the_plane() {
        let s = FaultSchedule { seed: 77, ..FaultSchedule::named("packet-loss", 3, 77).unwrap() };
        let mut plane = FaultPlane::new(3);
        let mut d = ChaosDriver::new(s);
        d.advance(&mut plane, Nanos::from_millis(25));
        assert!(plane.is_active());
        // Loss sampling now runs off the schedule seed deterministically.
        let a: Vec<u32> = (0..16).map(|_| plane.retransmits(0, 1)).collect();
        let mut plane2 = FaultPlane::new(3);
        let mut d2 =
            ChaosDriver::new(FaultSchedule::named("packet-loss", 3, 77).unwrap());
        d2.advance(&mut plane2, Nanos::from_millis(25));
        let b: Vec<u32> = (0..16).map(|_| plane2.retransmits(0, 1)).collect();
        assert_eq!(a, b);
    }
}
