//! Fault schedules: what breaks, and when.

use popper_format::{json, Value};
use popper_sim::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of infrastructure fault (or repair).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Node stops sending and receiving.
    Crash { node: usize },
    /// Crashed node comes back (its in-memory state is gone; layers
    /// with replicas rebuild it).
    Restart { node: usize },
    /// Split the cluster: `side` vs everyone else.
    Partition { side: Vec<usize> },
    /// Heal any partition.
    Heal,
    /// Packet loss on links touching `node`.
    Loss { node: usize, p: f64 },
    /// Packet loss on the directed link `from` → `to` only (asymmetric
    /// routes: acks flow, data doesn't).
    LossOneWay { from: usize, to: usize, p: f64 },
    /// Latency inflation on links touching `node`.
    Latency { node: usize, factor: f64 },
    /// Disk slowdown on `node`.
    DiskSlow { node: usize, factor: f64 },
    /// Clear loss/latency/disk degradation.
    ClearDegradation,
}

impl FaultKind {
    /// Short human/trace label, e.g. `crash node2`.
    pub fn label(&self) -> String {
        match self {
            FaultKind::Crash { node } => format!("crash node{node}"),
            FaultKind::Restart { node } => format!("restart node{node}"),
            FaultKind::Partition { side } => format!("partition {side:?}"),
            FaultKind::Heal => "heal partition".to_string(),
            FaultKind::Loss { node, p } => format!("loss node{node} p={p}"),
            FaultKind::LossOneWay { from, to, p } => {
                format!("loss node{from}->node{to} p={p}")
            }
            FaultKind::Latency { node, factor } => format!("latency node{node} x{factor}"),
            FaultKind::DiskSlow { node, factor } => format!("disk-slow node{node} x{factor}"),
            FaultKind::ClearDegradation => "clear degradation".to_string(),
        }
    }

    /// Lower this event to the fault-plane mutation it performs — the
    /// vocabulary [`popper_sim::FabricSim::set_fault_timeline`] takes,
    /// so sharded worlds can apply schedules at epoch barriers without
    /// the sim layer depending on this crate.
    pub fn to_cmd(&self) -> popper_sim::PlaneCmd {
        use popper_sim::PlaneCmd;
        match self {
            FaultKind::Crash { node } => PlaneCmd::Crash(*node),
            FaultKind::Restart { node } => PlaneCmd::Restart(*node),
            FaultKind::Partition { side } => PlaneCmd::Partition(side.clone()),
            FaultKind::Heal => PlaneCmd::HealPartition,
            FaultKind::Loss { node, p } => PlaneCmd::Loss { node: *node, p: *p },
            FaultKind::LossOneWay { from, to, p } => {
                PlaneCmd::LossOneWay { from: *from, to: *to, p: *p }
            }
            FaultKind::Latency { node, factor } => {
                PlaneCmd::Latency { node: *node, factor: *factor }
            }
            FaultKind::DiskSlow { node, factor } => {
                PlaneCmd::DiskSlow { node: *node, factor: *factor }
            }
            FaultKind::ClearDegradation => PlaneCmd::ClearDegradation,
        }
    }

    /// The node a schedule sort keys this event on: the affected node,
    /// the sending side for a one-way loss, the first member of a
    /// partition's side, and 0 for cluster-wide repairs.
    fn sort_node(&self) -> usize {
        match self {
            FaultKind::Crash { node }
            | FaultKind::Restart { node }
            | FaultKind::Loss { node, .. }
            | FaultKind::Latency { node, .. }
            | FaultKind::DiskSlow { node, .. } => *node,
            FaultKind::LossOneWay { from, .. } => *from,
            FaultKind::Partition { side } => side.first().copied().unwrap_or(0),
            FaultKind::Heal | FaultKind::ClearDegradation => 0,
        }
    }

    /// Declaration-order rank, the final sort tiebreaker (repairs rank
    /// after the faults they undo: `Heal` before `ClearDegradation`,
    /// both after same-instant injections on the same node).
    fn sort_rank(&self) -> u8 {
        match self {
            FaultKind::Crash { .. } => 0,
            FaultKind::Restart { .. } => 1,
            FaultKind::Partition { .. } => 2,
            FaultKind::Heal => 3,
            FaultKind::Loss { .. } => 4,
            FaultKind::LossOneWay { .. } => 5,
            FaultKind::Latency { .. } => 6,
            FaultKind::DiskSlow { .. } => 7,
            FaultKind::ClearDegradation => 8,
        }
    }

    /// The `kind:` string used in PML specs and `faults.json`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Restart { .. } => "restart",
            FaultKind::Partition { .. } => "partition",
            FaultKind::Heal => "heal",
            FaultKind::Loss { .. } => "loss",
            FaultKind::LossOneWay { .. } => "loss-oneway",
            FaultKind::Latency { .. } => "latency",
            FaultKind::DiskSlow { .. } => "disk-slow",
            FaultKind::ClearDegradation => "clear",
        }
    }
}

/// A fault at a point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: Nanos,
    /// What happens.
    pub kind: FaultKind,
}

/// A named, seeded, sorted schedule of fault events over a cluster of
/// `nodes` endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Schedule name (a built-in name, or `custom` for PML event lists).
    pub name: String,
    /// Seed for loss sampling and gremlin generation.
    pub seed: u64,
    /// Cluster size the schedule targets.
    pub nodes: usize,
    /// Events sorted by time (stable for equal times).
    pub events: Vec<FaultEvent>,
}

/// The built-in schedule names accepted by `FaultSchedule::named` and
/// the `popper chaos --schedule` flag.
pub const BUILTIN_SCHEDULES: &[&str] =
    &["node-crash", "partition", "packet-loss", "slow-disk", "gremlin"];

impl FaultSchedule {
    /// A built-in schedule by name. Node 0 is assumed to be the client
    /// (FUSE mount / rank 0 home) and is never crashed.
    pub fn named(name: &str, nodes: usize, seed: u64) -> Result<FaultSchedule, String> {
        let ms = Nanos::from_millis;
        // The last node, or 0 for a single-node cluster. Node 0 is the
        // client, so multi-node schedules never crash it.
        let victim = nodes.saturating_sub(1);
        let events = match name {
            "node-crash" => vec![
                FaultEvent { at: ms(40), kind: FaultKind::Crash { node: victim } },
                FaultEvent { at: ms(120), kind: FaultKind::Restart { node: victim } },
            ],
            "partition" => vec![
                FaultEvent {
                    at: ms(30),
                    kind: FaultKind::Partition { side: (0..nodes.div_ceil(2)).collect() },
                },
                FaultEvent { at: ms(100), kind: FaultKind::Heal },
            ],
            "packet-loss" => {
                let mut ev: Vec<FaultEvent> = (1..nodes)
                    .map(|n| FaultEvent { at: ms(20), kind: FaultKind::Loss { node: n, p: 0.25 } })
                    .collect();
                ev.push(FaultEvent { at: ms(140), kind: FaultKind::ClearDegradation });
                ev
            }
            "slow-disk" => vec![
                FaultEvent { at: ms(10), kind: FaultKind::DiskSlow { node: 0, factor: 8.0 } },
                FaultEvent { at: ms(150), kind: FaultKind::ClearDegradation },
            ],
            "gremlin" => return Ok(FaultSchedule::gremlin(nodes, seed)),
            other => {
                return Err(format!(
                    "unknown fault schedule '{other}' (built-ins: {})",
                    BUILTIN_SCHEDULES.join(", ")
                ))
            }
        };
        Ok(FaultSchedule { name: name.to_string(), seed, nodes, events })
    }

    /// A seeded random schedule: a handful of crash/restart pairs,
    /// link degradations (including one-way link loss), and flapping
    /// partitions over a ~200 ms horizon. Node 0 never crashes; every
    /// crash is paired with a restart; every partition is healed (a
    /// flap's last event is a heal); degradation is cleared at the end,
    /// so the schedule always ends healthy.
    pub fn gremlin(nodes: usize, seed: u64) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let faults = 2 + (rng.gen_range(0..3u32) as usize);
        for _ in 0..faults {
            let at = Nanos::from_millis(10 + rng.gen_range(0..120u64));
            match rng.gen_range(0..6u32) {
                0 if nodes > 1 => {
                    let node = rng.gen_range(1..nodes);
                    events.push(FaultEvent { at, kind: FaultKind::Crash { node } });
                    events.push(FaultEvent {
                        at: at + Nanos::from_millis(30 + rng.gen_range(0..40u64)),
                        kind: FaultKind::Restart { node },
                    });
                }
                1 => {
                    let node = rng.gen_range(0..nodes);
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::Loss { node, p: 0.1 + rng.gen::<f64>() * 0.3 },
                    });
                }
                2 => {
                    let node = rng.gen_range(0..nodes);
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::Latency { node, factor: 2.0 + rng.gen::<f64>() * 6.0 },
                    });
                }
                3 if nodes > 1 => {
                    // One-way link loss: data path degraded, ack path
                    // clean (the asymmetric-route failure mode).
                    let from = rng.gen_range(0..nodes);
                    let mut to = rng.gen_range(0..nodes - 1);
                    if to >= from {
                        to += 1;
                    }
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::LossOneWay { from, to, p: 0.2 + rng.gen::<f64>() * 0.5 },
                    });
                }
                4 if nodes > 1 => {
                    // Flapping partition: split, heal, re-partition on a
                    // schedule. The final event of the flap is a heal.
                    let side: Vec<usize> = (0..1 + rng.gen_range(0..nodes)).collect();
                    let cycles = 2 + rng.gen_range(0..2u32);
                    let mut t = at;
                    for _ in 0..cycles {
                        events.push(FaultEvent {
                            at: t,
                            kind: FaultKind::Partition { side: side.clone() },
                        });
                        t += Nanos::from_millis(5 + rng.gen_range(0..15u64));
                        events.push(FaultEvent { at: t, kind: FaultKind::Heal });
                        t += Nanos::from_millis(5 + rng.gen_range(0..15u64));
                    }
                }
                _ => {
                    let node = rng.gen_range(0..nodes);
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::DiskSlow { node, factor: 2.0 + rng.gen::<f64>() * 6.0 },
                    });
                }
            }
        }
        // Close the horizon healthy: heal any in-flight partition and
        // clear degradation strictly after the last scheduled fault.
        let end = events
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap_or(Nanos::ZERO)
            .max(Nanos::from_millis(200));
        events.push(FaultEvent { at: end, kind: FaultKind::Heal });
        events.push(FaultEvent { at: end, kind: FaultKind::ClearDegradation });
        let mut s = FaultSchedule { name: "gremlin".to_string(), seed, nodes, events };
        s.sort();
        s
    }

    /// Decode a schedule from an experiment's `vars.pml` value. Returns
    /// `Ok(None)` when there is no `faults:` key. The spec is either
    ///
    /// ```text
    /// faults:
    ///   schedule: node-crash     # a built-in name
    ///   seed: 7
    /// ```
    ///
    /// or an explicit event list:
    ///
    /// ```text
    /// faults:
    ///   seed: 7
    ///   events:
    ///     - {at_ms: 40, kind: crash, node: 2}
    ///     - {at_ms: 90, kind: loss, node: 1, p: 0.2}
    ///     - {at_ms: 120, kind: restart, node: 2}
    /// ```
    ///
    /// The cluster size comes from `faults.nodes`, else the max of a
    /// top-level `nodes` list, else a top-level `nodes` number, else 8.
    pub fn from_vars(vars: &Value) -> Result<Option<FaultSchedule>, String> {
        let Some(spec) = vars.get("faults") else { return Ok(None) };
        let nodes = spec
            .get_num("nodes")
            .or_else(|| {
                vars.get_list("nodes").map(|l| {
                    l.iter().filter_map(Value::as_num).fold(0.0f64, f64::max)
                })
            })
            .or_else(|| vars.get_num("nodes"))
            .filter(|n| *n >= 1.0)
            .unwrap_or(8.0) as usize;
        let seed = spec.get_num("seed").unwrap_or(1.0) as u64;
        if let Some(name) = spec.get_str("schedule") {
            return FaultSchedule::named(name, nodes, seed).map(Some);
        }
        let Some(list) = spec.get_list("events") else {
            return Err("faults: needs either 'schedule: <name>' or an 'events:' list".into());
        };
        let mut events = Vec::with_capacity(list.len());
        for (i, ev) in list.iter().enumerate() {
            events.push(decode_event(ev).map_err(|e| format!("faults.events[{i}]: {e}"))?);
        }
        let mut s = FaultSchedule { name: "custom".to_string(), seed, nodes, events };
        s.sort();
        Ok(Some(s))
    }

    /// Sort events by `(time, node, kind)` — a total, input-order-free
    /// key, so two events sharing a timestamp land in the same order no
    /// matter how the schedule was written or generated. Equal full
    /// keys (same instant, node and kind) keep insertion order (stable
    /// sort).
    fn sort(&mut self) {
        self.events.sort_by_key(|e| (e.at, e.kind.sort_node(), e.kind.sort_rank()));
    }

    /// The schedule lowered to the sim layer's `(time, PlaneCmd)`
    /// timeline, ready for
    /// [`popper_sim::FabricSim::set_fault_timeline`].
    pub fn plane_timeline(&self) -> Vec<(Nanos, popper_sim::PlaneCmd)> {
        self.events.iter().map(|e| (e.at, e.kind.to_cmd())).collect()
    }

    /// Virtual time of the first crash event, if any (recovery clocks
    /// start here).
    pub fn first_crash(&self) -> Option<Nanos> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::Crash { .. } => Some(e.at),
            _ => None,
        })
    }

    /// Time of the last event.
    pub fn horizon(&self) -> Nanos {
        self.events.last().map(|e| e.at).unwrap_or(Nanos::ZERO)
    }

    /// Number of crash events in the schedule — the fault-density
    /// input for layers that project the schedule onto their own
    /// failure domain (the CI farm turns this into a per-job
    /// worker-crash probability).
    pub fn crash_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, FaultKind::Crash { .. })).count()
    }

    /// The strongest disk-slowdown factor the schedule ever applies,
    /// if any (the farm projects this onto its shared artifact store
    /// as an ingest slowdown).
    pub fn max_disk_slow_factor(&self) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::DiskSlow { factor, .. } => Some(factor),
                _ => None,
            })
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.max(f))))
    }

    /// The first scheduled restart of `node` at or after `t`, if any —
    /// the schedule → rank-recovery mapping checkpoint-restart policies
    /// use to decide how long survivors must idle before a respawned
    /// rank can rejoin. `None` means the crash is permanent (or the
    /// restart already fired before `t`).
    pub fn restart_after(&self, node: usize, t: Nanos) -> Option<Nanos> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::Restart { node: n } if n == node && e.at >= t => Some(e.at),
            _ => None,
        })
    }

    /// Does the schedule ever restart `node` (at any time)?
    pub fn ever_restarts(&self, node: usize) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Restart { node: n } if n == node))
    }

    /// Serialize to the deterministic `faults.json` artifact.
    pub fn to_json(&self) -> String {
        let mut doc = Value::empty_map();
        doc.insert("schedule", Value::Str(self.name.clone()));
        doc.insert("seed", Value::Num(self.seed as f64));
        doc.insert("nodes", Value::Num(self.nodes as f64));
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                let mut m = Value::empty_map();
                m.insert("at_ms", Value::Num(e.at.as_millis_f64()));
                m.insert("kind", Value::Str(e.kind.kind_name().to_string()));
                match &e.kind {
                    FaultKind::Crash { node } | FaultKind::Restart { node } => {
                        m.insert("node", Value::Num(*node as f64));
                    }
                    FaultKind::Partition { side } => {
                        m.insert(
                            "side",
                            Value::List(side.iter().map(|n| Value::Num(*n as f64)).collect()),
                        );
                    }
                    FaultKind::Loss { node, p } => {
                        m.insert("node", Value::Num(*node as f64));
                        m.insert("p", Value::Num(*p));
                    }
                    FaultKind::LossOneWay { from, to, p } => {
                        m.insert("from", Value::Num(*from as f64));
                        m.insert("to", Value::Num(*to as f64));
                        m.insert("p", Value::Num(*p));
                    }
                    FaultKind::Latency { node, factor } | FaultKind::DiskSlow { node, factor } => {
                        m.insert("node", Value::Num(*node as f64));
                        m.insert("factor", Value::Num(*factor));
                    }
                    FaultKind::Heal | FaultKind::ClearDegradation => {}
                }
                m
            })
            .collect();
        doc.insert("events", Value::List(events));
        json::to_string_pretty(&doc)
    }
}

fn decode_event(ev: &Value) -> Result<FaultEvent, String> {
    let at_ms = ev.get_num("at_ms").ok_or("missing at_ms")?;
    if at_ms < 0.0 {
        return Err("at_ms must be >= 0".into());
    }
    let at = Nanos::from_secs_f64(at_ms / 1e3);
    let kind = ev.get_str("kind").ok_or("missing kind")?;
    let node = || -> Result<usize, String> {
        ev.get_num("node").map(|n| n as usize).ok_or_else(|| format!("{kind} needs node"))
    };
    let kind = match kind {
        "crash" => FaultKind::Crash { node: node()? },
        "restart" => FaultKind::Restart { node: node()? },
        "partition" => {
            let side = ev
                .get_list("side")
                .ok_or("partition needs side")?
                .iter()
                .filter_map(Value::as_num)
                .map(|n| n as usize)
                .collect();
            FaultKind::Partition { side }
        }
        "heal" => FaultKind::Heal,
        "loss" => FaultKind::Loss { node: node()?, p: ev.get_num("p").ok_or("loss needs p")? },
        "loss-oneway" => FaultKind::LossOneWay {
            from: ev.get_num("from").map(|n| n as usize).ok_or("loss-oneway needs from")?,
            to: ev.get_num("to").map(|n| n as usize).ok_or("loss-oneway needs to")?,
            p: ev.get_num("p").ok_or("loss-oneway needs p")?,
        },
        "latency" => FaultKind::Latency {
            node: node()?,
            factor: ev.get_num("factor").ok_or("latency needs factor")?,
        },
        "disk-slow" => FaultKind::DiskSlow {
            node: node()?,
            factor: ev.get_num("factor").ok_or("disk-slow needs factor")?,
        },
        "clear" => FaultKind::ClearDegradation,
        other => return Err(format!("unknown fault kind '{other}'")),
    };
    Ok(FaultEvent { at, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_format::pml;

    #[test]
    fn builtins_resolve_and_sort() {
        for name in BUILTIN_SCHEDULES {
            let s = FaultSchedule::named(name, 8, 1).unwrap();
            assert_eq!(&s.name, name);
            assert!(!s.events.is_empty(), "{name} must have events");
            assert!(s.events.windows(2).all(|w| w[0].at <= w[1].at), "{name} sorted");
        }
        assert!(FaultSchedule::named("nope", 8, 1).is_err());
    }

    #[test]
    fn node_crash_pairs_crash_with_restart() {
        let s = FaultSchedule::named("node-crash", 4, 1).unwrap();
        assert_eq!(s.events[0].kind, FaultKind::Crash { node: 3 });
        assert_eq!(s.events[1].kind, FaultKind::Restart { node: 3 });
        assert_eq!(s.first_crash(), Some(Nanos::from_millis(40)));
        assert_eq!(s.horizon(), Nanos::from_millis(120));
    }

    #[test]
    fn fault_density_projections() {
        let s = FaultSchedule::named("node-crash", 4, 1).unwrap();
        assert_eq!(s.crash_count(), 1);
        assert_eq!(s.max_disk_slow_factor(), None);
        let s = FaultSchedule::named("slow-disk", 4, 1).unwrap();
        assert_eq!(s.crash_count(), 0);
        assert_eq!(s.max_disk_slow_factor(), Some(8.0));
        // The max wins when several slowdowns are scheduled.
        let vars = pml::parse(
            "faults:\n  nodes: 4\n  events:\n    - {at_ms: 1, kind: disk-slow, node: 1, factor: 2.5}\n    - {at_ms: 2, kind: disk-slow, node: 2, factor: 6.0}\n    - {at_ms: 3, kind: crash, node: 3}\n",
        )
        .unwrap();
        let s = FaultSchedule::from_vars(&vars).unwrap().unwrap();
        assert_eq!(s.crash_count(), 1);
        assert_eq!(s.max_disk_slow_factor(), Some(6.0));
    }

    #[test]
    fn restart_after_maps_crashes_to_recovery_points() {
        let s = FaultSchedule::named("node-crash", 4, 1).unwrap();
        // Detection at 60ms still catches the 120ms restart…
        assert_eq!(s.restart_after(3, Nanos::from_millis(60)), Some(Nanos::from_millis(120)));
        // …but a detection after the restart already fired finds none.
        assert_eq!(s.restart_after(3, Nanos::from_millis(130)), None);
        assert!(s.ever_restarts(3));
        assert!(!s.ever_restarts(1), "node 1 never crashes, never restarts");
    }

    #[test]
    fn gremlin_is_seed_deterministic_and_spares_node0() {
        let a = FaultSchedule::gremlin(6, 42);
        let b = FaultSchedule::gremlin(6, 42);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::gremlin(6, 43));
        for e in &a.events {
            if let FaultKind::Crash { node } = e.kind {
                assert_ne!(node, 0, "gremlin must never crash the client");
            }
        }
        // Every crash has a matching restart.
        let crashes: Vec<usize> = a
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash { node } => Some(node),
                _ => None,
            })
            .collect();
        for n in crashes {
            assert!(a
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::Restart { node } if node == n)));
        }
    }

    #[test]
    fn one_way_loss_round_trips_through_events_spec() {
        let vars = pml::parse(
            "faults:\n  nodes: 4\n  events:\n    - {at_ms: 30, kind: loss-oneway, from: 2, to: 0, p: 0.4}\n",
        )
        .unwrap();
        let s = FaultSchedule::from_vars(&vars).unwrap().unwrap();
        assert_eq!(s.events[0].kind, FaultKind::LossOneWay { from: 2, to: 0, p: 0.4 });
        assert_eq!(s.events[0].kind.kind_name(), "loss-oneway");
        assert_eq!(s.events[0].kind.label(), "loss node2->node0 p=0.4");
        let doc = json::parse(&s.to_json()).unwrap();
        let ev = &doc.get_list("events").unwrap()[0];
        assert_eq!(ev.get_num("from"), Some(2.0));
        assert_eq!(ev.get_num("to"), Some(0.0));
        assert_eq!(ev.get_num("p"), Some(0.4));
        // Missing direction fields are spec errors.
        assert!(FaultSchedule::from_vars(
            &pml::parse("faults: {events: [{at_ms: 1, kind: loss-oneway, from: 1, p: 0.2}]}\n")
                .unwrap()
        )
        .is_err());
    }

    #[test]
    fn gremlin_covers_oneway_loss_and_flapping_partitions() {
        // Over a pool of seeds the generator must exercise the new
        // arms: directed loss and partition flaps (≥ 2 cycles).
        let mut saw_oneway = false;
        let mut saw_flap = false;
        for seed in 0..64 {
            let s = FaultSchedule::gremlin(6, seed);
            saw_oneway |= s
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::LossOneWay { .. }));
            let partitions =
                s.events.iter().filter(|e| matches!(e.kind, FaultKind::Partition { .. })).count();
            saw_flap |= partitions >= 2;
        }
        assert!(saw_oneway, "some seed must generate one-way link loss");
        assert!(saw_flap, "some seed must generate a flapping partition");
    }

    #[test]
    fn gremlin_always_ends_healed() {
        use crate::driver::ChaosDriver;
        use popper_sim::FaultPlane;
        for seed in 0..64 {
            let s = FaultSchedule::gremlin(6, seed);
            let horizon = s.horizon();
            let mut plane = FaultPlane::new(6);
            let mut d = ChaosDriver::new(s);
            d.advance(&mut plane, horizon);
            assert!(d.done(), "seed {seed}: all events due by the horizon");
            assert!(!plane.is_active(), "seed {seed}: schedule must end healthy");
        }
    }

    #[test]
    fn from_vars_reads_builtin_spec() {
        let vars =
            pml::parse("nodes: [1, 2, 4]\nfaults:\n  schedule: node-crash\n  seed: 9\n").unwrap();
        let s = FaultSchedule::from_vars(&vars).unwrap().unwrap();
        assert_eq!(s.name, "node-crash");
        assert_eq!(s.seed, 9);
        assert_eq!(s.nodes, 4, "nodes from the max of the top-level list");
        assert_eq!(s.events[0].kind, FaultKind::Crash { node: 3 });
    }

    #[test]
    fn from_vars_reads_event_list() {
        let vars = pml::parse(
            "faults:\n  nodes: 4\n  events:\n    - {at_ms: 90, kind: loss, node: 1, p: 0.2}\n    - {at_ms: 40, kind: crash, node: 2}\n    - {at_ms: 120, kind: restart, node: 2}\n",
        )
        .unwrap();
        let s = FaultSchedule::from_vars(&vars).unwrap().unwrap();
        assert_eq!(s.name, "custom");
        // Sorted by time regardless of spec order.
        assert_eq!(s.events[0].kind, FaultKind::Crash { node: 2 });
        assert_eq!(s.events[1].kind, FaultKind::Loss { node: 1, p: 0.2 });
    }

    #[test]
    fn from_vars_absent_and_malformed() {
        assert_eq!(FaultSchedule::from_vars(&pml::parse("x: 1\n").unwrap()).unwrap(), None);
        assert!(FaultSchedule::from_vars(&pml::parse("faults: {seed: 1}\n").unwrap()).is_err());
        assert!(FaultSchedule::from_vars(
            &pml::parse("faults: {events: [{at_ms: 1, kind: warp}]}\n").unwrap()
        )
        .is_err());
        assert!(FaultSchedule::from_vars(
            &pml::parse("faults: {schedule: frob}\n").unwrap()
        )
        .is_err());
    }

    #[test]
    fn same_instant_events_sort_independently_of_insertion_order() {
        // Two events sharing a timestamp must land in the same order no
        // matter how the spec listed them: keyed on (time, node, kind).
        let forward = "faults:\n  nodes: 4\n  events:\n    - {at_ms: 50, kind: crash, node: 1}\n    - {at_ms: 50, kind: loss, node: 1, p: 0.2}\n    - {at_ms: 50, kind: crash, node: 3}\n    - {at_ms: 120, kind: restart, node: 1}\n    - {at_ms: 120, kind: restart, node: 3}\n";
        let reversed = "faults:\n  nodes: 4\n  events:\n    - {at_ms: 120, kind: restart, node: 3}\n    - {at_ms: 120, kind: restart, node: 1}\n    - {at_ms: 50, kind: crash, node: 3}\n    - {at_ms: 50, kind: loss, node: 1, p: 0.2}\n    - {at_ms: 50, kind: crash, node: 1}\n";
        let a = FaultSchedule::from_vars(&pml::parse(forward).unwrap()).unwrap().unwrap();
        let b = FaultSchedule::from_vars(&pml::parse(reversed).unwrap()).unwrap().unwrap();
        assert_eq!(a.events, b.events);
        // Node breaks the tie first, kind second (crash before loss on
        // the same node at the same instant).
        assert_eq!(a.events[0].kind, FaultKind::Crash { node: 1 });
        assert_eq!(a.events[1].kind, FaultKind::Loss { node: 1, p: 0.2 });
        assert_eq!(a.events[2].kind, FaultKind::Crash { node: 3 });
        // The identical byte stream feeds faults.json either way.
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn plane_timeline_lowers_every_event() {
        use popper_sim::{FaultPlane, PlaneCmd};
        let s = FaultSchedule::gremlin(6, 3);
        let timeline = s.plane_timeline();
        assert_eq!(timeline.len(), s.events.len());
        assert!(timeline.iter().any(|(_, c)| matches!(c, PlaneCmd::HealPartition)));
        // Applying the lowered commands equals driving the schedule.
        let mut via_cmds = FaultPlane::new(6);
        via_cmds.set_seed(s.seed);
        for (_, cmd) in &timeline {
            via_cmds.apply(cmd);
        }
        let mut via_driver = FaultPlane::new(6);
        let mut d = crate::driver::ChaosDriver::new(s.clone());
        d.advance(&mut via_driver, s.horizon());
        assert_eq!(via_cmds, via_driver);
    }

    #[test]
    fn faults_json_is_deterministic_and_parses() {
        let s = FaultSchedule::named("gremlin", 8, 5).unwrap();
        let a = s.to_json();
        assert_eq!(a, s.to_json());
        let doc = json::parse(&a).unwrap();
        assert_eq!(doc.get_str("schedule"), Some("gremlin"));
        assert_eq!(doc.get_num("nodes"), Some(8.0));
        assert!(!doc.get_list("events").unwrap().is_empty());
    }
}
