//! # popper-chaos
//!
//! Deterministic fault injection for the simulated stack. A
//! [`FaultSchedule`] is a sorted list of [`FaultEvent`]s — node
//! crash/restart, network partition/heal, packet loss, latency
//! inflation, disk slowdown — in virtual time; a [`ChaosDriver`] applies
//! them to a cluster's [`popper_sim::FaultPlane`] as the experiment's
//! clock advances, emitting a `popper-trace` instant for every injection
//! so the timeline shows cause → effect.
//!
//! Because the cluster is a deterministic discrete-event simulator,
//! chaos here is perfectly reproducible: the same seed and schedule
//! produce byte-identical fault timelines, recovery metrics and traces —
//! a property no real-cluster chaos tool can offer, and exactly what the
//! Popper convention needs to make "does the experiment survive degraded
//! infrastructure?" an automatically validated claim.
//!
//! Schedules come from three places:
//!
//! * built-in named schedules ([`FaultSchedule::named`]) — `node-crash`,
//!   `partition`, `packet-loss`, `slow-disk`, `gremlin`;
//! * a PML `faults:` spec in an experiment's `vars.pml`
//!   ([`FaultSchedule::from_vars`]);
//! * the seeded gremlin generator ([`FaultSchedule::gremlin`]).
//!
//! Every schedule serializes to a deterministic `faults.json`
//! ([`FaultSchedule::to_json`]) that is committed next to `results.csv`,
//! so the fault timeline is itself a versioned Popper artifact.

pub mod driver;
pub mod schedule;

pub use driver::ChaosDriver;
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, BUILTIN_SCHEDULES};

/// The default chaos validations, checked when an experiment ships no
/// `chaos.aver` of its own. They encode the resilience contract: the
/// system recovers within 5 (virtual) seconds, at most half the
/// accesses run degraded, and degraded never means wrong.
pub const DEFAULT_ASSERTIONS: &str = "\
when schedule=* expect recovers_within(recovery_ms, 5000);
when schedule=* expect degraded_at_most(degraded_fraction, 0.5);
when schedule=* expect max(corrupt) = 0
";
