//! Task modules and the managed-host model.

use popper_format::Value;
use std::collections::BTreeMap;

/// The modeled state of one managed machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostState {
    /// Gathered facts (populated by the `setup` module and by the
    /// environment that creates the host, e.g. platform characteristics).
    pub facts: BTreeMap<String, Value>,
    /// Files on the host.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Installed packages: name → version.
    pub packages: BTreeMap<String, String>,
    /// Services: name → running?
    pub services: BTreeMap<String, bool>,
    /// Every command executed, in order (the audit trail).
    pub command_log: Vec<String>,
    /// Registered task results and set_facts (host variables).
    pub vars: BTreeMap<String, Value>,
}

/// The result of one module invocation on one host.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleResult {
    /// Did the module change host state?
    pub changed: bool,
    /// Module-specific output (registered under `register:`).
    pub output: Value,
}

impl ModuleResult {
    fn ok(changed: bool, output: Value) -> Result<ModuleResult, String> {
        Ok(ModuleResult { changed, output })
    }
}

/// Execute module `name` with (already templated) `args` against
/// `host`. `controller_files` is the control-node file area that `copy`
/// reads from and `fetch` writes into.
pub fn run_module(
    name: &str,
    args: &Value,
    host: &mut HostState,
    controller_files: &mut BTreeMap<String, Vec<u8>>,
) -> Result<ModuleResult, String> {
    match name {
        "setup" => {
            // Fact gathering: facts are exposed as vars.
            let mut m = Value::empty_map();
            for (k, v) in &host.facts {
                m.insert(k.clone(), v.clone());
            }
            ModuleResult::ok(false, m)
        }
        "package" => {
            let pkg = args.get_str("name").ok_or("package: missing 'name'")?.to_string();
            let version = args.get_str("version").unwrap_or("latest").to_string();
            let state = args.get_str("state").unwrap_or("present");
            match state {
                "present" => {
                    let already = host.packages.get(&pkg) == Some(&version);
                    host.packages.insert(pkg.clone(), version.clone());
                    ModuleResult::ok(!already, Value::Str(format!("{pkg}-{version}")))
                }
                "absent" => {
                    let removed = host.packages.remove(&pkg).is_some();
                    ModuleResult::ok(removed, Value::Null)
                }
                other => Err(format!("package: invalid state '{other}'")),
            }
        }
        "copy" => {
            let dest = args.get_str("dest").ok_or("copy: missing 'dest'")?.to_string();
            let contents: Vec<u8> = if let Some(content) = args.get_str("content") {
                content.as_bytes().to_vec()
            } else if let Some(src) = args.get_str("src") {
                controller_files
                    .get(src)
                    .cloned()
                    .ok_or_else(|| format!("copy: controller file '{src}' not found"))?
            } else {
                return Err("copy: needs 'content' or 'src'".into());
            };
            let changed = host.files.get(&dest) != Some(&contents);
            host.files.insert(dest, contents);
            ModuleResult::ok(changed, Value::Null)
        }
        "command" => {
            let cmd = match args {
                Value::Str(s) => s.clone(),
                other => other
                    .get_str("cmd")
                    .ok_or("command: needs a command string or {cmd: …}")?
                    .to_string(),
            };
            host.command_log.push(cmd.clone());
            // The model "executes" by recording; output echoes the
            // command so register/when chains are exercisable.
            ModuleResult::ok(true, Value::Str(cmd))
        }
        "service" => {
            let svc = args.get_str("name").ok_or("service: missing 'name'")?.to_string();
            let state = args.get_str("state").unwrap_or("started");
            let want = match state {
                "started" => true,
                "stopped" => false,
                other => return Err(format!("service: invalid state '{other}'")),
            };
            // Starting a service requires its package (same-named) to be
            // installed — the failure mode the paper's CI checks exist to
            // catch early.
            if want && !host.packages.keys().any(|p| svc.starts_with(p.as_str())) {
                return Err(format!("service: '{svc}' has no installed package"));
            }
            let changed = host.services.get(&svc) != Some(&want);
            host.services.insert(svc, want);
            ModuleResult::ok(changed, Value::Bool(want))
        }
        "fetch" => {
            let src = args.get_str("src").ok_or("fetch: missing 'src'")?;
            let dest = args.get_str("dest").ok_or("fetch: missing 'dest'")?.to_string();
            let data = host
                .files
                .get(src)
                .cloned()
                .ok_or_else(|| format!("fetch: '{src}' not on host"))?;
            controller_files.insert(dest, data);
            ModuleResult::ok(false, Value::Null)
        }
        "set_fact" => {
            let entries = args.as_map().ok_or("set_fact: needs a mapping")?;
            for (k, v) in entries {
                host.vars.insert(k.clone(), v.clone());
            }
            ModuleResult::ok(false, Value::Null)
        }
        "assert_that" => {
            let var = args.get_str("var").ok_or("assert_that: missing 'var'")?;
            let actual = host
                .vars
                .get(var)
                .or_else(|| host.facts.get(var))
                .cloned()
                .unwrap_or(Value::Null);
            let expected = args.get("equals").cloned().ok_or("assert_that: missing 'equals'")?;
            if actual.to_display_string() == expected.to_display_string() {
                ModuleResult::ok(false, Value::Bool(true))
            } else {
                Err(format!(
                    "assert_that: '{var}' is '{}', expected '{}'",
                    actual.to_display_string(),
                    expected.to_display_string()
                ))
            }
        }
        other => Err(format!("unknown module '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, args: Value, host: &mut HostState) -> Result<ModuleResult, String> {
        let mut ctl = BTreeMap::new();
        run_module(name, &args, host, &mut ctl)
    }

    #[test]
    fn package_install_and_idempotence() {
        let mut h = HostState::default();
        let mut args = Value::empty_map();
        args.insert("name", Value::from("gassyfs"));
        args.insert("version", Value::from("2.1"));
        let r1 = run("package", args.clone(), &mut h).unwrap();
        assert!(r1.changed);
        assert_eq!(h.packages["gassyfs"], "2.1");
        let r2 = run("package", args, &mut h).unwrap();
        assert!(!r2.changed, "re-install of same version is a no-op");
        // Removal.
        let mut rm = Value::empty_map();
        rm.insert("name", Value::from("gassyfs"));
        rm.insert("state", Value::from("absent"));
        assert!(run("package", rm.clone(), &mut h).unwrap().changed);
        assert!(!run("package", rm, &mut h).unwrap().changed);
    }

    #[test]
    fn copy_from_content_and_controller() {
        let mut h = HostState::default();
        let mut ctl = BTreeMap::new();
        ctl.insert("vars.pml".to_string(), b"nodes: 4\n".to_vec());
        let mut args = Value::empty_map();
        args.insert("src", Value::from("vars.pml"));
        args.insert("dest", Value::from("exp/vars.pml"));
        run_module("copy", &args, &mut h, &mut ctl).unwrap();
        assert_eq!(h.files["exp/vars.pml"], b"nodes: 4\n");

        let mut inline = Value::empty_map();
        inline.insert("content", Value::from("hello"));
        inline.insert("dest", Value::from("hi.txt"));
        run_module("copy", &inline, &mut h, &mut ctl).unwrap();
        assert_eq!(h.files["hi.txt"], b"hello");

        let mut missing = Value::empty_map();
        missing.insert("src", Value::from("nope"));
        missing.insert("dest", Value::from("x"));
        assert!(run_module("copy", &missing, &mut h, &mut ctl).is_err());
    }

    #[test]
    fn command_logs_and_echoes() {
        let mut h = HostState::default();
        let r = run("command", Value::Str("./run.sh --all".into()), &mut h).unwrap();
        assert!(r.changed);
        assert_eq!(r.output.as_str(), Some("./run.sh --all"));
        assert_eq!(h.command_log, vec!["./run.sh --all"]);
    }

    #[test]
    fn service_requires_package() {
        let mut h = HostState::default();
        let mut args = Value::empty_map();
        args.insert("name", Value::from("gassyfsd"));
        args.insert("state", Value::from("started"));
        assert!(run("service", args.clone(), &mut h).is_err());
        // Install the backing package, then start.
        let mut pkg = Value::empty_map();
        pkg.insert("name", Value::from("gassyfs"));
        run("package", pkg, &mut h).unwrap();
        assert!(run("service", args.clone(), &mut h).unwrap().changed);
        assert!(!run("service", args, &mut h).unwrap().changed);
        assert!(h.services["gassyfsd"]);
        // Stopping works without a package.
        let mut stop = Value::empty_map();
        stop.insert("name", Value::from("gassyfsd"));
        stop.insert("state", Value::from("stopped"));
        assert!(run("service", stop, &mut h).unwrap().changed);
    }

    #[test]
    fn fetch_pulls_to_controller() {
        let mut h = HostState::default();
        h.files.insert("results.csv".into(), b"a,b\n1,2\n".to_vec());
        let mut ctl = BTreeMap::new();
        let mut args = Value::empty_map();
        args.insert("src", Value::from("results.csv"));
        args.insert("dest", Value::from("collected/node0.csv"));
        run_module("fetch", &args, &mut h, &mut ctl).unwrap();
        assert_eq!(ctl["collected/node0.csv"], b"a,b\n1,2\n");
    }

    #[test]
    fn set_fact_and_assert_that() {
        let mut h = HostState::default();
        let mut facts = Value::empty_map();
        facts.insert("kernel", Value::from("4.4-popper"));
        run("set_fact", facts, &mut h).unwrap();
        let mut ok = Value::empty_map();
        ok.insert("var", Value::from("kernel"));
        ok.insert("equals", Value::from("4.4-popper"));
        assert!(run("assert_that", ok, &mut h).is_ok());
        let mut bad = Value::empty_map();
        bad.insert("var", Value::from("kernel"));
        bad.insert("equals", Value::from("5.0"));
        let err = run("assert_that", bad, &mut h).unwrap_err();
        assert!(err.contains("expected '5.0'"));
    }

    #[test]
    fn setup_exposes_facts() {
        let mut h = HostState::default();
        h.facts.insert("cores".into(), Value::Num(16.0));
        let r = run("setup", Value::empty_map(), &mut h).unwrap();
        assert_eq!(r.output.get_num("cores"), Some(16.0));
    }
}
