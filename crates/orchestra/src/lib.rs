//! # popper-orchestra
//!
//! Multi-node orchestration — the "Ansible slot" of the Popper toolkit
//! (§Toolkit, *Multi-node Orchestration*): "a tool that automatically
//! manages binaries, updates packages across machines and drives the
//! end-to-end execution of the experiment".
//!
//! * [`inventory`] — hosts, groups and per-host variables, loaded from
//!   PML (the `vars.pml` / inventory files of a Popperized experiment).
//! * [`playbook`] — plays and tasks with `when:` guards, `register:`
//!   result capture and `{{ var }}` templating, loaded from PML
//!   (`setup.pml` in the paper's Listing 1 is one of these).
//! * [`modules`] — the task modules: `setup` (fact gathering), `package`,
//!   `copy`, `command`, `service`, `fetch`, `set_fact`, `assert_that`.
//!   Modules act on a per-host [`modules::HostState`] — the model of a
//!   managed machine.
//! * [`executor`] — runs a playbook against an inventory, executing each
//!   task across the selected hosts *in parallel* (crossbeam scoped
//!   threads), collecting an auditable per-task report.

pub mod executor;
pub mod inventory;
pub mod modules;
pub mod playbook;
pub mod shardworld;

pub use executor::{run_playbook, run_playbook_traced, HostReport, PlaybookReport, TaskStatus};
pub use shardworld::{run_sharded, run_sharded_chaos, ShardedOrchestraChaosReport, ShardedOrchestraConfig, ShardedOrchestraReport};
pub use inventory::{Host, Inventory};
pub use modules::HostState;
pub use playbook::{Play, Playbook, Task};
