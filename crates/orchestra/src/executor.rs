//! The playbook executor.
//!
//! Plays run in order; within a play, each task runs across the selected
//! hosts in parallel (one crossbeam scoped thread per host), then the
//! executor synchronizes before the next task — Ansible's "linear"
//! strategy. A host that fails a task skips that play's remaining tasks
//! but other hosts continue; the playbook as a whole fails if any host
//! failed.

use crate::inventory::Inventory;
use crate::modules::{run_module, HostState};
use crate::playbook::{eval_when, template, Playbook};
use parking_lot::Mutex;
use popper_format::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Per-(host, task) outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Ran, no changes.
    Ok,
    /// Ran and changed host state.
    Changed,
    /// Guard was false.
    Skipped,
    /// Module failed with this message.
    Failed(String),
    /// Not attempted because an earlier task failed on this host.
    Unreachable,
}

impl TaskStatus {
    /// True for `Failed`.
    pub fn is_failed(&self) -> bool {
        matches!(self, TaskStatus::Failed(_))
    }
}

/// The report for one host.
#[derive(Debug, Clone, Default)]
pub struct HostReport {
    /// `(play name, task name, status)` in execution order.
    pub entries: Vec<(String, String, TaskStatus)>,
}

impl HostReport {
    /// Count entries with a given predicate.
    fn count(&self, f: impl Fn(&TaskStatus) -> bool) -> usize {
        self.entries.iter().filter(|(_, _, s)| f(s)).count()
    }
}

/// The full playbook run report.
#[derive(Debug, Default)]
pub struct PlaybookReport {
    /// Per-host reports.
    pub hosts: BTreeMap<String, HostReport>,
    /// Final host states (facts, files, packages, logs).
    pub states: BTreeMap<String, HostState>,
    /// Files fetched back to the controller.
    pub controller_files: BTreeMap<String, Vec<u8>>,
}

impl PlaybookReport {
    /// True when no host failed any task.
    pub fn success(&self) -> bool {
        self.hosts.values().all(|h| h.count(TaskStatus::is_failed) == 0)
    }

    /// `ansible-playbook`-style recap.
    pub fn recap(&self) -> String {
        let mut out = String::from("PLAY RECAP\n");
        for (host, report) in &self.hosts {
            out.push_str(&format!(
                "{host:<16} ok={} changed={} skipped={} failed={} unreachable={}\n",
                report.count(|s| matches!(s, TaskStatus::Ok)),
                report.count(|s| matches!(s, TaskStatus::Changed)),
                report.count(|s| matches!(s, TaskStatus::Skipped)),
                report.count(TaskStatus::is_failed),
                report.count(|s| matches!(s, TaskStatus::Unreachable)),
            ));
        }
        out
    }
}

impl fmt::Display for PlaybookReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.recap())
    }
}

/// Run `playbook` against `inventory`. `initial_states` seeds per-host
/// state (facts such as platform characteristics); hosts not present
/// start empty. `controller_files` is the control node's file area
/// (experiment scripts for `copy`, destination for `fetch`).
pub fn run_playbook(
    playbook: &Playbook,
    inventory: &Inventory,
    initial_states: BTreeMap<String, HostState>,
    controller_files: BTreeMap<String, Vec<u8>>,
) -> PlaybookReport {
    run_playbook_traced(playbook, inventory, initial_states, controller_files, popper_trace::Tracer::disabled())
}

/// [`run_playbook`] with a wall-clock [`popper_trace::Tracer`]: one span
/// per play on the `orchestra/controller` track and one span per
/// `(task, host)` on that host's thread (`orchestra/<host>` tracks).
pub fn run_playbook_traced(
    playbook: &Playbook,
    inventory: &Inventory,
    mut initial_states: BTreeMap<String, HostState>,
    controller_files: BTreeMap<String, Vec<u8>>,
    tracer: popper_trace::Tracer,
) -> PlaybookReport {
    let mut report = PlaybookReport { controller_files, ..Default::default() };

    // Materialize state for every inventory host.
    for host in inventory.hosts() {
        let mut state = initial_states.remove(&host.name).unwrap_or_default();
        // Standard facts.
        state.facts.insert("hostname".into(), Value::Str(host.name.clone()));
        state
            .facts
            .insert("groups".into(), Value::List(host.groups.iter().map(|g| Value::Str(g.clone())).collect()));
        // Inventory vars become host vars.
        if let Some(entries) = host.vars.as_map() {
            for (k, v) in entries {
                state.vars.insert(k.clone(), v.clone());
            }
        }
        report.states.insert(host.name.clone(), state);
        report.hosts.insert(host.name.clone(), HostReport::default());
    }

    for play in &playbook.plays {
        let _play_span = tracer.span("orchestra", "orchestra/controller", format!("play {}", play.name));
        let selected: Vec<String> = inventory.select(&play.hosts).iter().map(|h| h.name.clone()).collect();
        let mut dead: BTreeMap<String, bool> = selected.iter().map(|h| (h.clone(), false)).collect();

        for task in &play.tasks {
            // One slot per selected host; threads fill them in parallel.
            let controller = Mutex::new(std::mem::take(&mut report.controller_files));
            let results: Vec<Mutex<Option<(TaskStatus, HostState)>>> =
                selected.iter().map(|_| Mutex::new(None)).collect();

            crossbeam::scope(|scope| {
                for (i, host_name) in selected.iter().enumerate() {
                    if dead[host_name] {
                        continue;
                    }
                    let mut state = report.states.get(host_name).cloned().expect("state exists");
                    let slot = &results[i];
                    let controller = &controller;
                    let tracer = tracer.clone();
                    scope.spawn(move |_| {
                        let _task_span =
                            tracer.span("orchestra", format!("orchestra/{host_name}"), &task.name);
                        let status =
                            run_task_on_host(task, host_name, &mut state, controller, &tracer);
                        *slot.lock() = Some((status, state));
                    });
                }
            })
            .expect("executor threads must not panic");

            report.controller_files = controller.into_inner();
            for (i, host_name) in selected.iter().enumerate() {
                let host_report = report.hosts.get_mut(host_name).expect("report exists");
                if dead[host_name] {
                    host_report.entries.push((
                        play.name.clone(),
                        task.name.clone(),
                        TaskStatus::Unreachable,
                    ));
                    continue;
                }
                let (status, state) = results[i].lock().take().expect("slot filled");
                if status.is_failed() {
                    dead.insert(host_name.clone(), true);
                }
                report.states.insert(host_name.clone(), state);
                host_report.entries.push((play.name.clone(), task.name.clone(), status));
            }
        }
    }
    report
}

/// Run one task on one host, retrying failures up to the task's
/// `max_attempts` (the host-unreachable resilience knob). Each retry is
/// an instant on the host's trace track; the final failure message
/// carries the attempt count.
fn run_task_on_host(
    task: &crate::playbook::Task,
    host_name: &str,
    state: &mut HostState,
    controller: &Mutex<BTreeMap<String, Vec<u8>>>,
    tracer: &popper_trace::Tracer,
) -> TaskStatus {
    let attempts = task.max_attempts.max(1);
    let mut status = run_task_attempt(task, state, controller);
    let mut made = 1;
    while status.is_failed() && made < attempts {
        made += 1;
        tracer.instant(
            "chaos",
            format!("orchestra/{host_name}"),
            format!("retry '{}' (attempt {made}/{attempts}, after {}ms)", task.name, task.retry_delay_ms),
        );
        status = run_task_attempt(task, state, controller);
    }
    match status {
        TaskStatus::Failed(msg) if attempts > 1 => {
            TaskStatus::Failed(format!("{msg} (after {attempts} attempts)"))
        }
        other => other,
    }
}

fn run_task_attempt(
    task: &crate::playbook::Task,
    state: &mut HostState,
    controller: &Mutex<BTreeMap<String, Vec<u8>>>,
) -> TaskStatus {
    // Variable lookup: vars shadow facts.
    let lookup = |name: &str| -> Option<Value> {
        state.vars.get(name).or_else(|| state.facts.get(name)).cloned()
    };
    if let Some(when) = &task.when {
        match eval_when(when, &lookup) {
            Ok(false) => return TaskStatus::Skipped,
            Ok(true) => {}
            Err(e) => return TaskStatus::Failed(e),
        }
    }
    // `with_items` expands the task once per item with `item` bound;
    // a task without it runs once with no binding.
    let items: Vec<Option<Value>> = match &task.with_items {
        Some(list) => list.iter().cloned().map(Some).collect(),
        None => vec![None],
    };
    let mut any_changed = false;
    let mut outputs: Vec<Value> = Vec::with_capacity(items.len());
    for item in items {
        let lookup_item = |name: &str| -> Option<Value> {
            if name == "item" {
                return item.clone();
            }
            state.vars.get(name).or_else(|| state.facts.get(name)).cloned()
        };
        let args = match template(&task.args, &lookup_item) {
            Ok(a) => a,
            Err(e) => return TaskStatus::Failed(e),
        };
        // Modules need &mut controller map; take the lock for the module
        // duration (fetch/copy are the only users and are short).
        let mut ctl = controller.lock();
        match run_module(&task.module, &args, state, &mut ctl) {
            Ok(result) => {
                any_changed |= result.changed;
                outputs.push(result.output);
            }
            Err(e) => return TaskStatus::Failed(e),
        }
    }
    if let Some(reg) = &task.register {
        let value = if task.with_items.is_some() {
            Value::List(outputs)
        } else {
            outputs.pop().unwrap_or(Value::Null)
        };
        state.vars.insert(reg.clone(), value);
    }
    if any_changed {
        TaskStatus::Changed
    } else {
        TaskStatus::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::playbook::Playbook;

    fn inventory() -> Inventory {
        let mut inv = Inventory::new();
        inv.add_cluster("node", 4, &["gassyfs"]);
        inv.add(crate::inventory::Host {
            name: "head0".into(),
            groups: vec!["head".into(), "gassyfs".into()],
            vars: {
                let mut m = Value::empty_map();
                m.insert("role", Value::from("coordinator"));
                m
            },
        });
        inv
    }

    const PLAYBOOK: &str = "\
- name: provision
  hosts: gassyfs
  tasks:
    - name: install gassyfs
      package: {name: gassyfs, version: \"2.1\"}
    - name: drop config
      copy: {content: \"nodes: 5\", dest: etc/gassyfs.conf}
    - name: start daemon
      service: {name: gassyfs-daemon, state: started}
    - name: coordinator marker
      command: init-coordinator
      when: role == coordinator
- name: benchmark
  hosts: head
  tasks:
    - name: run benchmark
      command: gassyfs-bench --workload {{ workload }}
      register: bench_cmd
    - name: record result
      copy: {content: \"time,42\", dest: results.csv}
    - name: fetch results
      fetch: {src: results.csv, dest: collected/results.csv}
";

    fn run_sample() -> PlaybookReport {
        let pb = Playbook::from_pml(PLAYBOOK).unwrap();
        let inv = inventory();
        let mut initial = BTreeMap::new();
        let mut head = HostState::default();
        head.vars.insert("workload".into(), Value::Str("git".into()));
        initial.insert("head0".to_string(), head);
        run_playbook(&pb, &inv, initial, BTreeMap::new())
    }

    #[test]
    fn end_to_end_playbook() {
        let report = run_sample();
        assert!(report.success(), "{}", report.recap());
        // All 5 gassyfs hosts got the package and service.
        for node in ["node0", "node1", "node2", "node3", "head0"] {
            let st = &report.states[node];
            assert_eq!(st.packages["gassyfs"], "2.1");
            assert!(st.services["gassyfs-daemon"]);
            assert_eq!(st.files["etc/gassyfs.conf"], b"nodes: 5");
        }
        // Only the coordinator ran the marker command.
        assert_eq!(report.states["head0"].command_log[0], "init-coordinator");
        assert!(report.states["node0"].command_log.is_empty());
        // Fetch pulled results back to the controller.
        assert_eq!(report.controller_files["collected/results.csv"], b"time,42");
        // Templating resolved the registered variable.
        assert_eq!(
            report.states["head0"].vars["bench_cmd"].as_str(),
            Some("gassyfs-bench --workload git")
        );
    }

    #[test]
    fn recap_shape() {
        let report = run_sample();
        let recap = report.recap();
        assert!(recap.contains("head0"));
        assert!(recap.contains("failed=0"));
        // node0 in play 1: 3 changed + 1 skipped.
        let node0 = &report.hosts["node0"];
        assert_eq!(node0.count(|s| matches!(s, TaskStatus::Changed)), 3);
        assert_eq!(node0.count(|s| matches!(s, TaskStatus::Skipped)), 1);
    }

    #[test]
    fn failure_stops_that_host_only() {
        let pb = Playbook::from_pml(
            "\
- name: p
  hosts: all
  tasks:
    - name: only-head-has-this
      fetch: {src: special.txt, dest: out.txt}
    - name: after
      command: echo done
",
        )
        .unwrap();
        let mut inv = Inventory::new();
        inv.add_cluster("node", 2, &["g"]);
        let mut initial = BTreeMap::new();
        let mut with_file = HostState::default();
        with_file.files.insert("special.txt".into(), b"x".to_vec());
        initial.insert("node0".to_string(), with_file);
        let report = run_playbook(&pb, &inv, initial, BTreeMap::new());
        assert!(!report.success());
        // node0 completed both tasks; node1 failed the first and was
        // unreachable for the second.
        assert_eq!(report.hosts["node0"].entries[1].2, TaskStatus::Changed);
        assert!(report.hosts["node1"].entries[0].2.is_failed());
        assert_eq!(report.hosts["node1"].entries[1].2, TaskStatus::Unreachable);
        assert_eq!(report.states["node0"].command_log, vec!["echo done"]);
        assert!(report.states["node1"].command_log.is_empty());
    }

    #[test]
    fn retries_exhaust_and_report_attempt_count() {
        let pb = Playbook::from_pml(
            "\
- name: p
  hosts: all
  tasks:
    - name: fetch the missing file
      fetch: {src: ghost.txt, dest: out.txt}
      max_attempts: 3
      retry_delay: 10
    - name: unretried failure
      fetch: {src: ghost.txt, dest: out.txt}
",
        )
        .unwrap();
        let mut inv = Inventory::new();
        inv.add_cluster("n", 1, &[]);
        let report = run_playbook(&pb, &inv, BTreeMap::new(), BTreeMap::new());
        assert!(!report.success());
        match &report.hosts["n0"].entries[0].2 {
            TaskStatus::Failed(msg) => {
                assert!(msg.contains("after 3 attempts"), "{msg}");
            }
            other => panic!("{other:?}"),
        }
        // The host is dead after the first task; no second attempt count.
        assert_eq!(report.hosts["n0"].entries[1].2, TaskStatus::Unreachable);
    }

    #[test]
    fn retries_emit_chaos_instants_on_the_host_track() {
        let pb = Playbook::from_pml(
            "- name: p\n  hosts: all\n  tasks:\n    - name: t\n      fetch: {src: nope, dest: d}\n      max_attempts: 2\n",
        )
        .unwrap();
        let mut inv = Inventory::new();
        inv.add_cluster("n", 1, &[]);
        let sink = popper_trace::TraceSink::new();
        let tracer = sink.tracer(popper_trace::ClockDomain::Wall);
        run_playbook_traced(&pb, &inv, BTreeMap::new(), BTreeMap::new(), tracer.clone());
        tracer.flush();
        let events = sink.drain();
        assert!(
            events.iter().any(|e| e.category == "chaos" && e.name.contains("retry 't'")),
            "{events:?}"
        );
    }

    #[test]
    fn undefined_template_variable_fails_task() {
        let pb = Playbook::from_pml(
            "- name: p\n  hosts: all\n  tasks:\n    - name: t\n      command: run {{ missing }}\n",
        )
        .unwrap();
        let mut inv = Inventory::new();
        inv.add_cluster("n", 1, &[]);
        let report = run_playbook(&pb, &inv, BTreeMap::new(), BTreeMap::new());
        assert!(!report.success());
        match &report.hosts["n0"].entries[0].2 {
            TaskStatus::Failed(msg) => assert!(msg.contains("undefined variable")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn facts_available_to_templates() {
        let pb = Playbook::from_pml(
            "- name: p\n  hosts: all\n  tasks:\n    - name: t\n      command: hello-from-{{ hostname }}\n",
        )
        .unwrap();
        let mut inv = Inventory::new();
        inv.add_cluster("node", 2, &[]);
        let report = run_playbook(&pb, &inv, BTreeMap::new(), BTreeMap::new());
        assert!(report.success());
        assert_eq!(report.states["node1"].command_log, vec!["hello-from-node1"]);
    }

    #[test]
    fn parallel_execution_is_deterministic_in_outcome() {
        // Run the same playbook many times; the final states must be
        // identical despite thread scheduling.
        let first = run_sample();
        for _ in 0..5 {
            let again = run_sample();
            assert_eq!(first.states, again.states);
        }
    }
}

#[cfg(test)]
mod with_items_tests {
    use super::*;
    use crate::playbook::Playbook;

    #[test]
    fn with_items_expands_and_registers_list() {
        let pb = Playbook::from_pml(
            "\
- name: p
  hosts: all
  tasks:
    - name: install the stack
      package: {name: \"{{ item }}\"}
      with_items: [gassyfs, fuse, gasnet]
      register: installed
    - name: echo each
      command: provision-{{ item }}
      with_items: [a, b]
",
        )
        .unwrap();
        let mut inv = Inventory::new();
        inv.add_cluster("n", 1, &[]);
        let report = run_playbook(&pb, &inv, BTreeMap::new(), BTreeMap::new());
        assert!(report.success(), "{}", report.recap());
        let st = &report.states["n0"];
        for pkg in ["gassyfs", "fuse", "gasnet"] {
            assert_eq!(st.packages[pkg], "latest");
        }
        // Registered output is the list of per-item outputs.
        let reg = st.vars["installed"].as_list().unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(st.command_log, vec!["provision-a", "provision-b"]);
    }

    #[test]
    fn with_items_idempotence_marks_ok_on_second_run() {
        let pb = Playbook::from_pml(
            "- name: p\n  hosts: all\n  tasks:\n    - name: t\n      package: {name: \"{{ item }}\"}\n      with_items: [x, y]\n",
        )
        .unwrap();
        let mut inv = Inventory::new();
        inv.add_cluster("n", 1, &[]);
        let first = run_playbook(&pb, &inv, BTreeMap::new(), BTreeMap::new());
        assert_eq!(first.hosts["n0"].entries[0].2, TaskStatus::Changed);
        // Re-run with the resulting state: nothing changes.
        let second = run_playbook(&pb, &inv, first.states, BTreeMap::new());
        assert_eq!(second.hosts["n0"].entries[0].2, TaskStatus::Ok);
    }

    #[test]
    fn with_items_must_be_a_list() {
        let err = Playbook::from_pml(
            "- name: p\n  hosts: all\n  tasks:\n    - name: t\n      command: x\n      with_items: notalist\n",
        )
        .unwrap_err();
        assert!(err.contains("with_items"));
    }
}
