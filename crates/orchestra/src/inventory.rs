//! Inventories: the set of managed hosts.

use popper_format::{pml, Value};

/// One managed host.
#[derive(Debug, Clone, PartialEq)]
pub struct Host {
    /// Unique host name (e.g. `node0`).
    pub name: String,
    /// Group memberships (e.g. `gassyfs`, `head`).
    pub groups: Vec<String>,
    /// Host variables.
    pub vars: Value,
}

/// An inventory of hosts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Inventory {
    hosts: Vec<Host>,
}

impl Inventory {
    /// An empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host. Replaces an existing host of the same name.
    pub fn add(&mut self, host: Host) {
        if let Some(existing) = self.hosts.iter_mut().find(|h| h.name == host.name) {
            *existing = host;
        } else {
            self.hosts.push(host);
        }
    }

    /// Convenience: add `n` hosts named `prefix0..prefixN-1`, all in
    /// `groups`.
    pub fn add_cluster(&mut self, prefix: &str, n: usize, groups: &[&str]) {
        for i in 0..n {
            self.add(Host {
                name: format!("{prefix}{i}"),
                groups: groups.iter().map(|s| s.to_string()).collect(),
                vars: Value::empty_map(),
            });
        }
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Look up one host by name.
    pub fn host(&self, name: &str) -> Option<&Host> {
        self.hosts.iter().find(|h| h.name == name)
    }

    /// Select hosts by pattern: `all`, a group name, a host name, or a
    /// comma-separated union of patterns.
    pub fn select(&self, pattern: &str) -> Vec<&Host> {
        let mut out: Vec<&Host> = Vec::new();
        for pat in pattern.split(',').map(str::trim) {
            for h in &self.hosts {
                let matched = pat == "all" || h.name == pat || h.groups.iter().any(|g| g == pat);
                if matched && !out.iter().any(|e| e.name == h.name) {
                    out.push(h);
                }
            }
        }
        out
    }

    /// Parse a PML inventory:
    ///
    /// ```text
    /// hosts:
    ///   - name: node0
    ///     groups: [gassyfs, head]
    ///     vars:
    ///       nodes: 4
    ///   - name: node1
    ///     groups: [gassyfs]
    /// ```
    pub fn from_pml(text: &str) -> Result<Inventory, String> {
        let doc = pml::parse(text).map_err(|e| e.to_string())?;
        let mut inv = Inventory::new();
        let hosts = doc.get_list("hosts").ok_or("inventory missing 'hosts' list")?;
        for h in hosts {
            let name = h.get_str("name").ok_or("host missing 'name'")?.to_string();
            let groups = h
                .get_list("groups")
                .unwrap_or(&[])
                .iter()
                .filter_map(|g| g.as_str().map(str::to_string))
                .collect();
            let vars = h.get("vars").cloned().unwrap_or_else(Value::empty_map);
            inv.add(Host { name, groups, vars });
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
hosts:
  - name: head0
    groups: [head, gassyfs]
    vars:
      role: coordinator
  - name: node0
    groups: [gassyfs]
  - name: node1
    groups: [gassyfs]
  - name: client0
    groups: [clients]
";

    #[test]
    fn parse_pml_inventory() {
        let inv = Inventory::from_pml(SAMPLE).unwrap();
        assert_eq!(inv.hosts().len(), 4);
        let head = inv.host("head0").unwrap();
        assert_eq!(head.groups, vec!["head", "gassyfs"]);
        assert_eq!(head.vars.get_str("role"), Some("coordinator"));
    }

    #[test]
    fn select_patterns() {
        let inv = Inventory::from_pml(SAMPLE).unwrap();
        assert_eq!(inv.select("all").len(), 4);
        assert_eq!(inv.select("gassyfs").len(), 3);
        assert_eq!(inv.select("head").len(), 1);
        assert_eq!(inv.select("node1").len(), 1);
        assert_eq!(inv.select("clients,head").len(), 2);
        assert!(inv.select("nothing").is_empty());
        // Union dedups.
        assert_eq!(inv.select("gassyfs,head0").len(), 3);
    }

    #[test]
    fn add_replaces_same_name() {
        let mut inv = Inventory::new();
        inv.add(Host { name: "a".into(), groups: vec![], vars: Value::empty_map() });
        inv.add(Host { name: "a".into(), groups: vec!["g".into()], vars: Value::empty_map() });
        assert_eq!(inv.hosts().len(), 1);
        assert_eq!(inv.host("a").unwrap().groups, vec!["g"]);
    }

    #[test]
    fn add_cluster_names_hosts() {
        let mut inv = Inventory::new();
        inv.add_cluster("node", 4, &["gassyfs"]);
        assert_eq!(inv.hosts().len(), 4);
        assert!(inv.host("node3").is_some());
        assert_eq!(inv.select("gassyfs").len(), 4);
    }

    #[test]
    fn missing_hosts_key_is_error() {
        assert!(Inventory::from_pml("nothosts: []\n").is_err());
        assert!(Inventory::from_pml("hosts:\n  - groups: [x]\n").is_err());
    }
}
