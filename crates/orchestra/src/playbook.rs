//! Playbooks: plays and tasks.

use popper_format::{pml, Value};

/// One task within a play.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Human-readable task name.
    pub name: String,
    /// Module name (`package`, `copy`, `command`, …).
    pub module: String,
    /// Module arguments (templated before execution).
    pub args: Value,
    /// Store the module result under this host variable.
    pub register: Option<String>,
    /// Skip the task unless this guard holds (`var == value`,
    /// `var != value`, or a bare var tested for truthiness).
    pub when: Option<String>,
    /// Run the task once per item, with `{{ item }}` bound
    /// (Ansible's `with_items`).
    pub with_items: Option<Vec<Value>>,
    /// Total attempts when the task fails (Ansible's `retries` — the
    /// host-unreachable resilience knob); 1 means no retries.
    pub max_attempts: u32,
    /// Delay between attempts, in milliseconds (recorded on the trace;
    /// simulated hosts do not actually sleep).
    pub retry_delay_ms: f64,
}

/// A play: a host pattern plus an ordered task list.
#[derive(Debug, Clone, PartialEq)]
pub struct Play {
    /// Play name.
    pub name: String,
    /// Host selection pattern (see [`crate::Inventory::select`]).
    pub hosts: String,
    /// The tasks, in order.
    pub tasks: Vec<Task>,
}

/// A playbook: ordered plays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Playbook {
    /// The plays, in order.
    pub plays: Vec<Play>,
}

/// Module names recognized by the executor. Parsing validates against
/// this list so typos fail early (the paper's CI integrity checks
/// include "that the syntax of orchestration files is correct").
pub const KNOWN_MODULES: &[&str] =
    &["setup", "package", "copy", "command", "service", "fetch", "set_fact", "assert_that"];

impl Playbook {
    /// Parse a PML playbook:
    ///
    /// ```text
    /// - name: provision gassyfs nodes
    ///   hosts: gassyfs
    ///   tasks:
    ///     - name: install gassyfs
    ///       package: {name: gassyfs, version: "2.1", state: present}
    ///     - name: start the daemon
    ///       service: {name: gassyfsd, state: started}
    ///       when: role == coordinator
    ///     - name: run benchmark
    ///       command: gassyfs-bench --nodes {{ nodes }}
    ///       register: bench_out
    /// ```
    pub fn from_pml(text: &str) -> Result<Playbook, String> {
        let doc = pml::parse(text).map_err(|e| e.to_string())?;
        let plays_v = doc
            .as_list()
            .ok_or("playbook must be a top-level list of plays")?;
        let mut plays = Vec::new();
        for (pi, play_v) in plays_v.iter().enumerate() {
            let name = play_v
                .get_str("name")
                .map(str::to_string)
                .unwrap_or_else(|| format!("play {}", pi + 1));
            let hosts = play_v
                .get_str("hosts")
                .ok_or_else(|| format!("play '{name}': missing 'hosts'"))?
                .to_string();
            let mut tasks = Vec::new();
            for (ti, task_v) in play_v.get_list("tasks").unwrap_or(&[]).iter().enumerate() {
                tasks.push(parse_task(task_v, &name, ti)?);
            }
            plays.push(Play { name, hosts, tasks });
        }
        if plays.is_empty() {
            return Err("playbook has no plays".into());
        }
        Ok(Playbook { plays })
    }
}

fn parse_task(v: &Value, play: &str, index: usize) -> Result<Task, String> {
    let entries = v
        .as_map()
        .ok_or_else(|| format!("play '{play}': task {} is not a mapping", index + 1))?;
    let mut name = format!("task {}", index + 1);
    let mut module: Option<(String, Value)> = None;
    let mut register = None;
    let mut when = None;
    let mut with_items = None;
    let mut max_attempts = 1u32;
    let mut retry_delay_ms = 0.0f64;
    for (key, val) in entries {
        match key.as_str() {
            "name" => {
                name = val
                    .as_str()
                    .map(str::to_string)
                    .unwrap_or_else(|| val.to_display_string());
            }
            "register" => {
                register = Some(
                    val.as_str()
                        .ok_or_else(|| format!("play '{play}': 'register' must be a string"))?
                        .to_string(),
                );
            }
            "when" => {
                when = Some(
                    val.as_str()
                        .ok_or_else(|| format!("play '{play}': 'when' must be a string"))?
                        .to_string(),
                );
            }
            "with_items" => {
                with_items = Some(
                    val.as_list()
                        .ok_or_else(|| format!("play '{play}': 'with_items' must be a list"))?
                        .to_vec(),
                );
            }
            "max_attempts" => {
                let n = val
                    .as_num()
                    .ok_or_else(|| format!("play '{play}': 'max_attempts' must be a number"))?;
                if n < 1.0 {
                    return Err(format!("play '{play}': 'max_attempts' must be >= 1"));
                }
                max_attempts = n as u32;
            }
            "retry_delay" => {
                retry_delay_ms = val
                    .as_num()
                    .ok_or_else(|| format!("play '{play}': 'retry_delay' must be a number (ms)"))?;
            }
            module_name => {
                if !KNOWN_MODULES.contains(&module_name) {
                    return Err(format!(
                        "play '{play}', task '{name}': unknown module '{module_name}' (known: {})",
                        KNOWN_MODULES.join(", ")
                    ));
                }
                if module.is_some() {
                    return Err(format!("play '{play}', task '{name}': more than one module"));
                }
                module = Some((module_name.to_string(), val.clone()));
            }
        }
    }
    let (module, args) =
        module.ok_or_else(|| format!("play '{play}', task '{name}': no module specified"))?;
    Ok(Task { name, module, args, register, when, with_items, max_attempts, retry_delay_ms })
}

/// Substitute `{{ var }}` occurrences in all string leaves of `args`
/// using `lookup`. Unknown variables are an error (silent empty
/// substitutions are how irreproducible runs happen).
pub fn template(args: &Value, lookup: &dyn Fn(&str) -> Option<Value>) -> Result<Value, String> {
    match args {
        Value::Str(s) => template_str(s, lookup),
        Value::List(items) => Ok(Value::List(
            items.iter().map(|i| template(i, lookup)).collect::<Result<_, _>>()?,
        )),
        Value::Map(entries) => {
            let mut out = Vec::with_capacity(entries.len());
            for (k, v) in entries {
                out.push((k.clone(), template(v, lookup)?));
            }
            Ok(Value::Map(out))
        }
        scalar => Ok(scalar.clone()),
    }
}

fn template_str(s: &str, lookup: &dyn Fn(&str) -> Option<Value>) -> Result<Value, String> {
    if !s.contains("{{") {
        return Ok(Value::Str(s.to_string()));
    }
    let mut out = String::new();
    let mut rest = s;
    let mut only_var: Option<Value> = None;
    let mut pieces = 0;
    while let Some(start) = rest.find("{{") {
        out.push_str(&rest[..start]);
        if !rest[..start].trim().is_empty() {
            pieces += 1;
        }
        let after = &rest[start + 2..];
        let end = after.find("}}").ok_or_else(|| format!("unclosed '{{{{' in '{s}'"))?;
        let var = after[..end].trim();
        let value = lookup(var).ok_or_else(|| format!("undefined variable '{var}' in '{s}'"))?;
        out.push_str(&value.to_display_string());
        only_var = Some(value);
        pieces += 1;
        rest = &after[end + 2..];
    }
    out.push_str(rest);
    if !rest.trim().is_empty() {
        pieces += 1;
    }
    // A string that is exactly one `{{ var }}` keeps the variable's type.
    if pieces == 1 {
        if let Some(v) = only_var {
            if s.trim().starts_with("{{") && s.trim().ends_with("}}") {
                return Ok(v);
            }
        }
    }
    Ok(Value::Str(out))
}

/// Evaluate a `when:` guard against host variables: `var == value`,
/// `var != value`, or a bare variable (truthy = defined, non-false,
/// non-empty).
pub fn eval_when(expr: &str, lookup: &dyn Fn(&str) -> Option<Value>) -> Result<bool, String> {
    let expr = expr.trim();
    for (op, negate) in [("==", false), ("!=", true)] {
        if let Some((lhs, rhs)) = expr.split_once(op) {
            let var = lhs.trim();
            let expected = rhs.trim().trim_matches(|c| c == '"' || c == '\'');
            let actual = lookup(var).map(|v| v.to_display_string()).unwrap_or_default();
            let eq = actual == expected;
            return Ok(eq != negate);
        }
    }
    // Bare variable truthiness.
    Ok(match lookup(expr) {
        None | Some(Value::Null) | Some(Value::Bool(false)) => false,
        Some(Value::Str(s)) => !s.is_empty(),
        Some(Value::Num(n)) => n != 0.0,
        Some(_) => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
- name: provision gassyfs nodes
  hosts: gassyfs
  tasks:
    - name: install gassyfs
      package: {name: gassyfs, version: \"2.1\", state: present}
    - name: start daemon
      service: {name: gassyfsd, state: started}
      when: role == coordinator
    - name: run benchmark
      command: gassyfs-bench --nodes {{ nodes }}
      register: bench_out
- name: collect results
  hosts: head
  tasks:
    - name: fetch csv
      fetch: {src: results.csv, dest: collected/results.csv}
";

    #[test]
    fn parses_plays_and_tasks() {
        let pb = Playbook::from_pml(SAMPLE).unwrap();
        assert_eq!(pb.plays.len(), 2);
        let p0 = &pb.plays[0];
        assert_eq!(p0.hosts, "gassyfs");
        assert_eq!(p0.tasks.len(), 3);
        assert_eq!(p0.tasks[0].module, "package");
        assert_eq!(p0.tasks[0].args.get_str("version"), Some("2.1"));
        assert_eq!(p0.tasks[1].when.as_deref(), Some("role == coordinator"));
        assert_eq!(p0.tasks[2].register.as_deref(), Some("bench_out"));
        assert_eq!(pb.plays[1].tasks[0].module, "fetch");
    }

    #[test]
    fn parses_retry_knobs_and_validates_them() {
        let pb = Playbook::from_pml(
            "- name: p\n  hosts: all\n  tasks:\n    - name: t\n      command: x\n      max_attempts: 4\n      retry_delay: 250\n",
        )
        .unwrap();
        assert_eq!(pb.plays[0].tasks[0].max_attempts, 4);
        assert_eq!(pb.plays[0].tasks[0].retry_delay_ms, 250.0);
        // Defaults: one attempt, no delay.
        let pb = Playbook::from_pml("- name: p\n  hosts: all\n  tasks:\n    - name: t\n      command: x\n").unwrap();
        assert_eq!(pb.plays[0].tasks[0].max_attempts, 1);
        let err = Playbook::from_pml(
            "- name: p\n  hosts: all\n  tasks:\n    - name: t\n      command: x\n      max_attempts: 0\n",
        )
        .unwrap_err();
        assert!(err.contains("max_attempts"), "{err}");
    }

    #[test]
    fn rejects_unknown_module() {
        let bad = "\
- name: x
  hosts: all
  tasks:
    - name: t
      frobnicate: {a: 1}
";
        let err = Playbook::from_pml(bad).unwrap_err();
        assert!(err.contains("unknown module 'frobnicate'"));
    }

    #[test]
    fn rejects_task_without_module_or_two_modules() {
        let none = "- name: x\n  hosts: all\n  tasks:\n    - name: t\n      register: r\n";
        assert!(Playbook::from_pml(none).unwrap_err().contains("no module"));
        let two = "- name: x\n  hosts: all\n  tasks:\n    - name: t\n      copy: {dest: a}\n      command: b\n";
        assert!(Playbook::from_pml(two).unwrap_err().contains("more than one module"));
    }

    #[test]
    fn rejects_missing_hosts_and_empty() {
        assert!(Playbook::from_pml("- name: x\n  tasks: []\n").unwrap_err().contains("hosts"));
        assert!(Playbook::from_pml("[]\n").is_err());
    }

    #[test]
    fn template_substitutes_variables() {
        let lookup = |name: &str| -> Option<Value> {
            match name {
                "nodes" => Some(Value::Num(4.0)),
                "wl" => Some(Value::Str("git".into())),
                _ => None,
            }
        };
        let v = template(&Value::Str("run --nodes {{ nodes }} --wl {{ wl }}".into()), &lookup).unwrap();
        assert_eq!(v.as_str(), Some("run --nodes 4 --wl git"));
        // Exactly-one-variable strings keep the value type.
        let v = template(&Value::Str("{{ nodes }}".into()), &lookup).unwrap();
        assert_eq!(v, Value::Num(4.0));
        // Nested structures are templated.
        let mut m = Value::empty_map();
        m.insert("cmd", Value::Str("bench-{{ wl }}".into()));
        m.insert("n", Value::Str("{{ nodes }}".into()));
        let t = template(&m, &lookup).unwrap();
        assert_eq!(t.get_str("cmd"), Some("bench-git"));
        assert_eq!(t.get_num("n"), Some(4.0));
    }

    #[test]
    fn template_rejects_undefined_and_unclosed() {
        let lookup = |_: &str| -> Option<Value> { None };
        assert!(template(&Value::Str("{{ missing }}".into()), &lookup)
            .unwrap_err()
            .contains("undefined variable"));
        assert!(template(&Value::Str("{{ broken".into()), &lookup)
            .unwrap_err()
            .contains("unclosed"));
    }

    #[test]
    fn when_expressions() {
        let lookup = |name: &str| -> Option<Value> {
            match name {
                "role" => Some(Value::Str("coordinator".into())),
                "nodes" => Some(Value::Num(0.0)),
                "enabled" => Some(Value::Bool(true)),
                _ => None,
            }
        };
        assert!(eval_when("role == coordinator", &lookup).unwrap());
        assert!(!eval_when("role == worker", &lookup).unwrap());
        assert!(eval_when("role != worker", &lookup).unwrap());
        assert!(eval_when("enabled", &lookup).unwrap());
        assert!(!eval_when("nodes", &lookup).unwrap());
        assert!(!eval_when("undefined_var", &lookup).unwrap());
        assert!(eval_when("role == 'coordinator'", &lookup).unwrap());
    }
}
