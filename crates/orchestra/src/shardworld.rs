//! The sharded orchestra world: one fabric shard per managed host,
//! plus one for the controller.
//!
//! The live executor ([`executor`](crate::executor)) fans each task
//! out to every host over OS threads and synchronizes before the next
//! — Ansible's "linear" strategy. This world replays that strategy on
//! the shard-native fabric ([`popper_sim::FabricSim`]): the controller
//! (shard 0) pushes the task's module payload to every host as a
//! cross-shard transfer, each host runs the module for a
//! deterministically hashed duration, ships its result back, and the
//! controller releases the next task once every ack has landed. The
//! result fan-in is the interesting part: all hosts answer within one
//! task's jitter window, so the controller's ingress link becomes an
//! incast that the fabric meters — exactly the contention a fixed
//! per-RPC delay would hide.
//!
//! Determinism is inherited from the engine: task release times,
//! per-host busy time, traffic counters and trace bytes are identical
//! at every worker count.

use popper_sim::{FabricSim, Nanos, NetCtx, NodeTraffic};

/// The controller owns shard 0; host `h` (1-based id) is shard `h`.
const CONTROLLER: usize = 0;

/// Configuration of one sharded world run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedOrchestraConfig {
    /// Managed hosts (shards 1..=hosts).
    pub hosts: usize,
    /// Tasks in the playbook, dispatched linearly.
    pub tasks: usize,
    /// Seed for the per-(host, task) duration hash.
    pub seed: u64,
    /// Module payload the controller ships to each host per task.
    pub task_bytes: u64,
    /// Result payload each host ships back per task.
    pub result_bytes: u64,
    /// Mean module execution time on a host.
    pub mean_task: Nanos,
    /// Link speed of every endpoint's NIC.
    pub link_gbit_x10: u64,
    /// Propagation latency — also the conservative lookahead.
    pub latency: Nanos,
}

impl Default for ShardedOrchestraConfig {
    fn default() -> Self {
        ShardedOrchestraConfig {
            hosts: 8,
            tasks: 12,
            seed: 11,
            task_bytes: 64 * 1024,
            result_bytes: 4096,
            mean_task: Nanos::from_micros(200),
            link_gbit_x10: 100, // 10 Gbit/s
            latency: Nanos::from_micros(10),
        }
    }
}

/// What one shard models.
enum OrchShard {
    Controller {
        /// Acks received for the in-flight task.
        acked: usize,
        /// Index of the in-flight (or next) task.
        task: usize,
        /// Virtual time each task's last ack landed.
        task_finish: Vec<Nanos>,
        /// Virtual time the playbook completed.
        finish: Nanos,
    },
    Host {
        /// 1-based host id (= shard index).
        id: usize,
        /// Tasks this host has executed.
        ran: usize,
        /// Total module execution time on this host.
        busy: Nanos,
    },
}

/// Result of one sharded world run — identical at every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedOrchestraReport {
    /// End-to-end virtual runtime.
    pub elapsed: Nanos,
    /// Virtual time the controller saw each task complete.
    pub task_finish: Vec<Nanos>,
    /// Tasks each host ran, host order.
    pub per_host_ran: Vec<usize>,
    /// Module execution time per host, host order.
    pub per_host_busy: Vec<Nanos>,
    /// Fabric traffic counters, shard order (controller first).
    pub traffic: Vec<NodeTraffic>,
    /// Total events dispatched.
    pub events: u64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic module duration on `host` for `task`: `0.5x .. 1.5x`
/// of the mean — the same hashed-jitter idiom the farm model uses.
fn module_duration(config: &ShardedOrchestraConfig, host: usize, task: usize) -> Nanos {
    let key = splitmix(splitmix(config.seed) ^ ((host as u64) << 32) ^ task as u64);
    let jitter = (key % 1000) as f64 / 1000.0; // [0, 1)
    config.mean_task.scale(0.5 + jitter)
}

/// Run the sharded world with `workers` threads (1 = the
/// single-threaded reference; results are identical either way).
pub fn run_sharded(config: &ShardedOrchestraConfig, workers: usize) -> ShardedOrchestraReport {
    assert!(config.hosts >= 1 && config.tasks >= 1);
    let mut states = vec![OrchShard::Controller {
        acked: 0,
        task: 0,
        task_finish: Vec::with_capacity(config.tasks),
        finish: Nanos::ZERO,
    }];
    states.extend((1..=config.hosts).map(|id| OrchShard::Host { id, ran: 0, busy: Nanos::ZERO }));

    let link_gbit = config.link_gbit_x10 as f64 / 10.0;
    let mut sim = FabricSim::new(states, link_gbit, config.latency, 1.0);
    let cfg = std::sync::Arc::new(config.clone());
    sim.schedule(CONTROLLER, Nanos::ZERO, move |ctx| dispatch_task(ctx, cfg));
    let elapsed = sim.run_sharded(workers);

    let OrchShard::Controller { task_finish, .. } = sim.state(CONTROLLER) else {
        unreachable!("shard 0 is the controller")
    };
    let mut per_host_ran = vec![0; config.hosts];
    let mut per_host_busy = vec![Nanos::ZERO; config.hosts];
    for state in sim.states() {
        if let OrchShard::Host { id, ran, busy } = state {
            per_host_ran[*id - 1] = *ran;
            per_host_busy[*id - 1] = *busy;
        }
    }
    ShardedOrchestraReport {
        elapsed,
        task_finish: task_finish.clone(),
        per_host_ran,
        per_host_busy,
        traffic: (0..=config.hosts).map(|n| sim.traffic(n)).collect(),
        events: sim.events_fired(),
        epochs: sim.epochs(),
        workers: workers.max(1),
    }
}

/// Controller: fan the current task's payload out to every host.
fn dispatch_task(
    ctx: &mut NetCtx<'_, '_, OrchShard>,
    cfg: std::sync::Arc<ShardedOrchestraConfig>,
) {
    let OrchShard::Controller { task, acked, .. } = ctx.state() else {
        unreachable!("dispatch runs on the controller shard")
    };
    let task = *task;
    *acked = 0;
    for host in 1..=cfg.hosts {
        let cfg = std::sync::Arc::clone(&cfg);
        ctx.transfer(host, cfg.task_bytes, move |c| run_module(c, task, cfg));
    }
}

/// Host: execute the module for the hashed duration, then ship the
/// result back to the controller.
fn run_module(
    ctx: &mut NetCtx<'_, '_, OrchShard>,
    task: usize,
    cfg: std::sync::Arc<ShardedOrchestraConfig>,
) {
    let host = ctx.node();
    let duration = module_duration(&cfg, host, task);
    ctx.schedule_in(duration, move |c| {
        let OrchShard::Host { ran, busy, .. } = c.state() else {
            unreachable!("modules run on host shards")
        };
        *ran += 1;
        *busy += duration;
        c.transfer(CONTROLLER, cfg.result_bytes, move |ctrl| collect_ack(ctrl, cfg));
    });
}

/// Controller: count the ack; when every host has answered, record the
/// task and release the next one.
fn collect_ack(
    ctx: &mut NetCtx<'_, '_, OrchShard>,
    cfg: std::sync::Arc<ShardedOrchestraConfig>,
) {
    let now = ctx.now();
    let OrchShard::Controller { acked, task, task_finish, finish } = ctx.state() else {
        unreachable!("acks land on the controller shard")
    };
    *acked += 1;
    if *acked < cfg.hosts {
        return;
    }
    task_finish.push(now);
    *task += 1;
    if *task == cfg.tasks {
        *finish = now;
        return;
    }
    ctx.schedule_in(Nanos::ZERO, move |c| dispatch_task(c, cfg));
}

// ---- chaos variant: the linear strategy under a scheduled-fault ----
// ---- timeline, with per-RPC retry/backoff                       ----

/// RPC attempts (task push or result ack) before the sender gives up.
const MAX_ATTEMPTS: usize = 12;

/// Retry backoff: 1, 2, 4, ... ms, capped at 32 ms.
fn backoff(attempt: usize) -> Nanos {
    Nanos::from_millis(1 << attempt.min(5))
}

/// Failure bookkeeping shared by the controller and host shards.
#[derive(Default)]
struct Chaos {
    /// RPC timeouts this shard observed on its sends.
    detections: u64,
    /// RPCs that failed at least once before landing or dying.
    degraded: u64,
    /// RPCs this shard received after one or more sender retries.
    recovered: u64,
    /// RPCs abandoned after `MAX_ATTEMPTS`.
    lost: u64,
    first_fail: Option<Nanos>,
    last_recovery: Nanos,
}

impl Chaos {
    fn note_fail(&mut self, at: Nanos, attempt: usize) {
        self.detections += 1;
        if attempt == 0 {
            self.degraded += 1;
        }
        self.first_fail = Some(self.first_fail.map_or(at, |f| f.min(at)));
    }
    fn note_recovery(&mut self, at: Nanos) {
        self.recovered += 1;
        self.last_recovery = self.last_recovery.max(at);
    }
}

/// What one shard models in the chaos run.
enum ChaosOrchShard {
    Controller {
        /// RPCs resolved for the in-flight task (ack landed, or the
        /// dispatch was abandoned).
        resolved: usize,
        task: usize,
        task_finish: Vec<Nanos>,
        finish: Nanos,
        chaos: Chaos,
    },
    Host {
        id: usize,
        ran: usize,
        busy: Nanos,
        chaos: Chaos,
    },
}

impl ChaosOrchShard {
    fn chaos(&mut self) -> &mut Chaos {
        match self {
            ChaosOrchShard::Controller { chaos, .. } | ChaosOrchShard::Host { chaos, .. } => chaos,
        }
    }
}

/// Result of one sharded chaos run — identical at every worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOrchestraChaosReport {
    /// End-to-end virtual runtime.
    pub elapsed: Nanos,
    /// Virtual time the controller saw each task resolve.
    pub task_finish: Vec<Nanos>,
    /// Tasks each host ran, host order.
    pub per_host_ran: Vec<usize>,
    /// Module execution time per host, host order.
    pub per_host_busy: Vec<Nanos>,
    /// Fabric traffic counters, shard order (controller first).
    pub traffic: Vec<NodeTraffic>,
    /// Total events dispatched.
    pub events: u64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
    /// RPCs the playbook issues in a fault-free run (2 per host-task).
    pub rpcs: u64,
    /// RPC timeouts observed across the cluster.
    pub detections: u64,
    /// RPCs delivered after one or more retries.
    pub recovered: u64,
    /// RPCs abandoned after `MAX_ATTEMPTS` (expected 0 for every
    /// schedule that ends healed).
    pub lost: u64,
    /// First failure to last recovered delivery, in milliseconds.
    pub recovery_ms: f64,
    /// Fraction of RPCs that saw any failure.
    pub degraded_fraction: f64,
}

/// Release slot of task `t` so the playbook spans the schedule.
fn task_slot(horizon: Nanos, tasks: usize, task: usize) -> Nanos {
    Nanos(horizon.0 * 5 / 4 / (tasks as u64).max(1)) * task as u64
}

/// Run the sharded world under a scheduled-fault timeline (see
/// [`popper_sim::FabricSim::set_fault_timeline`]): faults land at
/// epoch barriers mid-run, the controller retries task pushes with
/// exponential backoff (abandoning a host after `MAX_ATTEMPTS` — the
/// linear barrier then releases without it), and hosts retry result
/// acks the same way. Deterministic at every worker count.
pub fn run_sharded_chaos(
    config: &ShardedOrchestraConfig,
    workers: usize,
    seed: u64,
    timeline: Vec<(Nanos, popper_sim::PlaneCmd)>,
) -> ShardedOrchestraChaosReport {
    assert!(config.hosts >= 1 && config.tasks >= 1);
    let mut states = vec![ChaosOrchShard::Controller {
        resolved: 0,
        task: 0,
        task_finish: Vec::with_capacity(config.tasks),
        finish: Nanos::ZERO,
        chaos: Chaos::default(),
    }];
    states.extend((1..=config.hosts).map(|id| ChaosOrchShard::Host {
        id,
        ran: 0,
        busy: Nanos::ZERO,
        chaos: Chaos::default(),
    }));

    let link_gbit = config.link_gbit_x10 as f64 / 10.0;
    let mut sim = FabricSim::new(states, link_gbit, config.latency, 1.0);
    let horizon = timeline.iter().map(|(at, _)| *at).max().unwrap_or(Nanos::ZERO);
    sim.set_fault_timeline(seed, timeline);
    let cfg = std::sync::Arc::new(config.clone());
    sim.schedule(CONTROLLER, Nanos::ZERO, move |ctx| chaos_dispatch(ctx, horizon, cfg));
    let elapsed = sim.run_sharded(workers);

    let ChaosOrchShard::Controller { task_finish, .. } = sim.state(CONTROLLER) else {
        unreachable!("shard 0 is the controller")
    };
    let mut per_host_ran = vec![0; config.hosts];
    let mut per_host_busy = vec![Nanos::ZERO; config.hosts];
    for state in sim.states() {
        if let ChaosOrchShard::Host { id, ran, busy, .. } = state {
            per_host_ran[*id - 1] = *ran;
            per_host_busy[*id - 1] = *busy;
        }
    }
    let all = |f: fn(&Chaos) -> u64| -> u64 {
        sim.states()
            .map(|s| match s {
                ChaosOrchShard::Controller { chaos, .. } | ChaosOrchShard::Host { chaos, .. } => f(chaos),
            })
            .sum()
    };
    let chaos_of = |s: &ChaosOrchShard| match s {
        ChaosOrchShard::Controller { chaos, .. } | ChaosOrchShard::Host { chaos, .. } => {
            (chaos.first_fail, chaos.last_recovery)
        }
    };
    let first_fail = sim.states().filter_map(|s| chaos_of(s).0).min();
    let last_recovery = sim.states().map(|s| chaos_of(s).1).max().unwrap_or(Nanos::ZERO);
    let recovery_ms = match first_fail {
        Some(f) if last_recovery > f => (last_recovery - f).0 as f64 / 1e6,
        _ => 0.0,
    };
    let rpcs = 2 * (config.hosts * config.tasks) as u64;
    ShardedOrchestraChaosReport {
        elapsed,
        task_finish: task_finish.clone(),
        per_host_ran,
        per_host_busy,
        traffic: (0..=config.hosts).map(|n| sim.traffic(n)).collect(),
        events: sim.events_fired(),
        epochs: sim.epochs(),
        workers: workers.max(1),
        rpcs,
        detections: all(|c| c.detections),
        recovered: all(|c| c.recovered),
        lost: all(|c| c.lost),
        recovery_ms,
        degraded_fraction: all(|c| c.degraded) as f64 / rpcs.max(1) as f64,
    }
}

type OrchChaosCtx<'a, 'b> = NetCtx<'a, 'b, ChaosOrchShard>;

/// Controller: fan the current task out, no earlier than its pacing
/// slot (so the playbook is still running when late faults land).
fn chaos_dispatch(ctx: &mut OrchChaosCtx<'_, '_>, horizon: Nanos, cfg: std::sync::Arc<ShardedOrchestraConfig>) {
    let ChaosOrchShard::Controller { task, resolved, .. } = ctx.state() else {
        unreachable!("dispatch runs on the controller shard")
    };
    let task = *task;
    *resolved = 0;
    let slot = task_slot(horizon, cfg.tasks, task);
    if slot > ctx.now() {
        ctx.schedule_at(slot, move |c| fan_out(c, task, horizon, cfg));
    } else {
        fan_out(ctx, task, horizon, cfg);
    }
}

fn fan_out(ctx: &mut OrchChaosCtx<'_, '_>, task: usize, horizon: Nanos, cfg: std::sync::Arc<ShardedOrchestraConfig>) {
    for host in 1..=cfg.hosts {
        let cfg = std::sync::Arc::clone(&cfg);
        send_task(ctx, host, task, 0, horizon, cfg);
    }
}

/// Controller → host task push, retried with backoff. A retry issued
/// right after a heal event can still fail once — its shard sees the
/// refreshed fault snapshot only after the heal's barrier — so the
/// loop runs until the plane catches up or the attempts are spent.
fn send_task(
    ctx: &mut OrchChaosCtx<'_, '_>,
    host: usize,
    task: usize,
    attempt: usize,
    horizon: Nanos,
    cfg: std::sync::Arc<ShardedOrchestraConfig>,
) {
    let bytes = cfg.task_bytes;
    let retry_cfg = std::sync::Arc::clone(&cfg);
    ctx.transfer_or(
        host,
        bytes,
        move |c| {
            if attempt > 0 {
                let now = c.now();
                c.state().chaos().note_recovery(now);
            }
            chaos_run_module(c, task, horizon, cfg);
        },
        move |c, u| {
            c.state().chaos().note_fail(u.gave_up_at, attempt);
            if attempt + 1 >= MAX_ATTEMPTS {
                // Abandon the host for this task: the linear barrier
                // must not hang on an unreachable machine.
                c.state().chaos().lost += 1;
                resolve_rpc(c, horizon, retry_cfg);
                return;
            }
            c.schedule_in(backoff(attempt), move |cc| {
                send_task(cc, host, task, attempt + 1, horizon, retry_cfg)
            });
        },
    );
}

/// Host: execute the module, then ship the result back (retried).
fn chaos_run_module(ctx: &mut OrchChaosCtx<'_, '_>, task: usize, horizon: Nanos, cfg: std::sync::Arc<ShardedOrchestraConfig>) {
    let host = ctx.node();
    let duration = module_duration(&cfg, host, task);
    ctx.schedule_in(duration, move |c| {
        let ChaosOrchShard::Host { ran, busy, .. } = c.state() else {
            unreachable!("modules run on host shards")
        };
        *ran += 1;
        *busy += duration;
        send_ack(c, 0, horizon, cfg);
    });
}

/// Host → controller result ack, retried with backoff.
fn send_ack(ctx: &mut OrchChaosCtx<'_, '_>, attempt: usize, horizon: Nanos, cfg: std::sync::Arc<ShardedOrchestraConfig>) {
    let bytes = cfg.result_bytes;
    let retry_cfg = std::sync::Arc::clone(&cfg);
    ctx.transfer_or(
        CONTROLLER,
        bytes,
        move |ctrl| {
            if attempt > 0 {
                let now = ctrl.now();
                ctrl.state().chaos().note_recovery(now);
            }
            resolve_rpc(ctrl, horizon, cfg);
        },
        move |c, u| {
            c.state().chaos().note_fail(u.gave_up_at, attempt);
            if attempt + 1 >= MAX_ATTEMPTS {
                c.state().chaos().lost += 1;
                return; // The playbook stalls on this task — the
                        // corruption shows up as a missing finish.
            }
            c.schedule_in(backoff(attempt), move |cc| {
                send_ack(cc, attempt + 1, horizon, retry_cfg)
            });
        },
    );
}

/// Controller: count the resolution (ack or abandoned dispatch); when
/// every host is accounted for, record the task and release the next.
fn resolve_rpc(ctx: &mut OrchChaosCtx<'_, '_>, horizon: Nanos, cfg: std::sync::Arc<ShardedOrchestraConfig>) {
    let now = ctx.now();
    let ChaosOrchShard::Controller { resolved, task, task_finish, finish, .. } = ctx.state() else {
        unreachable!("resolutions land on the controller shard")
    };
    *resolved += 1;
    if *resolved < cfg.hosts {
        return;
    }
    task_finish.push(now);
    *task += 1;
    if *task == cfg.tasks {
        *finish = now;
        return;
    }
    ctx.schedule_in(Nanos::ZERO, move |c| chaos_dispatch(c, horizon, cfg));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_world_matches_reference_at_every_worker_count() {
        let config = ShardedOrchestraConfig::default();
        let reference = run_sharded(&config, 1);
        assert_eq!(reference.task_finish.len(), config.tasks);
        assert!(reference.per_host_ran.iter().all(|r| *r == config.tasks));
        for workers in [2, 4, 8] {
            let parallel = run_sharded(&config, workers);
            assert_eq!(
                ShardedOrchestraReport { workers: 1, ..parallel },
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn linear_strategy_orders_task_finishes() {
        let report = run_sharded(&ShardedOrchestraConfig::default(), 2);
        assert!(report.task_finish.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn every_task_round_trips_every_host() {
        let config = ShardedOrchestraConfig { hosts: 5, tasks: 7, ..Default::default() };
        let report = run_sharded(&config, 2);
        let rounds = (config.hosts * config.tasks) as u64;
        assert_eq!(report.traffic[CONTROLLER].tx_bytes, rounds * config.task_bytes);
        assert_eq!(report.traffic[CONTROLLER].rx_bytes, rounds * config.result_bytes);
        let host_tx: u64 = report.traffic[1..].iter().map(|t| t.tx_bytes).sum();
        assert_eq!(host_tx, rounds * config.result_bytes);
    }

    #[test]
    fn stragglers_gate_the_barrier() {
        // The linear barrier means every task takes at least the
        // slowest host's module time plus two fabric trips.
        let config = ShardedOrchestraConfig::default();
        let report = run_sharded(&config, 2);
        let floor = config.mean_task.scale(0.5) + config.latency + config.latency;
        let mut prev = Nanos::ZERO;
        for f in &report.task_finish {
            assert!(*f >= prev + floor);
            prev = *f;
        }
    }

    #[test]
    fn chaos_run_retries_rpcs_and_stays_deterministic() {
        use popper_sim::PlaneCmd;
        let config = ShardedOrchestraConfig::default();
        // Crash host 3 mid-playbook and restart it: dispatches to it
        // and its acks retry with backoff; the schedule heals, so no
        // RPC is abandoned and every host runs every task.
        let timeline = vec![
            (Nanos::from_millis(1), PlaneCmd::Crash(3)),
            (Nanos::from_millis(6), PlaneCmd::Restart(3)),
        ];
        let reference = run_sharded_chaos(&config, 1, 13, timeline.clone());
        assert_eq!(reference.task_finish.len(), config.tasks);
        assert!(reference.per_host_ran.iter().all(|r| *r == config.tasks));
        assert!(reference.detections > 0, "the crash must be detected by RPC timeouts");
        assert!(reference.recovered > 0);
        assert_eq!(reference.lost, 0, "the schedule heals; no RPC may be abandoned");
        assert!(reference.recovery_ms > 0.0);
        assert!(reference.degraded_fraction > 0.0 && reference.degraded_fraction < 1.0);
        for workers in [2, 8] {
            let parallel = run_sharded_chaos(&config, workers, 13, timeline.clone());
            assert_eq!(
                ShardedOrchestraChaosReport { workers: 1, ..parallel },
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn chaos_run_with_empty_timeline_matches_the_healthy_world() {
        let config = ShardedOrchestraConfig::default();
        let healthy = run_sharded(&config, 2);
        let chaos = run_sharded_chaos(&config, 2, 1, Vec::new());
        assert_eq!(chaos.elapsed, healthy.elapsed);
        assert_eq!(chaos.task_finish, healthy.task_finish);
        assert_eq!(chaos.per_host_busy, healthy.per_host_busy);
        assert_eq!(chaos.traffic, healthy.traffic);
        assert_eq!(chaos.detections + chaos.recovered + chaos.lost, 0);
    }

    #[test]
    fn seeds_move_the_schedule_not_the_workload() {
        let a = run_sharded(&ShardedOrchestraConfig::default(), 2);
        let b = run_sharded(&ShardedOrchestraConfig { seed: 12, ..Default::default() }, 2);
        assert_ne!(a.task_finish, b.task_finish);
        assert_eq!(a.per_host_ran, b.per_host_ran);
        assert_eq!(
            a.traffic.iter().map(|t| t.tx_bytes).sum::<u64>(),
            b.traffic.iter().map(|t| t.tx_bytes).sum::<u64>()
        );
    }
}
