//! The memo table: key → entry, stored in the VCS object layer.
//!
//! Entries are blobs (content-addressed, deduplicated with everything
//! else in the repository) and keys are `memo/<hex>` refs pointing at
//! them. Riding the existing ref/object machinery means the cache
//! persists through `RepoState` export/import and the CLI's
//! `.popper/state` file for free, and `popper` never grows a second
//! storage format. The `memo/` prefix keeps keys out of the way of
//! branches, user tags and commit-hex resolution.

use crate::{StageEntry, StageKey};
use popper_vcs::{Object, Repository};

/// Namespacing prefix for memo refs.
pub const REF_PREFIX: &str = "memo/";

/// Lookup/store interface over a [`Repository`].
pub struct MemoTable;

impl MemoTable {
    /// The ref name a key lives under.
    pub fn ref_name(key: &StageKey) -> String {
        format!("{REF_PREFIX}{}", key.to_hex())
    }

    /// Fetch and decode the entry for `key`, if present. A blob that
    /// fails to decode (foreign or corrupt) reads as a miss.
    pub fn lookup(repo: &Repository, key: &StageKey) -> Option<StageEntry> {
        let id = repo.resolve(&Self::ref_name(key)).ok()?;
        match repo.get(id).ok()? {
            Object::Blob(bytes) => StageEntry::decode(&bytes).ok(),
            _ => None,
        }
    }

    /// Store `entry` under `key`, overwriting any previous entry.
    pub fn store(repo: &mut Repository, key: &StageKey, entry: &StageEntry) -> Result<(), String> {
        let id = repo.put(&Object::Blob(entry.encode()));
        repo.tag(&Self::ref_name(key), Some(id)).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyBuilder;

    fn entry(n: u8) -> StageEntry {
        StageEntry { stop: false, duration_us: n as u64, fields: vec![("f".into(), vec![n])], commits: vec![] }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let mut repo = Repository::init();
        let key = KeyBuilder::new("t").text("k", "1").finish();
        assert!(MemoTable::lookup(&repo, &key).is_none());
        MemoTable::store(&mut repo, &key, &entry(7)).unwrap();
        assert_eq!(MemoTable::lookup(&repo, &key), Some(entry(7)));
        // Overwrite wins.
        MemoTable::store(&mut repo, &key, &entry(9)).unwrap();
        assert_eq!(MemoTable::lookup(&repo, &key), Some(entry(9)));
        // A different key is still a miss.
        let other = KeyBuilder::new("t").text("k", "2").finish();
        assert!(MemoTable::lookup(&repo, &other).is_none());
    }

    #[test]
    fn entries_survive_state_export_import() {
        let mut repo = Repository::init();
        let key = KeyBuilder::new("t").text("k", "x").finish();
        MemoTable::store(&mut repo, &key, &entry(3)).unwrap();
        let revived = Repository::import_state(repo.export_state()).unwrap();
        assert_eq!(MemoTable::lookup(&revived, &key), Some(entry(3)));
    }
}
