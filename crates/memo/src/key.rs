//! Cache keys: a domain-separated SHA-256 over labeled fields.
//!
//! Every field is absorbed as `len(label) ‖ label ‖ len(value) ‖ value`
//! (lengths as 8-byte little-endian), so adjacent fields can never
//! alias — `("ab", "c")` and `("a", "bc")` hash differently — and a
//! domain string separates key families from each other and from every
//! other SHA-256 use in the codebase.

use popper_vcs::sha256::{self, Sha256};
use std::fmt;

/// A 32-byte stage cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageKey(pub [u8; 32]);

impl StageKey {
    /// Full lowercase hex.
    pub fn to_hex(self) -> String {
        sha256::to_hex(&self.0)
    }
}

impl fmt::Debug for StageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StageKey({})", &self.to_hex()[..10])
    }
}

/// Incremental builder for a [`StageKey`].
pub struct KeyBuilder {
    hasher: Sha256,
}

impl KeyBuilder {
    /// Start a key in the given domain.
    pub fn new(domain: &str) -> KeyBuilder {
        let mut hasher = Sha256::new();
        hasher.update(&(domain.len() as u64).to_le_bytes());
        hasher.update(domain.as_bytes());
        KeyBuilder { hasher }
    }

    /// Absorb one labeled byte field.
    pub fn bytes(mut self, label: &str, value: &[u8]) -> KeyBuilder {
        self.hasher.update(&(label.len() as u64).to_le_bytes());
        self.hasher.update(label.as_bytes());
        self.hasher.update(&(value.len() as u64).to_le_bytes());
        self.hasher.update(value);
        self
    }

    /// Absorb one labeled text field.
    pub fn text(self, label: &str, value: &str) -> KeyBuilder {
        self.bytes(label, value.as_bytes())
    }

    /// Absorb one labeled integer field.
    pub fn number(self, label: &str, value: u64) -> KeyBuilder {
        self.bytes(label, &value.to_le_bytes())
    }

    /// Finish into the key.
    pub fn finish(self) -> StageKey {
        StageKey(self.hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive_to_every_part() {
        let key = |domain: &str, a: &str, b: &str| {
            KeyBuilder::new(domain).text("a", a).text("b", b).finish()
        };
        assert_eq!(key("d", "x", "y"), key("d", "x", "y"));
        assert_ne!(key("d", "x", "y"), key("e", "x", "y"));
        assert_ne!(key("d", "x", "y"), key("d", "z", "y"));
        assert_ne!(key("d", "x", "y"), key("d", "x", "z"));
    }

    #[test]
    fn field_boundaries_cannot_alias() {
        let a = KeyBuilder::new("d").text("ab", "c").finish();
        let b = KeyBuilder::new("d").text("a", "bc").finish();
        assert_ne!(a, b);
        let c = KeyBuilder::new("d").text("a", "b").text("c", "d").finish();
        let d = KeyBuilder::new("d").text("a", "bcd").finish();
        assert_ne!(c, d);
    }

    #[test]
    fn label_order_matters() {
        let a = KeyBuilder::new("d").text("x", "1").text("y", "2").finish();
        let b = KeyBuilder::new("d").text("y", "2").text("x", "1").finish();
        assert_ne!(a, b);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn distinct_field_lists_distinct_keys(
                a in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..32)), 0..4),
                b in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 0..32)), 0..4),
            ) {
                let build = |fields: &[(String, Vec<u8>)]| {
                    fields
                        .iter()
                        .fold(KeyBuilder::new("prop"), |k, (l, v)| k.bytes(l, v))
                        .finish()
                };
                if a == b {
                    prop_assert_eq!(build(&a), build(&b));
                } else {
                    prop_assert_ne!(build(&a), build(&b));
                }
            }
        }
    }
}
