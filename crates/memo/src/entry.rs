//! Recorded stage effects and their canonical binary encoding.

use popper_vcs::sha256;

const MAGIC: &[u8] = b"popper-memo v1\n";

/// One commit a stage made, reduced to what replay needs: the message
/// and the exact bytes written at each path. Replaying the writes and
/// re-committing reproduces the commit (content addressing makes the
/// bytes, not the commit id, the identity that matters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCommit {
    /// Commit message.
    pub message: String,
    /// `(path, contents)` in path order.
    pub writes: Vec<(String, Vec<u8>)>,
}

/// The recorded effect of one stage execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageEntry {
    /// Did the stage stop the pipeline?
    pub stop: bool,
    /// Wall time the original execution took (reported as savings on a
    /// hit; deliberately excluded from [`StageEntry::output_digest`]).
    pub duration_us: u64,
    /// Serialized `RunContext` fields the stage changed, in snapshot
    /// order.
    pub fields: Vec<(String, Vec<u8>)>,
    /// Commits the stage made, in chronological order.
    pub commits: Vec<ReplayCommit>,
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(format!("truncated memo entry at byte {}", self.pos));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn blob(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, String> {
        String::from_utf8(self.blob()?).map_err(|_| "bad utf-8 in memo entry".to_string())
    }
}

impl StageEntry {
    /// The deterministic payload: everything replay observes. Duration
    /// is bookkeeping, not output, so two entries that replay the same
    /// belong to the same chain.
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(self.stop as u8);
        out.extend_from_slice(&(self.fields.len() as u64).to_le_bytes());
        for (name, value) in &self.fields {
            put_bytes(&mut out, name.as_bytes());
            put_bytes(&mut out, value);
        }
        out.extend_from_slice(&(self.commits.len() as u64).to_le_bytes());
        for commit in &self.commits {
            put_bytes(&mut out, commit.message.as_bytes());
            out.extend_from_slice(&(commit.writes.len() as u64).to_le_bytes());
            for (path, data) in &commit.writes {
                put_bytes(&mut out, path.as_bytes());
                put_bytes(&mut out, data);
            }
        }
        out
    }

    /// Canonical bytes: payload plus the recorded duration.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_payload();
        out.extend_from_slice(&self.duration_us.to_le_bytes());
        out
    }

    /// Decode [`StageEntry::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<StageEntry, String> {
        let body = bytes
            .strip_prefix(MAGIC)
            .ok_or("not a memo entry (bad magic)")?;
        let mut r = Reader { bytes: body, pos: 0 };
        let stop = match r.take(1)?[0] {
            0 => false,
            1 => true,
            other => return Err(format!("bad stop byte {other}")),
        };
        let field_count = r.u64()? as usize;
        let mut fields = Vec::with_capacity(field_count.min(64));
        for _ in 0..field_count {
            let name = r.string()?;
            let value = r.blob()?;
            fields.push((name, value));
        }
        let commit_count = r.u64()? as usize;
        let mut commits = Vec::with_capacity(commit_count.min(64));
        for _ in 0..commit_count {
            let message = r.string()?;
            let write_count = r.u64()? as usize;
            let mut writes = Vec::with_capacity(write_count.min(64));
            for _ in 0..write_count {
                let path = r.string()?;
                let data = r.blob()?;
                writes.push((path, data));
            }
            commits.push(ReplayCommit { message, writes });
        }
        let duration_us = r.u64()?;
        if r.pos != r.bytes.len() {
            return Err(format!("{} trailing byte(s) after memo entry", r.bytes.len() - r.pos));
        }
        Ok(StageEntry { stop, duration_us, fields, commits })
    }

    /// Digest of the deterministic payload — the value folded into the
    /// session chain so downstream keys depend on upstream outputs.
    pub fn output_digest(&self) -> [u8; 32] {
        sha256::digest(&self.encode_payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StageEntry {
        StageEntry {
            stop: true,
            duration_us: 123_456,
            fields: vec![
                ("vars".into(), b"{\"x\": 1}".to_vec()),
                ("results".into(), vec![0, 255, 10, 0]),
            ],
            commits: vec![ReplayCommit {
                message: "popper run e: record results".into(),
                writes: vec![
                    ("experiments/e/results.csv".into(), b"a,b\n1,2\n".to_vec()),
                    ("experiments/e/figure.txt".into(), vec![1, 2, 3]),
                ],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let e = sample();
        assert_eq!(StageEntry::decode(&e.encode()).unwrap(), e);
        let empty = StageEntry { stop: false, duration_us: 0, fields: vec![], commits: vec![] };
        assert_eq!(StageEntry::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn digest_ignores_duration_but_nothing_else() {
        let a = sample();
        let mut b = a.clone();
        b.duration_us = 1;
        assert_eq!(a.output_digest(), b.output_digest());
        assert_ne!(a.encode(), b.encode());
        let mut c = a.clone();
        c.fields[0].1.push(b'!');
        assert_ne!(a.output_digest(), c.output_digest());
        let mut d = a.clone();
        d.stop = false;
        assert_ne!(a.output_digest(), d.output_digest());
        let mut e = a.clone();
        e.commits[0].writes[0].1[0] ^= 1;
        assert_ne!(a.output_digest(), e.output_digest());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(StageEntry::decode(b"").is_err());
        assert!(StageEntry::decode(b"not a memo entry").is_err());
        let mut truncated = sample().encode();
        truncated.truncate(truncated.len() - 3);
        assert!(StageEntry::decode(&truncated).is_err());
        let mut trailing = sample().encode();
        trailing.push(0);
        assert!(StageEntry::decode(&trailing).is_err());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_entry() -> impl Strategy<Value = StageEntry> {
            (
                any::<bool>(),
                any::<u64>(),
                proptest::collection::vec(
                    ("[a-z]{1,10}", proptest::collection::vec(any::<u8>(), 0..64)),
                    0..4,
                ),
                proptest::collection::vec(
                    (
                        "[ -~]{0,30}",
                        proptest::collection::vec(
                            ("[a-z/.]{1,20}", proptest::collection::vec(any::<u8>(), 0..64)),
                            0..3,
                        ),
                    ),
                    0..3,
                ),
            )
                .prop_map(|(stop, duration_us, fields, commits)| StageEntry {
                    stop,
                    duration_us,
                    fields,
                    commits: commits
                        .into_iter()
                        .map(|(message, writes)| ReplayCommit { message, writes })
                        .collect(),
                })
        }

        proptest! {
            #[test]
            fn round_trip_any(e in arb_entry()) {
                prop_assert_eq!(StageEntry::decode(&e.encode()).unwrap(), e);
            }

            #[test]
            fn distinct_payloads_distinct_digests(a in arb_entry(), b in arb_entry()) {
                let (mut a0, mut b0) = (a.clone(), b.clone());
                a0.duration_us = 0;
                b0.duration_us = 0;
                if a0 == b0 {
                    prop_assert_eq!(a.output_digest(), b.output_digest());
                } else {
                    prop_assert_ne!(a.output_digest(), b.output_digest());
                }
            }
        }
    }
}
