//! popper-memo: a content-addressed memo table for pipeline stages.
//!
//! Popper's determinism contract — same inputs, same seed, same bytes —
//! means a stage whose inputs are unchanged can be *replayed* from its
//! recorded outputs instead of re-executed. This crate provides the
//! three pieces that make that safe:
//!
//! * [`KeyBuilder`] / [`StageKey`] — a domain-separated SHA-256 over
//!   every input a stage can observe (engine version, lifecycle mode,
//!   spec files, seeds, upstream stage outputs);
//! * [`StageEntry`] — the recorded effect of one stage execution (the
//!   serialized `RunContext` field deltas plus every commit it made),
//!   with a canonical binary encoding so entries are content-addressed;
//! * [`MemoTable`] — the key → entry mapping, stored as blobs in the
//!   popper-vcs object layer and named by `memo/<key>` refs so the
//!   cache travels with the repository state.
//!
//! The crate is deliberately mechanism-only: *what* goes into a key and
//! *how* a recorded entry is replayed into a `RunContext` is the
//! engine's business (`popper-core::memoize`); here a key is just a
//! digest and an entry just bytes.

mod entry;
mod key;
mod table;

pub use entry::{ReplayCommit, StageEntry};
pub use key::{KeyBuilder, StageKey};
pub use table::MemoTable;

/// Outcome of running one stage under a memo session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// The stage was replayed from a recorded entry.
    Hit,
    /// The stage body executed (and, when cacheable, was recorded).
    Miss,
}

/// Per-pipeline hit/miss accounting.
#[derive(Debug, Clone, Default)]
pub struct MemoStats {
    /// `(stage name, outcome)` in execution order.
    pub stages: Vec<(String, StageOutcome)>,
    /// Wall time the hits avoided, from the recorded miss durations.
    pub saved_us: u64,
}

impl MemoStats {
    /// Record a hit that skipped `saved_us` microseconds of work.
    pub fn hit(&mut self, stage: &str, saved_us: u64) {
        self.stages.push((stage.to_string(), StageOutcome::Hit));
        self.saved_us += saved_us;
    }

    /// Record a miss.
    pub fn miss(&mut self, stage: &str) {
        self.stages.push((stage.to_string(), StageOutcome::Miss));
    }

    /// Number of replayed stages.
    pub fn hits(&self) -> usize {
        self.stages.iter().filter(|(_, o)| *o == StageOutcome::Hit).count()
    }

    /// Number of executed stages.
    pub fn misses(&self) -> usize {
        self.stages.len() - self.hits()
    }

    /// The one-line summary printed under lifecycle output.
    pub fn summary(&self) -> String {
        format!(
            "memo: {} hits / {} misses ({} ms saved)",
            self.hits(),
            self.misses(),
            self.saved_us / 1000
        )
    }
}

/// A memo session threads one pipeline run through the cache: a base
/// key shared by every stage (inputs the whole run observes) plus a
/// running chain over upstream stage outputs, so a stage's key changes
/// whenever anything *before* it changed — hits are prefix-closed.
#[derive(Debug, Clone)]
pub struct MemoSession {
    base: StageKey,
    chain: [u8; 32],
    poisoned: bool,
    /// Hit/miss accounting for this run.
    pub stats: MemoStats,
}

impl MemoSession {
    /// A session over a precomputed base key.
    pub fn new(base: StageKey) -> MemoSession {
        MemoSession { base, chain: [0u8; 32], poisoned: false, stats: MemoStats::default() }
    }

    /// False once a stage produced effects the cache cannot represent;
    /// from then on the rest of the run neither looks up nor stores.
    pub fn active(&self) -> bool {
        !self.poisoned
    }

    /// Disable caching for the remainder of the run. Without this, a
    /// stage after an unrecordable one could hit on a stale chain.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// The key for stage `index`/`name`, given the serialized variables
    /// visible at stage entry.
    pub fn stage_key(&self, index: usize, name: &str, vars_json: &str) -> StageKey {
        KeyBuilder::new("popper-memo/stage/v1")
            .bytes("base", &self.base.0)
            .number("index", index as u64)
            .text("name", name)
            .bytes("chain", &self.chain)
            .text("vars", vars_json)
            .finish()
    }

    /// Fold a completed stage's output digest into the chain.
    pub fn advance(&mut self, entry: &StageEntry) {
        self.chain = KeyBuilder::new("popper-memo/chain/v1")
            .bytes("chain", &self.chain)
            .bytes("output", &entry.output_digest())
            .finish()
            .0;
    }
}

/// True when `POPPER_NO_CACHE` is set to anything but empty or `0`.
pub fn cache_disabled_by_env() -> bool {
    match std::env::var("POPPER_NO_CACHE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_with(field: &str, value: &[u8]) -> StageEntry {
        StageEntry {
            stop: false,
            duration_us: 42,
            fields: vec![(field.to_string(), value.to_vec())],
            commits: Vec::new(),
        }
    }

    #[test]
    fn stats_summary_counts_and_saved_time() {
        let mut s = MemoStats::default();
        s.miss("sanitize");
        s.hit("execute", 1_500);
        s.hit("record", 2_500);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.summary(), "memo: 2 hits / 1 misses (4 ms saved)");
    }

    #[test]
    fn same_prefix_same_key_divergent_output_divergent_downstream() {
        let base = KeyBuilder::new("test").text("exp", "e").finish();
        let mut a = MemoSession::new(base.clone());
        let mut b = MemoSession::new(base);
        // Stage 0 keys agree before anything ran.
        assert_eq!(a.stage_key(0, "sanitize", "{}"), b.stage_key(0, "sanitize", "{}"));
        // Same stage output keeps downstream keys aligned…
        a.advance(&entry_with("vars", b"x"));
        b.advance(&entry_with("vars", b"x"));
        assert_eq!(a.stage_key(1, "execute", "{}"), b.stage_key(1, "execute", "{}"));
        // …while divergent output splits every later key.
        a.advance(&entry_with("results", b"1"));
        b.advance(&entry_with("results", b"2"));
        assert_ne!(a.stage_key(2, "record", "{}"), b.stage_key(2, "record", "{}"));
    }

    #[test]
    fn duration_does_not_affect_the_chain() {
        let base = KeyBuilder::new("test").finish();
        let mut a = MemoSession::new(base.clone());
        let mut b = MemoSession::new(base);
        let mut fast = entry_with("vars", b"x");
        let mut slow = fast.clone();
        fast.duration_us = 1;
        slow.duration_us = 1_000_000;
        a.advance(&fast);
        b.advance(&slow);
        assert_eq!(a.stage_key(1, "next", "{}"), b.stage_key(1, "next", "{}"));
    }

    #[test]
    fn poisoned_sessions_stay_poisoned() {
        let mut s = MemoSession::new(KeyBuilder::new("test").finish());
        assert!(s.active());
        s.poison();
        assert!(!s.active());
    }

    #[test]
    fn env_kill_switch_parses_conventionally() {
        // Serial within this test: the var is process-global.
        std::env::remove_var("POPPER_NO_CACHE");
        assert!(!cache_disabled_by_env());
        std::env::set_var("POPPER_NO_CACHE", "0");
        assert!(!cache_disabled_by_env());
        std::env::set_var("POPPER_NO_CACHE", "");
        assert!(!cache_disabled_by_env());
        std::env::set_var("POPPER_NO_CACHE", "1");
        assert!(cache_disabled_by_env());
        std::env::remove_var("POPPER_NO_CACHE");
    }
}
