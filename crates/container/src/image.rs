//! Images and the image registry.

use crate::layer::{Layer, LayerId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Image configuration (the OCI-config analogue).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImageConfig {
    /// Environment variables baked into the image.
    pub env: BTreeMap<String, String>,
    /// Default program + arguments to run.
    pub entrypoint: Vec<String>,
    /// Free-form labels (provenance metadata — Popper stores the source
    /// repo and commit here).
    pub labels: BTreeMap<String, String>,
}

/// An image: an ordered stack of layer ids plus configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Repository name, e.g. `popper/gassyfs`.
    pub name: String,
    /// Tag, e.g. `latest` or `v2.1`.
    pub tag: String,
    /// Layer ids, bottom first.
    pub layers: Vec<LayerId>,
    /// Image config.
    pub config: ImageConfig,
}

impl Image {
    /// `name:tag` reference.
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No image with that reference.
    UnknownImage(String),
    /// An image references a layer the registry does not hold.
    MissingLayer(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownImage(r) => write!(f, "unknown image '{r}'"),
            RegistryError::MissingLayer(id) => write!(f, "missing layer {id}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// An image registry: layer blobs (deduplicated by content address)
/// plus tagged image manifests. Models both the local daemon store and
/// a remote hub — `push`/`pull` between two registries moves only the
/// layers the receiver lacks.
#[derive(Debug, Clone, Default)]
pub struct ImageRegistry {
    layers: HashMap<LayerId, Layer>,
    images: BTreeMap<String, Image>,
}

impl ImageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a layer blob, returning its id. Idempotent.
    pub fn put_layer(&mut self, layer: Layer) -> LayerId {
        let id = layer.id();
        self.layers.entry(id).or_insert(layer);
        id
    }

    /// Fetch a layer blob.
    pub fn layer(&self, id: LayerId) -> Option<&Layer> {
        self.layers.get(&id)
    }

    /// Tag an image manifest. Every referenced layer must already be
    /// stored.
    pub fn tag(&mut self, image: Image) -> Result<(), RegistryError> {
        for lid in &image.layers {
            if !self.layers.contains_key(lid) {
                return Err(RegistryError::MissingLayer(lid.short()));
            }
        }
        self.images.insert(image.reference(), image);
        Ok(())
    }

    /// Look up an image by `name:tag`.
    pub fn get(&self, reference: &str) -> Result<&Image, RegistryError> {
        self.images
            .get(reference)
            .ok_or_else(|| RegistryError::UnknownImage(reference.to_string()))
    }

    /// Materialize an image's layer stack (bottom first).
    pub fn layers_of(&self, reference: &str) -> Result<Vec<Layer>, RegistryError> {
        let image = self.get(reference)?;
        image
            .layers
            .iter()
            .map(|lid| {
                self.layers
                    .get(lid)
                    .cloned()
                    .ok_or_else(|| RegistryError::MissingLayer(lid.short()))
            })
            .collect()
    }

    /// All image references.
    pub fn list(&self) -> Vec<&str> {
        self.images.keys().map(String::as_str).collect()
    }

    /// Push an image (manifest + missing layers) into another registry.
    /// Returns the number of layer blobs actually transferred.
    pub fn push_to(&self, reference: &str, dest: &mut ImageRegistry) -> Result<usize, RegistryError> {
        let image = self.get(reference)?.clone();
        let mut moved = 0;
        for lid in &image.layers {
            let blob = self
                .layers
                .get(lid)
                .ok_or_else(|| RegistryError::MissingLayer(lid.short()))?;
            if !dest.layers.contains_key(lid) {
                dest.layers.insert(*lid, blob.clone());
                moved += 1;
            }
        }
        dest.images.insert(image.reference(), image);
        Ok(moved)
    }

    /// Number of unique layer blobs stored.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_with(path: &str, data: &[u8]) -> Layer {
        let mut l = Layer::new();
        l.write(path, data.to_vec());
        l
    }

    fn sample_image(reg: &mut ImageRegistry, name: &str, data: &[u8]) -> Image {
        let base = reg.put_layer(layer_with("bin/sh", b"shell"));
        let app = reg.put_layer(layer_with("bin/app", data));
        let image = Image {
            name: name.to_string(),
            tag: "latest".to_string(),
            layers: vec![base, app],
            config: ImageConfig::default(),
        };
        reg.tag(image.clone()).unwrap();
        image
    }

    #[test]
    fn tag_and_get() {
        let mut reg = ImageRegistry::new();
        let img = sample_image(&mut reg, "popper/gassyfs", b"v1");
        assert_eq!(reg.get("popper/gassyfs:latest").unwrap(), &img);
        assert!(matches!(reg.get("nope:latest"), Err(RegistryError::UnknownImage(_))));
    }

    #[test]
    fn tag_requires_layers_present() {
        let mut reg = ImageRegistry::new();
        let ghost = layer_with("f", b"x").id();
        let image = Image {
            name: "broken".into(),
            tag: "latest".into(),
            layers: vec![ghost],
            config: ImageConfig::default(),
        };
        assert!(matches!(reg.tag(image), Err(RegistryError::MissingLayer(_))));
    }

    #[test]
    fn layers_dedup_across_images() {
        let mut reg = ImageRegistry::new();
        sample_image(&mut reg, "a", b"same");
        sample_image(&mut reg, "b", b"same");
        // base + identical app layer are shared: 2 unique blobs total.
        assert_eq!(reg.layer_count(), 2);
        sample_image(&mut reg, "c", b"different");
        assert_eq!(reg.layer_count(), 3);
    }

    #[test]
    fn layers_of_returns_stack_in_order() {
        let mut reg = ImageRegistry::new();
        let img = sample_image(&mut reg, "x", b"v");
        let stack = reg.layers_of("x:latest").unwrap();
        assert_eq!(stack.len(), 2);
        assert_eq!(stack[0].id(), img.layers[0]);
        assert_eq!(stack[1].id(), img.layers[1]);
    }

    #[test]
    fn push_moves_only_missing_layers() {
        let mut local = ImageRegistry::new();
        let mut hub = ImageRegistry::new();
        sample_image(&mut local, "popper/torpor", b"v1");
        let moved = local.push_to("popper/torpor:latest", &mut hub).unwrap();
        assert_eq!(moved, 2);
        assert!(hub.get("popper/torpor:latest").is_ok());
        // Re-push: nothing to move.
        assert_eq!(local.push_to("popper/torpor:latest", &mut hub).unwrap(), 0);
        // A second image sharing the base: only its app layer moves.
        sample_image(&mut local, "popper/mpi", b"other");
        assert_eq!(local.push_to("popper/mpi:latest", &mut hub).unwrap(), 1);
    }

    #[test]
    fn config_is_part_of_image() {
        let mut reg = ImageRegistry::new();
        let mut img = sample_image(&mut reg, "cfg", b"v");
        img.config.env.insert("GASNET_NODES".into(), "4".into());
        img.config.entrypoint = vec!["run.sh".into(), "--all".into()];
        img.config.labels.insert("org.popper.commit".into(), "abc123".into());
        reg.tag(img.clone()).unwrap();
        let got = reg.get("cfg:latest").unwrap();
        assert_eq!(got.config.env["GASNET_NODES"], "4");
        assert_eq!(got.config.entrypoint.len(), 2);
    }
}

impl Image {
    /// `docker inspect`-style text description (layers, config,
    /// provenance labels).
    pub fn inspect(&self, registry: &ImageRegistry) -> String {
        let mut out = format!("Image: {}\n", self.reference());
        if !self.config.entrypoint.is_empty() {
            out.push_str(&format!("Entrypoint: {}\n", self.config.entrypoint.join(" ")));
        }
        for (k, v) in &self.config.env {
            out.push_str(&format!("Env: {k}={v}\n"));
        }
        for (k, v) in &self.config.labels {
            out.push_str(&format!("Label: {k}={v}\n"));
        }
        out.push_str("Layers (bottom first):\n");
        for lid in &self.layers {
            match registry.layer(*lid) {
                Some(layer) => out.push_str(&format!(
                    "  {}  {} change(s), {} bytes\n",
                    lid.short(),
                    layer.len(),
                    layer.content_bytes()
                )),
                None => out.push_str(&format!("  {}  <missing>\n", lid.short())),
            }
        }
        out
    }
}

impl ImageRegistry {
    /// Garbage-collect layers unreferenced by any tagged image. Returns
    /// the number of layer blobs dropped.
    pub fn gc(&mut self) -> usize {
        let live: std::collections::HashSet<LayerId> =
            self.images.values().flat_map(|i| i.layers.iter().copied()).collect();
        let before = self.layers.len();
        self.layers.retain(|id, _| live.contains(id));
        before - self.layers.len()
    }

    /// Remove a tag; layers stay until [`gc`](Self::gc).
    pub fn untag(&mut self, reference: &str) -> bool {
        self.images.remove(reference).is_some()
    }
}

#[cfg(test)]
mod inspect_tests {
    use super::*;
    use crate::layer::Layer;

    #[test]
    fn inspect_shows_layers_and_labels() {
        let mut reg = ImageRegistry::new();
        let mut l = Layer::new();
        l.write("bin/app", b"x".to_vec());
        let id = reg.put_layer(l);
        let mut config = ImageConfig::default();
        config.labels.insert("org.popper.commit".into(), "abc".into());
        config.entrypoint = vec!["app".into()];
        let image = Image { name: "x".into(), tag: "v1".into(), layers: vec![id], config };
        reg.tag(image.clone()).unwrap();
        let text = image.inspect(&reg);
        assert!(text.contains("Image: x:v1"));
        assert!(text.contains("Entrypoint: app"));
        assert!(text.contains("org.popper.commit=abc"));
        assert!(text.contains("1 change(s), 1 bytes"));
    }

    #[test]
    fn gc_drops_unreferenced_layers() {
        let mut reg = ImageRegistry::new();
        let mut a = Layer::new();
        a.write("a", b"1".to_vec());
        let ida = reg.put_layer(a);
        let mut b = Layer::new();
        b.write("b", b"2".to_vec());
        let idb = reg.put_layer(b);
        reg.tag(Image { name: "keep".into(), tag: "v".into(), layers: vec![ida], config: ImageConfig::default() })
            .unwrap();
        assert_eq!(reg.layer_count(), 2);
        assert_eq!(reg.gc(), 1);
        assert!(reg.layer(ida).is_some());
        assert!(reg.layer(idb).is_none());
        // Untag then gc drops the rest.
        assert!(reg.untag("keep:v"));
        assert!(!reg.untag("keep:v"));
        assert_eq!(reg.gc(), 1);
        assert_eq!(reg.layer_count(), 0);
    }
}
