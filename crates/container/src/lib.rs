//! # popper-container
//!
//! A software-container engine — the "Docker slot" of the Popper toolkit
//! (§Toolkit, *Package Management*). The convention needs a packager
//! that snapshots "all the dependencies of an application in an entire
//! file system snapshot that can be deployed in systems as is"; this
//! crate provides exactly that, from scratch:
//!
//! * [`layer`] — content-addressed filesystem layers with whiteouts.
//! * [`fs`] — a union filesystem resolving a stack of layers plus a
//!   writable top.
//! * [`image`] — images (layer stacks + config) and an [`image::ImageRegistry`]
//!   with push/pull and layer dedup.
//! * [`build`] — the *Popperfile* build DSL (`FROM` / `COPY` / `RUN` /
//!   `ENV` / `ENTRYPOINT` / `LABEL`) with instruction-level build
//!   caching, mirroring `docker build`.
//! * [`runtime`] — containers: instantiate an image, run *programs*
//!   (registered Rust functions standing in for binaries — the runtime
//!   has no real exec) against the container's private filesystem.
//!
//! The semantics the paper leans on are enforced and tested: containers
//! are **immutable infrastructure** — writes inside a container never
//! mutate the image, and relaunching from the image starts from the
//! pristine snapshot ("one cannot install software inside of them and
//! expect those installations to persist after relaunching",
//! §Discussion).

pub mod build;
pub mod fs;
pub mod image;
pub mod layer;
pub mod runtime;

pub use build::{build_image, BuildCache, BuildError, Popperfile};
pub use fs::UnionFs;
pub use image::{Image, ImageConfig, ImageRegistry};
pub use layer::{Layer, LayerChange, LayerId};
pub use runtime::{Container, ExecCtx, ExitStatus, ProgramRegistry};
