//! Content-addressed filesystem layers.
//!
//! A layer is an ordered map from paths to changes: either new file
//! contents or a whiteout (deletion of a path provided by a lower
//! layer). Layers are identified by the SHA-256 of their canonical
//! serialization, so identical build steps produce identical layers —
//! the substrate for both registry dedup and build caching.

use popper_vcs::sha256;
use std::collections::BTreeMap;
use std::fmt;

/// A layer's content address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub [u8; 32]);

impl LayerId {
    /// Hex form.
    pub fn to_hex(self) -> String {
        sha256::to_hex(&self.0)
    }

    /// Abbreviated hex for logs.
    pub fn short(self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl fmt::Debug for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LayerId({})", self.short())
    }
}

/// One path's change within a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerChange {
    /// Create or replace the file with these bytes.
    Write(Vec<u8>),
    /// Whiteout: the path is absent even if lower layers provide it.
    Delete,
}

/// An immutable filesystem layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Layer {
    changes: BTreeMap<String, LayerChange>,
}

impl Layer {
    /// An empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a file write.
    pub fn write(&mut self, path: &str, contents: impl Into<Vec<u8>>) {
        self.changes.insert(path.to_string(), LayerChange::Write(contents.into()));
    }

    /// Record a whiteout.
    pub fn delete(&mut self, path: &str) {
        self.changes.insert(path.to_string(), LayerChange::Delete);
    }

    /// The change for `path`, if any.
    pub fn get(&self, path: &str) -> Option<&LayerChange> {
        self.changes.get(path)
    }

    /// Iterate all changes in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LayerChange)> {
        self.changes.iter().map(|(p, c)| (p.as_str(), c))
    }

    /// Number of changed paths.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when the layer changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Canonical serialization: `W <path-len> <path> <data-len>\n<data>`
    /// or `D <path-len> <path>\n`, in path order.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (path, change) in &self.changes {
            match change {
                LayerChange::Write(data) => {
                    out.extend_from_slice(format!("W {} {} {}\n", path.len(), path, data.len()).as_bytes());
                    out.extend_from_slice(data);
                    out.push(b'\n');
                }
                LayerChange::Delete => {
                    out.extend_from_slice(format!("D {} {}\n", path.len(), path).as_bytes());
                }
            }
        }
        out
    }

    /// The layer's content address.
    pub fn id(&self) -> LayerId {
        LayerId(sha256::digest(&self.serialize()))
    }

    /// Total bytes of file content in the layer.
    pub fn content_bytes(&self) -> u64 {
        self.changes
            .values()
            .map(|c| match c {
                LayerChange::Write(d) => d.len() as u64,
                LayerChange::Delete => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_layers_share_ids() {
        let mut a = Layer::new();
        a.write("bin/app", b"binary".to_vec());
        a.delete("tmp/cache");
        let mut b = Layer::new();
        b.delete("tmp/cache");
        b.write("bin/app", b"binary".to_vec());
        assert_eq!(a.id(), b.id(), "insertion order must not matter");
    }

    #[test]
    fn different_content_different_ids() {
        let mut a = Layer::new();
        a.write("f", b"1".to_vec());
        let mut b = Layer::new();
        b.write("f", b"2".to_vec());
        assert_ne!(a.id(), b.id());
        // A delete differs from a write of empty bytes.
        let mut c = Layer::new();
        c.write("f", Vec::new());
        let mut d = Layer::new();
        d.delete("f");
        assert_ne!(c.id(), d.id());
    }

    #[test]
    fn later_change_wins_within_layer() {
        let mut l = Layer::new();
        l.write("f", b"first".to_vec());
        l.write("f", b"second".to_vec());
        assert_eq!(l.get("f"), Some(&LayerChange::Write(b"second".to_vec())));
        l.delete("f");
        assert_eq!(l.get("f"), Some(&LayerChange::Delete));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn serialization_handles_binary_and_newlines() {
        let mut l = Layer::new();
        l.write("data.bin", vec![0, 10, 13, 255]);
        l.write("with\nnewline-ish name?", b"x\ny".to_vec()); // paths are opaque here
        let id1 = l.id();
        let id2 = l.id();
        assert_eq!(id1, id2);
        assert!(l.content_bytes() == 7);
    }

    #[test]
    fn empty_layer() {
        let l = Layer::new();
        assert!(l.is_empty());
        assert_eq!(l.serialize(), Vec::<u8>::new());
    }
}
