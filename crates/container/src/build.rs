//! The Popperfile build DSL.
//!
//! A *Popperfile* is the engine's Dockerfile: a line-oriented recipe
//! that produces an image layer by layer, with instruction-level build
//! caching.
//!
//! ```text
//! FROM base:latest            # or FROM scratch
//! LABEL org.popper.exp gassyfs
//! ENV GASNET_NODES 4
//! COPY run.sh experiments/gassyfs/run.sh
//! RUN install-pkg gassyfs 2.1
//! ENTRYPOINT gassyfs-bench --all
//! ```
//!
//! `RUN` executes a registered program (see
//! [`crate::runtime::ProgramRegistry`]) in a temporary container built
//! on the layers so far; the filesystem delta becomes the new layer —
//! exactly docker's model. The [`BuildCache`] keys each step on
//! `(parent chain, instruction, content hash)` so unchanged prefixes
//! rebuild for free.

use crate::fs::UnionFs;
use crate::image::{Image, ImageConfig, ImageRegistry};
use crate::layer::LayerId;
use crate::runtime::{ExecCtx, ProgramRegistry};
use popper_vcs::sha256;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A parsed Popperfile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Popperfile {
    /// Base image reference, or `None` for `FROM scratch`.
    pub from: Option<String>,
    /// The instruction sequence (excluding FROM).
    pub instructions: Vec<Instruction>,
}

/// One Popperfile instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// `COPY <context-src> <dst>`.
    Copy(String, String),
    /// `RUN <program> [args…]`.
    Run(Vec<String>),
    /// `ENV <key> <value>`.
    Env(String, String),
    /// `ENTRYPOINT <program> [args…]`.
    Entrypoint(Vec<String>),
    /// `LABEL <key> <value…>`.
    Label(String, String),
}

/// Errors from parsing or building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The Popperfile is malformed.
    Parse(String),
    /// `COPY` referenced a path missing from the build context.
    MissingContextFile(String),
    /// A `RUN` program is unregistered or exited non-zero.
    RunFailed { instruction: String, detail: String },
    /// The base image could not be resolved.
    Registry(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(m) => write!(f, "popperfile parse error: {m}"),
            BuildError::MissingContextFile(p) => write!(f, "COPY source '{p}' not in build context"),
            BuildError::RunFailed { instruction, detail } => {
                write!(f, "step '{instruction}' failed: {detail}")
            }
            BuildError::Registry(e) => write!(f, "registry: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl Popperfile {
    /// Parse Popperfile text. `#` starts comments; blank lines are
    /// skipped; the first instruction must be `FROM`.
    pub fn parse(text: &str) -> Result<Popperfile, BuildError> {
        let mut from: Option<Option<String>> = None;
        let mut instructions = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let op = parts.next().expect("non-empty line");
            let rest: Vec<String> = parts.map(str::to_string).collect();
            let err = |m: &str| BuildError::Parse(format!("line {}: {m}", lineno + 1));
            match op.to_ascii_uppercase().as_str() {
                "FROM" => {
                    if from.is_some() {
                        return Err(err("duplicate FROM"));
                    }
                    let base = rest.first().ok_or_else(|| err("FROM needs an image"))?;
                    from = Some(if base == "scratch" { None } else { Some(base.clone()) });
                }
                _ if from.is_none() => return Err(err("first instruction must be FROM")),
                "COPY" => {
                    if rest.len() != 2 {
                        return Err(err("COPY needs exactly <src> <dst>"));
                    }
                    instructions.push(Instruction::Copy(rest[0].clone(), rest[1].clone()));
                }
                "RUN" => {
                    if rest.is_empty() {
                        return Err(err("RUN needs a program"));
                    }
                    instructions.push(Instruction::Run(rest));
                }
                "ENV" => {
                    if rest.len() < 2 {
                        return Err(err("ENV needs <key> <value>"));
                    }
                    instructions.push(Instruction::Env(rest[0].clone(), rest[1..].join(" ")));
                }
                "ENTRYPOINT" => {
                    if rest.is_empty() {
                        return Err(err("ENTRYPOINT needs a program"));
                    }
                    instructions.push(Instruction::Entrypoint(rest));
                }
                "LABEL" => {
                    if rest.len() < 2 {
                        return Err(err("LABEL needs <key> <value>"));
                    }
                    instructions.push(Instruction::Label(rest[0].clone(), rest[1..].join(" ")));
                }
                other => return Err(err(&format!("unknown instruction '{other}'"))),
            }
        }
        let from = from.ok_or_else(|| BuildError::Parse("missing FROM".into()))?;
        Ok(Popperfile { from, instructions })
    }
}

/// Instruction-level build cache: step key → produced layer.
#[derive(Debug, Clone, Default)]
pub struct BuildCache {
    steps: HashMap<[u8; 32], LayerId>,
    hits: u64,
    misses: u64,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

fn instruction_text(i: &Instruction) -> String {
    match i {
        Instruction::Copy(s, d) => format!("COPY {s} {d}"),
        Instruction::Run(argv) => format!("RUN {}", argv.join(" ")),
        Instruction::Env(k, v) => format!("ENV {k} {v}"),
        Instruction::Entrypoint(argv) => format!("ENTRYPOINT {}", argv.join(" ")),
        Instruction::Label(k, v) => format!("LABEL {k} {v}"),
    }
}

/// Build an image named `name:tag` from a Popperfile, a build context
/// (path → bytes), the program registry (for RUN) and an image registry
/// (source of FROM, destination of the result).
#[allow(clippy::too_many_arguments)]
pub fn build_image(
    popperfile: &Popperfile,
    context: &BTreeMap<String, Vec<u8>>,
    registry: &mut ImageRegistry,
    programs: &ProgramRegistry,
    cache: &mut BuildCache,
    name: &str,
    tag: &str,
) -> Result<Image, BuildError> {
    // Resolve the base.
    let (mut layers, mut config) = match &popperfile.from {
        Some(reference) => {
            let image = registry
                .get(reference)
                .map_err(|e| BuildError::Registry(e.to_string()))?
                .clone();
            (image.layers, image.config)
        }
        None => (Vec::new(), ImageConfig::default()),
    };

    // Chain key starts from the base stack.
    let mut chain = sha256::Sha256::new();
    for l in &layers {
        chain.update(&l.0);
    }

    let tracer = popper_trace::current();
    let _build_span = tracer.span("container", "container/build", format!("build {name}:{tag}"));

    for instruction in &popperfile.instructions {
        let text = instruction_text(instruction);
        let _step_span =
            if tracer.is_enabled() { Some(tracer.span("container", "container/build", &text)) } else { None };
        // Metadata-only instructions mutate config, not layers.
        match instruction {
            Instruction::Env(k, v) => {
                config.env.insert(k.clone(), v.clone());
                continue;
            }
            Instruction::Entrypoint(argv) => {
                config.entrypoint = argv.clone();
                continue;
            }
            Instruction::Label(k, v) => {
                config.labels.insert(k.clone(), v.clone());
                continue;
            }
            _ => {}
        }

        // Step key: chain so far + instruction text + content hash of
        // COPY sources.
        let mut key = chain.clone();
        key.update(text.as_bytes());
        if let Instruction::Copy(src, _) = instruction {
            let data = context
                .get(src)
                .ok_or_else(|| BuildError::MissingContextFile(src.clone()))?;
            key.update(&sha256::digest(data));
        }
        let key = key.finalize();

        let layer_id = if let Some(&cached) = cache.steps.get(&key) {
            cache.hits += 1;
            tracer.instant("container", "container/build", "cache-hit");
            cached
        } else {
            cache.misses += 1;
            tracer.instant("container", "container/build", "cache-miss");
            // Execute the step on the layers so far.
            let stack = layers
                .iter()
                .map(|lid| {
                    registry
                        .layer(*lid)
                        .cloned()
                        .ok_or_else(|| BuildError::Registry(format!("missing layer {}", lid.short())))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let mut fs = UnionFs::mount(stack);
            match instruction {
                Instruction::Copy(src, dst) => {
                    let data = context
                        .get(src)
                        .ok_or_else(|| BuildError::MissingContextFile(src.clone()))?;
                    fs.write(dst, data.clone());
                }
                Instruction::Run(argv) => {
                    let prog_name = &argv[0];
                    let program = programs.get(prog_name).ok_or_else(|| BuildError::RunFailed {
                        instruction: text.clone(),
                        detail: format!("unknown program '{prog_name}'"),
                    })?;
                    let mut ctx = ExecCtx {
                        fs: &mut fs,
                        args: argv.clone(),
                        env: config.env.clone(),
                        stdout: String::new(),
                    };
                    let code = program(&mut ctx);
                    if code != 0 {
                        return Err(BuildError::RunFailed {
                            instruction: text.clone(),
                            detail: format!("exit code {code}; stdout: {}", ctx.stdout.trim_end()),
                        });
                    }
                }
                _ => unreachable!("metadata instructions handled above"),
            }
            let delta = fs.take_top();
            let id = registry.put_layer(delta);
            cache.steps.insert(key, id);
            id
        };
        layers.push(layer_id);
        chain.update(&layer_id.0);
    }

    let image = Image { name: name.to_string(), tag: tag.to_string(), layers, config };
    registry
        .tag(image.clone())
        .map_err(|e| BuildError::Registry(e.to_string()))?;
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Container;

    fn context() -> BTreeMap<String, Vec<u8>> {
        let mut c = BTreeMap::new();
        c.insert("run.sh".to_string(), b"#!/bin/sh\n./bench --all\n".to_vec());
        c.insert("vars.pml".to_string(), b"nodes: 4\n".to_vec());
        c
    }

    fn sample_popperfile() -> &'static str {
        "\
# GassyFS experiment image
FROM scratch
LABEL org.popper.experiment gassyfs
ENV GASNET_NODES 4
COPY run.sh experiments/gassyfs/run.sh
RUN install-pkg gassyfs 2.1
ENTRYPOINT cat experiments/gassyfs/run.sh
"
    }

    #[test]
    fn parse_sample() {
        let pf = Popperfile::parse(sample_popperfile()).unwrap();
        assert_eq!(pf.from, None);
        assert_eq!(pf.instructions.len(), 5);
        assert_eq!(
            pf.instructions[2],
            Instruction::Copy("run.sh".into(), "experiments/gassyfs/run.sh".into())
        );
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(Popperfile::parse(""), Err(BuildError::Parse(_))));
        assert!(Popperfile::parse("COPY a b\nFROM scratch\n").is_err());
        assert!(Popperfile::parse("FROM scratch\nFROM scratch\n").is_err());
        assert!(Popperfile::parse("FROM scratch\nCOPY onlyone\n").is_err());
        assert!(Popperfile::parse("FROM scratch\nFLY high\n").is_err());
        assert!(Popperfile::parse("FROM scratch\nRUN\n").is_err());
    }

    #[test]
    fn build_produces_runnable_image() {
        let pf = Popperfile::parse(sample_popperfile()).unwrap();
        let mut registry = ImageRegistry::new();
        let programs = ProgramRegistry::with_builtins();
        let mut cache = BuildCache::new();
        let image =
            build_image(&pf, &context(), &mut registry, &programs, &mut cache, "popper/gassyfs", "v1").unwrap();
        assert_eq!(image.reference(), "popper/gassyfs:v1");
        assert_eq!(image.layers.len(), 2); // COPY + RUN
        assert_eq!(image.config.env["GASNET_NODES"], "4");
        assert_eq!(image.config.labels["org.popper.experiment"], "gassyfs");

        let mut c = Container::create(&registry, "popper/gassyfs:v1").unwrap();
        assert!(c.fs.exists("usr/bin/gassyfs"));
        let st = c.run(&programs, &[]).unwrap(); // entrypoint: cat run.sh
        assert!(st.success());
        assert!(st.stdout.contains("./bench --all"));
    }

    #[test]
    fn build_cache_hits_on_rebuild() {
        let pf = Popperfile::parse(sample_popperfile()).unwrap();
        let mut registry = ImageRegistry::new();
        let programs = ProgramRegistry::with_builtins();
        let mut cache = BuildCache::new();
        build_image(&pf, &context(), &mut registry, &programs, &mut cache, "img", "v1").unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        build_image(&pf, &context(), &mut registry, &programs, &mut cache, "img", "v2").unwrap();
        assert_eq!(cache.misses(), 2, "full rebuild must be all hits");
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn changed_context_invalidates_copy_and_later_steps() {
        let pf = Popperfile::parse(sample_popperfile()).unwrap();
        let mut registry = ImageRegistry::new();
        let programs = ProgramRegistry::with_builtins();
        let mut cache = BuildCache::new();
        build_image(&pf, &context(), &mut registry, &programs, &mut cache, "img", "v1").unwrap();
        let mut ctx2 = context();
        ctx2.insert("run.sh".to_string(), b"changed".to_vec());
        build_image(&pf, &ctx2, &mut registry, &programs, &mut cache, "img", "v2").unwrap();
        // COPY missed (content changed) and RUN missed (parent changed).
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn from_existing_image_extends_it() {
        let mut registry = ImageRegistry::new();
        let programs = ProgramRegistry::with_builtins();
        let mut cache = BuildCache::new();
        let base_pf = Popperfile::parse("FROM scratch\nRUN install-pkg ansible\n").unwrap();
        build_image(&base_pf, &BTreeMap::new(), &mut registry, &programs, &mut cache, "base", "latest").unwrap();
        let child_pf = Popperfile::parse("FROM base:latest\nRUN install-pkg gassyfs\n").unwrap();
        let child =
            build_image(&child_pf, &BTreeMap::new(), &mut registry, &programs, &mut cache, "child", "latest")
                .unwrap();
        assert_eq!(child.layers.len(), 2);
        let c = Container::create(&registry, "child:latest").unwrap();
        assert!(c.fs.exists("usr/bin/ansible"));
        assert!(c.fs.exists("usr/bin/gassyfs"));
    }

    #[test]
    fn failing_run_aborts_build() {
        let pf = Popperfile::parse("FROM scratch\nRUN false\n").unwrap();
        let mut registry = ImageRegistry::new();
        let programs = ProgramRegistry::with_builtins();
        let mut cache = BuildCache::new();
        let err = build_image(&pf, &BTreeMap::new(), &mut registry, &programs, &mut cache, "x", "v")
            .unwrap_err();
        assert!(matches!(err, BuildError::RunFailed { .. }));
        // Unknown program is also a RunFailed with a clear message.
        let pf = Popperfile::parse("FROM scratch\nRUN no-such-binary\n").unwrap();
        let err = build_image(&pf, &BTreeMap::new(), &mut registry, &programs, &mut cache, "x", "v")
            .unwrap_err();
        assert!(err.to_string().contains("no-such-binary"));
    }

    #[test]
    fn missing_copy_source_fails() {
        let pf = Popperfile::parse("FROM scratch\nCOPY missing.txt dst\n").unwrap();
        let mut registry = ImageRegistry::new();
        let programs = ProgramRegistry::with_builtins();
        let mut cache = BuildCache::new();
        assert!(matches!(
            build_image(&pf, &BTreeMap::new(), &mut registry, &programs, &mut cache, "x", "v"),
            Err(BuildError::MissingContextFile(_))
        ));
    }

    #[test]
    fn metadata_instructions_add_no_layers() {
        let pf = Popperfile::parse("FROM scratch\nENV A 1\nLABEL b two words\nENTRYPOINT true\n").unwrap();
        let mut registry = ImageRegistry::new();
        let programs = ProgramRegistry::with_builtins();
        let mut cache = BuildCache::new();
        let image = build_image(&pf, &BTreeMap::new(), &mut registry, &programs, &mut cache, "m", "v").unwrap();
        assert!(image.layers.is_empty());
        assert_eq!(image.config.labels["b"], "two words");
        assert_eq!(cache.misses(), 0);
    }
}
