//! The container runtime: programs and containers.
//!
//! There is no real `exec` in a simulated engine; instead, *programs*
//! are Rust functions registered by name in a [`ProgramRegistry`]. The
//! experiment crates register their entry points (e.g. `gassyfs-bench`)
//! and the container runs them against its private union filesystem —
//! same control flow as `docker run image command`.

use crate::fs::UnionFs;
use crate::image::{Image, ImageConfig, ImageRegistry, RegistryError};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// The execution context handed to a program.
pub struct ExecCtx<'a> {
    /// The container's filesystem.
    pub fs: &'a mut UnionFs,
    /// argv, including the program name at index 0.
    pub args: Vec<String>,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Standard output buffer.
    pub stdout: String,
}

impl ExecCtx<'_> {
    /// Append a line to stdout.
    pub fn println(&mut self, line: impl AsRef<str>) {
        self.stdout.push_str(line.as_ref());
        self.stdout.push('\n');
    }
}

/// A program is a function from context to exit code.
pub type Program = Arc<dyn Fn(&mut ExecCtx<'_>) -> i32 + Send + Sync>;

/// Outcome of running a program in a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExitStatus {
    /// Process exit code (0 = success).
    pub code: i32,
    /// Captured stdout.
    pub stdout: String,
}

impl ExitStatus {
    /// True for exit code 0.
    pub fn success(&self) -> bool {
        self.code == 0
    }
}

/// Errors from the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// argv was empty or named an unregistered program.
    UnknownProgram(String),
    /// Image lookup failed.
    Registry(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownProgram(p) => write!(f, "unknown program '{p}'"),
            RuntimeError::Registry(e) => write!(f, "registry error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<RegistryError> for RuntimeError {
    fn from(e: RegistryError) -> Self {
        RuntimeError::Registry(e.to_string())
    }
}

/// A name → program table.
#[derive(Clone, Default)]
pub struct ProgramRegistry {
    programs: HashMap<String, Program>,
}

impl fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.programs.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("ProgramRegistry").field("programs", &names).finish()
    }
}

impl ProgramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry preloaded with the busybox-style built-ins: `echo`,
    /// `cat`, `tee`, `install-pkg`, `true`, `false`, `ls`.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register("true", |_ctx| 0);
        r.register("false", |_ctx| 1);
        r.register("echo", |ctx| {
            let line = ctx.args[1..].join(" ");
            ctx.println(line);
            0
        });
        r.register("cat", |ctx| {
            let Some(path) = ctx.args.get(1).cloned() else {
                ctx.println("cat: missing operand");
                return 2;
            };
            match ctx.fs.read(&path) {
                Some(data) => {
                    let text = String::from_utf8_lossy(data).into_owned();
                    ctx.stdout.push_str(&text);
                    0
                }
                None => {
                    ctx.println(format!("cat: {path}: no such file"));
                    1
                }
            }
        });
        r.register("tee", |ctx| {
            let Some(path) = ctx.args.get(1).cloned() else {
                return 2;
            };
            let contents = ctx.args[2..].join(" ");
            ctx.fs.write(&path, contents.clone().into_bytes());
            ctx.println(contents);
            0
        });
        r.register("install-pkg", |ctx| {
            // Models a package manager: drops a marker + "binary" under
            // /usr/pkg. `install-pkg name [version]`.
            let Some(name) = ctx.args.get(1).cloned() else {
                ctx.println("install-pkg: missing package name");
                return 2;
            };
            let version = ctx.args.get(2).cloned().unwrap_or_else(|| "latest".into());
            ctx.fs.write(
                &format!("usr/pkg/{name}/manifest"),
                format!("name: {name}\nversion: {version}\n").into_bytes(),
            );
            ctx.fs.write(&format!("usr/bin/{name}"), format!("binary:{name}:{version}").into_bytes());
            ctx.println(format!("installed {name} {version}"));
            0
        });
        r.register("ls", |ctx| {
            let listing = match ctx.args.get(1) {
                Some(prefix) => ctx.fs.list_dir(prefix),
                None => ctx.fs.list(),
            };
            for p in listing {
                ctx.println(p);
            }
            0
        });
        r
    }

    /// Register (or replace) a program.
    pub fn register(&mut self, name: &str, f: impl Fn(&mut ExecCtx<'_>) -> i32 + Send + Sync + 'static) {
        self.programs.insert(name.to_string(), Arc::new(f));
    }

    /// Look up a program.
    pub fn get(&self, name: &str) -> Option<Program> {
        self.programs.get(name).cloned()
    }

    /// Registered program names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.programs.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// A running (well, runnable) container.
#[derive(Debug)]
pub struct Container {
    /// The image reference this container was created from.
    pub image_ref: String,
    /// The container's private filesystem.
    pub fs: UnionFs,
    /// Environment (image env + overrides).
    pub env: BTreeMap<String, String>,
    entrypoint: Vec<String>,
}

impl Container {
    /// Create a container from an image in `registry`. The container
    /// gets its own copy-on-write view; the image is never mutated.
    pub fn create(registry: &ImageRegistry, reference: &str) -> Result<Container, RuntimeError> {
        let image = registry.get(reference)?;
        let layers = registry.layers_of(reference)?;
        Ok(Container {
            image_ref: reference.to_string(),
            fs: UnionFs::mount(layers),
            env: image.config.env.clone(),
            entrypoint: image.config.entrypoint.clone(),
        })
    }

    /// Run `argv` (or the image entrypoint when `argv` is empty).
    pub fn run(&mut self, programs: &ProgramRegistry, argv: &[&str]) -> Result<ExitStatus, RuntimeError> {
        let args: Vec<String> = if argv.is_empty() {
            self.entrypoint.clone()
        } else {
            argv.iter().map(|s| s.to_string()).collect()
        };
        let name = args
            .first()
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownProgram("<empty argv>".into()))?;
        let program = programs.get(&name).ok_or(RuntimeError::UnknownProgram(name))?;
        let tracer = popper_trace::current();
        let _run_span = if tracer.is_enabled() {
            Some(tracer.span("container", "container/runtime", format!("run {}", args[0])))
        } else {
            None
        };
        let mut ctx = ExecCtx { fs: &mut self.fs, args, env: self.env.clone(), stdout: String::new() };
        let code = program(&mut ctx);
        Ok(ExitStatus { code, stdout: ctx.stdout })
    }

    /// Commit the container's changes as a new image (`docker commit`).
    pub fn commit(
        &mut self,
        registry: &mut ImageRegistry,
        name: &str,
        tag: &str,
    ) -> Result<Image, RuntimeError> {
        let base = registry.get(&self.image_ref)?.clone();
        let top = self.fs.take_top();
        let mut layers = base.layers.clone();
        if !top.is_empty() {
            layers.push(registry.put_layer(top));
        }
        let image = Image {
            name: name.to_string(),
            tag: tag.to_string(),
            layers,
            config: ImageConfig {
                env: self.env.clone(),
                entrypoint: self.entrypoint.clone(),
                labels: base.config.labels.clone(),
            },
        };
        registry.tag(image.clone())?;
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn registry_with_base() -> ImageRegistry {
        let mut reg = ImageRegistry::new();
        let mut base = Layer::new();
        base.write("etc/hostname", b"popper".to_vec());
        let id = reg.put_layer(base);
        reg.tag(Image {
            name: "base".into(),
            tag: "latest".into(),
            layers: vec![id],
            config: ImageConfig {
                entrypoint: vec!["echo".into(), "hello from entrypoint".into()],
                ..Default::default()
            },
        })
        .unwrap();
        reg
    }

    #[test]
    fn run_builtin_programs() {
        let reg = registry_with_base();
        let programs = ProgramRegistry::with_builtins();
        let mut c = Container::create(&reg, "base:latest").unwrap();
        let st = c.run(&programs, &["echo", "a", "b"]).unwrap();
        assert!(st.success());
        assert_eq!(st.stdout, "a b\n");
        let st = c.run(&programs, &["cat", "etc/hostname"]).unwrap();
        assert_eq!(st.stdout, "popper");
        let st = c.run(&programs, &["cat", "missing"]).unwrap();
        assert_eq!(st.code, 1);
        let st = c.run(&programs, &["false"]).unwrap();
        assert!(!st.success());
    }

    #[test]
    fn entrypoint_runs_on_empty_argv() {
        let reg = registry_with_base();
        let programs = ProgramRegistry::with_builtins();
        let mut c = Container::create(&reg, "base:latest").unwrap();
        let st = c.run(&programs, &[]).unwrap();
        assert_eq!(st.stdout, "hello from entrypoint\n");
    }

    #[test]
    fn unknown_program_is_an_error() {
        let reg = registry_with_base();
        let programs = ProgramRegistry::with_builtins();
        let mut c = Container::create(&reg, "base:latest").unwrap();
        assert!(matches!(
            c.run(&programs, &["not-a-program"]),
            Err(RuntimeError::UnknownProgram(_))
        ));
    }

    #[test]
    fn containers_are_immutable_infrastructure() {
        // §Discussion: installing software inside a container does not
        // persist after relaunching from the image.
        let reg = registry_with_base();
        let programs = ProgramRegistry::with_builtins();
        let mut c1 = Container::create(&reg, "base:latest").unwrap();
        c1.run(&programs, &["install-pkg", "gassyfs", "2.1"]).unwrap();
        assert!(c1.fs.exists("usr/bin/gassyfs"));
        drop(c1);
        // Relaunch: pristine again.
        let c2 = Container::create(&reg, "base:latest").unwrap();
        assert!(!c2.fs.exists("usr/bin/gassyfs"));
    }

    #[test]
    fn two_containers_do_not_share_writes() {
        let reg = registry_with_base();
        let programs = ProgramRegistry::with_builtins();
        let mut a = Container::create(&reg, "base:latest").unwrap();
        let b = Container::create(&reg, "base:latest").unwrap();
        a.run(&programs, &["tee", "tmp/a.txt", "from-a"]).unwrap();
        assert!(a.fs.exists("tmp/a.txt"));
        assert!(!b.fs.exists("tmp/a.txt"));
    }

    #[test]
    fn commit_captures_changes_as_new_image() {
        let mut reg = registry_with_base();
        let programs = ProgramRegistry::with_builtins();
        let mut c = Container::create(&reg, "base:latest").unwrap();
        c.run(&programs, &["install-pkg", "torpor"]).unwrap();
        let img = c.commit(&mut reg, "base-with-torpor", "v1").unwrap();
        assert_eq!(img.layers.len(), 2);
        // A container from the committed image sees the install.
        let c2 = Container::create(&reg, "base-with-torpor:v1").unwrap();
        assert!(c2.fs.exists("usr/bin/torpor"));
        // The original image is untouched.
        let c3 = Container::create(&reg, "base:latest").unwrap();
        assert!(!c3.fs.exists("usr/bin/torpor"));
    }

    #[test]
    fn commit_without_changes_adds_no_layer() {
        let mut reg = registry_with_base();
        let mut c = Container::create(&reg, "base:latest").unwrap();
        let img = c.commit(&mut reg, "same", "v1").unwrap();
        assert_eq!(img.layers.len(), 1);
    }

    #[test]
    fn custom_programs_and_env() {
        let reg = registry_with_base();
        let mut programs = ProgramRegistry::with_builtins();
        programs.register("print-env", |ctx| {
            let keys: Vec<String> = ctx.env.iter().map(|(k, v)| format!("{k}={v}")).collect();
            ctx.println(keys.join(","));
            0
        });
        let mut c = Container::create(&reg, "base:latest").unwrap();
        c.env.insert("NODES".into(), "4".into());
        let st = c.run(&programs, &["print-env"]).unwrap();
        assert_eq!(st.stdout, "NODES=4\n");
        assert!(programs.names().contains(&"print-env"));
    }
}
