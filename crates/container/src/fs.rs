//! The union filesystem: a stack of immutable layers plus a writable
//! top layer.
//!
//! Resolution walks from the top down; the first layer mentioning a path
//! decides (a `Write` provides content, a `Delete` hides lower layers).

use crate::layer::{Layer, LayerChange};
use std::collections::BTreeSet;

/// A mounted union view.
#[derive(Debug, Clone, Default)]
pub struct UnionFs {
    /// Immutable lower layers, bottom first.
    lower: Vec<Layer>,
    /// The writable top layer.
    top: Layer,
}

impl UnionFs {
    /// Mount a stack of immutable layers (bottom first) with a fresh
    /// writable top.
    pub fn mount(lower: Vec<Layer>) -> Self {
        UnionFs { lower, top: Layer::new() }
    }

    /// Read a file through the union.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        match self.top.get(path) {
            Some(LayerChange::Write(d)) => return Some(d),
            Some(LayerChange::Delete) => return None,
            None => {}
        }
        for layer in self.lower.iter().rev() {
            match layer.get(path) {
                Some(LayerChange::Write(d)) => return Some(d),
                Some(LayerChange::Delete) => return None,
                None => {}
            }
        }
        None
    }

    /// True if the path resolves to a file.
    pub fn exists(&self, path: &str) -> bool {
        self.read(path).is_some()
    }

    /// Write a file into the top layer.
    pub fn write(&mut self, path: &str, contents: impl Into<Vec<u8>>) {
        self.top.write(path, contents);
    }

    /// Delete a file (records a whiteout in the top layer). Returns true
    /// if the path existed.
    pub fn delete(&mut self, path: &str) -> bool {
        let existed = self.exists(path);
        self.top.delete(path);
        existed
    }

    /// All live paths, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut candidates: BTreeSet<&str> = BTreeSet::new();
        for layer in self.lower.iter() {
            for (p, _) in layer.iter() {
                candidates.insert(p);
            }
        }
        for (p, _) in self.top.iter() {
            candidates.insert(p);
        }
        candidates
            .into_iter()
            .filter(|p| self.exists(p))
            .map(str::to_string)
            .collect()
    }

    /// Live paths under a directory prefix (`prefix/…`).
    pub fn list_dir(&self, prefix: &str) -> Vec<String> {
        let want = format!("{}/", prefix.trim_end_matches('/'));
        self.list().into_iter().filter(|p| p.starts_with(&want)).collect()
    }

    /// Detach the writable top layer (the `docker commit` primitive),
    /// leaving a fresh empty top.
    pub fn take_top(&mut self) -> Layer {
        std::mem::take(&mut self.top)
    }

    /// Has anything been written/deleted since mount (or last take_top)?
    pub fn dirty(&self) -> bool {
        !self.top.is_empty()
    }

    /// Flatten the whole union into a single layer (squash).
    pub fn squash(&self) -> Layer {
        let mut out = Layer::new();
        for path in self.list() {
            if let Some(d) = self.read(&path) {
                out.write(&path, d.to_vec());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_layer() -> Layer {
        let mut l = Layer::new();
        l.write("etc/os-release", b"popperlinux 1.0".to_vec());
        l.write("bin/sh", b"#!shell".to_vec());
        l.write("usr/lib/libm.so", b"math".to_vec());
        l
    }

    #[test]
    fn reads_fall_through_layers() {
        let mut pkg = Layer::new();
        pkg.write("usr/bin/gassyfs", b"fsbin".to_vec());
        let fs = UnionFs::mount(vec![base_layer(), pkg]);
        assert_eq!(fs.read("bin/sh"), Some(b"#!shell" as &[u8]));
        assert_eq!(fs.read("usr/bin/gassyfs"), Some(b"fsbin" as &[u8]));
        assert_eq!(fs.read("missing"), None);
    }

    #[test]
    fn upper_layer_shadows_lower() {
        let mut upgrade = Layer::new();
        upgrade.write("usr/lib/libm.so", b"math-v2".to_vec());
        let fs = UnionFs::mount(vec![base_layer(), upgrade]);
        assert_eq!(fs.read("usr/lib/libm.so"), Some(b"math-v2" as &[u8]));
    }

    #[test]
    fn whiteout_hides_lower_file() {
        let mut rm = Layer::new();
        rm.delete("usr/lib/libm.so");
        let fs = UnionFs::mount(vec![base_layer(), rm]);
        assert!(!fs.exists("usr/lib/libm.so"));
        assert!(!fs.list().contains(&"usr/lib/libm.so".to_string()));
    }

    #[test]
    fn top_layer_writes_and_deletes() {
        let mut fs = UnionFs::mount(vec![base_layer()]);
        assert!(!fs.dirty());
        fs.write("tmp/out.csv", b"a,b\n".to_vec());
        assert!(fs.dirty());
        assert!(fs.exists("tmp/out.csv"));
        assert!(fs.delete("bin/sh"));
        assert!(!fs.exists("bin/sh"));
        assert!(!fs.delete("never-existed"));
        // Write over a whiteout resurrects the path.
        fs.write("bin/sh", b"new shell".to_vec());
        assert_eq!(fs.read("bin/sh"), Some(b"new shell" as &[u8]));
    }

    #[test]
    fn list_and_list_dir() {
        let mut fs = UnionFs::mount(vec![base_layer()]);
        fs.write("usr/bin/tool", b"t".to_vec());
        let all = fs.list();
        assert_eq!(all, vec!["bin/sh", "etc/os-release", "usr/bin/tool", "usr/lib/libm.so"]);
        assert_eq!(fs.list_dir("usr"), vec!["usr/bin/tool", "usr/lib/libm.so"]);
        assert_eq!(fs.list_dir("usr/bin"), vec!["usr/bin/tool"]);
        assert!(fs.list_dir("nothing").is_empty());
    }

    #[test]
    fn take_top_snapshots_changes() {
        let mut fs = UnionFs::mount(vec![base_layer()]);
        fs.write("opt/app", b"v1".to_vec());
        fs.delete("etc/os-release");
        let snap = fs.take_top();
        assert_eq!(snap.len(), 2);
        assert!(!fs.dirty());
        // The union no longer carries those changes.
        assert!(fs.exists("etc/os-release"));
        assert!(!fs.exists("opt/app"));
    }

    #[test]
    fn squash_flattens_union() {
        let mut rm = Layer::new();
        rm.delete("usr/lib/libm.so");
        let mut fs = UnionFs::mount(vec![base_layer(), rm]);
        fs.write("new", b"n".to_vec());
        let squashed = fs.squash();
        let flat = UnionFs::mount(vec![squashed]);
        assert_eq!(flat.list(), fs.list());
        assert_eq!(flat.read("bin/sh"), fs.read("bin/sh"));
        assert!(!flat.exists("usr/lib/libm.so"));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random op sequences against the union match a flat model map.
        #[test]
        fn union_matches_flat_model() {
            use proptest::test_runner::TestRunner;
            let mut runner = TestRunner::default();
            runner
                .run(
                    &proptest::collection::vec(
                        ("[a-d]", prop_oneof![Just(None), Just(Some(0u8)), Just(Some(1u8))]),
                        0..40,
                    ),
                    |ops| {
                        let mut fs = UnionFs::mount(vec![base_layer()]);
                        let mut model: std::collections::BTreeMap<String, Vec<u8>> = [
                            ("etc/os-release".to_string(), b"popperlinux 1.0".to_vec()),
                            ("bin/sh".to_string(), b"#!shell".to_vec()),
                            ("usr/lib/libm.so".to_string(), b"math".to_vec()),
                        ]
                        .into_iter()
                        .collect();
                        for (path, op) in &ops {
                            match op {
                                None => {
                                    fs.delete(path);
                                    model.remove(path);
                                }
                                Some(v) => {
                                    fs.write(path, vec![*v]);
                                    model.insert(path.clone(), vec![*v]);
                                }
                            }
                        }
                        prop_assert_eq!(fs.list(), model.keys().cloned().collect::<Vec<_>>());
                        for (p, d) in &model {
                            prop_assert_eq!(fs.read(p), Some(d.as_slice()));
                        }
                        Ok(())
                    },
                )
                .unwrap();
        }
    }
}
