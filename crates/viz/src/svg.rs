//! A minimal SVG document builder.
//!
//! Only the handful of primitives charts need; output is stable,
//! human-readable XML so that figures diff cleanly in the VCS (a Popper
//! artifact requirement).

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: u32,
    height: u32,
    body: String,
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Format a coordinate with one decimal (stable output, no float noise).
fn c(v: f64) -> String {
    format!("{v:.1}")
}

impl SvgDoc {
    /// A document of the given pixel size.
    pub fn new(width: u32, height: u32) -> Self {
        SvgDoc { width, height, body: String::new() }
    }

    /// Document width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// A straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        writeln!(
            self.body,
            r#"  <line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{stroke}" stroke-width="{}"/>"#,
            c(x1),
            c(y1),
            c(x2),
            c(y2),
            c(width)
        )
        .expect("string write");
    }

    /// A filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        writeln!(
            self.body,
            r#"  <rect x="{}" y="{}" width="{}" height="{}" fill="{fill}"/>"#,
            c(x),
            c(y),
            c(w),
            c(h)
        )
        .expect("string write");
    }

    /// A polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        let pts: Vec<String> = points.iter().map(|(x, y)| format!("{},{}", c(*x), c(*y))).collect();
        writeln!(
            self.body,
            r#"  <polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{}"/>"#,
            pts.join(" "),
            c(width)
        )
        .expect("string write");
    }

    /// A small filled circle (data-point marker).
    pub fn circle(&mut self, x: f64, y: f64, r: f64, fill: &str) {
        writeln!(self.body, r#"  <circle cx="{}" cy="{}" r="{}" fill="{fill}"/>"#, c(x), c(y), c(r))
            .expect("string write");
    }

    /// Text anchored per `anchor` ("start" | "middle" | "end").
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: u32, anchor: &str) {
        writeln!(
            self.body,
            r#"  <text x="{}" y="{}" font-size="{size}" font-family="monospace" text-anchor="{anchor}">{}</text>"#,
            c(x),
            c(y),
            escape(content)
        )
        .expect("string write");
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Nice tick positions covering `[lo, hi]` (1/2/5 ladder).
pub fn ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo || target == 0 {
        return vec![lo];
    }
    let span = hi - lo;
    let raw_step = span / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| span / s <= target as f64)
        .unwrap_or(10.0 * mag);
    let first = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut v = first;
    while v <= hi + step * 1e-9 {
        // Snap tiny float noise to zero.
        out.push(if v.abs() < step * 1e-9 { 0.0 } else { v });
        v += step;
    }
    if out.is_empty() {
        // No ladder value landed inside a narrow/offset range; fall back
        // to the endpoints so axes always get at least two labels.
        out.push(lo);
        out.push(hi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(320, 200);
        doc.line(0.0, 0.0, 10.0, 10.0, "black", 1.0);
        doc.rect(5.0, 5.0, 20.0, 8.0, "#4472c4");
        doc.circle(1.0, 2.0, 3.0, "red");
        doc.polyline(&[(0.0, 0.0), (1.0, 2.0)], "blue", 1.5);
        doc.text(10.0, 20.0, "hello <world> & \"quotes\"", 12, "middle");
        let out = doc.finish();
        assert!(out.starts_with("<svg "));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains(r#"width="320""#));
        assert!(out.contains("<line "));
        assert!(out.contains("<rect "));
        assert!(out.contains("<circle "));
        assert!(out.contains("<polyline "));
        assert!(out.contains("hello &lt;world&gt; &amp; &quot;quotes&quot;"));
        // Well-formed-ish: line/rect/circle/polyline self-close, text has
        // a closing tag.
        assert_eq!(out.matches("/>").count(), 4);
        assert_eq!(out.matches("</text>").count(), 1);
    }

    #[test]
    fn coordinates_are_stable() {
        let mut a = SvgDoc::new(10, 10);
        a.line(1.0 / 3.0, 2.0 / 3.0, 1.0, 1.0, "k", 1.0);
        let mut b = SvgDoc::new(10, 10);
        b.line(1.0 / 3.0, 2.0 / 3.0, 1.0, 1.0, "k", 1.0);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tick_ladder() {
        assert_eq!(ticks(0.0, 10.0, 5), vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        let t01 = ticks(0.0, 1.0, 5);
        assert_eq!(t01.len(), 6);
        assert!((t01[1] - 0.2).abs() < 1e-12);
        let t = ticks(3.0, 97.0, 5);
        assert!(t.len() >= 3 && t.len() <= 6, "{t:?}");
        assert!(t.first().unwrap() >= &3.0 && t.last().unwrap() <= &97.0);
        // Degenerate ranges don't panic.
        assert_eq!(ticks(5.0, 5.0, 4), vec![5.0]);
        assert!(ticks(f64::NAN, 1.0, 4)[0].is_nan());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn ticks_within_range(lo in -1e6f64..1e6, span in 1e-3f64..1e6, target in 2usize..12) {
                let hi = lo + span;
                let t = ticks(lo, hi, target);
                prop_assert!(!t.is_empty());
                for v in &t {
                    prop_assert!(*v >= lo - span * 1e-9 && *v <= hi + span * 1e-6, "{v} not in [{lo}, {hi}]");
                }
                // Monotone.
                for w in t.windows(2) {
                    prop_assert!(w[1] > w[0]);
                }
                // Never absurdly many ticks.
                prop_assert!(t.len() <= 2 * target + 2);
            }
        }
    }
}
