//! # popper-viz
//!
//! Chart rendering — the "Jupyter / Gnuplot / Paraview slot" of the
//! Popper toolkit (§Toolkit, *Data Analysis and Visualization*). The
//! paper's workflow ends with figures generated *from the versioned
//! results* ("the result of executing the Gnuplot script generates
//! [the figure]"); this crate is that scriptable plotter:
//!
//! * [`svg`] — a minimal, dependency-free SVG document builder.
//! * [`chart`] — line charts, bar charts and histograms with axes,
//!   ticks and titles, rendered to SVG (`figure.svg`) or ASCII
//!   (`figure.txt`, terminal-friendly).
//! * [`spec`] — a declarative figure specification (`figure:` block in
//!   an experiment's `vars.pml`) binding table columns to a chart, so
//!   `popper run` regenerates the figure mechanically from
//!   `results.csv` — no "manually paste into Excel" step (§Common
//!   Practice, *Data Analysis Ad-hoc Approaches*).

pub mod chart;
pub mod spec;
pub mod svg;

pub use chart::{BarChart, Histogram, LineChart};
pub use spec::{render_from_spec, FigureSpec};
