//! Chart types: line, bar, histogram.

use crate::svg::{ticks, SvgDoc};

const W: u32 = 640;
const H: u32 = 400;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const SERIES_COLORS: &[&str] = &["#4472c4", "#d9534f", "#5cb85c", "#f0ad4e", "#7b68ee", "#20b2aa"];

fn plot_w() -> f64 {
    W as f64 - MARGIN_L - MARGIN_R
}
fn plot_h() -> f64 {
    H as f64 - MARGIN_T - MARGIN_B
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.1e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if (v.round() - v).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

struct Frame {
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
}

impl Frame {
    fn x(&self, v: f64) -> f64 {
        MARGIN_L + (v - self.x_lo) / (self.x_hi - self.x_lo).max(f64::MIN_POSITIVE) * plot_w()
    }
    fn y(&self, v: f64) -> f64 {
        MARGIN_T + plot_h() - (v - self.y_lo) / (self.y_hi - self.y_lo).max(f64::MIN_POSITIVE) * plot_h()
    }

    fn draw_axes(&self, doc: &mut SvgDoc, title: &str, x_label: &str, y_label: &str) {
        doc.text(W as f64 / 2.0, 24.0, title, 15, "middle");
        // Axis lines.
        doc.line(MARGIN_L, MARGIN_T, MARGIN_L, MARGIN_T + plot_h(), "#333333", 1.0);
        doc.line(MARGIN_L, MARGIN_T + plot_h(), MARGIN_L + plot_w(), MARGIN_T + plot_h(), "#333333", 1.0);
        // Ticks + grid.
        for t in ticks(self.x_lo, self.x_hi, 6) {
            let x = self.x(t);
            doc.line(x, MARGIN_T + plot_h(), x, MARGIN_T + plot_h() + 4.0, "#333333", 1.0);
            doc.line(x, MARGIN_T, x, MARGIN_T + plot_h(), "#e0e0e0", 0.5);
            doc.text(x, MARGIN_T + plot_h() + 18.0, &fmt_tick(t), 11, "middle");
        }
        for t in ticks(self.y_lo, self.y_hi, 5) {
            let y = self.y(t);
            doc.line(MARGIN_L - 4.0, y, MARGIN_L, y, "#333333", 1.0);
            doc.line(MARGIN_L, y, MARGIN_L + plot_w(), y, "#e0e0e0", 0.5);
            doc.text(MARGIN_L - 8.0, y + 4.0, &fmt_tick(t), 11, "end");
        }
        doc.text(W as f64 / 2.0, H as f64 - 12.0, x_label, 12, "middle");
        doc.text(14.0, MARGIN_T - 10.0, y_label, 12, "start");
    }
}

/// A line chart with one or more `(name, points)` series.
#[derive(Debug, Clone, Default)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Named series; points need not be sorted (they are sorted by x).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Force the y axis to include zero (honest scaling; default true).
    pub y_from_zero: bool,
}

impl LineChart {
    /// An empty chart with labels.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            y_from_zero: true,
        }
    }

    /// Add a series.
    pub fn series(mut self, name: &str, mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.series.push((name.into(), points));
        self
    }

    fn frame(&self) -> Option<Frame> {
        let all: Vec<(f64, f64)> = self.series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        if all.is_empty() {
            return None;
        }
        let x_lo = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x_hi = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let mut y_lo = all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let y_hi = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        if self.y_from_zero {
            y_lo = y_lo.min(0.0);
        }
        Some(Frame {
            x_lo,
            x_hi: if x_hi > x_lo { x_hi } else { x_lo + 1.0 },
            y_lo,
            y_hi: if y_hi > y_lo { y_hi } else { y_lo + 1.0 },
        })
    }

    /// Render to SVG.
    pub fn render_svg(&self) -> String {
        let mut doc = SvgDoc::new(W, H);
        let Some(frame) = self.frame() else {
            doc.text(W as f64 / 2.0, H as f64 / 2.0, "(no data)", 14, "middle");
            return doc.finish();
        };
        frame.draw_axes(&mut doc, &self.title, &self.x_label, &self.y_label);
        for (i, (name, points)) in self.series.iter().enumerate() {
            let color = SERIES_COLORS[i % SERIES_COLORS.len()];
            let mapped: Vec<(f64, f64)> = points.iter().map(|(x, y)| (frame.x(*x), frame.y(*y))).collect();
            doc.polyline(&mapped, color, 2.0);
            for (x, y) in &mapped {
                doc.circle(*x, *y, 3.0, color);
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 * i as f64;
            doc.rect(MARGIN_L + plot_w() - 110.0, ly - 8.0, 10.0, 10.0, color);
            doc.text(MARGIN_L + plot_w() - 95.0, ly, name, 11, "start");
        }
        doc.finish()
    }

    /// Render a terminal-friendly ASCII view (one row per point of the
    /// first series).
    pub fn render_ascii(&self) -> String {
        let mut out = format!("{} ({} vs {})\n", self.title, self.y_label, self.x_label);
        let Some((_, points)) = self.series.first() else {
            return out + "(no data)\n";
        };
        let y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max).max(f64::MIN_POSITIVE);
        for (x, y) in points {
            let width = ((y / y_max) * 50.0).round().max(0.0) as usize;
            out.push_str(&format!("{:>10}  {:>12}  |{}\n", fmt_tick(*x), fmt_tick(*y), "*".repeat(width)));
        }
        out
    }
}

/// A categorical bar chart.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// `(category, value)` bars, in order.
    pub bars: Vec<(String, f64)>,
}

impl BarChart {
    /// A chart with bars.
    pub fn new(title: &str, y_label: &str, bars: Vec<(String, f64)>) -> Self {
        BarChart { title: title.into(), y_label: y_label.into(), bars }
    }

    /// Render to SVG.
    pub fn render_svg(&self) -> String {
        let mut doc = SvgDoc::new(W, H);
        if self.bars.is_empty() {
            doc.text(W as f64 / 2.0, H as f64 / 2.0, "(no data)", 14, "middle");
            return doc.finish();
        }
        let y_hi = self.bars.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max).max(f64::MIN_POSITIVE);
        let frame = Frame { x_lo: 0.0, x_hi: self.bars.len() as f64, y_lo: 0.0, y_hi };
        frame.draw_axes(&mut doc, &self.title, "", &self.y_label);
        let slot = plot_w() / self.bars.len() as f64;
        for (i, (name, v)) in self.bars.iter().enumerate() {
            let x = MARGIN_L + slot * i as f64 + slot * 0.15;
            let y = frame.y(*v);
            doc.rect(x, y, slot * 0.7, (MARGIN_T + plot_h() - y).max(0.0), SERIES_COLORS[0]);
            doc.text(x + slot * 0.35, MARGIN_T + plot_h() + 32.0, name, 10, "middle");
        }
        doc.finish()
    }

    /// ASCII rendering.
    pub fn render_ascii(&self) -> String {
        let mut out = format!("{} ({})\n", self.title, self.y_label);
        let max = self.bars.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max).max(f64::MIN_POSITIVE);
        for (name, v) in &self.bars {
            let width = ((v / max) * 50.0).round().max(0.0) as usize;
            out.push_str(&format!("{name:>16}  {:>12}  |{}\n", fmt_tick(*v), "#".repeat(width)));
        }
        out
    }
}

/// A histogram over raw samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Bin width.
    pub bin_width: f64,
    /// The samples.
    pub samples: Vec<f64>,
}

impl Histogram {
    /// A histogram of `samples` with `bin_width` bins.
    pub fn new(title: &str, x_label: &str, bin_width: f64, samples: Vec<f64>) -> Self {
        assert!(bin_width > 0.0);
        Histogram { title: title.into(), x_label: x_label.into(), bin_width, samples }
    }

    /// The `(bin_lo, count)` pairs, contiguous from min to max.
    pub fn bins(&self) -> Vec<(f64, usize)> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let lo = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let first = (lo / self.bin_width).floor() as i64;
        let last = (hi / self.bin_width).floor() as i64;
        let mut counts = vec![0usize; (last - first + 1) as usize];
        let last_idx = counts.len() - 1;
        for s in &self.samples {
            let idx = ((s / self.bin_width).floor() as i64 - first) as usize;
            counts[idx.min(last_idx)] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| ((first + i as i64) as f64 * self.bin_width, c))
            .collect()
    }

    /// Render to SVG (bars per bin).
    pub fn render_svg(&self) -> String {
        let bins = self.bins();
        let bars: Vec<(String, f64)> = bins
            .iter()
            .map(|(lo, c)| (fmt_tick(*lo), *c as f64))
            .collect();
        let mut chart = BarChart::new(&self.title, "count", bars);
        chart.y_label = "count".into();
        chart.render_svg()
    }

    /// ASCII rendering (the figure style of Fig. `torpor-variability`).
    pub fn render_ascii(&self) -> String {
        let mut out = format!("{} (bin width {})\n", self.title, fmt_tick(self.bin_width));
        for (lo, count) in self.bins() {
            out.push_str(&format!(
                "({:>6}, {:>6}] {:<3} {}\n",
                fmt_tick(lo),
                fmt_tick(lo + self.bin_width),
                count,
                "#".repeat(count)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gassyfs_chart() -> LineChart {
        LineChart::new("GassyFS scalability", "nodes", "time (s)").series(
            "git compile",
            vec![(1.0, 0.9), (2.0, 1.45), (4.0, 1.72), (8.0, 1.85), (16.0, 1.92)],
        )
    }

    #[test]
    fn line_chart_svg_structure() {
        let svg = gassyfs_chart().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("GassyFS scalability"));
        assert!(svg.contains("<polyline"));
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains("nodes"));
        assert!(svg.contains("time (s)"));
        // Axis tick labels appear.
        assert!(svg.contains(">16<") || svg.contains(">15<") || svg.contains(">14<"), "x ticks present");
    }

    #[test]
    fn line_chart_points_map_monotonically() {
        let chart = gassyfs_chart();
        let frame = chart.frame().unwrap();
        // Larger x maps right, larger y maps *up* (smaller pixel y).
        assert!(frame.x(16.0) > frame.x(1.0));
        assert!(frame.y(1.92) < frame.y(0.9));
        // y axis includes zero.
        assert_eq!(frame.y_lo, 0.0);
    }

    #[test]
    fn multi_series_and_legend() {
        let chart = LineChart::new("t", "x", "y")
            .series("cached", vec![(1.0, 1.0), (2.0, 2.0)])
            .series("direct-io", vec![(1.0, 2.0), (2.0, 4.0)]);
        let svg = chart.render_svg();
        assert!(svg.contains("cached"));
        assert!(svg.contains("direct-io"));
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn empty_charts_do_not_panic() {
        assert!(LineChart::new("t", "x", "y").render_svg().contains("(no data)"));
        assert!(BarChart::new("t", "y", vec![]).render_svg().contains("(no data)"));
        let h = Histogram::new("t", "x", 0.1, vec![]);
        assert!(h.bins().is_empty());
        assert!(h.render_ascii().contains("bin width"));
    }

    #[test]
    fn ascii_renderings() {
        let a = gassyfs_chart().render_ascii();
        assert_eq!(a.lines().count(), 6);
        assert!(a.contains("|**"));
        let b = BarChart::new("speeds", "x", vec![("a".into(), 1.0), ("b".into(), 2.0)]).render_ascii();
        assert!(b.contains("##"));
    }

    #[test]
    fn histogram_bins_partition_samples() {
        let samples = vec![1.28, 1.35, 2.26, 2.44, 2.45, 2.46, 2.49, 3.33, 11.1];
        let h = Histogram::new("speedups", "speedup", 0.1, samples.clone());
        let bins = h.bins();
        let total: usize = bins.iter().map(|(_, c)| *c).sum();
        assert_eq!(total, samples.len());
        // The (2.4, 2.5) region holds 4 of these samples.
        let bin24 = bins.iter().find(|(lo, _)| (*lo - 2.4).abs() < 1e-9).unwrap();
        assert_eq!(bin24.1, 4);
        // Contiguous bins.
        for w in bins.windows(2) {
            assert!((w[1].0 - w[0].0 - 0.1).abs() < 1e-9);
        }
        let art = h.render_ascii();
        assert!(art.contains("####"));
        let svg = h.render_svg();
        assert!(svg.contains("<rect"));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(gassyfs_chart().render_svg(), gassyfs_chart().render_svg());
    }
}
