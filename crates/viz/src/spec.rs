//! Declarative figure specifications.
//!
//! An experiment's `vars.pml` may carry a `figure:` block binding its
//! `results.csv` columns to a chart:
//!
//! ```text
//! figure:
//!   kind: line            # line | bar | histogram
//!   title: GassyFS scalability
//!   x: nodes
//!   y: time
//!   group_by: machine     # optional: one series per distinct value
//! ```
//!
//! `popper run` renders the spec against the results table into
//! `figure.svg` and `figure.txt` — the figure is a pure function of the
//! versioned results, which is the whole point.

use crate::chart::{BarChart, Histogram, LineChart};
use popper_format::{Table, Value};

/// A parsed figure spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSpec {
    /// Chart kind: `line`, `bar` or `histogram`.
    pub kind: String,
    /// Title (defaults to the experiment name).
    pub title: String,
    /// X column (line/bar: category or numeric; histogram: the sampled
    /// column).
    pub x: String,
    /// Y column (line/bar; unused for histogram).
    pub y: Option<String>,
    /// Optional grouping column: one series/category group per value.
    pub group_by: Option<String>,
    /// Histogram bin width (default 0.1).
    pub bin_width: f64,
}

impl FigureSpec {
    /// Parse from the `figure:` value of a vars map. Returns `None` when
    /// the experiment declares no figure.
    pub fn from_vars(vars: &Value, default_title: &str) -> Result<Option<FigureSpec>, String> {
        let Some(spec) = vars.get("figure") else {
            return Ok(None);
        };
        let kind = spec.get_str("kind").unwrap_or("line").to_string();
        if !["line", "bar", "histogram"].contains(&kind.as_str()) {
            return Err(format!("figure: unknown kind '{kind}'"));
        }
        let x = spec
            .get_str("x")
            .ok_or("figure: missing 'x' column")?
            .to_string();
        let y = spec.get_str("y").map(str::to_string);
        if kind != "histogram" && y.is_none() {
            return Err(format!("figure: kind '{kind}' needs a 'y' column"));
        }
        Ok(Some(FigureSpec {
            kind,
            title: spec.get_str("title").unwrap_or(default_title).to_string(),
            x,
            y,
            group_by: spec.get_str("group_by").map(str::to_string),
            bin_width: spec.get_num("bin_width").unwrap_or(0.1),
        }))
    }
}

/// Render a spec against a results table; returns `(svg, ascii)`.
pub fn render_from_spec(spec: &FigureSpec, table: &Table) -> Result<(String, String), String> {
    match spec.kind.as_str() {
        "line" => {
            let y = spec.y.as_deref().expect("validated at parse");
            let mut chart = LineChart::new(&spec.title, &spec.x, y);
            match &spec.group_by {
                Some(g) => {
                    for (key, sub) in table.group_by(&[g]).map_err(|e| e.to_string())? {
                        let points = xy_points(&sub, &spec.x, y)?;
                        chart = chart.series(&key[0].to_display_string(), points);
                    }
                }
                None => {
                    chart = chart.series(y, xy_points(table, &spec.x, y)?);
                }
            }
            Ok((chart.render_svg(), chart.render_ascii()))
        }
        "bar" => {
            let y = spec.y.as_deref().expect("validated at parse");
            let labels = table.string_column(&spec.x).map_err(|e| e.to_string())?;
            let values = table.numeric_column(y).map_err(|e| e.to_string())?;
            if labels.len() != values.len() {
                return Err(format!("figure: '{}' and '{y}' have different non-null counts", spec.x));
            }
            let chart = BarChart::new(&spec.title, y, labels.into_iter().zip(values).collect());
            Ok((chart.render_svg(), chart.render_ascii()))
        }
        "histogram" => {
            let samples = table.numeric_column(&spec.x).map_err(|e| e.to_string())?;
            let h = Histogram::new(&spec.title, &spec.x, spec.bin_width, samples);
            Ok((h.render_svg(), h.render_ascii()))
        }
        other => Err(format!("figure: unknown kind '{other}'")),
    }
}

fn xy_points(table: &Table, x: &str, y: &str) -> Result<Vec<(f64, f64)>, String> {
    let xs = table.numeric_column(x).map_err(|e| e.to_string())?;
    let ys = table.numeric_column(y).map_err(|e| e.to_string())?;
    if xs.len() != ys.len() {
        return Err(format!("figure: '{x}' and '{y}' have different non-null counts"));
    }
    Ok(xs.into_iter().zip(ys).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_format::pml;

    fn results() -> Table {
        Table::from_csv(
            "workload,machine,nodes,time\n\
             git,cloudlab,1,0.9\ngit,cloudlab,2,1.45\ngit,cloudlab,4,1.72\n\
             git,ec2,1,1.2\ngit,ec2,2,1.9\ngit,ec2,4,2.3\n",
        )
        .unwrap()
    }

    #[test]
    fn parse_spec_from_vars() {
        let vars = pml::parse(
            "runner: x\nfigure:\n  kind: line\n  title: Scaling\n  x: nodes\n  y: time\n  group_by: machine\n",
        )
        .unwrap();
        let spec = FigureSpec::from_vars(&vars, "exp").unwrap().unwrap();
        assert_eq!(spec.kind, "line");
        assert_eq!(spec.title, "Scaling");
        assert_eq!(spec.group_by.as_deref(), Some("machine"));
        // Absent figure block -> None.
        let vars = pml::parse("runner: x\n").unwrap();
        assert_eq!(FigureSpec::from_vars(&vars, "exp").unwrap(), None);
        // Bad kinds / missing columns are errors.
        let vars = pml::parse("figure:\n  kind: pie\n  x: a\n  y: b\n").unwrap();
        assert!(FigureSpec::from_vars(&vars, "e").is_err());
        let vars = pml::parse("figure:\n  kind: line\n  x: a\n").unwrap();
        assert!(FigureSpec::from_vars(&vars, "e").is_err());
    }

    #[test]
    fn grouped_line_figure() {
        let spec = FigureSpec {
            kind: "line".into(),
            title: "Scaling".into(),
            x: "nodes".into(),
            y: Some("time".into()),
            group_by: Some("machine".into()),
            bin_width: 0.1,
        };
        let (svg, ascii) = render_from_spec(&spec, &results()).unwrap();
        assert!(svg.contains("cloudlab"));
        assert!(svg.contains("ec2"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(ascii.contains("Scaling"));
    }

    #[test]
    fn histogram_figure() {
        let t = Table::from_csv("speedup\n1.3\n2.44\n2.45\n2.48\n3.3\n").unwrap();
        let spec = FigureSpec {
            kind: "histogram".into(),
            title: "variability".into(),
            x: "speedup".into(),
            y: None,
            group_by: None,
            bin_width: 0.1,
        };
        let (svg, ascii) = render_from_spec(&spec, &t).unwrap();
        assert!(svg.contains("<rect"));
        assert!(ascii.contains("###"), "{ascii}");
    }

    #[test]
    fn bar_figure_and_errors() {
        let t = Table::from_csv("scenario,time\nquiet,0.33\nos-noise,0.36\nneighbor,0.45\n").unwrap();
        let spec = FigureSpec {
            kind: "bar".into(),
            title: "mpi".into(),
            x: "scenario".into(),
            y: Some("time".into()),
            group_by: None,
            bin_width: 0.1,
        };
        let (svg, ascii) = render_from_spec(&spec, &t).unwrap();
        assert!(svg.contains("neighbor"));
        assert!(ascii.contains("quiet"));
        // Unknown column errors cleanly.
        let bad = FigureSpec { x: "ghost".into(), ..spec };
        assert!(render_from_spec(&bad, &t).is_err());
    }
}
