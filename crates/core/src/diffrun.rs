//! The trace-diff lifecycle: `popper trace-diff <exp> <a>..<b>`.
//!
//! Execution-provenance regression gating: both commits already carry a
//! committed `experiments/<exp>/trace.json` artifact (recorded by
//! `popper trace` / `popper chaos`), so the lifecycle loads the two
//! artifacts straight out of the object store, aligns them with
//! [`popper_trace::diff_traces`], records `trace-diff.json` plus an
//! ASCII divergence report as committed artifacts, and gates on the
//! experiment's `trace.aver` (default: `expect trace_equivalent within
//! <tol>`). Virtual-time traces are byte-identical for identical
//! workloads, so any divergence is signal; wall-domain traces should be
//! compared structure-only or under a tolerance.

use crate::experiment::ExperimentEngine;
use crate::pipeline::{CommitPolicy, Pipeline, RunContext, StageControl};
use crate::repo::PopperRepo;
use popper_aver::Verdict;
use popper_format::json;
use popper_trace::{diff_traces, parse_chrome_trace, DiffOptions, TraceDiff};
use popper_vcs::ObjectId;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The outcome of one `popper trace-diff` run.
#[derive(Debug)]
pub struct TraceDiffReport {
    /// Experiment name.
    pub experiment: String,
    /// Resolved left-hand commit.
    pub commit_a: ObjectId,
    /// Resolved right-hand commit.
    pub commit_b: ObjectId,
    /// The aligned diff.
    pub diff: TraceDiff,
    /// The Aver verdict (`trace.aver` or the default equivalence gate).
    pub verdict: Verdict,
    /// The commit that recorded the artifacts (`None` when this exact
    /// diff was already committed — re-running is idempotent).
    pub commit: Option<ObjectId>,
}

impl TraceDiffReport {
    /// Did the provenance gate hold?
    pub fn success(&self) -> bool {
        self.verdict.passed
    }
}

impl fmt::Display for TraceDiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace-diff '{}' {}..{}: {}",
            self.experiment,
            self.commit_a.short(),
            self.commit_b.short(),
            if self.success() { "EQUIVALENT" } else { "DIVERGED" }
        )?;
        write!(f, "{}", self.diff.report())?;
        write!(f, "  validation: {}", self.verdict)
    }
}

impl ExperimentEngine {
    /// Diff the recorded traces of one experiment between two commits
    /// (any ref `resolve` accepts: branch, tag, hex or unique hex
    /// prefix). Lifecycle stages are traced on `core/lifecycle`.
    pub fn trace_diff(
        &self,
        repo: &mut PopperRepo,
        experiment: &str,
        ref_a: &str,
        ref_b: &str,
        options: DiffOptions,
    ) -> Result<TraceDiffReport, String> {
        // The compare stage carries one lightweight side-state per
        // commit between stages; trace-diff needs no vars.pml.
        #[derive(Default)]
        struct Side {
            commit: Option<ObjectId>,
            trace: String,
        }
        #[derive(Default)]
        struct DiffState {
            a: Side,
            b: Side,
            diff: Option<TraceDiff>,
        }
        let state = Rc::new(RefCell::new(DiffState::default()));
        let mut ctx = RunContext::new(experiment, popper_format::Value::empty_map());
        let artifact = ctx.artifact_path("trace.json");

        let checkout = {
            let state = Rc::clone(&state);
            let (ref_a, ref_b) = (ref_a.to_string(), ref_b.to_string());
            let artifact = artifact.clone();
            move |repo: &mut PopperRepo, ctx: &mut RunContext| {
                // Resolve both commits and pull their committed trace
                // artifacts straight from the object store (no
                // working-tree checkout).
                let load = |refname: &str| -> Result<Side, String> {
                    let commit = repo.vcs.resolve(refname).map_err(|e| e.to_string())?;
                    let bytes = repo
                        .vcs
                        .file_at(commit, &artifact)
                        .map_err(|e| e.to_string())?
                        .ok_or_else(|| {
                            format!(
                                "commit {} ('{refname}') has no {artifact} — run `popper trace {}` at that commit first",
                                commit.short(),
                                ctx.experiment
                            )
                        })?;
                    let trace = String::from_utf8(bytes)
                        .map_err(|_| format!("{artifact} at {} is not UTF-8", commit.short()))?;
                    Ok(Side { commit: Some(commit), trace })
                };
                let mut s = state.borrow_mut();
                s.a = load(&ref_a)?;
                s.b = load(&ref_b)?;
                Ok(StageControl::Continue)
            }
        };

        let align = {
            let state = Rc::clone(&state);
            let artifact = artifact.clone();
            move |_repo: &mut PopperRepo, _ctx: &mut RunContext| {
                // Align span-by-span and classify divergences.
                let mut s = state.borrow_mut();
                let parse = |side: &Side| {
                    parse_chrome_trace(&side.trace).map_err(|e| {
                        format!("{artifact} at {}: {e}", side.commit.expect("checked out").short())
                    })
                };
                let (a, b) = (parse(&s.a)?, parse(&s.b)?);
                s.diff = Some(diff_traces(&a, &b, options));
                Ok(StageControl::Continue)
            }
        };

        let record = {
            let state = Rc::clone(&state);
            move |repo: &mut PopperRepo, ctx: &mut RunContext| {
                // The outputs are pure functions of the committed
                // inputs, so re-diffing the same commits is idempotent:
                // identical bytes are not re-committed.
                let s = state.borrow();
                let diff = s.diff.as_ref().expect("aligned");
                let (commit_a, commit_b) =
                    (s.a.commit.expect("checked out"), s.b.commit.expect("checked out"));
                let mut body = diff.to_value();
                body.insert("experiment", popper_format::Value::Str(ctx.experiment.clone()));
                body.insert("commit_a", popper_format::Value::Str(commit_a.to_hex()));
                body.insert("commit_b", popper_format::Value::Str(commit_b.to_hex()));
                let report_txt = format!(
                    "trace-diff {} {}..{}\n{}",
                    ctx.experiment,
                    commit_a.short(),
                    commit_b.short(),
                    diff.report()
                );
                ctx.artifacts.stage(ctx.artifact_path("trace-diff.json"), json::to_string_pretty(&body));
                ctx.artifacts.stage(ctx.artifact_path("trace-diff.txt"), report_txt);
                let msg = format!(
                    "popper trace-diff {}: {} divergence(s) between {} and {}",
                    ctx.experiment,
                    diff.divergences.len(),
                    commit_a.short(),
                    commit_b.short()
                );
                ctx.commit = ctx.artifacts.commit_into(repo, &msg, CommitPolicy::IfChanged)?;
                Ok(StageControl::Continue)
            }
        };

        let validate = {
            let state = Rc::clone(&state);
            move |repo: &mut PopperRepo, ctx: &mut RunContext| {
                // Gate: the experiment's trace.aver, or the default
                // exact/tolerant equivalence predicate.
                let s = state.borrow();
                let diff = s.diff.as_ref().expect("aligned");
                let src = repo.read(&ctx.artifact_path("trace.aver")).unwrap_or_else(|| {
                    format!("expect trace_equivalent within {}", options.tolerance_pct)
                });
                ctx.verdict =
                    Some(popper_aver::check(&src, &diff.to_table()).map_err(|e| e.to_string())?);
                Ok(StageControl::Continue)
            }
        };

        Pipeline::new(format!("trace-diff {experiment}"))
            .stage("checkout", checkout)
            .stage("align", align)
            .stage("record", record)
            .stage("validate", validate)
            .run(repo, &mut ctx)?;

        let s = Rc::try_unwrap(state).ok().expect("pipeline done").into_inner();
        Ok(TraceDiffReport {
            experiment: ctx.experiment,
            commit_a: s.a.commit.expect("checked out"),
            commit_b: s.b.commit.expect("checked out"),
            diff: s.diff.expect("aligned"),
            verdict: ctx.verdict.expect("validated"),
            commit: ctx.commit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;
    use popper_trace::{chrome_trace_json, ClockDomain, TraceSink};

    fn trace_json(fault_ts: u64) -> String {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        let s = t.span_at("sim", "sim/serial", "admit", 100, 200);
        t.span_at_child(s, "sim", "sim/serial", "service", 120, 180);
        t.instant_at("chaos", "chaos/faults", "crash", fault_ts);
        t.counter_at("sim/engine", "pending", 2.0, 160);
        t.flush();
        chrome_trace_json(&sink.drain())
    }

    /// A repo whose history carries a trace.json at two commits:
    /// `base` tag (fault at 150ns) and HEAD (fault at `head_fault_ts`).
    fn repo_with_traces(head_fault_ts: u64) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("gassyfs").unwrap().files("g") {
            repo.write(&path, contents).unwrap();
        }
        repo.write("experiments/g/trace.json", trace_json(150)).unwrap();
        repo.commit("popper trace g: record timeline").unwrap();
        repo.vcs.tag("base", None).unwrap();
        repo.write("experiments/g/trace.json", trace_json(head_fault_ts)).unwrap();
        // An unrelated change keeps the commit non-empty even when the
        // trace is identical.
        repo.write("notes.md", format!("fault at {head_fault_ts}\n")).unwrap();
        repo.commit("popper trace g: record timeline again").unwrap();
        repo
    }

    #[test]
    fn identical_traces_pass_and_record_artifacts() {
        let mut repo = repo_with_traces(150);
        let engine = ExperimentEngine::new();
        // Pin the right-hand side: `main` itself moves when the diff's
        // own recording commit lands.
        let head = repo.vcs.head_commit().unwrap().to_hex();
        let report = engine
            .trace_diff(&mut repo, "g", "base", &head, DiffOptions::default())
            .unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        assert!(report.diff.divergences.is_empty());
        assert!(report.commit.is_some());
        assert!(repo.exists("experiments/g/trace-diff.json"));
        assert!(repo.exists("experiments/g/trace-diff.txt"));
        assert!(repo.vcs.status().unwrap().is_empty(), "artifacts must be committed");
        let body = repo.read("experiments/g/trace-diff.json").unwrap();
        assert!(body.contains("\"divergences\": 0"), "{body}");

        // Re-running the same diff is idempotent: identical artifacts,
        // no new commit, byte-stable report.
        let txt1 = repo.read("experiments/g/trace-diff.txt").unwrap();
        let again = engine
            .trace_diff(&mut repo, "g", "base", &head, DiffOptions::default())
            .unwrap();
        assert!(again.commit.is_none());
        assert_eq!(repo.read("experiments/g/trace-diff.txt").unwrap(), txt1);
    }

    #[test]
    fn moved_fault_instant_diverges_and_is_named() {
        let mut repo = repo_with_traces(155);
        let engine = ExperimentEngine::new();
        let report = engine
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::default())
            .unwrap();
        assert!(!report.success());
        assert_eq!(report.diff.structural_count(), 1);
        let body = repo.read("experiments/g/trace-diff.json").unwrap();
        assert!(body.contains("fault-mismatch"), "{body}");
        assert!(body.contains("crash"), "{body}");
        assert!(report.to_string().contains("DIVERGED"));

        // Structure-only comparison ignores the timestamp move.
        let relaxed = engine
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::structure_only())
            .unwrap();
        assert!(relaxed.success(), "{:?}", relaxed.verdict.failures);
    }

    #[test]
    fn trace_aver_overrides_default_gate() {
        let mut repo = repo_with_traces(150);
        repo.write("experiments/g/trace.aver", "expect count(structural) = 99\n").unwrap();
        repo.commit("impossible trace gate").unwrap();
        let report = ExperimentEngine::new()
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::default())
            .unwrap();
        assert!(!report.success(), "custom trace.aver must be consulted");
    }

    #[test]
    fn missing_artifact_is_a_clear_error() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("gassyfs").unwrap().files("g") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("popper add gassyfs g").unwrap();
        repo.vcs.tag("base", None).unwrap();
        let err = ExperimentEngine::new()
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::default())
            .unwrap_err();
        assert!(err.contains("popper trace g"), "{err}");
        let err = ExperimentEngine::new()
            .trace_diff(&mut repo, "g", "nope", "main", DiffOptions::default())
            .unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }
}
