//! The trace-diff lifecycle: `popper trace-diff <exp> <a>..<b>`.
//!
//! Execution-provenance regression gating: both commits already carry a
//! committed `experiments/<exp>/trace.json` artifact (recorded by
//! `popper trace` / `popper chaos`), so the lifecycle loads the two
//! artifacts straight out of the object store, aligns them with
//! [`popper_trace::diff_traces`], records `trace-diff.json` plus an
//! ASCII divergence report as committed artifacts, and gates on the
//! experiment's `trace.aver` (default: `expect trace_equivalent within
//! <tol>`). Virtual-time traces are byte-identical for identical
//! workloads, so any divergence is signal; wall-domain traces should be
//! compared structure-only or under a tolerance.

use crate::experiment::ExperimentEngine;
use crate::memoize::{lifecycle_session, MemoStats};
use crate::pipeline::{CommitPolicy, Pipeline, RunContext, StageControl};
use crate::repo::PopperRepo;
use popper_aver::Verdict;
use popper_format::{json, Value};
use popper_trace::{diff_traces, parse_chrome_trace, DiffOptions, TraceDiff};
use popper_vcs::ObjectId;
use std::fmt;

/// The outcome of one `popper trace-diff` run.
#[derive(Debug)]
pub struct TraceDiffReport {
    /// Experiment name.
    pub experiment: String,
    /// Resolved left-hand commit.
    pub commit_a: ObjectId,
    /// Resolved right-hand commit.
    pub commit_b: ObjectId,
    /// The aligned diff.
    pub diff: TraceDiff,
    /// The Aver verdict (`trace.aver` or the default equivalence gate).
    pub verdict: Verdict,
    /// The commit that recorded the artifacts (`None` when this exact
    /// diff was already committed — re-running is idempotent).
    pub commit: Option<ObjectId>,
}

impl TraceDiffReport {
    /// Did the provenance gate hold?
    pub fn success(&self) -> bool {
        self.verdict.passed
    }
}

impl fmt::Display for TraceDiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace-diff '{}' {}..{}: {}",
            self.experiment,
            self.commit_a.short(),
            self.commit_b.short(),
            if self.success() { "EQUIVALENT" } else { "DIVERGED" }
        )?;
        write!(f, "{}", self.diff.report())?;
        write!(f, "  validation: {}", self.verdict)
    }
}

impl ExperimentEngine {
    /// Diff the recorded traces of one experiment between two commits
    /// (any ref `resolve` accepts: branch, tag, hex or unique hex
    /// prefix). Lifecycle stages are traced on `core/lifecycle`.
    pub fn trace_diff(
        &self,
        repo: &mut PopperRepo,
        experiment: &str,
        ref_a: &str,
        ref_b: &str,
        options: DiffOptions,
    ) -> Result<TraceDiffReport, String> {
        self.trace_diff_cached(repo, experiment, ref_a, ref_b, options, false).map(|(r, _)| r)
    }

    /// [`ExperimentEngine::trace_diff`] with an optional memo session
    /// attached. Both commits' trace bytes are content-addressed by the
    /// resolved commit ids, so the diff is a pure function of
    /// `(commit_a, commit_b, options, trace.aver)` — exactly what the
    /// session salt carries. Returns the hit/miss stats alongside the
    /// report when caching was on.
    pub fn trace_diff_cached(
        &self,
        repo: &mut PopperRepo,
        experiment: &str,
        ref_a: &str,
        ref_b: &str,
        options: DiffOptions,
        use_cache: bool,
    ) -> Result<(TraceDiffReport, Option<MemoStats>), String> {
        // Resolve both refs up front: the memo key must be over the
        // resolved commit ids, not the (moving) ref names.
        let commit_a = repo.vcs.resolve(ref_a).map_err(|e| e.to_string())?;
        let commit_b = repo.vcs.resolve(ref_b).map_err(|e| e.to_string())?;
        let mut ctx = RunContext::new(experiment, Value::empty_map());
        if use_cache {
            let salt = [
                ("commit_a".to_string(), commit_a.to_hex()),
                ("commit_b".to_string(), commit_b.to_hex()),
                ("tolerance_pct".to_string(), format!("{}", options.tolerance_pct)),
                ("structure_only".to_string(), format!("{}", !options.compare_durations)),
            ];
            ctx = ctx.with_memo(lifecycle_session(repo, experiment, "trace-diff", &salt));
        }
        self.trace_diff_pipeline(repo, &mut ctx, (ref_a, commit_a), (ref_b, commit_b), options)?;
        let diff = TraceDiff::from_value(
            ctx.metrics.get("trace_diff").ok_or("trace-diff: align stage recorded no diff")?,
        )?;
        let verdict = ctx
            .verdict
            .take()
            .ok_or_else(|| format!("experiment '{experiment}': trace-diff produced no verdict"))?;
        let stats = ctx.memo_stats().cloned();
        let report = TraceDiffReport {
            experiment: ctx.experiment,
            commit_a,
            commit_b,
            diff,
            verdict,
            commit: ctx.commit,
        };
        Ok((report, stats))
    }

    /// The trace-diff stage composition. All cross-stage state rides in
    /// `ctx.metrics` (the loaded trace bytes, then the aligned diff as
    /// its JSON value), so a warm prefix of cache hits replays soundly.
    fn trace_diff_pipeline(
        &self,
        repo: &mut PopperRepo,
        ctx: &mut RunContext,
        a: (&str, ObjectId),
        b: (&str, ObjectId),
        options: DiffOptions,
    ) -> Result<(), String> {
        let artifact = ctx.artifact_path("trace.json");
        let (commit_a, commit_b) = (a.1, b.1);

        let checkout = {
            let (ref_a, ref_b) = (a.0.to_string(), b.0.to_string());
            let artifact = artifact.clone();
            move |repo: &mut PopperRepo, ctx: &mut RunContext| {
                // Pull both commits' committed trace artifacts straight
                // from the object store (no working-tree checkout).
                let load = |refname: &str, commit: ObjectId| -> Result<String, String> {
                    let bytes = repo
                        .vcs
                        .file_at(commit, &artifact)
                        .map_err(|e| e.to_string())?
                        .ok_or_else(|| {
                            format!(
                                "commit {} ('{refname}') has no {artifact} — run `popper trace {}` at that commit first",
                                commit.short(),
                                ctx.experiment
                            )
                        })?;
                    String::from_utf8(bytes)
                        .map_err(|_| format!("{artifact} at {} is not UTF-8", commit.short()))
                };
                let trace_a = load(&ref_a, commit_a)?;
                let trace_b = load(&ref_b, commit_b)?;
                ctx.metrics.insert("trace_a", Value::Str(trace_a));
                ctx.metrics.insert("trace_b", Value::Str(trace_b));
                Ok(StageControl::Continue)
            }
        };

        let align = {
            let artifact = artifact.clone();
            move |_repo: &mut PopperRepo, ctx: &mut RunContext| {
                // Align span-by-span and classify divergences. The raw
                // trace bytes leave the context here: only the (small)
                // diff value crosses to the record/validate stages.
                let mut parse = |key: &str, commit: ObjectId| match ctx.metrics.remove(key) {
                    Some(Value::Str(s)) => parse_chrome_trace(&s)
                        .map_err(|e| format!("{artifact} at {}: {e}", commit.short())),
                    _ => Err(format!("align: checkout stage recorded no {key}")),
                };
                let (a, b) = (parse("trace_a", commit_a)?, parse("trace_b", commit_b)?);
                ctx.metrics.insert("trace_diff", diff_traces(&a, &b, options).to_value());
                Ok(StageControl::Continue)
            }
        };

        let record = move |repo: &mut PopperRepo, ctx: &mut RunContext| {
            // The outputs are pure functions of the committed
            // inputs, so re-diffing the same commits is idempotent:
            // identical bytes are not re-committed.
            let diff = TraceDiff::from_value(
                ctx.metrics.get("trace_diff").ok_or("record: align stage recorded no diff")?,
            )?;
            let mut body = diff.to_value();
            body.insert("experiment", Value::Str(ctx.experiment.clone()));
            body.insert("commit_a", Value::Str(commit_a.to_hex()));
            body.insert("commit_b", Value::Str(commit_b.to_hex()));
            let report_txt = format!(
                "trace-diff {} {}..{}\n{}",
                ctx.experiment,
                commit_a.short(),
                commit_b.short(),
                diff.report()
            );
            ctx.artifacts.stage(ctx.artifact_path("trace-diff.json"), json::to_string_pretty(&body));
            ctx.artifacts.stage(ctx.artifact_path("trace-diff.txt"), report_txt);
            let msg = format!(
                "popper trace-diff {}: {} divergence(s) between {} and {}",
                ctx.experiment,
                diff.divergences.len(),
                commit_a.short(),
                commit_b.short()
            );
            ctx.commit = ctx.artifacts.commit_into(repo, &msg, CommitPolicy::IfChanged)?;
            Ok(StageControl::Continue)
        };

        let validate = move |repo: &mut PopperRepo, ctx: &mut RunContext| {
            // Gate: the experiment's trace.aver, or the default
            // exact/tolerant equivalence predicate.
            let diff = TraceDiff::from_value(
                ctx.metrics.get("trace_diff").ok_or("validate: align stage recorded no diff")?,
            )?;
            let src = repo.read(&ctx.artifact_path("trace.aver")).unwrap_or_else(|| {
                format!("expect trace_equivalent within {}", options.tolerance_pct)
            });
            ctx.verdict =
                Some(popper_aver::check(&src, &diff.to_table()).map_err(|e| e.to_string())?);
            Ok(StageControl::Continue)
        };

        Pipeline::new(format!("trace-diff {}", ctx.experiment))
            .stage("checkout", checkout)
            .stage("align", align)
            .stage("record", record)
            .stage("validate", validate)
            .run(repo, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;
    use popper_trace::{chrome_trace_json, ClockDomain, TraceSink};

    fn trace_json(fault_ts: u64) -> String {
        let sink = TraceSink::new();
        let t = sink.tracer(ClockDomain::Virtual);
        let s = t.span_at("sim", "sim/serial", "admit", 100, 200);
        t.span_at_child(s, "sim", "sim/serial", "service", 120, 180);
        t.instant_at("chaos", "chaos/faults", "crash", fault_ts);
        t.counter_at("sim/engine", "pending", 2.0, 160);
        t.flush();
        chrome_trace_json(&sink.drain())
    }

    /// A repo whose history carries a trace.json at two commits:
    /// `base` tag (fault at 150ns) and HEAD (fault at `head_fault_ts`).
    fn repo_with_traces(head_fault_ts: u64) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("gassyfs").unwrap().files("g") {
            repo.write(&path, contents).unwrap();
        }
        repo.write("experiments/g/trace.json", trace_json(150)).unwrap();
        repo.commit("popper trace g: record timeline").unwrap();
        repo.vcs.tag("base", None).unwrap();
        repo.write("experiments/g/trace.json", trace_json(head_fault_ts)).unwrap();
        // An unrelated change keeps the commit non-empty even when the
        // trace is identical.
        repo.write("notes.md", format!("fault at {head_fault_ts}\n")).unwrap();
        repo.commit("popper trace g: record timeline again").unwrap();
        repo
    }

    #[test]
    fn identical_traces_pass_and_record_artifacts() {
        let mut repo = repo_with_traces(150);
        let engine = ExperimentEngine::new();
        // Pin the right-hand side: `main` itself moves when the diff's
        // own recording commit lands.
        let head = repo.vcs.head_commit().unwrap().to_hex();
        let report = engine
            .trace_diff(&mut repo, "g", "base", &head, DiffOptions::default())
            .unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        assert!(report.diff.divergences.is_empty());
        assert!(report.commit.is_some());
        assert!(repo.exists("experiments/g/trace-diff.json"));
        assert!(repo.exists("experiments/g/trace-diff.txt"));
        assert!(repo.vcs.status().unwrap().is_empty(), "artifacts must be committed");
        let body = repo.read("experiments/g/trace-diff.json").unwrap();
        assert!(body.contains("\"divergences\": 0"), "{body}");

        // Re-running the same diff is idempotent: identical artifacts,
        // no new commit, byte-stable report.
        let txt1 = repo.read("experiments/g/trace-diff.txt").unwrap();
        let again = engine
            .trace_diff(&mut repo, "g", "base", &head, DiffOptions::default())
            .unwrap();
        assert!(again.commit.is_none());
        assert_eq!(repo.read("experiments/g/trace-diff.txt").unwrap(), txt1);
    }

    #[test]
    fn moved_fault_instant_diverges_and_is_named() {
        let mut repo = repo_with_traces(155);
        let engine = ExperimentEngine::new();
        let report = engine
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::default())
            .unwrap();
        assert!(!report.success());
        assert_eq!(report.diff.structural_count(), 1);
        let body = repo.read("experiments/g/trace-diff.json").unwrap();
        assert!(body.contains("fault-mismatch"), "{body}");
        assert!(body.contains("crash"), "{body}");
        assert!(report.to_string().contains("DIVERGED"));

        // Structure-only comparison ignores the timestamp move.
        let relaxed = engine
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::structure_only())
            .unwrap();
        assert!(relaxed.success(), "{:?}", relaxed.verdict.failures);
    }

    #[test]
    fn trace_aver_overrides_default_gate() {
        let mut repo = repo_with_traces(150);
        repo.write("experiments/g/trace.aver", "expect count(structural) = 99\n").unwrap();
        repo.commit("impossible trace gate").unwrap();
        let report = ExperimentEngine::new()
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::default())
            .unwrap();
        assert!(!report.success(), "custom trace.aver must be consulted");
    }

    #[test]
    fn missing_artifact_is_a_clear_error() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("gassyfs").unwrap().files("g") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("popper add gassyfs g").unwrap();
        repo.vcs.tag("base", None).unwrap();
        let err = ExperimentEngine::new()
            .trace_diff(&mut repo, "g", "base", "main", DiffOptions::default())
            .unwrap_err();
        assert!(err.contains("popper trace g"), "{err}");
        let err = ExperimentEngine::new()
            .trace_diff(&mut repo, "g", "nope", "main", DiffOptions::default())
            .unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }
}
