//! The experiment lifecycle engine.
//!
//! `popper run <experiment>` executes the generic workflow of the
//! paper's Figure 1 end to end, with every stage automated:
//!
//! 1. **sanitize** — compare the environment's baseline fingerprint
//!    against the one stored with the experiment; refuse to run on a
//!    platform that cannot reproduce the baseline (§Automated
//!    Validation). The first run records the fingerprint.
//! 2. **orchestrate** — run the experiment's `setup.pml` playbook over
//!    an inventory derived from `vars.pml`.
//! 3. **execute** — invoke the experiment's *runner* (a registered
//!    function; use-case crates provide `gassyfs-scalability`,
//!    `torpor-variability`, `mpi-variability`, `bww-airtemp`; the
//!    engine ships a `synthetic` runner for the remaining templates).
//! 4. **record** — write `results.csv` and `figure.txt` and commit them
//!    ("validate and version the results").
//! 5. **validate** — check `validations.aver` against the results.

use crate::pipeline::{stages, ArtifactSet, CommitPolicy, Pipeline, RunContext, StageControl};
use crate::repo::PopperRepo;
use popper_aver::Verdict;
use popper_format::{Table, Value};
use popper_monitor::{Baseline, BaselineGate, GateOutcome};
use popper_orchestra::{Inventory, Playbook};
use popper_sim::platforms;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// A registered experiment runner: vars → results table.
pub type RunnerFn = Box<dyn Fn(&Value) -> Result<Table, String> + Send + Sync>;

/// The outcome of one `popper run`.
#[derive(Debug)]
pub struct RunReport {
    /// Experiment name.
    pub experiment: String,
    /// Baseline-gate outcome.
    pub gate: GateOutcome,
    /// Orchestration recap (empty if the experiment has no playbook).
    pub orchestration: String,
    /// The results table.
    pub results: Table,
    /// The Aver verdict over the results.
    pub verdict: Verdict,
    /// The commit that recorded the results.
    pub commit: Option<popper_vcs::ObjectId>,
}

impl RunReport {
    /// Did everything succeed (gate passed, orchestration ok,
    /// validations hold)?
    pub fn success(&self) -> bool {
        self.gate.may_run() && self.verdict.passed
    }

    /// Distill a completed (or gate-stopped) pipeline context into the
    /// report the callers and tests consume.
    pub fn from_ctx(ctx: RunContext) -> RunReport {
        let gate = ctx.gate.unwrap_or(GateOutcome::Proceed);
        let verdict = ctx.verdict.unwrap_or_else(|| {
            if gate.may_run() {
                Verdict { passed: true, failures: vec![], assertions: 0, groups: 0 }
            } else {
                Verdict {
                    passed: false,
                    failures: vec!["baseline gate blocked execution".into()],
                    assertions: 0,
                    groups: 0,
                }
            }
        });
        RunReport {
            experiment: ctx.experiment,
            gate,
            orchestration: ctx.orchestration,
            results: ctx.results.unwrap_or_else(|| Table::new(["empty"])),
            verdict,
            commit: ctx.commit,
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "experiment '{}': {}", self.experiment, if self.success() { "OK" } else { "FAILED" })?;
        writeln!(f, "  gate: {}", self.gate)?;
        writeln!(f, "  results: {} rows", self.results.len())?;
        write!(f, "  validation: {}", self.verdict)
    }
}

/// The engine: runner registry plus policy knobs.
pub struct ExperimentEngine {
    runners: BTreeMap<String, RunnerFn>,
    /// Baseline-gate relative tolerance (default 25%).
    pub baseline_tolerance: f64,
}

impl Default for ExperimentEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ExperimentEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentEngine")
            .field("runners", &self.runners.keys().collect::<Vec<_>>())
            .field("baseline_tolerance", &self.baseline_tolerance)
            .finish()
    }
}

impl ExperimentEngine {
    /// An engine with the built-in `synthetic` runner registered.
    pub fn new() -> Self {
        let mut engine = ExperimentEngine { runners: BTreeMap::new(), baseline_tolerance: 0.25 };
        engine.register("synthetic", synthetic_runner);
        engine
    }

    /// Register a runner by name.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&Value) -> Result<Table, String> + Send + Sync + 'static,
    ) {
        self.runners.insert(name.to_string(), Box::new(f));
    }

    /// Registered runner names.
    pub fn runners(&self) -> Vec<&str> {
        self.runners.keys().map(String::as_str).collect()
    }

    /// Look up a registered runner by name.
    pub(crate) fn runner(&self, name: &str) -> Option<&RunnerFn> {
        self.runners.get(name)
    }

    /// Run one experiment end to end. With an ambient wall-clock
    /// [`popper_trace::current`] tracer, each lifecycle stage records a
    /// span on the `core/lifecycle` track.
    pub fn run(&self, repo: &mut PopperRepo, experiment: &str) -> Result<RunReport, String> {
        let mut ctx = RunContext::for_experiment(repo, experiment)?;
        self.run_pipeline(repo, &mut ctx)?;
        Ok(RunReport::from_ctx(ctx))
    }

    /// The `popper run` stage composition (the paper's Figure 1):
    /// sanitize → orchestrate → execute → record → validate, over a
    /// caller-built context (which may carry a trace recorder).
    pub fn run_pipeline(&self, repo: &mut PopperRepo, ctx: &mut RunContext) -> Result<(), String> {
        let runner_name = ctx.runner_name()?;
        if self.runner(runner_name).is_none() {
            return Err(format!("unknown runner '{runner_name}' (registered: {:?})", self.runners()));
        }
        Pipeline::new(format!("run {}", ctx.experiment))
            .stage("sanitize", |repo, ctx| {
                let gate = self.baseline_gate(repo, &ctx.experiment, &ctx.vars)?;
                let control =
                    if gate.may_run() { StageControl::Continue } else { StageControl::Stop };
                ctx.gate = Some(gate);
                Ok(control)
            })
            .stage("orchestrate", |repo, ctx| {
                ctx.orchestration = self.orchestrate(repo, &ctx.experiment, &ctx.vars)?;
                Ok(StageControl::Continue)
            })
            .stage("execute", stages::execute(self))
            .stage("record", stages::record_results())
            .stage("validate", stages::validate(stages::ValidationSource::Validations))
            .run(repo, ctx)
    }

    /// The baseline fingerprint check. The platform named in
    /// `vars.machine` (default `cloudlab-c220g`) is fingerprinted; the
    /// stored fingerprint lives in `datasets/baseline.csv`.
    fn baseline_gate(
        &self,
        repo: &mut PopperRepo,
        experiment: &str,
        vars: &Value,
    ) -> Result<GateOutcome, String> {
        let machine = vars.get_str("machine").unwrap_or("cloudlab-c220g");
        let platform = platforms::by_name(machine)
            .ok_or_else(|| format!("unknown machine '{machine}' (known: {:?})", platforms::names()))?;
        let current = Baseline::of_platform(&platform);
        let path = format!("experiments/{experiment}/datasets/baseline.csv");
        match repo.read(&path) {
            Some(text) => {
                let table = Table::from_csv(&text).map_err(|e| e.to_string())?;
                let stored = Baseline::from_table(&table)?;
                Ok(BaselineGate::new(stored, self.baseline_tolerance).check(&current))
            }
            None => {
                // First run: record the fingerprint with the experiment.
                let mut set = ArtifactSet::default();
                set.stage(path.as_str(), current.to_table().to_csv());
                set.commit_into(
                    repo,
                    &format!("record baseline fingerprint for '{experiment}'"),
                    CommitPolicy::Always,
                )?;
                Ok(GateOutcome::Proceed)
            }
        }
    }

    /// Run `setup.pml` (if present) against an inventory derived from
    /// the playbook's host patterns and `vars.nodes`.
    fn orchestrate(&self, repo: &PopperRepo, experiment: &str, vars: &Value) -> Result<String, String> {
        let Some(text) = repo.read(&format!("experiments/{experiment}/setup.pml")) else {
            return Ok(String::new());
        };
        let playbook = Playbook::from_pml(&text)?;
        let inventory = inventory_for(&playbook, vars);
        let controller: BTreeMap<String, Vec<u8>> = repo
            .experiment_files(experiment)
            .into_iter()
            .filter_map(|p| {
                let data = repo.vcs.read_file(&p)?.to_vec();
                let rel = p.strip_prefix(&format!("experiments/{experiment}/"))?.to_string();
                Some((rel, data))
            })
            .collect();
        let report = popper_orchestra::run_playbook_traced(
            &playbook,
            &inventory,
            BTreeMap::new(),
            controller,
            popper_trace::current(),
        );
        if !report.success() {
            return Err(format!("orchestration failed:\n{}", report.recap()));
        }
        Ok(report.recap())
    }
}

/// Build an inventory that satisfies a playbook: for every host pattern
/// used by a play, `n` hosts in a group of that name (`n` from
/// `vars.nodes`, a number or a list whose maximum is used; default 3).
/// Scalar vars become host vars so `{{ var }}` templating works.
pub fn inventory_for(playbook: &Playbook, vars: &Value) -> Inventory {
    let n = match vars.get("nodes") {
        Some(Value::Num(n)) => (*n as usize).max(1),
        Some(Value::List(items)) => items
            .iter()
            .filter_map(Value::as_num)
            .fold(1.0f64, f64::max) as usize,
        _ => 3,
    };
    let mut inv = Inventory::new();
    let mut groups: Vec<String> = Vec::new();
    for play in &playbook.plays {
        for pat in play.hosts.split(',').map(str::trim) {
            if pat != "all" && !groups.contains(&pat.to_string()) {
                groups.push(pat.to_string());
            }
        }
    }
    if groups.is_empty() {
        groups.push("node".into());
    }
    let host_vars = {
        let mut m = Value::empty_map();
        if let Some(entries) = vars.as_map() {
            for (k, v) in entries {
                if !matches!(v, Value::Map(_) | Value::List(_)) {
                    m.insert(k.clone(), v.clone());
                }
            }
        }
        m
    };
    for group in &groups {
        for i in 0..n {
            inv.add(popper_orchestra::Host {
                name: format!("{group}{i}"),
                groups: vec![group.clone()],
                vars: host_vars.clone(),
            });
        }
    }
    inv
}

/// The built-in `synthetic` runner: produces a `(workload, machine, x,
/// y)` table from a declarative model in vars:
///
/// ```text
/// workload: rados-bench-write
/// machine: cloudlab-c220g
/// model: {trend: sublinear, base: 120, factor: 0.55, noise: 0.01, seed: 1}
/// xs: [1, 2, 4, 8]
/// ```
pub fn synthetic_runner(vars: &Value) -> Result<Table, String> {
    // The synthetic model has no sharded world: asking it to shard
    // (via vars or the CLI's --sim-workers) is a configuration error,
    // not a silent no-op — the same contract the use-case runners
    // enforce.
    if vars.get("sim_workers").is_some() || std::env::var("POPPER_SIM_WORKERS").is_ok() {
        return Err(
            "runner 'synthetic' has no sharded world; drop 'sim_workers:' / --sim-workers"
                .to_string(),
        );
    }
    let workload = vars.get_str("workload").unwrap_or("synthetic");
    let machine = vars.get_str("machine").unwrap_or("cloudlab-c220g");
    let model = vars.get("model").ok_or("synthetic runner needs a 'model'")?;
    let trend = model.get_str("trend").ok_or("model needs 'trend'")?;
    let base = model.get_num("base").ok_or("model needs 'base'")?;
    let factor = model.get_num("factor").unwrap_or(1.0);
    let noise = model.get_num("noise").unwrap_or(0.0);
    let seed = model.get_num("seed").unwrap_or(0.0) as u64;
    let xs: Vec<f64> = vars
        .get_list("xs")
        .ok_or("synthetic runner needs 'xs'")?
        .iter()
        .filter_map(Value::as_num)
        .collect();
    if xs.is_empty() {
        return Err("'xs' has no numeric entries".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(["workload", "machine", "x", "y"]);
    for &x in &xs {
        let y = match trend {
            "linear" => base * factor * x,
            "sublinear" => base * x.powf(factor.clamp(0.05, 0.95)),
            "superlinear" => base * x.powf(factor.max(1.1)),
            "constant" => base,
            other => return Err(format!("unknown trend '{other}'")),
        };
        let jitter = 1.0 + noise * (rng.gen::<f64>() - 0.5) * 2.0;
        t.push_row(vec![
            Value::from(workload),
            Value::from(machine),
            Value::Num(x),
            Value::Num(y * jitter),
        ])
        .expect("fixed schema");
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn repo_with(tpl: &str, name: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files(name) {
            repo.write(&path, contents).unwrap();
        }
        repo.commit(&format!("popper add {tpl} {name}")).unwrap();
        repo
    }

    #[test]
    fn synthetic_template_runs_end_to_end() {
        let mut repo = repo_with("ceph-rados", "rados");
        let engine = ExperimentEngine::new();
        let report = engine.run(&mut repo, "rados").unwrap();
        assert!(report.success(), "{report}");
        assert!(report.gate.may_run());
        assert_eq!(report.results.len(), 4);
        assert!(report.orchestration.contains("PLAY RECAP"));
        // Artifacts were recorded and committed.
        assert!(repo.exists("experiments/rados/results.csv"));
        assert!(repo.exists("experiments/rados/figure.txt"));
        assert!(repo.exists("experiments/rados/datasets/baseline.csv"));
        assert!(repo.vcs.status().unwrap().is_empty());
    }

    #[test]
    fn all_synthetic_templates_run_and_validate() {
        for tpl in ["ceph-rados", "cloverleaf", "spark-standalone", "proteustm", "zlog", "malacology"] {
            let mut repo = repo_with(tpl, "e");
            let engine = ExperimentEngine::new();
            let report = engine.run(&mut repo, "e").unwrap();
            assert!(report.success(), "template {tpl}: {:?}", report.verdict.failures);
        }
    }

    #[test]
    fn custom_runner_is_used() {
        let mut repo = repo_with("gassyfs", "g");
        let mut engine = ExperimentEngine::new();
        engine.register("gassyfs-scalability", |vars| {
            let nodes: Vec<f64> =
                vars.get_list("nodes").unwrap().iter().filter_map(Value::as_num).collect();
            let mut t = Table::new(["workload", "machine", "nodes", "time"]);
            for n in nodes {
                t.push_row(vec![
                    Value::from("git"),
                    Value::from("gassyfs-node"),
                    Value::Num(n),
                    Value::Num(100.0 * n.powf(0.4)),
                ])
                .unwrap();
            }
            Ok(t)
        });
        let report = engine.run(&mut repo, "g").unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        assert_eq!(report.results.len(), 5);
    }

    #[test]
    fn unknown_runner_errors() {
        let mut repo = repo_with("gassyfs", "g");
        let engine = ExperimentEngine::new(); // gassyfs runner not registered
        let err = engine.run(&mut repo, "g").unwrap_err();
        assert!(err.contains("unknown runner 'gassyfs-scalability'"));
    }

    #[test]
    fn failing_validation_reports_failure() {
        let mut repo = repo_with("ceph-rados", "e");
        repo.write("experiments/e/validations.aver", "expect max(y) < 0\n").unwrap();
        repo.commit("impossible validation").unwrap();
        let engine = ExperimentEngine::new();
        let report = engine.run(&mut repo, "e").unwrap();
        assert!(!report.success());
        assert!(!report.verdict.passed);
        // Results are still recorded (the falsification is preserved!).
        assert!(repo.exists("experiments/e/results.csv"));
    }

    #[test]
    fn baseline_gate_blocks_platform_changes() {
        let mut repo = repo_with("ceph-rados", "e");
        let engine = ExperimentEngine::new();
        // First run records the cloudlab fingerprint.
        engine.run(&mut repo, "e").unwrap();
        // Re-point the experiment at a very different machine.
        let vars = repo.read("experiments/e/vars.pml").unwrap();
        repo.write("experiments/e/vars.pml", vars.replace("cloudlab-c220g", "xeon-2006"))
            .unwrap();
        repo.commit("move to old machine").unwrap();
        let report = engine.run(&mut repo, "e").unwrap();
        assert!(!report.gate.may_run(), "{}", report.gate);
        assert!(!report.success());
        assert!(report.commit.is_none(), "no results recorded when gated");
    }

    #[test]
    fn rerun_on_same_platform_passes_gate() {
        let mut repo = repo_with("ceph-rados", "e");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        let report = engine.run(&mut repo, "e").unwrap();
        assert!(report.gate.may_run());
        assert!(report.success());
    }

    #[test]
    fn synthetic_runner_trends() {
        let run = |trend: &str, factor: f64| -> Vec<f64> {
            let mut vars = Value::empty_map();
            vars.insert("workload", Value::from("w"));
            let mut model = Value::empty_map();
            model.insert("trend", Value::from(trend));
            model.insert("base", Value::from(10i64));
            model.insert("factor", Value::Num(factor));
            vars.insert("model", model);
            vars.insert("xs", Value::from(vec![1i64, 2, 4, 8]));
            synthetic_runner(&vars).unwrap().numeric_column("y").unwrap()
        };
        let lin = run("linear", 1.0);
        assert_eq!(lin, vec![10.0, 20.0, 40.0, 80.0]);
        let sub = run("sublinear", 0.5);
        assert!((sub[3] - 10.0 * 8f64.sqrt()).abs() < 1e-9);
        let cons = run("constant", 1.0);
        assert!(cons.iter().all(|&y| y == 10.0));
        assert!(synthetic_runner(&Value::empty_map()).is_err());
    }

    #[test]
    fn inventory_scales_with_vars() {
        let pb = Playbook::from_pml("- name: p\n  hosts: osds,monitors\n  tasks: []\n").unwrap();
        let mut vars = Value::empty_map();
        vars.insert("nodes", Value::from(vec![1i64, 2, 8]));
        let inv = inventory_for(&pb, &vars);
        assert_eq!(inv.select("osds").len(), 8);
        assert_eq!(inv.select("monitors").len(), 8);
        // Scalars flow into host vars.
        let mut vars = Value::empty_map();
        vars.insert("nodes", Value::from(2i64));
        vars.insert("workload", Value::from("git"));
        let pb = Playbook::from_pml("- name: p\n  hosts: all\n  tasks: []\n").unwrap();
        let inv = inventory_for(&pb, &vars);
        assert_eq!(inv.select("all").len(), 2);
        assert_eq!(inv.hosts()[0].vars.get_str("workload"), Some("git"));
    }
}

#[cfg(test)]
mod figure_tests {
    use super::*;
    use crate::templates::find_template;

    #[test]
    fn figure_spec_renders_svg_and_ascii() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("ceph-rados").unwrap().files("e") {
            let contents = if path.ends_with("vars.pml") {
                format!("{contents}figure:\n  kind: line\n  title: RADOS scaling\n  x: x\n  y: y\n")
            } else {
                contents
            };
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let engine = ExperimentEngine::new();
        let report = engine.run(&mut repo, "e").unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        let svg = repo.read("experiments/e/figure.svg").unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("RADOS scaling"));
        let ascii = repo.read("experiments/e/figure.txt").unwrap();
        assert!(ascii.contains('*'), "{ascii}");
    }

    #[test]
    fn without_spec_figure_is_pretty_table() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("zlog").unwrap().files("z") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "z").unwrap();
        assert!(!repo.exists("experiments/z/figure.svg"));
        let txt = repo.read("experiments/z/figure.txt").unwrap();
        assert!(txt.contains("workload"));
    }

    #[test]
    fn bad_figure_spec_is_a_run_error() {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("zlog").unwrap().files("z") {
            let contents = if path.ends_with("vars.pml") {
                format!("{contents}figure:\n  kind: line\n  x: nope\n  y: y\n")
            } else {
                contents
            };
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        let engine = ExperimentEngine::new();
        let err = engine.run(&mut repo, "z").unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }
}
