//! Memoized stage execution: the engine-side half of popper-memo.
//!
//! `popper-memo` provides keys, entries and the table; this module
//! decides *what is keyed* and *what replay means* for a
//! [`RunContext`]:
//!
//! * a **base key** per pipeline run — engine version, lifecycle mode
//!   (`run`/`trace`/`chaos`/`verify`/`trace-diff`), experiment name,
//!   caller-supplied salt (chaos schedule/seed overrides, trace-diff
//!   refs) and a hash of every *input* file under the experiment
//!   directory (generated artifacts excluded, so a warm re-run is not
//!   invalidated by the outputs of the cold one);
//! * a **per-stage key** — base, stage index and name, the serialized
//!   vars visible at stage entry, and the chained digest of every
//!   upstream stage's recorded output, which makes hits prefix-closed:
//!   editing anything invalidates the stage that reads it *and*
//!   everything downstream, never an interior stage alone;
//! * **capture** — after a miss, the stage's effect is reduced to the
//!   serialized `RunContext` field deltas plus every commit it made
//!   (message + exact bytes written), and stored in the object layer;
//! * **replay** — on a hit, recorded commits are re-applied (skipped
//!   entirely when the working tree already holds identical bytes, so
//!   warm runs are churn-free) and the field deltas are decoded back
//!   into the context. Determinism is the contract: a replayed run
//!   must be byte-identical to an executed one.
//!
//! A stage whose effects the entry format cannot represent (file
//! removals, merges, foreign commit ids) simply isn't recorded, and the
//! session is poisoned for the rest of the run so no downstream stage
//! can hit on a stale chain.

use crate::pipeline::{ArtifactSet, RunContext, Stage, StageControl};
use crate::repo::PopperRepo;
use popper_aver::Verdict;
use popper_chaos::FaultSchedule;
use popper_format::{json, Table, Value};
use popper_memo::{KeyBuilder, MemoTable, ReplayCommit, StageEntry};
use popper_monitor::GateOutcome;
use popper_vcs::repo::Change;
use popper_vcs::{sha256, ObjectId};

pub use popper_memo::{cache_disabled_by_env, MemoSession, MemoStats, StageOutcome};

/// Artifact names the lifecycles themselves produce. They are excluded
/// from the input manifest: run N's outputs must not invalidate run
/// N+1's keys, or nothing would ever be warm.
const GENERATED_ARTIFACTS: &[&str] = &[
    "results.csv",
    "figure.txt",
    "figure.svg",
    "faults.json",
    "recovery.json",
    "trace.json",
    "trace.svg",
    "trace-diff.json",
    "trace-diff.txt",
    "verify.json",
    "datasets/baseline.csv",
];

fn is_generated(rel: &str) -> bool {
    GENERATED_ARTIFACTS.contains(&rel)
}

/// Build the memo session for one lifecycle run: the base key over
/// everything the whole pipeline can observe before any stage runs.
pub fn lifecycle_session(
    repo: &PopperRepo,
    experiment: &str,
    mode: &str,
    salt: &[(String, String)],
) -> MemoSession {
    let mut key = KeyBuilder::new("popper-memo/base/v1")
        .text("engine", env!("CARGO_PKG_VERSION"))
        .text("mode", mode)
        .text("experiment", experiment);
    for (name, value) in salt {
        key = key.text(&format!("salt:{name}"), value);
    }
    // Artifacts one mode consumes as inputs even though another mode
    // produced them: verify re-checks the recorded results, so their
    // bytes must key its cache (a tampered results.csv is a new
    // verification question, not a warm repeat).
    let consumed_by_mode: &[&str] = match mode {
        "verify" => &["results.csv"],
        _ => &[],
    };
    // Input manifest: every committed-or-edited file under the
    // experiment directory, hashed with the streaming hasher.
    // `Repository::files` iterates the worktree BTreeMap, so the order
    // is sorted and deterministic.
    let prefix = format!("experiments/{experiment}/");
    let paths: Vec<String> = repo
        .vcs
        .files()
        .filter(|p| p.starts_with(&prefix))
        .map(str::to_string)
        .collect();
    for path in paths {
        let rel = &path[prefix.len()..];
        if is_generated(rel) && !consumed_by_mode.contains(&rel) {
            continue;
        }
        if let Some(mut bytes) = repo.vcs.read_file(&path) {
            let digest = sha256::digest_reader(&mut bytes).expect("reading a byte slice cannot fail");
            key = key.bytes(&format!("input:{path}"), &digest);
        }
    }
    MemoSession::new(key.finish())
}

// ------------------------------------------------------- field codecs
//
// Context fields are serialized with the formats the lifecycles already
// commit (CSV for tables, JSON for values) so replay exercises the same
// canonical-round-trip guarantees the artifact layer depends on.

const OPT_NONE: u8 = 0;
const OPT_SOME: u8 = 1;
/// "Set `ctx.commit` to the commit this entry's replay lands (or
/// `None` when the replay skipped an identical-bytes commit)."
const COMMIT_REPLAYED: u8 = 2;

fn opt_bytes(inner: Option<Vec<u8>>) -> Vec<u8> {
    match inner {
        None => vec![OPT_NONE],
        Some(bytes) => {
            let mut out = vec![OPT_SOME];
            out.extend_from_slice(&bytes);
            out
        }
    }
}

fn opt_body(bytes: &[u8]) -> Result<Option<&[u8]>, String> {
    match bytes.split_first() {
        Some((&OPT_NONE, [])) => Ok(None),
        Some((&OPT_SOME, body)) => Ok(Some(body)),
        _ => Err("bad optional field encoding".into()),
    }
}

fn encode_gate(gate: &GateOutcome) -> Vec<u8> {
    let value = match gate {
        GateOutcome::Proceed => Value::Map(vec![("outcome".into(), Value::Str("proceed".into()))]),
        GateOutcome::Blocked(offenders) => Value::Map(vec![
            ("outcome".into(), Value::Str("blocked".into())),
            (
                "offenders".into(),
                Value::List(
                    offenders
                        .iter()
                        .map(|(dim, expected, actual, deviation)| {
                            Value::List(vec![
                                Value::Str(dim.clone()),
                                Value::Num(*expected),
                                Value::Num(*actual),
                                Value::Num(*deviation),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    };
    json::to_string(&value).into_bytes()
}

fn decode_gate(bytes: &[u8]) -> Result<GateOutcome, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "gate field is not utf-8")?;
    let value = json::parse(text).map_err(|e| format!("gate field: {e}"))?;
    match value.get_str("outcome") {
        Some("proceed") => Ok(GateOutcome::Proceed),
        Some("blocked") => {
            let mut offenders = Vec::new();
            for entry in value.get_list("offenders").unwrap_or(&[]) {
                let parts = entry.as_list().ok_or("bad gate offender")?;
                match parts {
                    [Value::Str(dim), Value::Num(e), Value::Num(a), Value::Num(d)] => {
                        offenders.push((dim.clone(), *e, *a, *d))
                    }
                    _ => return Err("bad gate offender".into()),
                }
            }
            Ok(GateOutcome::Blocked(offenders))
        }
        _ => Err("bad gate outcome".into()),
    }
}

fn encode_verdict(verdict: &Verdict) -> Vec<u8> {
    let value = Value::Map(vec![
        ("passed".into(), Value::Bool(verdict.passed)),
        (
            "failures".into(),
            Value::List(verdict.failures.iter().map(|f| Value::Str(f.clone())).collect()),
        ),
        ("assertions".into(), Value::Num(verdict.assertions as f64)),
        ("groups".into(), Value::Num(verdict.groups as f64)),
    ]);
    json::to_string(&value).into_bytes()
}

fn decode_verdict(bytes: &[u8]) -> Result<Verdict, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "verdict field is not utf-8")?;
    let value = json::parse(text).map_err(|e| format!("verdict field: {e}"))?;
    let failures = value
        .get_list("failures")
        .unwrap_or(&[])
        .iter()
        .map(|f| f.as_str().map(str::to_string).ok_or("bad verdict failure"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Verdict {
        passed: value.get_bool("passed").ok_or("verdict missing 'passed'")?,
        failures,
        assertions: value.get_num("assertions").ok_or("verdict missing 'assertions'")? as usize,
        groups: value.get_num("groups").ok_or("verdict missing 'groups'")? as usize,
    })
}

fn encode_artifacts(set: &ArtifactSet) -> Vec<u8> {
    let mut out = Vec::new();
    for (path, bytes) in set.staged() {
        out.extend_from_slice(&(path.len() as u64).to_le_bytes());
        out.extend_from_slice(path.as_bytes());
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

fn decode_artifacts(mut bytes: &[u8]) -> Result<ArtifactSet, String> {
    fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
        if n > bytes.len() {
            return Err("truncated artifacts field".into());
        }
        let (head, rest) = bytes.split_at(n);
        *bytes = rest;
        Ok(head)
    }
    let mut set = ArtifactSet::default();
    while !bytes.is_empty() {
        let path_len = u64::from_le_bytes(take(&mut bytes, 8)?.try_into().unwrap()) as usize;
        let path =
            String::from_utf8(take(&mut bytes, path_len)?.to_vec()).map_err(|_| "bad artifact path")?;
        let data_len = u64::from_le_bytes(take(&mut bytes, 8)?.try_into().unwrap()) as usize;
        set.stage(path, take(&mut bytes, data_len)?.to_vec());
    }
    Ok(set)
}

fn encode_commit(commit: &Option<ObjectId>) -> Vec<u8> {
    match commit {
        None => vec![OPT_NONE],
        Some(id) => {
            let mut out = vec![OPT_SOME];
            out.extend_from_slice(&id.0);
            out
        }
    }
}

/// Serialize every context field a stage can change, in a fixed order
/// (`vars` first: schedule replay re-derives from the restored vars).
pub(crate) fn snapshot_ctx(ctx: &RunContext) -> Vec<(String, Vec<u8>)> {
    vec![
        ("vars".into(), json::to_string(&ctx.vars).into_bytes()),
        ("schedule".into(), vec![ctx.schedule.is_some() as u8]),
        ("gate".into(), opt_bytes(ctx.gate.as_ref().map(encode_gate))),
        ("orchestration".into(), ctx.orchestration.clone().into_bytes()),
        (
            "results".into(),
            opt_bytes(ctx.results.as_ref().map(|t| t.to_csv().into_bytes())),
        ),
        ("metrics".into(), json::to_string(&ctx.metrics).into_bytes()),
        ("verdict".into(), opt_bytes(ctx.verdict.as_ref().map(encode_verdict))),
        ("artifacts".into(), encode_artifacts(&ctx.artifacts)),
        ("commit".into(), encode_commit(&ctx.commit)),
    ]
}

fn apply_field(
    ctx: &mut RunContext,
    name: &str,
    value: &[u8],
    replayed_commit: Option<ObjectId>,
) -> Result<(), String> {
    let as_text = |bytes: &[u8]| -> Result<String, String> {
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("memo field '{name}' is not utf-8"))
    };
    match name {
        "vars" => ctx.vars = json::parse(&as_text(value)?).map_err(|e| e.to_string())?,
        "schedule" => {
            ctx.schedule = match value {
                [0] => None,
                [1] => Some(
                    FaultSchedule::from_vars(&ctx.vars)?
                        .ok_or("memo replay: vars carry no fault schedule")?,
                ),
                _ => return Err("bad schedule marker".into()),
            }
        }
        "gate" => ctx.gate = opt_body(value)?.map(decode_gate).transpose()?,
        "orchestration" => ctx.orchestration = as_text(value)?,
        "results" => {
            ctx.results = opt_body(value)?
                .map(|b| Table::from_csv(&String::from_utf8_lossy(b)).map_err(|e| e.to_string()))
                .transpose()?
        }
        "metrics" => ctx.metrics = json::parse(&as_text(value)?).map_err(|e| e.to_string())?,
        "verdict" => ctx.verdict = opt_body(value)?.map(decode_verdict).transpose()?,
        "artifacts" => ctx.artifacts = decode_artifacts(value)?,
        "commit" => {
            ctx.commit = match value {
                [b] if *b == OPT_NONE => None,
                [b] if *b == COMMIT_REPLAYED => replayed_commit,
                _ => return Err("bad commit marker in memo entry".into()),
            }
        }
        other => return Err(format!("unknown memo field '{other}'")),
    }
    Ok(())
}

// --------------------------------------------------- capture / replay

/// Reduce an executed stage to a cacheable entry. `Err` means the
/// effects cannot be represented (the stage still ran correctly; the
/// session is poisoned so nothing downstream hits a stale chain).
fn capture_entry(
    repo: &PopperRepo,
    ctx: &RunContext,
    pre: &[(String, Vec<u8>)],
    pre_head: Option<ObjectId>,
    control: StageControl,
    duration_us: u64,
) -> Result<StageEntry, String> {
    // Commits the stage made, oldest first.
    let mut commits = Vec::new();
    let mut last_new_commit = None;
    let post_head = repo.vcs.head_commit();
    if post_head != pre_head {
        let head = post_head.ok_or("stage unset HEAD")?;
        let base = pre_head.ok_or("stage created the root commit")?;
        let log = repo.vcs.log(head).map_err(|e| e.to_string())?;
        let mut newer = Vec::new();
        let mut found_base = false;
        for (id, commit) in log {
            if id == base {
                found_base = true;
                break;
            }
            newer.push((id, commit));
        }
        if !found_base {
            return Err("stage rewrote history".into());
        }
        newer.reverse();
        for (id, commit) in newer {
            if commit.parents.len() != 1 {
                return Err("stage made a merge commit".into());
            }
            let parent = commit.parents[0];
            let mut writes = Vec::new();
            for change in repo.vcs.changes(parent, id).map_err(|e| e.to_string())? {
                match change {
                    Change::Removed(path) => {
                        return Err(format!("stage removed '{path}'"));
                    }
                    Change::Added(path) | Change::Modified(path) => {
                        let bytes = repo
                            .vcs
                            .file_at(id, &path)
                            .map_err(|e| e.to_string())?
                            .ok_or("changed path missing from its commit")?;
                        writes.push((path, bytes));
                    }
                }
            }
            commits.push(ReplayCommit { message: commit.message, writes });
            last_new_commit = Some(id);
        }
    }

    let post = snapshot_ctx(ctx);
    let mut fields = Vec::new();
    for ((name, pre_value), (_, post_value)) in pre.iter().zip(&post) {
        if pre_value == post_value {
            continue;
        }
        if name == "commit" {
            // A commit id is clock-dependent, so the entry stores *which*
            // commit to point at (the one replay lands), not the id.
            match post_value.split_first() {
                Some((&OPT_NONE, [])) => fields.push((name.clone(), vec![OPT_NONE])),
                Some((&OPT_SOME, id_bytes)) => {
                    let id = ObjectId(id_bytes.try_into().map_err(|_| "bad commit id length")?);
                    if Some(id) != last_new_commit {
                        return Err("stage set a commit it did not make".into());
                    }
                    fields.push((name.clone(), vec![COMMIT_REPLAYED]));
                }
                _ => return Err("bad commit encoding".into()),
            }
        } else {
            fields.push((name.clone(), post_value.clone()));
        }
    }
    Ok(StageEntry { stop: control == StageControl::Stop, duration_us, fields, commits })
}

/// Re-apply a recorded entry: land its commits (skipping any whose
/// bytes are already in the working tree — warm runs stay churn-free,
/// tampered artifacts are restored) and decode its field deltas.
fn replay_entry(
    repo: &mut PopperRepo,
    ctx: &mut RunContext,
    entry: &StageEntry,
) -> Result<StageControl, String> {
    let mut replayed_commit = None;
    for commit in &entry.commits {
        let unchanged = commit
            .writes
            .iter()
            .all(|(path, bytes)| repo.vcs.read_file(path) == Some(bytes.as_slice()));
        if unchanged {
            continue;
        }
        for (path, bytes) in &commit.writes {
            repo.write(path, bytes.clone()).map_err(|e| e.to_string())?;
        }
        replayed_commit = Some(repo.commit(&commit.message).map_err(|e| e.to_string())?);
    }
    for (name, value) in &entry.fields {
        apply_field(ctx, name, value, replayed_commit)?;
    }
    Ok(if entry.stop { StageControl::Stop } else { StageControl::Continue })
}

/// Run one pipeline stage through the context's memo session (execute
/// directly when none is attached or it is poisoned).
pub(crate) fn execute_stage(
    repo: &mut PopperRepo,
    ctx: &mut RunContext,
    index: usize,
    stage: Stage<'_>,
) -> Result<StageControl, String> {
    if !ctx.memo.as_ref().map(MemoSession::active).unwrap_or(false) {
        return (stage.f)(repo, ctx);
    }
    let vars_json = json::to_string(&ctx.vars);
    let key = ctx
        .memo
        .as_ref()
        .expect("checked above")
        .stage_key(index, stage.name, &vars_json);

    if let Some(entry) = MemoTable::lookup(&repo.vcs, &key) {
        let control = replay_entry(repo, ctx, &entry)?;
        let session = ctx.memo.as_mut().expect("still attached");
        session.stats.hit(stage.name, entry.duration_us);
        session.advance(&entry);
        return Ok(control);
    }

    let pre = snapshot_ctx(ctx);
    let pre_head = repo.vcs.head_commit();
    let started = std::time::Instant::now();
    let control = (stage.f)(repo, ctx)?;
    let duration_us = started.elapsed().as_micros() as u64;
    let session_entry = capture_entry(repo, ctx, &pre, pre_head, control, duration_us);
    let session = ctx.memo.as_mut().expect("still attached");
    session.stats.miss(stage.name);
    match session_entry {
        Ok(entry) => {
            session.advance(&entry);
            MemoTable::store(&mut repo.vcs, &key, &entry)?;
        }
        Err(_unrecordable) => session.poison(),
    }
    Ok(control)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use crate::templates::find_template;

    fn seeded_repo(template: &str, name: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("memo-test").unwrap();
        for (path, contents) in find_template(template).unwrap().files(name) {
            repo.write(&path, contents).unwrap();
        }
        repo.commit(&format!("add {template} {name}")).unwrap();
        repo
    }

    #[test]
    fn input_manifest_ignores_generated_artifacts() {
        let mut repo = seeded_repo("ceph-rados", "e");
        let before = lifecycle_session(&repo, "e", "run", &[]);
        repo.write("experiments/e/results.csv", "a\n1\n").unwrap();
        repo.write("experiments/e/datasets/baseline.csv", "b\n2\n").unwrap();
        repo.commit("generated artifacts land").unwrap();
        let after = lifecycle_session(&repo, "e", "run", &[]);
        assert_eq!(before.stage_key(0, "s", "{}"), after.stage_key(0, "s", "{}"));
        // …but editing a real input changes every key.
        repo.write("experiments/e/vars.pml", "runner: synthetic\nmodel:\n  seed: 9\n").unwrap();
        let edited = lifecycle_session(&repo, "e", "run", &[]);
        assert_ne!(before.stage_key(0, "s", "{}"), edited.stage_key(0, "s", "{}"));
    }

    #[test]
    fn mode_and_salt_namespace_the_cache() {
        let repo = seeded_repo("gassyfs", "g");
        let run = lifecycle_session(&repo, "g", "run", &[]);
        let chaos = lifecycle_session(&repo, "g", "chaos", &[]);
        assert_ne!(run.stage_key(0, "s", "{}"), chaos.stage_key(0, "s", "{}"));
        let salted = lifecycle_session(
            &repo,
            "g",
            "chaos",
            &[("seed".to_string(), "7".to_string())],
        );
        assert_ne!(chaos.stage_key(0, "s", "{}"), salted.stage_key(0, "s", "{}"));
    }

    #[test]
    fn gate_and_verdict_codecs_round_trip() {
        for gate in [
            GateOutcome::Proceed,
            GateOutcome::Blocked(vec![("cpu_score".into(), 1.0, 0.5, 0.5), ("ram".into(), 2.0, 1.0, 0.5)]),
        ] {
            assert_eq!(decode_gate(&encode_gate(&gate)).unwrap(), gate);
        }
        let verdict = Verdict {
            passed: false,
            failures: vec!["expect x > 1 failed".into()],
            assertions: 3,
            groups: 2,
        };
        assert_eq!(decode_verdict(&encode_verdict(&verdict)).unwrap(), verdict);
    }

    #[test]
    fn artifact_codec_round_trips() {
        let mut set = ArtifactSet::default();
        set.stage("experiments/e/results.csv", b"a,b\n1,2\n".to_vec());
        set.stage("experiments/e/figure.txt", vec![0u8, 255, 3]);
        let decoded = decode_artifacts(&encode_artifacts(&set)).unwrap();
        assert_eq!(decoded.staged(), set.staged());
        assert!(decode_artifacts(&encode_artifacts(&ArtifactSet::default())).unwrap().is_empty());
        assert!(decode_artifacts(&[1, 2, 3]).is_err());
    }

    #[test]
    fn capture_and_replay_round_trip_a_committing_stage() {
        let mut repo = seeded_repo("ceph-rados", "e");
        let mut ctx = RunContext::for_experiment(&repo, "e")
            .unwrap()
            .with_memo(lifecycle_session(&repo, "e", "run", &[]));
        let body = |repo: &mut PopperRepo, ctx: &mut RunContext| {
            ctx.orchestration = "did things".into();
            ctx.artifacts.stage("experiments/e/results.csv", "payload");
            ctx.commit = ctx
                .artifacts
                .commit_into(repo, "record out", crate::pipeline::CommitPolicy::Always)?;
            Ok(StageControl::Continue)
        };
        Pipeline::new("run e").stage("record", body).run(&mut repo, &mut ctx).unwrap();
        let cold_commit = ctx.commit.expect("cold run commits");
        let cold_stats = ctx.memo_stats().unwrap().clone();
        assert_eq!((cold_stats.hits(), cold_stats.misses()), (0, 1));

        // Warm: same pipeline, fresh context — the stage body panics if
        // it ever executes.
        let mut warm_ctx = RunContext::for_experiment(&repo, "e")
            .unwrap()
            .with_memo(lifecycle_session(&repo, "e", "run", &[]));
        Pipeline::new("run e")
            .stage("record", |_r: &mut PopperRepo, _c: &mut RunContext| {
                panic!("stage body must not execute on a hit")
            })
            .run(&mut repo, &mut warm_ctx)
            .unwrap();
        let stats = warm_ctx.memo_stats().unwrap();
        assert_eq!((stats.hits(), stats.misses()), (1, 0));
        assert_eq!(warm_ctx.orchestration, "did things");
        // Bytes unchanged ⇒ the replay skipped the commit and cleared
        // the commit field rather than inventing provenance.
        assert_eq!(repo.vcs.head_commit(), Some(cold_commit));
        assert_eq!(warm_ctx.commit, None);
        assert_eq!(repo.read("experiments/e/results.csv").as_deref(), Some("payload"));

        // Tamper with the artifact: replay restores the bytes and lands
        // a commit this time.
        repo.write("experiments/e/results.csv", "tampered").unwrap();
        repo.commit("tamper").unwrap();
        let mut restore_ctx = RunContext::for_experiment(&repo, "e")
            .unwrap()
            .with_memo(lifecycle_session(&repo, "e", "run", &[]));
        Pipeline::new("run e")
            .stage("record", |_r: &mut PopperRepo, _c: &mut RunContext| {
                panic!("stage body must not execute on a hit")
            })
            .run(&mut repo, &mut restore_ctx)
            .unwrap();
        assert_eq!(repo.read("experiments/e/results.csv").as_deref(), Some("payload"));
        assert_eq!(restore_ctx.commit, repo.vcs.head_commit());
    }

    #[test]
    fn unrecordable_effects_poison_the_session_instead_of_caching() {
        let mut repo = seeded_repo("ceph-rados", "e");
        repo.write("experiments/e/doomed.txt", "bytes").unwrap();
        repo.commit("add doomed file").unwrap();
        let mut ctx = RunContext::for_experiment(&repo, "e")
            .unwrap()
            .with_memo(lifecycle_session(&repo, "e", "run", &[]));
        let removal = |repo: &mut PopperRepo, _ctx: &mut RunContext| {
            assert!(repo.vcs.remove_file("experiments/e/doomed.txt"));
            repo.commit("remove doomed").map_err(|e| e.to_string())?;
            Ok(StageControl::Continue)
        };
        let executed = std::cell::Cell::new(false);
        Pipeline::new("run e")
            .stage("remove", removal)
            .stage("after", |_r, _c| {
                executed.set(true);
                Ok(StageControl::Continue)
            })
            .run(&mut repo, &mut ctx)
            .unwrap();
        assert!(executed.get());
        let stats = ctx.memo_stats().unwrap();
        assert_eq!((stats.hits(), stats.misses()), (0, 2));

        // Nothing downstream of the unrecordable stage may ever hit.
        let ran_again = std::cell::Cell::new(0);
        let mut ctx2 = RunContext::for_experiment(&repo, "e")
            .unwrap()
            .with_memo(lifecycle_session(&repo, "e", "run", &[]));
        Pipeline::new("run e")
            .stage("noop", |_r, _c| {
                ran_again.set(ran_again.get() + 1);
                Ok(StageControl::Continue)
            })
            .run(&mut repo, &mut ctx2)
            .unwrap();
        assert_eq!(ran_again.get(), 1, "fresh input state, fresh keys: stage executes");
    }
}
