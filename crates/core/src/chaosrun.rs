//! The chaos experiment lifecycle: `popper chaos <experiment>`.
//!
//! A chaos run is the ordinary lifecycle with a fault plane switched
//! on: resolve the fault schedule (from `--schedule`/`--seed`
//! overrides, the experiment's `faults:` spec in `vars.pml`, or the
//! `node-crash` default), hand the augmented vars to the experiment's
//! runner (fault-aware runners drive a [`popper_chaos::ChaosDriver`]
//! against the simulated cluster), then record `results.csv`,
//! `faults.json` and `recovery.json` as committed artifacts and check
//! the experiment's `chaos.aver` (or the
//! [`popper_chaos::DEFAULT_ASSERTIONS`]) over the results.

use crate::experiment::ExperimentEngine;
use crate::pipeline::{stages, CommitPolicy, Pipeline, RunContext, StageControl};
use crate::repo::PopperRepo;
use popper_aver::Verdict;
use popper_chaos::FaultSchedule;
use popper_format::{json, Table, Value};
use std::fmt;

/// The outcome of one `popper chaos` run.
#[derive(Debug)]
pub struct ChaosRunReport {
    /// Experiment name.
    pub experiment: String,
    /// The resolved fault schedule (what `faults.json` records).
    pub schedule: FaultSchedule,
    /// The results table.
    pub results: Table,
    /// The recovery metrics recorded to `recovery.json`.
    pub metrics: Value,
    /// The Aver verdict over the results (`chaos.aver` or defaults).
    pub verdict: Verdict,
    /// The commit that recorded the artifacts.
    pub commit: Option<popper_vcs::ObjectId>,
}

impl ChaosRunReport {
    /// Did the system survive the schedule (validations hold)?
    pub fn success(&self) -> bool {
        self.verdict.passed
    }

    /// Distill a completed chaos pipeline context into the report.
    pub fn from_ctx(ctx: RunContext) -> Result<ChaosRunReport, String> {
        let schedule = ctx
            .schedule
            .ok_or_else(|| format!("experiment '{}': no fault schedule resolved", ctx.experiment))?;
        let verdict = ctx
            .verdict
            .unwrap_or(Verdict { passed: true, failures: vec![], assertions: 0, groups: 0 });
        Ok(ChaosRunReport {
            experiment: ctx.experiment,
            schedule,
            results: ctx.results.unwrap_or_else(|| Table::new(["empty"])),
            metrics: ctx.metrics,
            verdict,
            commit: ctx.commit,
        })
    }
}

impl fmt::Display for ChaosRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos '{}' [{} seed {}]: {}",
            self.experiment,
            self.schedule.name,
            self.schedule.seed,
            if self.success() { "SURVIVED" } else { "FAILED" }
        )?;
        writeln!(f, "  faults: {} events over {} nodes", self.schedule.events.len(), self.schedule.nodes)?;
        if let Some(r) = self.metrics.get_num("recovery_ms") {
            writeln!(f, "  recovery: {r:.2} ms")?;
        }
        if let Some(d) = self.metrics.get_num("degraded_fraction") {
            writeln!(f, "  degraded: {:.1}% of accesses", d * 100.0)?;
        }
        write!(f, "  validation: {}", self.verdict)
    }
}

impl ExperimentEngine {
    /// Run one chaos experiment end to end. `schedule`/`seed` override
    /// the experiment's own `faults:` spec; with neither, `node-crash`
    /// is assumed. Lifecycle stages are traced on `core/lifecycle`.
    pub fn run_chaos(
        &self,
        repo: &mut PopperRepo,
        experiment: &str,
        schedule: Option<&str>,
        seed: Option<u64>,
    ) -> Result<ChaosRunReport, String> {
        let mut ctx = RunContext::for_experiment(repo, experiment)?;
        self.chaos_pipeline(repo, &mut ctx, schedule, seed)?;
        ChaosRunReport::from_ctx(ctx)
    }

    /// The `popper chaos` stage composition: the ordinary lifecycle
    /// with a fault-arming decorator ahead of the *shared* execute
    /// stage — schedule → execute → record → validate.
    pub fn chaos_pipeline(
        &self,
        repo: &mut PopperRepo,
        ctx: &mut RunContext,
        schedule: Option<&str>,
        seed: Option<u64>,
    ) -> Result<(), String> {
        let runner_name = ctx.runner_name()?;
        if self.runner(runner_name).is_none() {
            return Err(format!("unknown runner '{runner_name}' (registered: {:?})", self.runners()));
        }
        Pipeline::new(format!("chaos {}", ctx.experiment))
            .stage("schedule", arm_faults(schedule.map(str::to_string), seed))
            .stage("execute", stages::execute(self))
            .stage("record", record_chaos())
            .stage("validate", stages::validate(stages::ValidationSource::Chaos))
            .run(repo, ctx)
    }
}

/// The fault-replay decorator: resolve the schedule (overrides >
/// `vars.pml` `faults:` > the `node-crash` default), arm it on the
/// context, and augment the vars so the shared execute stage's runner
/// replays it.
fn arm_faults(
    schedule: Option<String>,
    seed: Option<u64>,
) -> impl FnOnce(&mut PopperRepo, &mut RunContext) -> Result<StageControl, String> {
    move |_repo, ctx| {
        let mut faults = ctx.vars.get("faults").cloned().unwrap_or_else(Value::empty_map);
        if let Some(name) = schedule {
            faults.insert("schedule", Value::from(name.as_str()));
            faults.remove("events");
        }
        if let Some(seed) = seed {
            faults.insert("seed", Value::from(seed as i64));
        }
        if faults.get("schedule").is_none() && faults.get("events").is_none() {
            faults.insert("schedule", Value::from("node-crash"));
        }
        ctx.vars.insert("faults", faults);
        ctx.schedule = Some(FaultSchedule::from_vars(&ctx.vars)?.ok_or_else(|| {
            format!("experiment '{}': no fault schedule resolved", ctx.experiment)
        })?);
        Ok(StageControl::Continue)
    }
}

/// The chaos record stage: results + fault timeline + recovery
/// metrics + figure, committed as one atomic unit.
fn record_chaos() -> impl FnOnce(&mut PopperRepo, &mut RunContext) -> Result<StageControl, String> {
    move |repo, ctx| {
        let results = ctx.results.as_ref().ok_or("record: no results to record")?;
        let sched = ctx.schedule.as_ref().ok_or("record: no fault schedule armed")?;
        ctx.metrics = recovery_metrics(results, sched);
        let staged = vec![
            (ctx.artifact_path("results.csv"), results.to_csv()),
            (ctx.artifact_path("faults.json"), sched.to_json()),
            (ctx.artifact_path("recovery.json"), json::to_string_pretty(&ctx.metrics)),
            (ctx.artifact_path("figure.txt"), results.to_pretty()),
        ];
        for (path, bytes) in staged {
            ctx.artifacts.stage(path, bytes);
        }
        let msg =
            format!("popper chaos {}: record fault timeline + recovery metrics", ctx.experiment);
        ctx.commit = ctx.artifacts.commit_into(repo, &msg, CommitPolicy::Always)?;
        Ok(StageControl::Continue)
    }
}

/// Distill recovery metrics from a chaos results table. Aggregate
/// columns (`recovery_ms`, `degraded_fraction`, `corrupt`) repeat per
/// row, so they reduce by max; per-epoch counters reduce by sum.
fn recovery_metrics(results: &Table, sched: &FaultSchedule) -> Value {
    let mut m = Value::empty_map();
    m.insert("schedule", Value::from(sched.name.as_str()));
    m.insert("seed", Value::from(sched.seed as i64));
    m.insert("faults", Value::from(sched.events.len()));
    let col = |name: &str| results.numeric_column(name).ok();
    for (name, vals) in [("recovery_ms", col("recovery_ms")), ("degraded_fraction", col("degraded_fraction")), ("corrupt", col("corrupt"))] {
        if let Some(vals) = vals {
            m.insert(name, Value::Num(vals.iter().cloned().fold(0.0f64, f64::max)));
        }
    }
    for (name, vals) in [
        ("failovers", col("failovers")),
        ("reads", col("reads")),
        ("detections", col("detections")),
        ("checkpoints", col("checkpoints")),
        ("replayed", col("replayed")),
    ] {
        if let Some(vals) = vals {
            m.insert(name, Value::Num(vals.iter().sum()));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn chaos_repo() -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("gassyfs").unwrap().files("g") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("popper add gassyfs g").unwrap();
        repo
    }

    /// A miniature fault-aware runner: shapes its table like the real
    /// gassyfs chaos runner, driven entirely by the `faults:` vars.
    fn stub_engine() -> ExperimentEngine {
        let mut engine = ExperimentEngine::new();
        engine.register("gassyfs-scalability", |vars| {
            let sched = FaultSchedule::from_vars(vars)?.expect("chaos vars present");
            let mut t = Table::new(["schedule", "epoch", "recovery_ms", "degraded_fraction", "corrupt", "failovers"]);
            for epoch in 0..4u32 {
                t.push_row(vec![
                    Value::from(sched.name.as_str()),
                    Value::from(epoch as i64),
                    Value::Num(80.0 + sched.seed as f64),
                    Value::Num(0.2),
                    Value::Num(0.0),
                    Value::Num(epoch as f64),
                ])
                .unwrap();
            }
            Ok(t)
        });
        engine
    }

    #[test]
    fn chaos_lifecycle_records_artifacts_and_validates() {
        let mut repo = chaos_repo();
        let engine = stub_engine();
        let report = engine.run_chaos(&mut repo, "g", Some("node-crash"), Some(7)).unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        assert_eq!(report.schedule.name, "node-crash");
        assert_eq!(report.schedule.seed, 7);
        assert!(repo.exists("experiments/g/results.csv"));
        assert!(repo.exists("experiments/g/faults.json"));
        assert!(repo.exists("experiments/g/recovery.json"));
        assert!(repo.vcs.status().unwrap().is_empty(), "artifacts must be committed");
        assert_eq!(report.metrics.get_num("recovery_ms"), Some(87.0));
        assert_eq!(report.metrics.get_num("failovers"), Some(6.0));
        let faults = repo.read("experiments/g/faults.json").unwrap();
        assert!(faults.contains("crash"), "{faults}");
    }

    #[test]
    fn same_seed_records_identical_fault_timeline() {
        let run = |seed| {
            let mut repo = chaos_repo();
            stub_engine().run_chaos(&mut repo, "g", Some("gremlin"), Some(seed)).unwrap();
            repo.read("experiments/g/faults.json").unwrap()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn chaos_aver_overrides_default_assertions() {
        let mut repo = chaos_repo();
        repo.write("experiments/g/chaos.aver", "expect max(recovery_ms) < 1\n").unwrap();
        repo.commit("impossible chaos bound").unwrap();
        let report = stub_engine().run_chaos(&mut repo, "g", None, None).unwrap();
        assert!(!report.success(), "1ms recovery bound must fail");
        // Default schedule kicked in even with no overrides.
        assert_eq!(report.schedule.name, "node-crash");
    }

    #[test]
    fn unknown_runner_is_an_error() {
        let mut repo = chaos_repo();
        let engine = ExperimentEngine::new();
        let err = engine.run_chaos(&mut repo, "g", None, None).unwrap_err();
        assert!(err.contains("unknown runner"), "{err}");
    }
}
