//! The chaos experiment lifecycle: `popper chaos <experiment>`.
//!
//! A chaos run is the ordinary lifecycle with a fault plane switched
//! on: resolve the fault schedule (from `--schedule`/`--seed`
//! overrides, the experiment's `faults:` spec in `vars.pml`, or the
//! `node-crash` default), hand the augmented vars to the experiment's
//! runner (fault-aware runners drive a [`popper_chaos::ChaosDriver`]
//! against the simulated cluster), then record `results.csv`,
//! `faults.json` and `recovery.json` as committed artifacts and check
//! the experiment's `chaos.aver` (or the
//! [`popper_chaos::DEFAULT_ASSERTIONS`]) over the results.

use crate::experiment::ExperimentEngine;
use crate::repo::PopperRepo;
use popper_aver::Verdict;
use popper_chaos::FaultSchedule;
use popper_format::{json, Table, Value};
use std::fmt;

/// The outcome of one `popper chaos` run.
#[derive(Debug)]
pub struct ChaosRunReport {
    /// Experiment name.
    pub experiment: String,
    /// The resolved fault schedule (what `faults.json` records).
    pub schedule: FaultSchedule,
    /// The results table.
    pub results: Table,
    /// The recovery metrics recorded to `recovery.json`.
    pub metrics: Value,
    /// The Aver verdict over the results (`chaos.aver` or defaults).
    pub verdict: Verdict,
    /// The commit that recorded the artifacts.
    pub commit: Option<popper_vcs::ObjectId>,
}

impl ChaosRunReport {
    /// Did the system survive the schedule (validations hold)?
    pub fn success(&self) -> bool {
        self.verdict.passed
    }
}

impl fmt::Display for ChaosRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos '{}' [{} seed {}]: {}",
            self.experiment,
            self.schedule.name,
            self.schedule.seed,
            if self.success() { "SURVIVED" } else { "FAILED" }
        )?;
        writeln!(f, "  faults: {} events over {} nodes", self.schedule.events.len(), self.schedule.nodes)?;
        if let Some(r) = self.metrics.get_num("recovery_ms") {
            writeln!(f, "  recovery: {r:.2} ms")?;
        }
        if let Some(d) = self.metrics.get_num("degraded_fraction") {
            writeln!(f, "  degraded: {:.1}% of accesses", d * 100.0)?;
        }
        write!(f, "  validation: {}", self.verdict)
    }
}

impl ExperimentEngine {
    /// Run one chaos experiment end to end. `schedule`/`seed` override
    /// the experiment's own `faults:` spec; with neither, `node-crash`
    /// is assumed. Lifecycle stages are traced on `core/lifecycle`.
    pub fn run_chaos(
        &self,
        repo: &mut PopperRepo,
        experiment: &str,
        schedule: Option<&str>,
        seed: Option<u64>,
    ) -> Result<ChaosRunReport, String> {
        let tracer = popper_trace::current();
        let _run_span = tracer.span("core", "core/lifecycle", format!("chaos {experiment}"));
        let mut vars = repo.experiment_vars(experiment)?;
        let runner_name = vars
            .get_str("runner")
            .ok_or_else(|| format!("experiment '{experiment}': vars.pml has no 'runner'"))?
            .to_string();
        let runner = self
            .runner(&runner_name)
            .ok_or_else(|| format!("unknown runner '{runner_name}' (registered: {:?})", self.runners()))?;

        // Resolve the schedule: overrides > vars.pml faults: > default.
        let sched = {
            let _s = tracer.span("core", "core/lifecycle", "schedule");
            let mut faults = vars.get("faults").cloned().unwrap_or_else(Value::empty_map);
            if let Some(name) = schedule {
                faults.insert("schedule", Value::from(name));
                faults.remove("events");
            }
            if let Some(seed) = seed {
                faults.insert("seed", Value::from(seed as i64));
            }
            if faults.get("schedule").is_none() && faults.get("events").is_none() {
                faults.insert("schedule", Value::from("node-crash"));
            }
            vars.insert("faults", faults);
            FaultSchedule::from_vars(&vars)?
                .ok_or_else(|| format!("experiment '{experiment}': no fault schedule resolved"))?
        };

        // Execute with the fault plane on (the runner sees `faults:`).
        let results = {
            let _s = tracer.span("core", "core/lifecycle", "execute");
            runner(&vars)?
        };
        let metrics = recovery_metrics(&results, &sched);

        // Record: results + fault timeline + recovery metrics, committed.
        let record_span = tracer.span("core", "core/lifecycle", "record");
        let dir = format!("experiments/{experiment}");
        repo.write(&format!("{dir}/results.csv"), results.to_csv().into_bytes())
            .map_err(|e| e.to_string())?;
        repo.write(&format!("{dir}/faults.json"), sched.to_json().into_bytes())
            .map_err(|e| e.to_string())?;
        repo.write(&format!("{dir}/recovery.json"), json::to_string_pretty(&metrics).into_bytes())
            .map_err(|e| e.to_string())?;
        repo.write(&format!("{dir}/figure.txt"), results.to_pretty().into_bytes())
            .map_err(|e| e.to_string())?;
        let commit = repo
            .commit(&format!("popper chaos {experiment}: record fault timeline + recovery metrics"))
            .map_err(|e| e.to_string())?;
        drop(record_span);

        // Validate resilience claims.
        let verdict = {
            let _s = tracer.span("core", "core/lifecycle", "validate");
            let src = repo
                .read(&format!("{dir}/chaos.aver"))
                .unwrap_or_else(|| popper_chaos::DEFAULT_ASSERTIONS.to_string());
            popper_aver::check(&src, &results).map_err(|e| e.to_string())?
        };

        Ok(ChaosRunReport {
            experiment: experiment.to_string(),
            schedule: sched,
            results,
            metrics,
            verdict,
            commit: Some(commit),
        })
    }
}

/// Distill recovery metrics from a chaos results table. Aggregate
/// columns (`recovery_ms`, `degraded_fraction`, `corrupt`) repeat per
/// row, so they reduce by max; per-epoch counters reduce by sum.
fn recovery_metrics(results: &Table, sched: &FaultSchedule) -> Value {
    let mut m = Value::empty_map();
    m.insert("schedule", Value::from(sched.name.as_str()));
    m.insert("seed", Value::from(sched.seed as i64));
    m.insert("faults", Value::from(sched.events.len()));
    let col = |name: &str| results.numeric_column(name).ok();
    for (name, vals) in [("recovery_ms", col("recovery_ms")), ("degraded_fraction", col("degraded_fraction")), ("corrupt", col("corrupt"))] {
        if let Some(vals) = vals {
            m.insert(name, Value::Num(vals.iter().cloned().fold(0.0f64, f64::max)));
        }
    }
    for (name, vals) in [("failovers", col("failovers")), ("reads", col("reads"))] {
        if let Some(vals) = vals {
            m.insert(name, Value::Num(vals.iter().sum()));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn chaos_repo() -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template("gassyfs").unwrap().files("g") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("popper add gassyfs g").unwrap();
        repo
    }

    /// A miniature fault-aware runner: shapes its table like the real
    /// gassyfs chaos runner, driven entirely by the `faults:` vars.
    fn stub_engine() -> ExperimentEngine {
        let mut engine = ExperimentEngine::new();
        engine.register("gassyfs-scalability", |vars| {
            let sched = FaultSchedule::from_vars(vars)?.expect("chaos vars present");
            let mut t = Table::new(["schedule", "epoch", "recovery_ms", "degraded_fraction", "corrupt", "failovers"]);
            for epoch in 0..4u32 {
                t.push_row(vec![
                    Value::from(sched.name.as_str()),
                    Value::from(epoch as i64),
                    Value::Num(80.0 + sched.seed as f64),
                    Value::Num(0.2),
                    Value::Num(0.0),
                    Value::Num(epoch as f64),
                ])
                .unwrap();
            }
            Ok(t)
        });
        engine
    }

    #[test]
    fn chaos_lifecycle_records_artifacts_and_validates() {
        let mut repo = chaos_repo();
        let engine = stub_engine();
        let report = engine.run_chaos(&mut repo, "g", Some("node-crash"), Some(7)).unwrap();
        assert!(report.success(), "{:?}", report.verdict.failures);
        assert_eq!(report.schedule.name, "node-crash");
        assert_eq!(report.schedule.seed, 7);
        assert!(repo.exists("experiments/g/results.csv"));
        assert!(repo.exists("experiments/g/faults.json"));
        assert!(repo.exists("experiments/g/recovery.json"));
        assert!(repo.vcs.status().unwrap().is_empty(), "artifacts must be committed");
        assert_eq!(report.metrics.get_num("recovery_ms"), Some(87.0));
        assert_eq!(report.metrics.get_num("failovers"), Some(6.0));
        let faults = repo.read("experiments/g/faults.json").unwrap();
        assert!(faults.contains("crash"), "{faults}");
    }

    #[test]
    fn same_seed_records_identical_fault_timeline() {
        let run = |seed| {
            let mut repo = chaos_repo();
            stub_engine().run_chaos(&mut repo, "g", Some("gremlin"), Some(seed)).unwrap();
            repo.read("experiments/g/faults.json").unwrap()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn chaos_aver_overrides_default_assertions() {
        let mut repo = chaos_repo();
        repo.write("experiments/g/chaos.aver", "expect max(recovery_ms) < 1\n").unwrap();
        repo.commit("impossible chaos bound").unwrap();
        let report = stub_engine().run_chaos(&mut repo, "g", None, None).unwrap();
        assert!(!report.success(), "1ms recovery bound must fail");
        // Default schedule kicked in even with no overrides.
        assert_eq!(report.schedule.name, "node-crash");
    }

    #[test]
    fn unknown_runner_is_an_error() {
        let mut repo = chaos_repo();
        let engine = ExperimentEngine::new();
        let err = engine.run_chaos(&mut repo, "g", None, None).unwrap_err();
        assert!(err.contains("unknown runner"), "{err}");
    }
}
