//! The numerical-reproducibility lifecycle: `popper verify <exp>`.
//!
//! §Discussion, *Numerical vs. Performance Reproducibility*: does
//! re-executing the experiment produce the *same numerical values* as
//! the recorded artifact? Unlike the other lifecycles this one records
//! nothing — it re-runs the runner in memory and byte-compares against
//! the committed `results.csv`.

use crate::experiment::ExperimentEngine;
use crate::repo::PopperRepo;
use std::fmt;

/// The outcome of a numerical-reproducibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum ReproVerdict {
    /// Re-execution reproduced `results.csv` byte for byte.
    Identical,
    /// Re-execution differs; carries a unified diff of the CSVs.
    Differs(String),
    /// Nothing recorded yet; run the experiment first.
    NoStoredResults,
}

impl fmt::Display for ReproVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproVerdict::Identical => write!(f, "numerically reproducible: re-execution is byte-identical"),
            ReproVerdict::Differs(diff) => write!(f, "NOT reproducible; results drifted:\n{diff}"),
            ReproVerdict::NoStoredResults => write!(f, "no recorded results.csv to verify against"),
        }
    }
}

impl ExperimentEngine {
    /// Re-execute `experiment`'s runner (no recording, no commits) and
    /// compare against the stored `results.csv`.
    pub fn verify(&self, repo: &PopperRepo, experiment: &str) -> Result<ReproVerdict, String> {
        let Some(stored) = repo.read(&format!("experiments/{experiment}/results.csv")) else {
            return Ok(ReproVerdict::NoStoredResults);
        };
        let vars = repo.experiment_vars(experiment)?;
        let runner_name = vars
            .get_str("runner")
            .ok_or_else(|| format!("experiment '{experiment}': vars.pml has no 'runner'"))?;
        let runner = self
            .runner(runner_name)
            .ok_or_else(|| format!("unknown runner '{runner_name}'"))?;
        let fresh = runner(&vars)?.to_csv();
        if fresh == stored {
            Ok(ReproVerdict::Identical)
        } else {
            let diff = popper_vcs::diff::unified("recorded/results.csv", "reexecuted/results.csv", &stored, &fresh, 2);
            Ok(ReproVerdict::Differs(diff))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn repo_with(tpl: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files("e") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        repo
    }

    #[test]
    fn verify_confirms_deterministic_reexecution() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        assert_eq!(engine.verify(&repo, "e").unwrap(), ReproVerdict::NoStoredResults);
        engine.run(&mut repo, "e").unwrap();
        assert_eq!(engine.verify(&repo, "e").unwrap(), ReproVerdict::Identical);
    }

    #[test]
    fn verify_catches_drift() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        // The recorded artifact is tampered with (or the run drifted).
        let csv = repo.read("experiments/e/results.csv").unwrap();
        let tampered = csv.replacen("80", "81", 1);
        assert_ne!(csv, tampered);
        repo.write("experiments/e/results.csv", tampered).unwrap();
        repo.commit("tamper").unwrap();
        match engine.verify(&repo, "e").unwrap() {
            ReproVerdict::Differs(diff) => {
                assert!(diff.contains("-"), "{diff}");
                assert!(diff.contains("recorded/results.csv"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verify_catches_parameter_changes_too() {
        // Changing vars without re-running: stored results no longer
        // reproduce — exactly the staleness Popper wants caught.
        let mut repo = repo_with("cloverleaf");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        let vars = repo.read("experiments/e/vars.pml").unwrap();
        repo.write("experiments/e/vars.pml", vars.replace("[1, 2, 4, 8, 16]", "[1, 2, 4]")).unwrap();
        repo.commit("shrink sweep without rerunning").unwrap();
        assert!(matches!(engine.verify(&repo, "e").unwrap(), ReproVerdict::Differs(_)));
    }
}
