//! The numerical-reproducibility lifecycle: `popper verify <exp>`.
//!
//! §Discussion, *Numerical vs. Performance Reproducibility*: does
//! re-executing the experiment produce the *same numerical values* as
//! the recorded artifact? Like every other lifecycle this is a stage
//! composition over the shared [`Pipeline`] engine — load the recorded
//! `results.csv`, re-run the experiment's runner through the *shared*
//! execute stage, byte-compare, and record the verdict. The record
//! stage uses [`CommitPolicy::IfChanged`], so re-verifying an
//! unchanged experiment is idempotent: no new commit, no churn.

use crate::experiment::ExperimentEngine;
use crate::pipeline::{stages, CommitPolicy, Pipeline, RunContext, StageControl};
use crate::repo::PopperRepo;
use popper_format::{json, Value};
use std::cell::RefCell;
use std::fmt;

/// The outcome of a numerical-reproducibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum ReproVerdict {
    /// Re-execution reproduced `results.csv` byte for byte.
    Identical,
    /// Re-execution differs; carries a unified diff of the CSVs.
    Differs(String),
    /// Nothing recorded yet; run the experiment first.
    NoStoredResults,
}

impl ReproVerdict {
    /// Short status label for `verify.json`.
    fn status(&self) -> &'static str {
        match self {
            ReproVerdict::Identical => "identical",
            ReproVerdict::Differs(_) => "differs",
            ReproVerdict::NoStoredResults => "no-stored-results",
        }
    }
}

impl fmt::Display for ReproVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproVerdict::Identical => write!(f, "numerically reproducible: re-execution is byte-identical"),
            ReproVerdict::Differs(diff) => write!(f, "NOT reproducible; results drifted:\n{diff}"),
            ReproVerdict::NoStoredResults => write!(f, "no recorded results.csv to verify against"),
        }
    }
}

impl ExperimentEngine {
    /// Re-execute `experiment`'s runner and compare against the stored
    /// `results.csv`, as a load → execute → compare → record pipeline.
    /// The verdict is recorded to `experiments/<exp>/verify.json`
    /// (committed only when it changed).
    pub fn verify(&self, repo: &mut PopperRepo, experiment: &str) -> Result<ReproVerdict, String> {
        let mut ctx = RunContext::for_experiment(repo, experiment)?;
        let stored: RefCell<Option<String>> = RefCell::new(None);
        let verdict: RefCell<Option<ReproVerdict>> = RefCell::new(None);
        Pipeline::new(format!("verify {experiment}"))
            .stage("load", |repo, ctx| match repo.read(&ctx.artifact_path("results.csv")) {
                Some(s) => {
                    *stored.borrow_mut() = Some(s);
                    Ok(StageControl::Continue)
                }
                None => {
                    *verdict.borrow_mut() = Some(ReproVerdict::NoStoredResults);
                    Ok(StageControl::Stop)
                }
            })
            .stage("execute", stages::execute(self))
            .stage("compare", |_repo, ctx| {
                let stored = stored.borrow_mut().take().expect("load stage ran");
                let fresh =
                    ctx.results.as_ref().ok_or("compare: no re-executed results")?.to_csv();
                *verdict.borrow_mut() = Some(if fresh == stored {
                    ReproVerdict::Identical
                } else {
                    ReproVerdict::Differs(popper_vcs::diff::unified(
                        "recorded/results.csv",
                        "reexecuted/results.csv",
                        &stored,
                        &fresh,
                        2,
                    ))
                });
                Ok(StageControl::Continue)
            })
            .stage("record", |repo, ctx| {
                let borrowed = verdict.borrow();
                let v = borrowed.as_ref().expect("compare stage ran");
                let mut m = Value::empty_map();
                m.insert("experiment", Value::from(ctx.experiment.as_str()));
                m.insert("status", Value::from(v.status()));
                ctx.artifacts.stage(ctx.artifact_path("verify.json"), json::to_string_pretty(&m));
                let msg =
                    format!("popper verify {}: record reproducibility verdict", ctx.experiment);
                ctx.commit = ctx.artifacts.commit_into(repo, &msg, CommitPolicy::IfChanged)?;
                Ok(StageControl::Continue)
            })
            .run(repo, &mut ctx)?;
        verdict
            .into_inner()
            .ok_or_else(|| format!("experiment '{experiment}': verify produced no verdict"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn repo_with(tpl: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files("e") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        repo
    }

    #[test]
    fn verify_confirms_deterministic_reexecution() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::NoStoredResults);
        engine.run(&mut repo, "e").unwrap();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Identical);
    }

    #[test]
    fn verify_catches_drift() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        // The recorded artifact is tampered with (or the run drifted).
        let csv = repo.read("experiments/e/results.csv").unwrap();
        let tampered = csv.replacen("80", "81", 1);
        assert_ne!(csv, tampered);
        repo.write("experiments/e/results.csv", tampered).unwrap();
        repo.commit("tamper").unwrap();
        match engine.verify(&mut repo, "e").unwrap() {
            ReproVerdict::Differs(diff) => {
                assert!(diff.contains("-"), "{diff}");
                assert!(diff.contains("recorded/results.csv"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verify_catches_parameter_changes_too() {
        // Changing vars without re-running: stored results no longer
        // reproduce — exactly the staleness Popper wants caught.
        let mut repo = repo_with("cloverleaf");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        let vars = repo.read("experiments/e/vars.pml").unwrap();
        repo.write("experiments/e/vars.pml", vars.replace("[1, 2, 4, 8, 16]", "[1, 2, 4]")).unwrap();
        repo.commit("shrink sweep without rerunning").unwrap();
        assert!(matches!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Differs(_)));
    }

    #[test]
    fn verify_records_its_verdict_idempotently() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Identical);
        let recorded = repo.read("experiments/e/verify.json").unwrap();
        assert!(recorded.contains("identical"), "{recorded}");
        assert!(repo.vcs.status().unwrap().is_empty(), "verdict must be committed");
        // Re-verifying an unchanged experiment changes nothing: the
        // IfChanged record stage skips the idempotent re-commit.
        let head = repo.vcs.head_commit().unwrap();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Identical);
        assert_eq!(repo.vcs.head_commit().unwrap(), head, "no churn commit on re-verify");
    }
}
