//! The numerical-reproducibility lifecycle: `popper verify <exp>`.
//!
//! §Discussion, *Numerical vs. Performance Reproducibility*: does
//! re-executing the experiment produce the *same numerical values* as
//! the recorded artifact? Like every other lifecycle this is a stage
//! composition over the shared [`Pipeline`] engine — load the recorded
//! `results.csv`, re-run the experiment's runner through the *shared*
//! execute stage, byte-compare, and record the verdict. The record
//! stage uses [`CommitPolicy::IfChanged`], so re-verifying an
//! unchanged experiment is idempotent: no new commit, no churn.

use crate::experiment::ExperimentEngine;
use crate::pipeline::{stages, CommitPolicy, Pipeline, RunContext, StageControl};
use crate::repo::PopperRepo;
use popper_format::{json, Value};
use std::fmt;

/// The outcome of a numerical-reproducibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum ReproVerdict {
    /// Re-execution reproduced `results.csv` byte for byte.
    Identical,
    /// Re-execution differs; carries a unified diff of the CSVs.
    Differs(String),
    /// Nothing recorded yet; run the experiment first.
    NoStoredResults,
}

impl ReproVerdict {
    /// Reconstruct the verdict from the metrics the verify stages
    /// recorded into the context.
    pub fn from_ctx(ctx: &RunContext) -> Result<ReproVerdict, String> {
        match ctx.metrics.get_str("verify_status") {
            Some("identical") => Ok(ReproVerdict::Identical),
            Some("differs") => Ok(ReproVerdict::Differs(
                ctx.metrics.get_str("verify_diff").unwrap_or_default().to_string(),
            )),
            Some("no-stored-results") => Ok(ReproVerdict::NoStoredResults),
            _ => Err(format!("experiment '{}': verify produced no verdict", ctx.experiment)),
        }
    }
}

impl fmt::Display for ReproVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproVerdict::Identical => write!(f, "numerically reproducible: re-execution is byte-identical"),
            ReproVerdict::Differs(diff) => write!(f, "NOT reproducible; results drifted:\n{diff}"),
            ReproVerdict::NoStoredResults => write!(f, "no recorded results.csv to verify against"),
        }
    }
}

impl ExperimentEngine {
    /// Re-execute `experiment`'s runner and compare against the stored
    /// `results.csv`, as a load → execute → compare → record pipeline.
    /// The verdict is recorded to `experiments/<exp>/verify.json`
    /// (committed only when it changed).
    pub fn verify(&self, repo: &mut PopperRepo, experiment: &str) -> Result<ReproVerdict, String> {
        let mut ctx = RunContext::for_experiment(repo, experiment)?;
        self.verify_pipeline(repo, &mut ctx)?;
        ReproVerdict::from_ctx(&ctx)
    }

    /// The verify stage composition over a caller-built context (the
    /// CLI attaches a memo session before calling this). All
    /// cross-stage state rides in `ctx.metrics` — never in captured
    /// closure state — so a warm prefix of cache hits replays soundly.
    pub fn verify_pipeline(
        &self,
        repo: &mut PopperRepo,
        ctx: &mut RunContext,
    ) -> Result<(), String> {
        let label = format!("verify {}", ctx.experiment);
        Pipeline::new(label)
            .stage("load", |repo, ctx| match repo.read(&ctx.artifact_path("results.csv")) {
                Some(s) => {
                    ctx.metrics.insert("verify_stored", Value::from(s));
                    Ok(StageControl::Continue)
                }
                None => {
                    ctx.metrics.insert("verify_status", Value::from("no-stored-results"));
                    Ok(StageControl::Stop)
                }
            })
            .stage("execute", stages::execute(self))
            .stage("compare", |_repo, ctx| {
                let stored = match ctx.metrics.remove("verify_stored") {
                    Some(Value::Str(s)) => s,
                    _ => return Err("compare: load stage recorded no results".into()),
                };
                let fresh =
                    ctx.results.as_ref().ok_or("compare: no re-executed results")?.to_csv();
                if fresh == stored {
                    ctx.metrics.insert("verify_status", Value::from("identical"));
                } else {
                    ctx.metrics.insert("verify_status", Value::from("differs"));
                    ctx.metrics.insert(
                        "verify_diff",
                        Value::from(popper_vcs::diff::unified(
                            "recorded/results.csv",
                            "reexecuted/results.csv",
                            &stored,
                            &fresh,
                            2,
                        )),
                    );
                }
                Ok(StageControl::Continue)
            })
            .stage("record", |repo, ctx| {
                let status = ctx
                    .metrics
                    .get_str("verify_status")
                    .ok_or("record: compare stage recorded no verdict")?
                    .to_string();
                let mut m = Value::empty_map();
                m.insert("experiment", Value::from(ctx.experiment.as_str()));
                m.insert("status", Value::from(status));
                ctx.artifacts.stage(ctx.artifact_path("verify.json"), json::to_string_pretty(&m));
                let msg =
                    format!("popper verify {}: record reproducibility verdict", ctx.experiment);
                ctx.commit = ctx.artifacts.commit_into(repo, &msg, CommitPolicy::IfChanged)?;
                Ok(StageControl::Continue)
            })
            .run(repo, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn repo_with(tpl: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files("e") {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        repo
    }

    #[test]
    fn verify_confirms_deterministic_reexecution() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::NoStoredResults);
        engine.run(&mut repo, "e").unwrap();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Identical);
    }

    #[test]
    fn verify_catches_drift() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        // The recorded artifact is tampered with (or the run drifted).
        let csv = repo.read("experiments/e/results.csv").unwrap();
        let tampered = csv.replacen("80", "81", 1);
        assert_ne!(csv, tampered);
        repo.write("experiments/e/results.csv", tampered).unwrap();
        repo.commit("tamper").unwrap();
        match engine.verify(&mut repo, "e").unwrap() {
            ReproVerdict::Differs(diff) => {
                assert!(diff.contains("-"), "{diff}");
                assert!(diff.contains("recorded/results.csv"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verify_catches_parameter_changes_too() {
        // Changing vars without re-running: stored results no longer
        // reproduce — exactly the staleness Popper wants caught.
        let mut repo = repo_with("cloverleaf");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        let vars = repo.read("experiments/e/vars.pml").unwrap();
        repo.write("experiments/e/vars.pml", vars.replace("[1, 2, 4, 8, 16]", "[1, 2, 4]")).unwrap();
        repo.commit("shrink sweep without rerunning").unwrap();
        assert!(matches!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Differs(_)));
    }

    #[test]
    fn verify_records_its_verdict_idempotently() {
        let mut repo = repo_with("ceph-rados");
        let engine = ExperimentEngine::new();
        engine.run(&mut repo, "e").unwrap();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Identical);
        let recorded = repo.read("experiments/e/verify.json").unwrap();
        assert!(recorded.contains("identical"), "{recorded}");
        assert!(repo.vcs.status().unwrap().is_empty(), "verdict must be committed");
        // Re-verifying an unchanged experiment changes nothing: the
        // IfChanged record stage skips the idempotent re-commit.
        let head = repo.vcs.head_commit().unwrap();
        assert_eq!(engine.verify(&mut repo, "e").unwrap(), ReproVerdict::Identical);
        assert_eq!(repo.vcs.head_commit().unwrap(), head, "no churn commit on re-verify");
    }
}
