//! Experiment packing — the ReproZip slot (§Common Practice,
//! *Experiment Packing*).
//!
//! The paper criticizes packing-as-primary-practice ("the experiment is
//! a black-box without contextual information … hard to introspect")
//! but packing *on top of* a Popperized experiment is pure upside: the
//! repository stays the source of truth and the pack is a derived,
//! reproducible artifact. `popper pack <experiment>` builds a container
//! image whose layers hold the experiment's files, whose labels record
//! the provenance (source commit, experiment name), and whose
//! entrypoint replays the experiment's `run.sh`.
//!
//! Because images are content-addressed, packing the same commit twice
//! yields the *same* layers — introspectable, deduplicated, and
//! diffable, which is exactly what the ad-hoc tarball lacks.

use crate::repo::PopperRepo;
use popper_container::{build_image, BuildCache, Image, ImageRegistry, Popperfile, ProgramRegistry};
use std::collections::BTreeMap;

/// Errors from packing.
#[derive(Debug, Clone, PartialEq)]
pub enum PackError {
    /// The experiment does not exist in the repository.
    UnknownExperiment(String),
    /// The repository has no commits (nothing to pin provenance to).
    NoHistory,
    /// Image build failed.
    Build(String),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::UnknownExperiment(e) => write!(f, "unknown experiment '{e}'"),
            PackError::NoHistory => write!(f, "repository has no commits; commit before packing"),
            PackError::Build(e) => write!(f, "pack build failed: {e}"),
        }
    }
}

impl std::error::Error for PackError {}

/// The generated Popperfile for an experiment (exposed so users can
/// inspect exactly how their pack is built — no black boxes).
pub fn popperfile_for(repo: &PopperRepo, experiment: &str) -> Result<String, PackError> {
    let files = repo.experiment_files(experiment);
    if files.is_empty() {
        return Err(PackError::UnknownExperiment(experiment.to_string()));
    }
    let commit = repo.vcs.head_commit().ok_or(PackError::NoHistory)?;
    let mut pf = String::from("FROM scratch\n");
    pf.push_str(&format!("LABEL org.popper.experiment {experiment}\n"));
    pf.push_str(&format!("LABEL org.popper.commit {}\n", commit.to_hex()));
    for path in &files {
        pf.push_str(&format!("COPY {path} {path}\n"));
    }
    pf.push_str(&format!("ENTRYPOINT cat experiments/{experiment}/run.sh\n"));
    Ok(pf)
}

/// Pack one experiment into `registry` as `popper/<experiment>:<short
/// commit>`. Returns the image.
pub fn pack_experiment(
    repo: &PopperRepo,
    experiment: &str,
    registry: &mut ImageRegistry,
    cache: &mut BuildCache,
) -> Result<Image, PackError> {
    let pf_text = popperfile_for(repo, experiment)?;
    let popperfile = Popperfile::parse(&pf_text).map_err(|e| PackError::Build(e.to_string()))?;
    let context: BTreeMap<String, Vec<u8>> = repo
        .experiment_files(experiment)
        .into_iter()
        .filter_map(|p| Some((p.clone(), repo.vcs.read_file(&p)?.to_vec())))
        .collect();
    let commit = repo.vcs.head_commit().ok_or(PackError::NoHistory)?;
    let tag = commit.short();
    let programs = ProgramRegistry::with_builtins();
    build_image(
        &popperfile,
        &context,
        registry,
        &programs,
        cache,
        &format!("popper/{experiment}"),
        &tag,
    )
    .map_err(|e| PackError::Build(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;
    use popper_container::Container;

    fn repo_with(tpl: &str, name: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files(name) {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add").unwrap();
        repo
    }

    #[test]
    fn pack_builds_runnable_image_with_provenance() {
        let repo = repo_with("gassyfs", "g");
        let mut registry = ImageRegistry::new();
        let mut cache = BuildCache::new();
        let image = pack_experiment(&repo, "g", &mut registry, &mut cache).unwrap();
        let commit = repo.vcs.head_commit().unwrap();
        assert_eq!(image.name, "popper/g");
        assert_eq!(image.tag, commit.short());
        assert_eq!(image.config.labels["org.popper.commit"], commit.to_hex());
        assert_eq!(image.config.labels["org.popper.experiment"], "g");

        // The pack replays: its entrypoint prints the checked-in run.sh.
        let mut c = Container::create(&registry, &image.reference()).unwrap();
        let st = c.run(&ProgramRegistry::with_builtins(), &[]).unwrap();
        assert!(st.success());
        assert_eq!(st.stdout, repo.read("experiments/g/run.sh").unwrap());
        // Every experiment file is inside.
        for path in repo.experiment_files("g") {
            assert!(c.fs.exists(&path), "pack missing {path}");
        }
    }

    #[test]
    fn packing_same_commit_is_content_identical() {
        let repo = repo_with("torpor", "t");
        let mut r1 = ImageRegistry::new();
        let mut r2 = ImageRegistry::new();
        let i1 = pack_experiment(&repo, "t", &mut r1, &mut BuildCache::new()).unwrap();
        let i2 = pack_experiment(&repo, "t", &mut r2, &mut BuildCache::new()).unwrap();
        assert_eq!(i1.layers, i2.layers, "content addressing makes packs reproducible");
    }

    #[test]
    fn new_commit_changes_pack_identity_but_shares_layers() {
        let mut repo = repo_with("zlog", "z");
        let mut registry = ImageRegistry::new();
        let mut cache = BuildCache::new();
        let before = pack_experiment(&repo, "z", &mut registry, &mut cache).unwrap();
        // Change one file; repack.
        repo.write("experiments/z/vars.pml", "runner: synthetic\nworkload: w2\nmodel:\n  trend: linear\n  base: 1\nxs: [1, 2]\n").unwrap();
        repo.commit("tweak vars").unwrap();
        let after = pack_experiment(&repo, "z", &mut registry, &mut cache).unwrap();
        assert_ne!(before.tag, after.tag);
        // COPY layers before the changed file are shared (prefix cache);
        // at minimum the layer sets overlap.
        let shared = after.layers.iter().filter(|l| before.layers.contains(l)).count();
        assert!(shared >= 1, "packs of adjacent commits should share layers");
    }

    #[test]
    fn pack_errors() {
        let repo = repo_with("zlog", "z");
        let mut registry = ImageRegistry::new();
        assert!(matches!(
            pack_experiment(&repo, "ghost", &mut registry, &mut BuildCache::new()),
            Err(PackError::UnknownExperiment(_))
        ));
    }

    #[test]
    fn popperfile_is_inspectable() {
        let repo = repo_with("gassyfs", "g");
        let pf = popperfile_for(&repo, "g").unwrap();
        assert!(pf.starts_with("FROM scratch"));
        assert!(pf.contains("COPY experiments/g/vars.pml experiments/g/vars.pml"));
        assert!(pf.contains("LABEL org.popper.commit"));
        // It parses as a valid Popperfile.
        assert!(Popperfile::parse(&pf).is_ok());
    }
}
