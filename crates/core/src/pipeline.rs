//! The staged lifecycle engine shared by every experiment mode.
//!
//! The paper's central claim is that an experiment is a *pipeline of
//! stages* executed identically by a human, by CI, or by a reviewer.
//! This module makes that pipeline a first-class object: a
//! [`RunContext`] (experiment id, parameter map, optional fault
//! schedule, tracer, staged artifacts) threaded through a [`Pipeline`]
//! of named [`Stage`]s. `popper run`, `popper trace`, `popper chaos`
//! and `popper trace-diff` are stage *compositions* over this engine —
//! chaos is run plus a fault-arming decorator before the shared
//! execute stage, trace-diff is a checkout/align/record/validate
//! composition — instead of four copy-adapted drivers.
//!
//! **Commit atomicity invariant:** stages never write through to the
//! repository; they stage bytes into the context's [`ArtifactSet`],
//! and the record stage commits the whole set at once. A stage that
//! errors therefore leaves the repository clean — no partial artifact
//! commit, no dirty working tree — in every mode.

use crate::experiment::ExperimentEngine;
use crate::memoize;
use crate::repo::PopperRepo;
use popper_aver::Verdict;
use popper_memo::{MemoSession, MemoStats};
use popper_chaos::FaultSchedule;
use popper_format::{Table, Value};
use popper_monitor::GateOutcome;
use popper_trace::{TraceRecorder, TraceRecording, Tracer};
use popper_vcs::{ObjectId, VcsError};

/// How [`ArtifactSet::commit_into`] treats already-identical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPolicy {
    /// Write and commit unconditionally (run/trace/chaos re-runs must
    /// land a commit even when results are byte-identical: every
    /// execution is provenance).
    Always,
    /// Skip the write *and* the commit when every staged artifact
    /// already has identical bytes in the working tree — re-running a
    /// pure function of committed inputs (trace-diff) is idempotent.
    IfChanged,
}

/// Artifacts staged in memory by lifecycle stages, committed as one
/// atomic unit. Owning the buffer here (instead of each driver calling
/// `repo.write` file-by-file) is what guarantees the no-partial-commit
/// invariant: nothing touches the repository until `commit_into`.
#[derive(Debug, Default)]
pub struct ArtifactSet {
    staged: Vec<(String, Vec<u8>)>,
}

impl ArtifactSet {
    /// Stage one artifact (replacing any earlier staging of the path).
    pub fn stage(&mut self, path: impl Into<String>, bytes: impl Into<Vec<u8>>) {
        let path = path.into();
        self.staged.retain(|(p, _)| *p != path);
        self.staged.push((path, bytes.into()));
    }

    /// Is anything staged?
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// The staged `(path, bytes)` pairs, in staging order (the memo
    /// layer serializes and restores the set through this).
    pub fn staged(&self) -> &[(String, Vec<u8>)] {
        &self.staged
    }

    /// Write every staged artifact and commit them as one unit,
    /// draining the set. Returns the commit, or `None` when the policy
    /// skipped an idempotent re-commit.
    pub fn commit_into(
        &mut self,
        repo: &mut PopperRepo,
        message: &str,
        policy: CommitPolicy,
    ) -> Result<Option<ObjectId>, String> {
        if self.staged.is_empty() {
            return Ok(None);
        }
        if policy == CommitPolicy::IfChanged {
            let unchanged = self
                .staged
                .iter()
                .all(|(path, bytes)| repo.read(path).map(String::into_bytes).as_ref() == Some(bytes));
            if unchanged {
                self.staged.clear();
                return Ok(None);
            }
        }
        for (path, bytes) in self.staged.drain(..) {
            repo.write(&path, bytes).map_err(|e| e.to_string())?;
        }
        match repo.commit(message) {
            Ok(c) => Ok(Some(c)),
            Err(VcsError::NothingStaged) => Ok(None),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// What a stage tells the pipeline to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageControl {
    /// Proceed to the next stage.
    Continue,
    /// Stop the pipeline cleanly (e.g. the baseline gate blocked the
    /// run); not an error.
    Stop,
}

/// The state threaded through a pipeline: everything the old drivers
/// passed around as loose locals, plus the staged artifacts.
pub struct RunContext {
    /// Experiment name.
    pub experiment: String,
    /// The experiment's parameter map (`vars.pml`), which decorator
    /// stages may augment (chaos inserts the resolved `faults:` spec).
    pub vars: Value,
    /// The resolved fault schedule, when a chaos decorator armed one.
    pub schedule: Option<FaultSchedule>,
    /// Baseline-gate outcome, once the sanitize stage ran.
    pub gate: Option<GateOutcome>,
    /// Orchestration recap (empty if the experiment has no playbook).
    pub orchestration: String,
    /// The results table, once the execute stage ran.
    pub results: Option<Table>,
    /// Mode-specific metrics (chaos records recovery metrics here).
    pub metrics: Value,
    /// The Aver verdict, once the validate stage ran.
    pub verdict: Option<Verdict>,
    /// Artifacts staged for the atomic record commit.
    pub artifacts: ArtifactSet,
    /// The commit that recorded the artifacts.
    pub commit: Option<ObjectId>,
    /// The tracer every stage records through (the ambient tracer, or
    /// the recorder's when one is attached).
    pub tracer: Tracer,
    recorder: Option<TraceRecorder>,
    pub(crate) memo: Option<MemoSession>,
}

impl RunContext {
    /// A context over an explicit parameter map (trace-diff needs no
    /// `vars.pml`). The tracer defaults to the ambient one.
    pub fn new(experiment: impl Into<String>, vars: Value) -> RunContext {
        RunContext {
            experiment: experiment.into(),
            vars,
            schedule: None,
            gate: None,
            orchestration: String::new(),
            results: None,
            metrics: Value::empty_map(),
            verdict: None,
            artifacts: ArtifactSet::default(),
            commit: None,
            tracer: popper_trace::current(),
            recorder: None,
            memo: None,
        }
    }

    /// A context for one of the repository's experiments.
    pub fn for_experiment(repo: &PopperRepo, experiment: &str) -> Result<RunContext, String> {
        Ok(RunContext::new(experiment, repo.experiment_vars(experiment)?))
    }

    /// Attach a [`TraceRecorder`]: stages record through it, and the
    /// pipeline streams each stage's wave into the recorder as it
    /// completes (the streaming Chrome exporter encodes incrementally).
    pub fn with_recorder(mut self, recorder: TraceRecorder) -> RunContext {
        self.tracer = recorder.tracer();
        self.recorder = Some(recorder);
        self
    }

    /// Detach and finish the recorder, if one was attached.
    pub fn finish_recording(&mut self) -> Option<TraceRecording> {
        self.recorder.take().map(TraceRecorder::finish)
    }

    /// Attach a memo session: stages whose keys are cached replay from
    /// recorded outputs instead of executing (see [`crate::memoize`]).
    pub fn with_memo(mut self, session: MemoSession) -> RunContext {
        self.memo = Some(session);
        self
    }

    /// Hit/miss accounting, when a memo session is attached.
    pub fn memo_stats(&self) -> Option<&MemoStats> {
        self.memo.as_ref().map(|s| &s.stats)
    }

    /// The experiment's runner name from `vars.pml`.
    pub fn runner_name(&self) -> Result<&str, String> {
        self.vars
            .get_str("runner")
            .ok_or_else(|| format!("experiment '{}': vars.pml has no 'runner'", self.experiment))
    }

    /// `experiments/<name>/<artifact>`.
    pub fn artifact_path(&self, artifact: &str) -> String {
        format!("experiments/{}/{artifact}", self.experiment)
    }

    /// Gate passed (or never ran) and validations hold (or never ran,
    /// with the gate open).
    pub fn success(&self) -> bool {
        let may_run = self.gate.as_ref().map(GateOutcome::may_run).unwrap_or(true);
        may_run && self.verdict.as_ref().map(|v| v.passed).unwrap_or(may_run)
    }
}

/// An all-passed verdict for modes/paths with nothing to assert.
pub(crate) fn pass_verdict() -> Verdict {
    Verdict { passed: true, failures: vec![], assertions: 0, groups: 0 }
}

type StageFn<'a> = Box<dyn FnOnce(&mut PopperRepo, &mut RunContext) -> Result<StageControl, String> + 'a>;

/// A named lifecycle stage. The name becomes the stage's span on the
/// `core/lifecycle` track, so trace consumers see the same five-stage
/// timeline the paper's Figure 1 describes.
pub struct Stage<'a> {
    pub(crate) name: &'static str,
    pub(crate) f: StageFn<'a>,
}

/// A composition of named stages over one [`RunContext`].
pub struct Pipeline<'a> {
    label: String,
    stages: Vec<Stage<'a>>,
}

impl<'a> Pipeline<'a> {
    /// An empty pipeline; `label` names the whole run's span
    /// (e.g. `run myexp`, `chaos myexp`).
    pub fn new(label: impl Into<String>) -> Pipeline<'a> {
        Pipeline { label: label.into(), stages: Vec::new() }
    }

    /// Append a stage.
    pub fn stage(
        mut self,
        name: &'static str,
        f: impl FnOnce(&mut PopperRepo, &mut RunContext) -> Result<StageControl, String> + 'a,
    ) -> Pipeline<'a> {
        self.stages.push(Stage { name, f: Box::new(f) });
        self
    }

    /// Run the stages in order under the context's tracer. A stage
    /// returning [`StageControl::Stop`] ends the run cleanly; an `Err`
    /// propagates — and, by the atomicity invariant, leaves the
    /// repository exactly as the last completed commit left it.
    ///
    /// When the context carries a memo session
    /// ([`RunContext::with_memo`]), each stage is first looked up in
    /// the memo table and replayed on a hit — [`crate::memoize`] owns
    /// that path; without a session this executes every stage body.
    pub fn run(self, repo: &mut PopperRepo, ctx: &mut RunContext) -> Result<(), String> {
        let tracer = ctx.tracer.clone();
        popper_trace::with_current(tracer.clone(), || {
            let _run_span = tracer.span("core", "core/lifecycle", self.label.as_str());
            for (index, stage) in self.stages.into_iter().enumerate() {
                let control = {
                    let _s = tracer.span("core", "core/lifecycle", stage.name);
                    memoize::execute_stage(repo, ctx, index, stage)?
                };
                if let Some(rec) = ctx.recorder.as_mut() {
                    rec.absorb();
                }
                if control == StageControl::Stop {
                    break;
                }
            }
            Ok(())
        })
    }
}

/// Stage builders shared across mode compositions.
pub mod stages {
    use super::*;

    /// Where the validate stage finds its assertions.
    pub enum ValidationSource {
        /// The experiment's `validations.aver` (missing ⇒ trivially
        /// passed).
        Validations,
        /// The experiment's `chaos.aver`, defaulting to
        /// [`popper_chaos::DEFAULT_ASSERTIONS`].
        Chaos,
    }

    /// The shared execute stage: look up the runner named in the
    /// context's vars and run it. The chaos composition reuses this
    /// unchanged — its decorator already armed `faults:` in the vars.
    pub fn execute(
        engine: &ExperimentEngine,
    ) -> impl FnOnce(&mut PopperRepo, &mut RunContext) -> Result<StageControl, String> + '_ {
        move |_repo, ctx| {
            let name = ctx.runner_name()?.to_string();
            let runner = engine.runner(&name).ok_or_else(|| {
                format!("unknown runner '{name}' (registered: {:?})", engine.runners())
            })?;
            ctx.results = Some(runner(&ctx.vars)?);
            Ok(StageControl::Continue)
        }
    }

    /// The shared record stage for run-shaped modes: stage
    /// `results.csv` plus the figure (a chart when `vars.pml` has a
    /// `figure:` spec, the pretty table otherwise) and commit
    /// atomically.
    pub fn record_results(
    ) -> impl FnOnce(&mut PopperRepo, &mut RunContext) -> Result<StageControl, String> {
        move |repo, ctx| {
            let results = ctx.results.as_ref().ok_or("record: no results to record")?;
            let mut staged = vec![(ctx.artifact_path("results.csv"), results.to_csv())];
            match popper_viz::FigureSpec::from_vars(&ctx.vars, &ctx.experiment)? {
                Some(spec) => {
                    let (svg, ascii) = popper_viz::render_from_spec(&spec, results)?;
                    staged.push((ctx.artifact_path("figure.svg"), svg));
                    staged.push((ctx.artifact_path("figure.txt"), ascii));
                }
                None => staged.push((ctx.artifact_path("figure.txt"), results.to_pretty())),
            }
            for (path, bytes) in staged {
                ctx.artifacts.stage(path, bytes);
            }
            let msg = format!("popper run {}: record results", ctx.experiment);
            ctx.commit = ctx.artifacts.commit_into(repo, &msg, CommitPolicy::Always)?;
            Ok(StageControl::Continue)
        }
    }

    /// The shared validate stage: check the mode's assertion source
    /// against the results.
    pub fn validate(
        source: ValidationSource,
    ) -> impl FnOnce(&mut PopperRepo, &mut RunContext) -> Result<StageControl, String> {
        move |repo, ctx| {
            let results = ctx.results.as_ref().ok_or("validate: no results to check")?;
            let verdict = match source {
                ValidationSource::Validations => match repo.experiment_validations(&ctx.experiment) {
                    Some(src) => popper_aver::check(&src, results).map_err(|e| e.to_string())?,
                    None => pass_verdict(),
                },
                ValidationSource::Chaos => {
                    let src = repo
                        .read(&ctx.artifact_path("chaos.aver"))
                        .unwrap_or_else(|| popper_chaos::DEFAULT_ASSERTIONS.to_string());
                    popper_aver::check(&src, results).map_err(|e| e.to_string())?
                }
            };
            ctx.verdict = Some(verdict);
            Ok(StageControl::Continue)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_set_commits_atomically_and_drains() {
        let mut repo = PopperRepo::init("t").unwrap();
        let mut set = ArtifactSet::default();
        set.stage("a.txt", "alpha");
        set.stage("b.txt", "beta");
        set.stage("a.txt", "alpha2"); // restaging replaces
        let commit = set.commit_into(&mut repo, "record pair", CommitPolicy::Always).unwrap();
        assert!(commit.is_some());
        assert!(set.is_empty());
        assert_eq!(repo.read("a.txt").as_deref(), Some("alpha2"));
        assert_eq!(repo.read("b.txt").as_deref(), Some("beta"));
        assert!(repo.vcs.status().unwrap().is_empty());
    }

    #[test]
    fn if_changed_policy_is_idempotent() {
        let mut repo = PopperRepo::init("t").unwrap();
        let mut set = ArtifactSet::default();
        set.stage("x.txt", "same");
        assert!(set.commit_into(&mut repo, "first", CommitPolicy::IfChanged).unwrap().is_some());
        set.stage("x.txt", "same");
        assert!(set.commit_into(&mut repo, "again", CommitPolicy::IfChanged).unwrap().is_none());
        assert!(set.is_empty());
        set.stage("x.txt", "different");
        assert!(set.commit_into(&mut repo, "third", CommitPolicy::IfChanged).unwrap().is_some());
    }

    #[test]
    fn pipeline_runs_stages_in_order_and_stop_short_circuits() {
        let mut repo = PopperRepo::init("t").unwrap();
        let mut ctx = RunContext::new("e", Value::empty_map());
        let mut order = Vec::new();
        {
            let order = std::cell::RefCell::new(&mut order);
            Pipeline::new("run e")
                .stage("sanitize", |_r, _c| {
                    order.borrow_mut().push("sanitize");
                    Ok(StageControl::Continue)
                })
                .stage("execute", |_r, _c| {
                    order.borrow_mut().push("execute");
                    Ok(StageControl::Stop)
                })
                .stage("record", |_r, _c| {
                    order.borrow_mut().push("record");
                    Ok(StageControl::Continue)
                })
                .run(&mut repo, &mut ctx)
                .unwrap();
        }
        assert_eq!(order, vec!["sanitize", "execute"]);
    }

    #[test]
    fn erroring_stage_leaves_repo_clean() {
        let mut repo = PopperRepo::init("t").unwrap();
        let mut ctx = RunContext::new("e", Value::empty_map());
        let err = Pipeline::new("run e")
            .stage("record", |_r, c| {
                c.artifacts.stage("experiments/e/results.csv", "partial");
                Err("boom mid-record".to_string())
            })
            .run(&mut repo, &mut ctx)
            .unwrap_err();
        assert!(err.contains("boom"));
        // The staged artifact never reached the repository.
        assert!(!repo.exists("experiments/e/results.csv"));
        assert!(repo.vcs.status().unwrap().is_empty());
    }

    #[test]
    fn pipeline_stages_record_spans_through_an_attached_recorder() {
        let mut repo = PopperRepo::init("t").unwrap();
        let mut ctx = RunContext::new("e", Value::empty_map())
            .with_recorder(TraceRecorder::ordered());
        Pipeline::new("run e")
            .stage("sanitize", |_r, _c| Ok(StageControl::Continue))
            .stage("execute", |_r, _c| Ok(StageControl::Continue))
            .run(&mut repo, &mut ctx)
            .unwrap();
        let recording = ctx.finish_recording().unwrap();
        let names: Vec<&str> = recording.events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"run e"));
        assert!(names.contains(&"sanitize"));
        assert!(names.contains(&"execute"));
    }
}
