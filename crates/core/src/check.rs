//! The compliance checker: is this repository "Popperized"?
//!
//! §Self-containment: an experiment is Popper-compliant when all of the
//! following is available in the repository, directly or by reference:
//! *experiment code, experiment orchestration code, reference to data
//! dependencies, parametrization of experiment, validation criteria and
//! results*. The checker also validates syntax of every machine-read
//! artifact — the first category of the paper's automated validation
//! ("that the syntax of orchestration files is correct … so that if
//! changes occur … it can be executed without any issues").

use crate::repo::PopperRepo;
use popper_ci::PipelineConfig;
use popper_format::pml;
use popper_orchestra::Playbook;
use std::fmt;

/// One compliance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Where (a path or experiment name).
    pub subject: String,
    /// What is wrong.
    pub problem: String,
    /// Is this fatal (vs. a warning)?
    pub fatal: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [{}]", self.subject, self.problem, if self.fatal { "error" } else { "warning" })
    }
}

/// Check the whole repository. An empty result means fully compliant.
pub fn check_compliance(repo: &PopperRepo) -> Vec<Violation> {
    let mut v = Vec::new();
    let fatal = |subject: &str, problem: String| Violation { subject: subject.into(), problem, fatal: true };
    let warn = |subject: &str, problem: String| Violation { subject: subject.into(), problem, fatal: false };

    // Repository-level artifacts.
    for required in ["README.md", ".popper.pml", ".popper-ci.pml", "paper/build.sh"] {
        if !repo.exists(required) {
            v.push(fatal(required, "required file missing".into()));
        }
    }
    if !repo.exists("paper/paper.md") && !repo.exists("paper/paper.tex") {
        v.push(fatal("paper/", "no manuscript (paper.md or paper.tex)".into()));
    }
    if let Some(text) = repo.read(".popper.pml") {
        if let Err(e) = pml::parse(&text) {
            v.push(fatal(".popper.pml", format!("does not parse: {e}")));
        }
    }
    if let Some(text) = repo.read(".popper-ci.pml") {
        if let Err(e) = PipelineConfig::from_pml(&text) {
            v.push(fatal(".popper-ci.pml", format!("invalid pipeline: {e}")));
        }
    }

    // Per-experiment self-containment.
    for exp in repo.experiments() {
        let dir = format!("experiments/{exp}");
        let has = |file: &str| repo.exists(&format!("{dir}/{file}"));
        if !has("run.sh") {
            v.push(fatal(&exp, "missing experiment code entry point (run.sh)".into()));
        }
        if !has("vars.pml") {
            v.push(fatal(&exp, "missing parametrization (vars.pml)".into()));
        } else if let Err(e) = repo.experiment_vars(&exp) {
            v.push(fatal(&exp, format!("vars.pml does not parse: {e}")));
        }
        if !has("setup.pml") {
            v.push(fatal(&exp, "missing orchestration (setup.pml)".into()));
        } else if let Some(text) = repo.read(&format!("{dir}/setup.pml")) {
            if let Err(e) = Playbook::from_pml(&text) {
                v.push(fatal(&exp, format!("setup.pml invalid: {e}")));
            }
        }
        if !has("validations.aver") {
            v.push(fatal(&exp, "missing validation criteria (validations.aver)".into()));
        } else if let Some(text) = repo.experiment_validations(&exp) {
            if let Err(e) = popper_aver::parse(&text) {
                v.push(fatal(&exp, format!("validations.aver invalid: {e}")));
            }
        }
        let has_dataset_ref = repo
            .experiment_files(&exp)
            .iter()
            .any(|p| p.contains("/datasets/"));
        if !has_dataset_ref {
            v.push(warn(&exp, "no data-dependency references (datasets/)".into()));
        }
        if !has("results.csv") {
            v.push(warn(&exp, "no recorded results yet (results.csv)".into()));
        } else if let Some(text) = repo.read(&format!("{dir}/results.csv")) {
            if let Err(e) = popper_format::Table::from_csv(&text) {
                v.push(fatal(&exp, format!("results.csv malformed: {e}")));
            }
        }
    }

    // Uncommitted changes undermine "available by reference".
    match repo.vcs.status() {
        Ok(changes) if !changes.is_empty() => {
            v.push(warn("worktree", format!("{} uncommitted change(s)", changes.len())));
        }
        _ => {}
    }
    v
}

/// Are there any fatal violations?
pub fn is_popperized(repo: &PopperRepo) -> bool {
    check_compliance(repo).iter().all(|v| !v.fatal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn repo_with_template(tpl: &str, name: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files(name) {
            repo.write(&path, contents).unwrap();
        }
        repo.commit(&format!("popper add {tpl} {name}")).unwrap();
        repo
    }

    #[test]
    fn fresh_init_is_compliant() {
        let repo = PopperRepo::init("t").unwrap();
        let violations = check_compliance(&repo);
        assert!(violations.iter().all(|v| !v.fatal), "{violations:?}");
        assert!(is_popperized(&repo));
    }

    #[test]
    fn template_experiments_are_compliant_modulo_results() {
        let repo = repo_with_template("gassyfs", "myexp");
        let violations = check_compliance(&repo);
        let fatals: Vec<_> = violations.iter().filter(|v| v.fatal).collect();
        assert!(fatals.is_empty(), "{fatals:?}");
        // Results warning until the experiment runs.
        assert!(violations.iter().any(|v| v.problem.contains("results.csv")));
    }

    #[test]
    fn all_templates_pass_the_checker() {
        for t in crate::templates::experiment_templates() {
            let repo = repo_with_template(t.name, "e");
            assert!(is_popperized(&repo), "template {} not compliant", t.name);
        }
    }

    #[test]
    fn missing_pieces_are_fatal() {
        let mut repo = PopperRepo::init("t").unwrap();
        repo.write("experiments/broken/run.sh", "#!/bin/sh\n").unwrap();
        repo.commit("add broken").unwrap();
        let violations = check_compliance(&repo);
        let problems: Vec<&str> = violations.iter().filter(|v| v.fatal).map(|v| v.problem.as_str()).collect();
        assert!(problems.iter().any(|p| p.contains("vars.pml")));
        assert!(problems.iter().any(|p| p.contains("setup.pml")));
        assert!(problems.iter().any(|p| p.contains("validations.aver")));
        assert!(!is_popperized(&repo));
    }

    #[test]
    fn syntax_errors_are_fatal() {
        let mut repo = repo_with_template("gassyfs", "e");
        repo.write("experiments/e/vars.pml", "a: 1\na: 2\n").unwrap(); // duplicate key
        repo.write("experiments/e/setup.pml", "- name: x\n  tasks: []\n").unwrap(); // no hosts
        repo.write("experiments/e/validations.aver", "when x expect").unwrap();
        repo.commit("break it").unwrap();
        let violations = check_compliance(&repo);
        let fatal_subjects: Vec<&str> =
            violations.iter().filter(|v| v.fatal).map(|v| v.subject.as_str()).collect();
        assert_eq!(fatal_subjects.iter().filter(|s| **s == "e").count(), 3, "{violations:?}");
    }

    #[test]
    fn broken_ci_config_is_fatal() {
        let mut repo = PopperRepo::init("t").unwrap();
        repo.write(".popper-ci.pml", "stages: []\njobs: []\n").unwrap();
        repo.commit("break ci").unwrap();
        assert!(!is_popperized(&repo));
    }

    #[test]
    fn uncommitted_changes_warn() {
        let mut repo = PopperRepo::init("t").unwrap();
        repo.vcs.write_file("scratch.txt", "wip").unwrap();
        let violations = check_compliance(&repo);
        assert!(violations.iter().any(|v| v.subject == "worktree" && !v.fatal));
    }

    #[test]
    fn malformed_results_are_fatal() {
        let mut repo = repo_with_template("torpor", "e");
        repo.write("experiments/e/results.csv", "a,b\n1\n").unwrap();
        repo.commit("bad results").unwrap();
        let violations = check_compliance(&repo);
        assert!(violations.iter().any(|v| v.fatal && v.problem.contains("results.csv")));
    }

    #[test]
    fn violation_display() {
        let v = Violation { subject: "e".into(), problem: "missing x".into(), fatal: true };
        assert_eq!(v.to_string(), "e: missing x [error]");
    }
}
