//! Wiring a Popper repository into the CI engine.
//!
//! §Automated Validation distinguishes two categories of checks:
//! *integrity of the experimentation logic* (the paper builds, the
//! orchestration files parse, post-processing runs) and *integrity of
//! the experimental results* (domain-specific Aver assertions,
//! performance-regression gates). [`popper_steps`] implements both as a
//! [`popper_ci`] step executor over a shared repository; [`run_ci`]
//! runs the repository's `.popper-ci.pml` with it.

use crate::check::check_compliance;
use crate::experiment::{ExperimentEngine, RunReport};
use crate::memoize::{cache_disabled_by_env, lifecycle_session, MemoStats};
use crate::paper::build_paper;
use crate::pipeline::{CommitPolicy, RunContext};
use crate::repo::PopperRepo;
use parking_lot::Mutex;
use popper_ci::{BuildReport, PipelineConfig, StepCtx, StepOutcome};
use popper_format::Table;
use popper_monitor::RegressionCheck;
use popper_orchestra::Playbook;
use std::sync::Arc;

/// Build the step executor for a repository + engine. Steps:
///
/// * `build-paper` — the manuscript assembles with all figures.
/// * `validate-playbooks` — every experiment's `setup.pml` parses.
/// * `validate-pipelines` — `.popper-ci.pml` itself parses.
/// * `check-compliance` — no fatal [`crate::check`] violations.
/// * `run-experiment <name>` — full lifecycle run (gate, orchestrate,
///   execute, record, validate).
/// * `run-chaos <name>` — the chaos lifecycle (schedule → execute →
///   record → validate); the fault schedule and seed come from the
///   job's `schedule`/`seed` env, which a `matrix:` axis fans out
///   (one job, one run per schedule).
/// * `validate <name>` — re-check `validations.aver` against the stored
///   `results.csv` without re-running.
/// * `regression-gate <name> <column>` — compare the stored results
///   column against the previous commit's version with Welch's t-test.
/// * `trace-diff-selfcheck <name>` — run the traced lifecycle twice at
///   the same source state and assert the two recorded timelines are
///   structurally equivalent (dogfoods execution-provenance
///   determinism; wall-domain, so durations are not compared).
/// * `memo-selfcheck <name>` — prime the stage cache with one traced
///   run, then assert two warm repeats replay every stage (zero
///   misses) and still produce structurally equivalent timelines
///   (dogfoods the memo determinism contract; skipped when
///   `POPPER_NO_CACHE` is set).
/// * `store-stats` — ingest the repository's artifacts into a chunk
///   store and report the dedup ratio (what `popper store stats`
///   prints; in CI it doubles as a sanity check that artifacts chunk).
///
/// Lifecycle steps (`run-experiment`, `run-chaos`, the self-checks)
/// build their stage compositions directly and attach a memo session —
/// the same memoized path the CLI lifecycles use — unless
/// `POPPER_NO_CACHE` disables caching.
pub fn popper_steps(
    repo: Arc<Mutex<PopperRepo>>,
    engine: Arc<ExperimentEngine>,
) -> popper_ci::runner::Executor {
    Arc::new(move |ctx: &StepCtx| {
        let mut parts = ctx.command.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "build-paper" => {
                let repo = repo.lock();
                match build_paper(&repo) {
                    Ok(built) => StepOutcome::pass(format!(
                        "built '{}' ({} sections, {} figures)",
                        built.title,
                        built.sections.len(),
                        built.figures.len()
                    )),
                    Err(e) => StepOutcome::fail(format!("paper build failed: {e}")),
                }
            }
            "validate-playbooks" => {
                let repo = repo.lock();
                let mut checked = 0;
                for exp in repo.experiments() {
                    if let Some(text) = repo.read(&format!("experiments/{exp}/setup.pml")) {
                        if let Err(e) = Playbook::from_pml(&text) {
                            return StepOutcome::fail(format!("{exp}/setup.pml: {e}"));
                        }
                        checked += 1;
                    }
                }
                StepOutcome::pass(format!("{checked} playbook(s) parse"))
            }
            "validate-pipelines" => {
                let repo = repo.lock();
                match repo.read(".popper-ci.pml") {
                    Some(text) => match PipelineConfig::from_pml(&text) {
                        Ok(_) => StepOutcome::pass("pipeline config parses"),
                        Err(e) => StepOutcome::fail(e),
                    },
                    None => StepOutcome::fail(".popper-ci.pml missing"),
                }
            }
            "check-compliance" => {
                let repo = repo.lock();
                let violations = check_compliance(&repo);
                let fatals: Vec<String> =
                    violations.iter().filter(|v| v.fatal).map(|v| v.to_string()).collect();
                if fatals.is_empty() {
                    StepOutcome::pass(format!("popperized ({} warning(s))", violations.len()))
                } else {
                    StepOutcome::fail(fatals.join("; "))
                }
            }
            "run-experiment" => {
                let Some(name) = args.first() else {
                    return StepOutcome::fail("run-experiment needs an experiment name");
                };
                let mut repo = repo.lock();
                let mut run = || -> Result<(RunReport, Option<MemoStats>), String> {
                    let mut run_ctx = RunContext::for_experiment(&repo, name)?;
                    if !cache_disabled_by_env() {
                        run_ctx = run_ctx.with_memo(lifecycle_session(&repo, name, "run", &[]));
                    }
                    engine.run_pipeline(&mut repo, &mut run_ctx)?;
                    let stats = run_ctx.memo_stats().cloned();
                    Ok((RunReport::from_ctx(run_ctx), stats))
                };
                match run() {
                    Ok((report, stats)) if report.success() => {
                        StepOutcome::pass(with_memo_note(format!("{report}"), stats))
                    }
                    Ok((report, _)) => StepOutcome::fail(format!("{report}")),
                    Err(e) => StepOutcome::fail(e),
                }
            }
            "run-chaos" => {
                let Some(name) = args.first() else {
                    return StepOutcome::fail("run-chaos needs an experiment name");
                };
                let schedule = ctx.env.get("schedule").map(String::as_str);
                let seed = match ctx.env.get("seed") {
                    Some(s) => match s.parse::<u64>() {
                        Ok(n) => Some(n),
                        Err(_) => {
                            return StepOutcome::fail(format!(
                                "run-chaos: env 'seed' must be an integer, got '{s}'"
                            ))
                        }
                    },
                    None => None,
                };
                let mut repo = repo.lock();
                let mut run = || -> Result<(crate::ChaosRunReport, Option<MemoStats>), String> {
                    let mut run_ctx = RunContext::for_experiment(&repo, name)?;
                    if !cache_disabled_by_env() {
                        let mut salt = Vec::new();
                        if let Some(s) = schedule {
                            salt.push(("schedule".to_string(), s.to_string()));
                        }
                        if let Some(n) = seed {
                            salt.push(("seed".to_string(), n.to_string()));
                        }
                        run_ctx =
                            run_ctx.with_memo(lifecycle_session(&repo, name, "chaos", &salt));
                    }
                    engine.chaos_pipeline(&mut repo, &mut run_ctx, schedule, seed)?;
                    let stats = run_ctx.memo_stats().cloned();
                    Ok((crate::ChaosRunReport::from_ctx(run_ctx)?, stats))
                };
                match run() {
                    Ok((report, stats)) if report.success() => {
                        StepOutcome::pass(with_memo_note(format!("{report}"), stats))
                    }
                    Ok((report, _)) => StepOutcome::fail(format!("{report}")),
                    Err(e) => StepOutcome::fail(e),
                }
            }
            "validate" => {
                let Some(name) = args.first() else {
                    return StepOutcome::fail("validate needs an experiment name");
                };
                let repo = repo.lock();
                let Some(csv) = repo.read(&format!("experiments/{name}/results.csv")) else {
                    return StepOutcome::fail(format!("experiment '{name}' has no results.csv"));
                };
                let Some(src) = repo.experiment_validations(name) else {
                    return StepOutcome::fail(format!("experiment '{name}' has no validations.aver"));
                };
                let table = match Table::from_csv(&csv) {
                    Ok(t) => t,
                    Err(e) => return StepOutcome::fail(e.to_string()),
                };
                match popper_aver::check(&src, &table) {
                    Ok(v) if v.passed => StepOutcome::pass(v.to_string()),
                    Ok(v) => StepOutcome::fail(v.to_string()),
                    Err(e) => StepOutcome::fail(e.to_string()),
                }
            }
            "regression-gate" => {
                let (Some(name), Some(column)) = (args.first(), args.get(1)) else {
                    return StepOutcome::fail("regression-gate needs <experiment> <column>");
                };
                let repo = repo.lock();
                regression_gate(&repo, name, column)
            }
            "trace-diff-selfcheck" => {
                let Some(name) = args.first() else {
                    return StepOutcome::fail("trace-diff-selfcheck needs an experiment name");
                };
                let mut repo = repo.lock();
                let use_cache = !cache_disabled_by_env();
                // The warm-up recording puts the repository in a state
                // where the two compared runs have identical lifecycles:
                // it establishes the baseline fingerprint, the committed
                // trace.json path (the vcs layer's span names include
                // the committed path set), and — cache on — the memo
                // entries the two compared runs then replay from.
                if let Err(e) = record_traced_run(&mut repo, &engine, name, "warm-up", use_cache)
                {
                    return StepOutcome::fail(e);
                }
                let first = match record_traced_run(&mut repo, &engine, name, "1/2", use_cache) {
                    Ok((c, _)) => c,
                    Err(e) => return StepOutcome::fail(e),
                };
                let second = match record_traced_run(&mut repo, &engine, name, "2/2", use_cache) {
                    Ok((c, _)) => c,
                    Err(e) => return StepOutcome::fail(e),
                };
                // Wall-domain traces: compare structure only.
                match engine.trace_diff_cached(
                    &mut repo,
                    name,
                    &first.to_hex(),
                    &second.to_hex(),
                    popper_trace::DiffOptions::structure_only(),
                    use_cache,
                ) {
                    Ok((report, _)) if report.diff.divergences.is_empty() => {
                        StepOutcome::pass(format!(
                            "two runs of '{name}' produced equivalent timelines ({} events)",
                            report.diff.events_a
                        ))
                    }
                    Ok((report, _)) => StepOutcome::fail(format!(
                        "execution provenance not deterministic:\n{report}"
                    )),
                    Err(e) => StepOutcome::fail(e),
                }
            }
            "memo-selfcheck" => {
                let Some(name) = args.first() else {
                    return StepOutcome::fail("memo-selfcheck needs an experiment name");
                };
                if cache_disabled_by_env() {
                    return StepOutcome::pass(
                        "memo-selfcheck skipped: POPPER_NO_CACHE disables the stage cache",
                    );
                }
                let mut repo = repo.lock();
                // One cold run primes the cache; the two warm repeats
                // must replay every stage and still record structurally
                // equivalent timelines (cold and warm traces differ —
                // replayed stages skip their body spans — so the warm
                // runs are compared against each other, not the prime).
                if let Err(e) = record_traced_run(&mut repo, &engine, name, "prime", true) {
                    return StepOutcome::fail(e);
                }
                let mut commits = Vec::new();
                for label in ["warm 1/2", "warm 2/2"] {
                    match record_traced_run(&mut repo, &engine, name, label, true) {
                        Ok((commit, Some(stats))) if stats.misses() == 0 => commits.push(commit),
                        Ok((_, Some(stats))) => {
                            return StepOutcome::fail(format!(
                                "memo-selfcheck: {label} of '{name}' executed {} stage(s) instead of replaying ({})",
                                stats.misses(),
                                stats.summary()
                            ))
                        }
                        Ok((_, None)) => {
                            return StepOutcome::fail(format!(
                                "memo-selfcheck: {label} of '{name}' ran without a memo session"
                            ))
                        }
                        Err(e) => return StepOutcome::fail(e),
                    }
                }
                match engine.trace_diff_cached(
                    &mut repo,
                    name,
                    &commits[0].to_hex(),
                    &commits[1].to_hex(),
                    popper_trace::DiffOptions::structure_only(),
                    true,
                ) {
                    Ok((report, _)) if report.diff.divergences.is_empty() => {
                        StepOutcome::pass(format!(
                            "warm repeats of '{name}' replayed every stage and produced equivalent timelines ({} events)",
                            report.diff.events_a
                        ))
                    }
                    Ok((report, _)) => StepOutcome::fail(format!(
                        "warm replay diverged from its own repeat:\n{report}"
                    )),
                    Err(e) => StepOutcome::fail(e),
                }
            }
            "store-stats" => {
                let repo = repo.lock();
                StepOutcome::pass(store_stats_report(&repo))
            }
            other => StepOutcome::fail(format!("unknown CI step '{other}'")),
        }
    })
}

/// Compare the working-tree `results.csv` of `experiment` against the
/// version recorded in the *previous* commit that touched it.
fn regression_gate(repo: &PopperRepo, experiment: &str, column: &str) -> StepOutcome {
    let path = format!("experiments/{experiment}/results.csv");
    let Some(current_csv) = repo.read(&path) else {
        return StepOutcome::fail(format!("{path} missing"));
    };
    let current = match Table::from_csv(&current_csv) {
        Ok(t) => t,
        Err(e) => return StepOutcome::fail(e.to_string()),
    };
    // Walk history for the most recent older version with different content.
    let Some(head) = repo.vcs.head_commit() else {
        return StepOutcome::pass("no history yet; nothing to compare");
    };
    let log = match repo.vcs.log(head) {
        Ok(l) => l,
        Err(e) => return StepOutcome::fail(e.to_string()),
    };
    let mut previous: Option<Table> = None;
    for (commit, _) in log {
        if let Ok(snapshot) = repo.vcs.snapshot_of(commit) {
            if let Some(bytes) = snapshot.get(&path) {
                let text = String::from_utf8_lossy(bytes);
                if *text != *current_csv {
                    if let Ok(t) = Table::from_csv(&text) {
                        previous = Some(t);
                        break;
                    }
                }
            }
        }
    }
    let Some(previous) = previous else {
        return StepOutcome::pass("first recorded results; baseline established");
    };
    let (Ok(base), Ok(cand)) = (previous.numeric_column(column), current.numeric_column(column)) else {
        return StepOutcome::fail(format!("column '{column}' not numeric in both versions"));
    };
    popper_ci::history::regression_gate_step(
        &format!("{experiment}.{column}"),
        &base,
        &cand,
        &RegressionCheck::default(),
    )
}

/// Append the memo hit/miss summary to a step log when a session ran.
fn with_memo_note(log: String, stats: Option<MemoStats>) -> String {
    match stats {
        Some(s) => format!("{log}\n{}", s.summary()),
        None => log,
    }
}

/// One traced lifecycle run for the self-checks: execute the run
/// pipeline under a fresh recorder (and, when `use_cache`, a memo
/// session) and commit the recorded timeline as
/// `experiments/<name>/trace.json` (same recording the `popper trace`
/// command performs).
fn record_traced_run(
    repo: &mut PopperRepo,
    engine: &ExperimentEngine,
    name: &str,
    label: &str,
    use_cache: bool,
) -> Result<(popper_vcs::ObjectId, Option<MemoStats>), String> {
    let mut ctx = RunContext::for_experiment(repo, name)?
        .with_recorder(popper_trace::TraceRecorder::ordered());
    if use_cache {
        ctx = ctx.with_memo(lifecycle_session(repo, name, "trace", &[]));
    }
    engine.run_pipeline(repo, &mut ctx)?;
    let mut artifacts = std::mem::take(&mut ctx.artifacts);
    let recording = ctx.finish_recording().expect("recorder attached");
    let stats = ctx.memo_stats().cloned();
    let report = RunReport::from_ctx(ctx);
    if !report.success() {
        return Err(format!("selfcheck run {label} of '{name}' failed: {report}"));
    }
    artifacts.stage(format!("experiments/{name}/trace.json"), recording.json);
    let commit = artifacts
        .commit_into(
            repo,
            &format!("popper trace {name}: selfcheck recording {label}"),
            CommitPolicy::Always,
        )?
        .ok_or_else(|| format!("selfcheck recording {label} of '{name}' produced no commit"))?;
    Ok((commit, stats))
}

/// Chunk every worktree file into a fresh dedup store and report the
/// outcome: object counts on the vcs side, chunk counts and the dedup
/// ratio on the store side. Backs both the `store-stats` CI step and
/// the `popper store stats` command.
pub fn store_stats_report(repo: &PopperRepo) -> String {
    let mut store = popper_store::ChunkStore::new();
    let paths: Vec<String> = repo.vcs.files().map(str::to_string).collect();
    store.put_batch(paths.iter().filter_map(|p| repo.vcs.read_file(p)));
    format!(
        "{} file(s), {} vcs object(s); store: {}",
        paths.len(),
        repo.vcs.object_count(),
        store.stats()
    )
}

/// Run the repository's own `.popper-ci.pml`.
pub fn run_ci(
    repo: Arc<Mutex<PopperRepo>>,
    engine: Arc<ExperimentEngine>,
    workers: usize,
) -> Result<BuildReport, String> {
    let config_text = repo
        .lock()
        .read(".popper-ci.pml")
        .ok_or(".popper-ci.pml missing")?;
    let config = PipelineConfig::from_pml(&config_text)?;
    let executor = popper_steps(repo, engine);
    // Propagate the caller's ambient tracer into the worker pool.
    Ok(popper_ci::run_pipeline_traced(&config, executor, workers, popper_trace::current()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::find_template;

    fn shared_repo_with(tpl: &str, name: &str) -> Arc<Mutex<PopperRepo>> {
        let mut repo = PopperRepo::init("t").unwrap();
        for (path, contents) in find_template(tpl).unwrap().files(name) {
            repo.write(&path, contents).unwrap();
        }
        repo.commit("add experiment").unwrap();
        Arc::new(Mutex::new(repo))
    }

    #[test]
    fn default_pipeline_is_green() {
        let repo = shared_repo_with("ceph-rados", "e");
        let engine = Arc::new(ExperimentEngine::new());
        let report = run_ci(repo, engine, 2).unwrap();
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn full_experiment_pipeline() {
        let repo = shared_repo_with("ceph-rados", "e");
        {
            let mut r = repo.lock();
            r.write(
                ".popper-ci.pml",
                "stages: [lint, build, test, regression]\n\
                 jobs:\n\
                 \x20 - name: compliance\n\
                 \x20   stage: lint\n\
                 \x20   steps: [check-compliance, validate-playbooks, validate-pipelines]\n\
                 \x20 - name: run\n\
                 \x20   stage: test\n\
                 \x20   steps: [run-experiment e, validate e]\n\
                 \x20 - name: paper\n\
                 \x20   stage: build\n\
                 \x20   steps: [build-paper]\n\
                 \x20 - name: perf\n\
                 \x20   stage: regression\n\
                 \x20   steps: [regression-gate e y]\n",
            )
            .unwrap();
            r.commit("full pipeline").unwrap();
        }
        let engine = Arc::new(ExperimentEngine::new());
        let report = run_ci(repo.clone(), engine, 4).unwrap();
        assert!(report.passed(), "{}", report.summary());
        // The run step recorded results into the shared repo.
        assert!(repo.lock().exists("experiments/e/results.csv"));
    }

    #[test]
    fn chaos_matrix_fans_one_job_over_schedules() {
        // The chaos axis in the CI matrix: a per-job `matrix:` expands
        // one `run-chaos` job into one job per (schedule, seed) combo,
        // each driving the chaos lifecycle through its env.
        let repo = shared_repo_with("gassyfs", "g");
        {
            let mut r = repo.lock();
            r.write(
                ".popper-ci.pml",
                "stages: [chaos]\n\
                 jobs:\n\
                 \x20 - name: chaos-matrix\n\
                 \x20   stage: chaos\n\
                 \x20   matrix:\n\
                 \x20     schedule: [node-crash, gremlin]\n\
                 \x20     seed: [\"7\"]\n\
                 \x20   steps: [run-chaos g]\n",
            )
            .unwrap();
            r.commit("chaos matrix pipeline").unwrap();
        }
        // A stub fault-aware runner shaped like the real chaos tables.
        let mut engine = ExperimentEngine::new();
        engine.register("gassyfs-scalability", |vars| {
            let sched = popper_chaos::FaultSchedule::from_vars(vars)?.expect("faults armed");
            let mut t = Table::new(["schedule", "epoch", "recovery_ms", "degraded_fraction", "corrupt"]);
            t.push_row(vec![
                popper_format::Value::from(sched.name.as_str()),
                popper_format::Value::from(0i64),
                popper_format::Value::Num(12.0),
                popper_format::Value::Num(0.1),
                popper_format::Value::Num(0.0),
            ])
            .unwrap();
            Ok(t)
        });
        let report = run_ci(repo.clone(), Arc::new(engine), 2).unwrap();
        assert!(report.passed(), "{}", report.summary());
        // Both schedules ran as separate jobs...
        let summary = report.summary();
        assert!(summary.contains("schedule=node-crash"), "{summary}");
        assert!(summary.contains("schedule=gremlin"), "{summary}");
        // ...and the last one's artifacts landed (gremlin sorts after
        // node-crash in job order; each run commits its timeline).
        let r = repo.lock();
        let faults = r.read("experiments/g/faults.json").unwrap();
        assert!(faults.contains("gremlin"), "{faults}");
        assert!(r.vcs.status().unwrap().is_empty());
    }

    #[test]
    fn run_chaos_step_rejects_bad_seed() {
        let repo = shared_repo_with("gassyfs", "g");
        let executor = popper_steps(repo, Arc::new(ExperimentEngine::new()));
        let mut env = std::collections::BTreeMap::new();
        env.insert("schedule".to_string(), "node-crash".to_string());
        env.insert("seed".to_string(), "not-a-number".to_string());
        let outcome = executor(&StepCtx { command: "run-chaos g".into(), env, job: "chaos".into() });
        assert!(!outcome.success);
        assert!(outcome.log.contains("seed"), "{}", outcome.log);
    }

    #[test]
    fn paper_with_dangling_figure_fails_build_stage() {
        let repo = shared_repo_with("ceph-rados", "e");
        {
            let mut r = repo.lock();
            r.write("paper/paper.md", "# T\n\n![fig](experiments/e/figure.txt)\n").unwrap();
            r.commit("paper references unbuilt figure").unwrap();
        }
        let engine = Arc::new(ExperimentEngine::new());
        let report = run_ci(repo.clone(), engine.clone(), 2).unwrap();
        assert!(!report.passed(), "missing figure must fail CI");
        // Run the experiment, then CI goes green — the Popper loop.
        engine.run(&mut repo.lock(), "e").unwrap();
        let report = run_ci(repo, engine, 2).unwrap();
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn regression_gate_detects_slowdown() {
        // Regression gates compare repeated measurements of the same
        // configuration across commits (the Linux-kernel-style perf
        // testing the paper cites).
        let repo = shared_repo_with("ceph-rados", "e");
        let engine = Arc::new(ExperimentEngine::new());
        let runs_csv = |mean: f64| {
            let mut t = Table::new(["rep", "runtime_s"]);
            for i in 0..10 {
                t.push_row(vec![
                    popper_format::Value::from(i as i64),
                    popper_format::Value::Num(mean + (i % 5) as f64 * 0.5),
                ])
                .unwrap();
            }
            t.to_csv()
        };
        {
            let mut r = repo.lock();
            r.write("experiments/e/results.csv", runs_csv(100.0)).unwrap();
            r.commit("baseline runs").unwrap();
        }
        let executor = popper_steps(repo.clone(), engine);
        // First version: nothing to compare against.
        let outcome = executor(&StepCtx {
            command: "regression-gate e runtime_s".into(),
            env: Default::default(),
            job: "perf".into(),
        });
        assert!(outcome.success, "{}", outcome.log);
        // A 15% slowdown in a new commit trips the gate.
        {
            let mut r = repo.lock();
            r.write("experiments/e/results.csv", runs_csv(115.0)).unwrap();
            r.commit("slower results").unwrap();
        }
        let outcome = executor(&StepCtx {
            command: "regression-gate e runtime_s".into(),
            env: Default::default(),
            job: "perf".into(),
        });
        assert!(!outcome.success, "{}", outcome.log);
        assert!(outcome.log.contains("REGRESSION"));
        // An equivalent re-measurement does not.
        {
            let mut r = repo.lock();
            r.write("experiments/e/results.csv", runs_csv(115.1)).unwrap();
            r.commit("rerun, same speed").unwrap();
        }
        let outcome = executor(&StepCtx {
            command: "regression-gate e runtime_s".into(),
            env: Default::default(),
            job: "perf".into(),
        });
        assert!(outcome.success, "{}", outcome.log);
    }

    #[test]
    fn trace_diff_selfcheck_passes_for_deterministic_experiment() {
        let repo = shared_repo_with("ceph-rados", "e");
        let executor = popper_steps(repo.clone(), Arc::new(ExperimentEngine::new()));
        let outcome = executor(&StepCtx {
            command: "trace-diff-selfcheck e".into(),
            env: Default::default(),
            job: "provenance".into(),
        });
        assert!(outcome.success, "{}", outcome.log);
        assert!(outcome.log.contains("equivalent timelines"), "{}", outcome.log);
        // The step recorded the diff artifacts, all committed.
        let r = repo.lock();
        assert!(r.exists("experiments/e/trace-diff.json"));
        assert!(r.vcs.status().unwrap().is_empty());
        // Missing-name and unknown-experiment error paths.
        drop(r);
        let executor2 = popper_steps(shared_repo_with("ceph-rados", "e"), Arc::new(ExperimentEngine::new()));
        let outcome = executor2(&StepCtx {
            command: "trace-diff-selfcheck".into(),
            env: Default::default(),
            job: "provenance".into(),
        });
        assert!(!outcome.success);
        let outcome = executor2(&StepCtx {
            command: "trace-diff-selfcheck ghost".into(),
            env: Default::default(),
            job: "provenance".into(),
        });
        assert!(!outcome.success);
    }

    #[test]
    fn memo_selfcheck_passes_and_reports_replay() {
        let repo = shared_repo_with("ceph-rados", "e");
        let executor = popper_steps(repo.clone(), Arc::new(ExperimentEngine::new()));
        let outcome = executor(&StepCtx {
            command: "memo-selfcheck e".into(),
            env: Default::default(),
            job: "memo".into(),
        });
        assert!(outcome.success, "{}", outcome.log);
        assert!(outcome.log.contains("replayed every stage"), "{}", outcome.log);
        assert!(repo.lock().vcs.status().unwrap().is_empty());
        // Missing-name and unknown-experiment error paths.
        let outcome = executor(&StepCtx {
            command: "memo-selfcheck".into(),
            env: Default::default(),
            job: "memo".into(),
        });
        assert!(!outcome.success);
        let outcome = executor(&StepCtx {
            command: "memo-selfcheck ghost".into(),
            env: Default::default(),
            job: "memo".into(),
        });
        assert!(!outcome.success);
    }

    #[test]
    fn store_stats_step_reports_dedup() {
        let repo = shared_repo_with("ceph-rados", "e");
        let executor = popper_steps(repo.clone(), Arc::new(ExperimentEngine::new()));
        let outcome = executor(&StepCtx {
            command: "store-stats".into(),
            env: Default::default(),
            job: "store".into(),
        });
        assert!(outcome.success, "{}", outcome.log);
        assert!(outcome.log.contains("vcs object(s)"), "{}", outcome.log);
        assert!(outcome.log.contains("dedup"), "{}", outcome.log);
        assert_eq!(outcome.log, store_stats_report(&repo.lock()));
    }

    #[test]
    fn unknown_step_fails() {
        let repo = shared_repo_with("ceph-rados", "e");
        let executor = popper_steps(repo, Arc::new(ExperimentEngine::new()));
        let outcome = executor(&StepCtx { command: "frobnicate".into(), env: Default::default(), job: "j".into() });
        assert!(!outcome.success);
    }

    #[test]
    fn validate_without_results_fails() {
        let repo = shared_repo_with("ceph-rados", "e");
        let executor = popper_steps(repo, Arc::new(ExperimentEngine::new()));
        let outcome = executor(&StepCtx { command: "validate e".into(), env: Default::default(), job: "j".into() });
        assert!(!outcome.success);
        assert!(outcome.log.contains("results.csv"));
    }
}
