//! # popper-core
//!
//! The **Popper convention** itself (§The Popper Convention of the
//! paper): "a methodology for writing academic articles and associated
//! experiments following the DevOps model". This crate ties every
//! substrate together:
//!
//! * [`repo`] — the Popper repository model over [`popper_vcs`]: the
//!   canonical layout of Listing 1 (`paper/`, `experiments/<x>/` with
//!   `datasets/`, `run.sh`, `setup.pml`, `vars.pml`,
//!   `validations.aver`, `results.csv`, `figure.txt`), `popper init`,
//!   and commit plumbing.
//! * [`templates`] — the curated, "Popperized" experiment templates of
//!   Listing 2 (`ceph-rados`, `proteustm`, `mpi-comm-variability`,
//!   `cloverleaf`, `gassyfs`, `zlog`, `spark-standalone`, `torpor`,
//!   `malacology`, plus `jupyter-bww`) and the paper templates
//!   (`article`, `bams`).
//! * [`check`] — the compliance checker: is this repository
//!   *Popper-compliant* ("Popperized")? — "experiment code, experiment
//!   orchestration code, reference to data dependencies,
//!   parametrization of experiment, validation criteria and results"
//!   all present, by construction or by reference.
//! * [`experiment`] — the experiment lifecycle engine: sanitize
//!   (baseline gate) → orchestrate (playbook) → execute (a registered
//!   runner) → record (`results.csv`, committed) → validate (Aver).
//! * [`paper`] — the manuscript side: `paper/build.sh` semantics
//!   (assemble the article, resolve figure references against
//!   experiment outputs) — the "PDF builds" CI check.
//! * [`cipipeline`] — wiring of a Popper repo into [`popper_ci`]: the
//!   generated `.popper-ci.pml` and the step executor that implements
//!   the paper's two validation categories (integrity of the
//!   experimentation logic; integrity of the results).

pub mod chaosrun;
pub mod check;
pub mod diffrun;
pub mod pack;
pub mod pipeline;
pub mod cipipeline;
pub mod experiment;
pub mod memoize;
pub mod paper;
pub mod repo;
pub mod templates;
pub mod verify;

pub use chaosrun::ChaosRunReport;
pub use check::{check_compliance, Violation};
pub use diffrun::TraceDiffReport;
pub use memoize::{cache_disabled_by_env, lifecycle_session, MemoSession, MemoStats, StageOutcome};
pub use pack::pack_experiment;
pub use pipeline::{ArtifactSet, CommitPolicy, Pipeline, RunContext, Stage, StageControl};
pub use experiment::{ExperimentEngine, RunReport, RunnerFn};
pub use repo::PopperRepo;
pub use templates::{experiment_templates, paper_templates, Template};
pub use verify::ReproVerdict;
