//! Curated experiment and paper templates.
//!
//! Listing 2 of the paper:
//!
//! ```text
//! $ popper experiment list
//! -- available templates ---------------
//! ceph-rados        proteustm  mpi-comm-variability
//! cloverleaf        gassyfs    zlog
//! spark-standalone  torpor     malacology
//! ```
//!
//! plus the weather use case's `jupyter-bww` template. Each template is
//! an end-to-end, runnable experiment: parametrization (`vars.pml`),
//! orchestration (`setup.pml`), entry point (`run.sh`), validation
//! criteria (`validations.aver`) and a dataset reference. Templates
//! whose original systems (Ceph, Spark, …) are out of scope for this
//! reproduction use the engine's `synthetic` runner with a
//! representative performance model — they still execute, produce
//! `results.csv` and validate.

/// One template.
#[derive(Debug, Clone)]
pub struct Template {
    /// Template name (Listing 2).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    files: fn(&str) -> Vec<(String, String)>,
}

impl Template {
    /// Materialize the template's files for an experiment directory
    /// `experiments/<target>/`.
    pub fn files(&self, target: &str) -> Vec<(String, String)> {
        (self.files)(target)
    }
}

fn base_files(target: &str, runner: &str, vars: &str, validations: &str, playbook: &str) -> Vec<(String, String)> {
    let dir = format!("experiments/{target}");
    vec![
        (
            format!("{dir}/run.sh"),
            format!("#!/bin/sh\n# Entry point; the engine resolves the runner named in vars.pml.\npopper run {target}\n"),
        ),
        (format!("{dir}/vars.pml"), format!("runner: {runner}\n{vars}")),
        (format!("{dir}/setup.pml"), playbook.to_string()),
        (format!("{dir}/validations.aver"), validations.to_string()),
        (
            format!("{dir}/datasets/README.md"),
            "Datasets are referenced, not stored: see the manifests next to this file.\n".to_string(),
        ),
        (
            format!("{dir}/process-result.sh"),
            "#!/bin/sh\n# Post-processing: results.csv -> figure.txt\npopper figure .\n".to_string(),
        ),
    ]
}

fn generic_playbook(pkg: &str, hosts: &str) -> String {
    format!(
        "- name: provision {pkg}\n  hosts: {hosts}\n  tasks:\n    - name: install {pkg}\n      package: {{name: {pkg}, state: present}}\n    - name: run workload\n      command: ./run.sh\n",
    )
}

fn synthetic_vars(workload: &str, trend: &str, x0: f64, k: f64, points: &str) -> String {
    format!(
        "workload: {workload}\nmachine: cloudlab-c220g\nmodel:\n  trend: {trend}\n  base: {x0}\n  factor: {k}\n  noise: 0.01\n  seed: 1\nxs: {points}\n",
    )
}

fn t_gassyfs(target: &str) -> Vec<(String, String)> {
    let mut files = base_files(
        target,
        "gassyfs-scalability",
        "workload: git\nmachine: gassyfs-node\nnodes: [1, 2, 4, 8, 16]\nfigure:\n  kind: line\n  title: GassyFS git-compile scalability\n  x: nodes\n  y: time\n  group_by: machine\n",
        "# Listing 3 of the paper, verbatim.\nwhen\n  workload=* and machine=*\nexpect\n  sublinear(nodes, time)\n",
        &generic_playbook("gassyfs", "gassyfs"),
    );
    // Resilience claims for `popper chaos`: checked against the chaos
    // results table instead of validations.aver.
    files.push((
        format!("experiments/{target}/chaos.aver"),
        popper_chaos::DEFAULT_ASSERTIONS.to_string(),
    ));
    files
}

fn t_torpor(target: &str) -> Vec<(String, String)> {
    base_files(
        target,
        "torpor-variability",
        "base: xeon-2006\ntargets: [cloudlab-c220g, ec2-vm, hpc-node]\nbin_width: 0.1\nunits: 1\nfigure:\n  kind: histogram\n  title: Speedup variability profile\n  x: speedup\n  bin_width: 0.1\n",
        "when target=* expect min(speedup) > 1;\nwhen target=* expect max(speedup) / min(speedup) > 1.5\n",
        &generic_playbook("torpor", "all"),
    )
}

fn t_mpi(target: &str) -> Vec<(String, String)> {
    // 40 iterations keep the virtual horizon (~80 ms) past the
    // built-in schedules' first crash, so `popper chaos` exercises a
    // real recovery instead of finishing before the fault fires.
    let mut files = base_files(
        target,
        "mpi-variability",
        "grid: [3, 3, 3]\nelements: 20\niterations: 40\nnodes: 9\nrepetitions: 8\nmachine: hpc-node\nfigure:\n  kind: line\n  title: Runtime across repetitions\n  x: rep\n  y: time\n  group_by: scenario\n",
        "when scenario = quiet expect constant(time, 1);\nwhen scenario=* expect count(time) >= 8\n",
        &generic_playbook("lulesh-mpip", "hpc"),
    );
    // Resilience claims for `popper chaos`: recovery must be prompt,
    // an ULFM-style shrink may shed at most half the communicator, and
    // the run must still complete every configured iteration (a wedged
    // or truncated run sets `corrupt`).
    files.push((
        format!("experiments/{target}/chaos.aver"),
        "when schedule=* expect recovers_within(recovery_ms, 1000);\n\
         when schedule=* expect degraded_at_most(degraded_fraction, 0.5);\n\
         when schedule=* expect max(corrupt) = 0\n"
            .to_string(),
    ));
    files
}

fn t_bww(target: &str) -> Vec<(String, String)> {
    let mut files = base_files(
        target,
        "bww-airtemp",
        "dataset: air-temperature\nyears: 2\ngrid: [19, 36]\nfigure:\n  kind: line\n  title: Zonal mean air temperature\n  x: lat\n  y: temp_k\n",
        "expect min(temp_k) > 200 and max(temp_k) < 330;\nexpect count(temp_k) >= 19\n",
        "- name: single-node analysis\n  hosts: all\n  tasks:\n    - name: install xarray-rs\n      package: {name: xarray-rs, state: present}\n    - name: open notebook\n      command: ./visualize.sh\n",
    );
    files.push((
        format!("experiments/{target}/datasets/air-temperature.pml"),
        "name: air-temperature\nversion: \"1.0.0\"\ndescription: NCEP/NCAR Reanalysis 1 surface air temperature (synthetic stand-in)\n".to_string(),
    ));
    files.push((
        format!("experiments/{target}/visualize.sh"),
        "#!/bin/sh\ndpm install datapackages/air-temperature\npopper run-notebook visualize\n".to_string(),
    ));
    // Resilience claims for `popper chaos`: the datapackage fetch may
    // retry and fail over, but the analysis is rejected if more than a
    // quarter of the record had to be dropped.
    files.push((
        format!("experiments/{target}/chaos.aver"),
        "when schedule=* expect recovers_within(recovery_ms, 5000);\n\
         when schedule=* expect degraded_at_most(degraded_fraction, 0.25);\n\
         when schedule=* expect max(corrupt) = 0\n"
            .to_string(),
    ));
    files
}

fn t_ceph(target: &str) -> Vec<(String, String)> {
    base_files(
        target,
        "synthetic",
        &synthetic_vars("rados-bench-write", "linear", 80.0, 1.0, "[1, 2, 4, 8]"),
        "# RADOS write throughput scales with OSD count in this regime.\nexpect linear(x, y);\nexpect increasing(x, y)\n",
        &generic_playbook("ceph", "osds,monitors"),
    )
}

fn t_cloverleaf(target: &str) -> Vec<(String, String)> {
    base_files(
        target,
        "synthetic",
        &synthetic_vars("cloverleaf-hydro", "sublinear", 120.0, 0.55, "[1, 2, 4, 8, 16]"),
        "# Strong-scaling efficiency decays: runtime falls sublinearly in 1/p,\n# i.e. aggregate cost grows sublinearly with node count.\nexpect sublinear(x, y)\n",
        &generic_playbook("cloverleaf", "hpc"),
    )
}

fn t_spark(target: &str) -> Vec<(String, String)> {
    base_files(
        target,
        "synthetic",
        &synthetic_vars("spark-sort", "sublinear", 200.0, 0.7, "[2, 4, 8, 16]"),
        "expect sublinear(x, y); expect count(y) >= 4\n",
        &generic_playbook("spark-standalone", "workers,master"),
    )
}

fn t_proteustm(target: &str) -> Vec<(String, String)> {
    base_files(
        target,
        "synthetic",
        &synthetic_vars("proteustm-stmbench", "linear", 15.0, 1.0, "[1, 2, 4]"),
        "expect increasing(x, y)\n",
        &generic_playbook("proteustm", "all"),
    )
}

fn t_zlog(target: &str) -> Vec<(String, String)> {
    base_files(
        target,
        "synthetic",
        &synthetic_vars("zlog-append", "linear", 50.0, 1.0, "[1, 2, 4, 8]"),
        "expect linear(x, y)\n",
        &generic_playbook("zlog", "storage"),
    )
}

fn t_malacology(target: &str) -> Vec<(String, String)> {
    base_files(
        target,
        "synthetic",
        &synthetic_vars("malacology-interfaces", "sublinear", 30.0, 0.8, "[1, 2, 4, 8]"),
        "expect sublinear(x, y)\n",
        &generic_playbook("malacology", "ceph"),
    )
}

/// The experiment-template registry (Listing 2 plus `jupyter-bww`).
pub fn experiment_templates() -> Vec<Template> {
    vec![
        Template { name: "ceph-rados", description: "RADOS object-store write scalability", files: t_ceph },
        Template { name: "cloverleaf", description: "CloverLeaf hydrodynamics strong scaling", files: t_cloverleaf },
        Template { name: "spark-standalone", description: "Spark standalone sort scaling", files: t_spark },
        Template { name: "proteustm", description: "ProteusTM transactional-memory throughput", files: t_proteustm },
        Template { name: "gassyfs", description: "GassyFS in-memory FS scalability (the paper's use case)", files: t_gassyfs },
        Template { name: "torpor", description: "Torpor cross-platform variability profile", files: t_torpor },
        Template { name: "mpi-comm-variability", description: "LULESH/mpiP noisy-neighborhood study", files: t_mpi },
        Template { name: "zlog", description: "ZLog sequencer append throughput", files: t_zlog },
        Template { name: "malacology", description: "Malacology programmable-storage interfaces", files: t_malacology },
        Template { name: "jupyter-bww", description: "Big Weather Web air-temperature analysis", files: t_bww },
    ]
}

/// Look up one experiment template.
pub fn find_template(name: &str) -> Option<Template> {
    experiment_templates().into_iter().find(|t| t.name == name)
}

/// Paper (manuscript) templates: `popper paper list`.
pub fn paper_templates() -> Vec<(&'static str, &'static str)> {
    vec![
        ("article", "Generic LaTeX-ish article skeleton"),
        ("bams", "Bulletin of the American Meteorological Society"),
    ]
}

/// Materialize a paper template into `paper/`.
pub fn paper_template_files(name: &str) -> Option<Vec<(String, String)>> {
    let body = match name {
        "article" => {
            "---\ntitle: \"Article title\"\nauthor: \"Authors\"\n---\n\n# Introduction\n\n# Evaluation\n\n\
             ![scalability](experiments/myexp/figure.txt)\n"
        }
        "bams" => {
            "---\ntitle: \"A BAMS article\"\njournal: bams\n---\n\n# Abstract\n\n# Data and Methods\n\n\
             ![air temperature](experiments/airtemp-analysis/figure.txt)\n"
        }
        _ => return None,
    };
    Some(vec![
        ("paper/paper.md".to_string(), body.to_string()),
        (
            "paper/build.sh".to_string(),
            "#!/bin/sh\npopper-build-paper .\n".to_string(),
        ),
        ("paper/references.bib".to_string(), "@misc{placeholder}\n".to_string()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_format::pml;

    #[test]
    fn listing_two_names_are_all_present() {
        let names: Vec<&str> = experiment_templates().iter().map(|t| t.name).collect();
        for expected in [
            "ceph-rados",
            "proteustm",
            "mpi-comm-variability",
            "cloverleaf",
            "gassyfs",
            "zlog",
            "spark-standalone",
            "torpor",
            "malacology",
            "jupyter-bww",
        ] {
            assert!(names.contains(&expected), "missing template {expected}");
        }
    }

    #[test]
    fn every_template_is_self_contained() {
        // The Popperized definition: code, orchestration, data refs,
        // parametrization, validation — all present.
        for t in experiment_templates() {
            let files = t.files("myexp");
            let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
            for required in ["run.sh", "vars.pml", "setup.pml", "validations.aver", "datasets/"] {
                assert!(
                    paths.iter().any(|p| p.contains(required)),
                    "template {} missing {required}",
                    t.name
                );
            }
            // All paths live under the experiment directory.
            assert!(paths.iter().all(|p| p.starts_with("experiments/myexp/")), "{paths:?}");
        }
    }

    #[test]
    fn template_configs_parse() {
        for t in experiment_templates() {
            let files = t.files("x");
            let vars = files.iter().find(|(p, _)| p.ends_with("vars.pml")).unwrap();
            let parsed = pml::parse(&vars.1).unwrap_or_else(|e| panic!("{}: {e}", t.name));
            assert!(parsed.get_str("runner").is_some(), "{} vars need a runner", t.name);
            let play = files.iter().find(|(p, _)| p.ends_with("setup.pml")).unwrap();
            popper_orchestra::Playbook::from_pml(&play.1)
                .unwrap_or_else(|e| panic!("{} playbook: {e}", t.name));
            let aver = files.iter().find(|(p, _)| p.ends_with("validations.aver")).unwrap();
            popper_aver::parse(&aver.1).unwrap_or_else(|e| panic!("{} validations: {e}", t.name));
            if let Some((_, chaos)) = files.iter().find(|(p, _)| p.ends_with("chaos.aver")) {
                popper_aver::parse(chaos).unwrap_or_else(|e| panic!("{} chaos: {e}", t.name));
            }
        }
    }

    #[test]
    fn find_template_works() {
        assert_eq!(find_template("gassyfs").unwrap().name, "gassyfs");
        assert!(find_template("nope").is_none());
    }

    #[test]
    fn paper_templates_materialize() {
        assert_eq!(paper_templates().len(), 2);
        let article = paper_template_files("article").unwrap();
        assert!(article.iter().any(|(p, _)| p == "paper/paper.md"));
        let bams = paper_template_files("bams").unwrap();
        assert!(bams.iter().any(|(_, c)| c.contains("bams")));
        assert!(paper_template_files("nope").is_none());
    }
}
