//! The manuscript side: `paper/build.sh` semantics.
//!
//! A Popper article "is written in any desired markup language … there
//! is a `build.sh` command that generates the output format". Here the
//! markup is Markdown with a PML front-matter block; *building* means
//! assembling the article, resolving every figure reference against the
//! repository (figures are experiment outputs!), expanding
//! `@experiment:<name>` result embeds, and producing the final
//! artifact. A dangling figure reference fails the build — that is the
//! "paper is always in a state that can be built" CI check.

use crate::repo::PopperRepo;
use popper_format::pml;

/// A successfully built article.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltPaper {
    /// Title from the front matter.
    pub title: String,
    /// The assembled output (the "PDF").
    pub output: String,
    /// Figures that were resolved, in order of appearance.
    pub figures: Vec<String>,
    /// Section headings.
    pub sections: Vec<String>,
}

/// Errors from the paper build.
#[derive(Debug, Clone, PartialEq)]
pub enum PaperError {
    /// No manuscript found.
    NoManuscript,
    /// Front matter is not valid PML.
    BadFrontMatter(String),
    /// A referenced figure does not exist in the repository.
    MissingFigure(String),
    /// An `@experiment:` embed names an experiment without results.
    MissingResults(String),
}

impl std::fmt::Display for PaperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaperError::NoManuscript => write!(f, "paper/paper.md not found"),
            PaperError::BadFrontMatter(e) => write!(f, "front matter: {e}"),
            PaperError::MissingFigure(p) => write!(f, "figure '{p}' not found (run its experiment first)"),
            PaperError::MissingResults(e) => write!(f, "experiment '{e}' has no results.csv to embed"),
        }
    }
}

impl std::error::Error for PaperError {}

/// Build the article.
pub fn build_paper(repo: &PopperRepo) -> Result<BuiltPaper, PaperError> {
    let source = repo.read("paper/paper.md").ok_or(PaperError::NoManuscript)?;

    // Front matter: optional leading `---\n…\n---` PML block.
    let (front, body) = split_front_matter(&source);
    let title = match front {
        Some(fm) => {
            let v = pml::parse(fm).map_err(|e| PaperError::BadFrontMatter(e.to_string()))?;
            v.get_str("title").unwrap_or("Untitled").to_string()
        }
        None => "Untitled".to_string(),
    };

    let mut output = String::new();
    output.push_str(&format!("=== {title} ===\n"));
    let mut figures = Vec::new();
    let mut sections = Vec::new();

    for line in body.lines() {
        if let Some(heading) = line.strip_prefix('#') {
            sections.push(heading.trim_start_matches('#').trim().to_string());
            output.push_str(&format!("\n{}\n", heading.trim()));
            continue;
        }
        // Figure references: ![alt](path)
        if let Some((alt, path)) = parse_figure_ref(line) {
            let contents = repo
                .read(path)
                .ok_or_else(|| PaperError::MissingFigure(path.to_string()))?;
            figures.push(path.to_string());
            output.push_str(&format!("[figure: {alt}]\n{contents}\n"));
            continue;
        }
        // Result embeds: @experiment:<name> inlines the results table.
        if let Some(name) = line.trim().strip_prefix("@experiment:") {
            let name = name.trim();
            let csv = repo
                .read(&format!("experiments/{name}/results.csv"))
                .ok_or_else(|| PaperError::MissingResults(name.to_string()))?;
            let table = popper_format::Table::from_csv(&csv)
                .map_err(|e| PaperError::MissingResults(format!("{name}: {e}")))?;
            output.push_str(&table.to_pretty());
            continue;
        }
        output.push_str(line);
        output.push('\n');
    }

    Ok(BuiltPaper { title, output, figures, sections })
}

fn split_front_matter(source: &str) -> (Option<&str>, &str) {
    let Some(rest) = source.strip_prefix("---\n") else {
        return (None, source);
    };
    match rest.find("\n---") {
        Some(end) => {
            let fm = &rest[..end + 1];
            let body = rest[end + 4..].trim_start_matches('\n');
            (Some(fm), body)
        }
        None => (None, source),
    }
}

fn parse_figure_ref(line: &str) -> Option<(&str, &str)> {
    let line = line.trim();
    let rest = line.strip_prefix("![")?;
    let (alt, rest) = rest.split_once("](")?;
    let (path, _tail) = rest.split_once(')')?;
    Some((alt, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_with_paper(body: &str) -> PopperRepo {
        let mut repo = PopperRepo::init("t").unwrap();
        repo.write("paper/paper.md", body).unwrap();
        repo.commit("paper").unwrap();
        repo
    }

    #[test]
    fn builds_default_init_paper() {
        let repo = PopperRepo::init("t").unwrap();
        let built = build_paper(&repo).unwrap();
        assert_eq!(built.title, "An article following the Popper convention");
        assert!(built.sections.contains(&"Introduction".to_string()));
        assert!(built.figures.is_empty());
    }

    #[test]
    fn resolves_figures_from_experiments() {
        let mut repo = repo_with_paper(
            "---\ntitle: \"GassyFS scaling\"\n---\n\n# Evaluation\n\n![scaling](experiments/g/figure.txt)\n",
        );
        // Build must fail before the experiment ran…
        match build_paper(&repo) {
            Err(PaperError::MissingFigure(p)) => assert_eq!(p, "experiments/g/figure.txt"),
            other => panic!("{other:?}"),
        }
        // …and succeed after.
        repo.write("experiments/g/figure.txt", "nodes time\n1 100\n").unwrap();
        repo.commit("figure").unwrap();
        let built = build_paper(&repo).unwrap();
        assert_eq!(built.figures, vec!["experiments/g/figure.txt"]);
        assert!(built.output.contains("[figure: scaling]"));
        assert!(built.output.contains("nodes time"));
    }

    #[test]
    fn embeds_result_tables() {
        let mut repo = repo_with_paper("# Results\n\n@experiment:e\n");
        match build_paper(&repo) {
            Err(PaperError::MissingResults(e)) => assert_eq!(e, "e"),
            other => panic!("{other:?}"),
        }
        repo.write("experiments/e/results.csv", "x,y\n1,10\n2,18\n").unwrap();
        repo.commit("results").unwrap();
        let built = build_paper(&repo).unwrap();
        assert!(built.output.contains("x  y"), "{}", built.output);
        assert!(built.output.contains("18"));
    }

    #[test]
    fn front_matter_variants() {
        let built = build_paper(&repo_with_paper("no front matter\n# S\n")).unwrap();
        assert_eq!(built.title, "Untitled");
        assert_eq!(built.sections, vec!["S"]);

        let mut repo = PopperRepo::init("t").unwrap();
        repo.write("paper/paper.md", "---\ntitle: \"T\"\nbad: [unclosed\n---\nbody\n").unwrap();
        repo.commit("bad fm").unwrap();
        assert!(matches!(build_paper(&repo), Err(PaperError::BadFrontMatter(_))));
    }

    #[test]
    fn missing_manuscript() {
        let mut repo = PopperRepo::init("t").unwrap();
        repo.vcs.remove_file("paper/paper.md");
        assert_eq!(build_paper(&repo), Err(PaperError::NoManuscript));
    }

    #[test]
    fn figure_ref_parsing() {
        assert_eq!(
            parse_figure_ref("![alt text](a/b.txt)"),
            Some(("alt text", "a/b.txt"))
        );
        assert_eq!(parse_figure_ref("plain text"), None);
        assert_eq!(parse_figure_ref("![broken](no-close"), None);
    }
}
