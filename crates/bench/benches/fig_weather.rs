//! F4 — Figure `bww-airtemp`: the air-temperature analysis panels, plus
//! generator/analysis throughput at the real Reanalysis-1 dimensions.

use criterion::{criterion_group, Criterion};
use popper_weather::{analyze, generate, ReanalysisConfig};

fn print_figure() {
    eprintln!("{}", popper_bench::banner("Fig. bww-airtemp"));
    let grid = generate(&ReanalysisConfig::default());
    let analysis = analyze(&grid);
    // Print a decimated zonal profile (every 6th latitude).
    eprintln!("zonal mean (K) by latitude:");
    for (lat, z) in analysis.zonal_profile.iter().step_by(6) {
        eprintln!("  {lat:>6.1}  {z:7.2}  {}", "#".repeat(((z - 210.0) / 3.0).max(0.0) as usize));
    }
    let series: Vec<f64> = analysis.global_series.iter().map(|(_, _, v)| *v).collect();
    eprintln!(
        "\nglobal mean: {:.2} K .. {:.2} K over {} months",
        series.iter().cloned().fold(f64::INFINITY, f64::min),
        series.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        series.len()
    );
    eprintln!("shape: warm equator, cold poles, hemisphere-opposed seasonal cycle.\n");
}

fn bench_generate_and_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("weather");
    group.sample_size(10);
    group.bench_function("generate_73x144x48", |b| {
        let config = ReanalysisConfig::default();
        b.iter(|| criterion::black_box(generate(&config)));
    });
    let grid = generate(&ReanalysisConfig::default());
    group.bench_function("analyze_73x144x48", |b| {
        b.iter(|| criterion::black_box(analyze(&grid)));
    });
    group.bench_function("csv_round_trip_small", |b| {
        let small = generate(&ReanalysisConfig::small());
        b.iter(|| {
            let text = popper_weather::reanalysis::to_csv(&small);
            criterion::black_box(popper_weather::reanalysis::from_csv(&text).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generate_and_analyze);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
