//! Substrate microbenchmarks: the DevOps machinery's own throughput
//! (content hashing, chunking, diffing, parsing, fabric simulation).
//! These are the "is the infrastructure fast enough to be convenient"
//! numbers — usability being, per §Discussion, the key to making
//! reproducibility work.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use popper_store::chunker::{chunk, ChunkerConfig};
use popper_store::ChunkStore;
use popper_vcs::sha256;
use rand::{Rng, SeedableRng};

fn data(len: usize) -> Vec<u8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    (0..len).map(|_| rng.gen()).collect()
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/sha256");
    for size in [4 * 1024usize, 1 << 20] {
        let input = data(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &input, |b, input| {
            b.iter(|| criterion::black_box(sha256::digest(input)));
        });
    }
    group.finish();
}

fn bench_chunker(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/cdc_chunker");
    let input = data(4 << 20);
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("chunk_4MiB", |b| {
        let cfg = ChunkerConfig::default();
        b.iter(|| criterion::black_box(chunk(&input, &cfg).len()));
    });
    group.bench_function("store_put_dedup_4MiB", |b| {
        b.iter(|| {
            let mut s = ChunkStore::new();
            let m1 = s.put(&input);
            let m2 = s.put(&input); // fully deduped second pass
            criterion::black_box((m1.chunks.len(), m2.chunks.len()))
        });
    });
    group.finish();
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/myers_diff");
    group.sample_size(20);
    let old: Vec<String> = (0..2000).map(|i| format!("line {i}")).collect();
    let mut new = old.clone();
    for i in (0..2000).step_by(50) {
        new[i] = format!("edited {i}");
    }
    group.bench_function("2000_lines_40_edits", |b| {
        let old_refs: Vec<&str> = old.iter().map(String::as_str).collect();
        let new_refs: Vec<&str> = new.iter().map(String::as_str).collect();
        b.iter(|| criterion::black_box(popper_vcs::diff::diff_lines(&old_refs, &new_refs).len()));
    });
    group.finish();
}

fn bench_parsers(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/parsers");
    // A realistic results.csv.
    let mut csv = String::from("workload,machine,nodes,time\n");
    for i in 0..2000 {
        csv.push_str(&format!("git,cloudlab,{},{}.5\n", i % 16 + 1, 100 + i));
    }
    group.throughput(Throughput::Bytes(csv.len() as u64));
    group.bench_function("table_from_csv_2000_rows", |b| {
        b.iter(|| criterion::black_box(popper_format::Table::from_csv(&csv).unwrap().len()));
    });
    let playbook = "- name: provision\n  hosts: gassyfs\n  tasks:\n    - name: install\n      package: {name: gassyfs, version: \"2.1\"}\n    - name: run\n      command: ./run.sh --nodes {{ nodes }}\n";
    group.bench_function("pml_playbook_parse", |b| {
        b.iter(|| criterion::black_box(popper_format::pml::parse(playbook).unwrap()));
    });
    let aver_src = "when workload=* and machine=* expect sublinear(nodes, time) and count(time) >= 3";
    group.bench_function("aver_parse", |b| {
        b.iter(|| criterion::black_box(popper_aver::parse(aver_src).unwrap().len()));
    });
    let table = popper_format::Table::from_csv(&csv).unwrap();
    let assertions = popper_aver::parse(aver_src).unwrap();
    group.bench_function("aver_check_2000_rows", |b| {
        b.iter(|| criterion::black_box(popper_aver::check_all(&assertions, &table).unwrap().passed));
    });
    group.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/sim_fabric");
    group.bench_function("transfer_ops_16_nodes", |b| {
        b.iter(|| {
            let mut f = popper_sim::Fabric::new(16, 40.0, popper_sim::Nanos::from_micros(5), 1.0);
            let mut t = popper_sim::Nanos::ZERO;
            for i in 0..1000u64 {
                let src = (i % 16) as usize;
                let dst = ((i * 7 + 3) % 16) as usize;
                t = f.transfer(src, dst, 4096, t);
            }
            criterion::black_box(t)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_chunker,
    bench_diff,
    bench_parsers,
    bench_fabric
);

fn main() {
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
