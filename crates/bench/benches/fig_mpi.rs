//! F3 — §5.3: the MPI noisy-neighborhood runtime distributions (the
//! figure deferred in the paper's draft) plus LULESH-proxy throughput.

use criterion::{criterion_group, BenchmarkId, Criterion};
use popper_aver::stats;
use popper_minimpi::comm::MpiWorld;
use popper_minimpi::experiment::{run_variability_study, VariabilityStudy};
use popper_minimpi::lulesh::{run, LuleshConfig};
use popper_sim::{platforms, Cluster};

fn print_figure() {
    eprintln!("{}", popper_bench::banner("§5.3 MPI noisy neighborhood"));
    let study = VariabilityStudy::default();
    let outcome = run_variability_study(&study);
    eprintln!("{:>10} {:>10} {:>10} {:>10} {:>8}", "scenario", "mean (s)", "min (s)", "max (s)", "CoV");
    for scenario in ["quiet", "os-noise", "neighbor"] {
        let times = outcome.times(scenario);
        let mean = stats::mean(&times);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        eprintln!(
            "{scenario:>10} {mean:>10.3} {min:>10.3} {max:>10.3} {:>7.2}%",
            outcome.cov(scenario) * 100.0
        );
    }
    eprintln!("\nshape: quiet CoV = 0 (controlled), noisy CoV > 0; noise slows the mean.\n");
}

fn bench_lulesh(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi/lulesh_proxy");
    group.sample_size(10);
    for ranks_per_dim in [2usize, 3] {
        let mut config = LuleshConfig::paper();
        config.grid = (ranks_per_dim, ranks_per_dim, ranks_per_dim);
        config.iterations = 10;
        group.bench_with_input(
            BenchmarkId::from_parameter(config.ranks()),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut world =
                        MpiWorld::new(Cluster::new(platforms::hpc_node(), 9), config.ranks());
                    criterion::black_box(run(&mut world, config))
                });
            },
        );
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi/collectives");
    group.sample_size(30);
    group.bench_function("allreduce_64_ranks", |b| {
        b.iter(|| {
            let mut w = MpiWorld::new(Cluster::new(platforms::hpc_node(), 16), 64);
            for _ in 0..100 {
                w.allreduce(8);
            }
            criterion::black_box(w.elapsed())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lulesh, bench_collectives);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
