//! Memoization payoff: cold-vs-warm lifecycle wall time.
//!
//! The memo table's whole claim is that a warm re-run is a replay, not
//! an execution — so the bench times the `run` lifecycle cold (empty
//! cache) and warm (every stage a hit) for the two heaviest use cases,
//! the MPI noisy-neighborhood study and the weather analysis, writes
//! the measurements to `BENCH_memo.json` at the workspace root, and
//! gates the speedup with Aver: warm must cost at most 25% of cold.

use criterion::{criterion_group, Criterion};
use popper_cli::runners::full_engine;
use popper_core::templates::find_template;
use popper_core::{lifecycle_session, ExperimentEngine, PopperRepo, RunContext};
use popper_format::{json, Table, Value};
use std::time::Instant;

const EXPERIMENTS: &[(&str, &str)] = &[("mpi-comm-variability", "m"), ("jupyter-bww", "w")];
const GATE: &str = "when experiment=* expect avg(warm_ms) <= 0.25 * avg(cold_ms)";

fn seeded(tpl: &str, name: &str) -> PopperRepo {
    let mut repo = PopperRepo::init("memo-bench").unwrap();
    for (path, contents) in find_template(tpl).unwrap().files(name) {
        repo.write(&path, contents).unwrap();
    }
    repo.commit(&format!("popper add {tpl} {name}")).unwrap();
    repo
}

/// One memoized `run`; returns (elapsed_ms, misses).
fn timed_run(repo: &mut PopperRepo, engine: &ExperimentEngine, name: &str) -> (f64, usize) {
    let started = Instant::now();
    let mut ctx = RunContext::for_experiment(repo, name)
        .unwrap()
        .with_memo(lifecycle_session(repo, name, "run", &[]));
    engine.run_pipeline(repo, &mut ctx).unwrap();
    let elapsed = started.elapsed().as_secs_f64() * 1e3;
    (elapsed, ctx.memo_stats().unwrap().misses())
}

fn measure() -> Table {
    let engine = full_engine();
    let mut table = Table::new(["experiment", "cold_ms", "warm_ms"]);
    for &(tpl, name) in EXPERIMENTS {
        let mut repo = seeded(tpl, name);
        let (cold_ms, misses) = timed_run(&mut repo, &engine, name);
        assert!(misses > 0, "{tpl}: cold run must execute stages");
        // Best of three warm repeats: the steady-state replay cost,
        // not first-touch page-cache noise.
        let warm_ms = (0..3)
            .map(|i| {
                let (ms, misses) = timed_run(&mut repo, &engine, name);
                assert_eq!(misses, 0, "{tpl}: warm repeat {i} must be a full replay");
                ms
            })
            .fold(f64::INFINITY, f64::min);
        table
            .push_record(&[
                ("experiment", Value::from(tpl)),
                ("cold_ms", Value::from(cold_ms)),
                ("warm_ms", Value::from(warm_ms)),
            ])
            .unwrap();
    }
    table
}

fn print_and_commit() {
    eprintln!("{}", popper_bench::banner("memo: cold vs warm lifecycle"));
    let table = measure();
    eprintln!("{:<22} {:>10} {:>10} {:>8}", "experiment", "cold ms", "warm ms", "ratio");
    let mut rows = Value::empty_map();
    for row in table.iter() {
        let (exp, cold, warm) =
            (row.str("experiment").unwrap(), row.num("cold_ms").unwrap(), row.num("warm_ms").unwrap());
        eprintln!("{exp:<22} {cold:>10.2} {warm:>10.2} {:>7.1}%", warm / cold * 100.0);
        let mut point = Value::empty_map();
        point.insert("cold_ms", Value::from(cold));
        point.insert("warm_ms", Value::from(warm));
        point.insert("warm_over_cold", Value::from(warm / cold));
        rows.insert(exp, point);
    }
    let verdict = popper_aver::check(GATE, &table).expect("gate evaluates");
    eprintln!("\naver: {GATE}\n  -> {verdict}");
    assert!(verdict.passed, "memo speedup gate failed: {verdict}");

    let mut report = Value::empty_map();
    report.insert("bench", Value::from("memo_cold_vs_warm"));
    report.insert("unit", Value::from("ms_wall"));
    report.insert("lifecycle", Value::from("run"));
    report.insert("assertion", Value::from(GATE));
    report.insert("verdict", Value::from(format!("{verdict}")));
    report.insert("experiments", rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_memo.json");
    std::fs::write(path, json::to_string_pretty(&report) + "\n").unwrap();
    eprintln!("wrote {path}\n");
}

fn bench_warm_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo");
    group.sample_size(10);
    let engine = full_engine();
    for &(tpl, name) in EXPERIMENTS {
        let mut repo = seeded(tpl, name);
        timed_run(&mut repo, &engine, name); // prime the cache
        group.bench_function(format!("warm_replay/{tpl}"), |b| {
            b.iter(|| {
                let (ms, misses) = timed_run(&mut repo, &engine, name);
                assert_eq!(misses, 0);
                criterion::black_box(ms)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_warm_replay);

fn main() {
    print_and_commit();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
