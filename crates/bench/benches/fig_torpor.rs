//! F1 — Figure `torpor-variability`: the per-stressor speedup histogram
//! of a CloudLab node over the 10-year-old Xeon.
//!
//! The figure data prints first; Criterion then measures both the
//! simulated profiling pipeline and a subset of the *real* stressor
//! kernels on the machine running this bench (Torpor's actual
//! measurement primitive).

use criterion::{criterion_group, BenchmarkId, Criterion};
use popper_monitor::stressors::{by_name, STRESSORS};
use popper_torpor::experiment::{run_variability_experiment, VariabilityExperiment};
use popper_torpor::profile::PerformanceProfile;
use popper_torpor::variability::VariabilityProfile;
use popper_sim::platforms;

fn print_figure() {
    eprintln!("{}", popper_bench::banner("Fig. torpor-variability"));
    let results = run_variability_experiment(&VariabilityExperiment::default());
    for r in &results {
        let (lo, hi) = r.profile.range();
        eprintln!("--- {} vs {} (range {:.2}x..{:.2}x)", r.profile.target, r.profile.base, lo, hi);
        eprint!("{}", r.histogram.render());
        let modal = r.histogram.modal_bin();
        eprintln!(
            "modal bin ({:.1},{:.1}]: {} stressors (paper: 7 in one 0.1 bin)\n",
            modal.lo, modal.hi, modal.count
        );
    }
}

fn bench_profile_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("torpor/pipeline");
    group.sample_size(20);
    group.bench_function("profile_two_platforms_and_histogram", |b| {
        let base = platforms::xeon_2006();
        let target = platforms::cloudlab_c220g();
        b.iter(|| {
            let pb = PerformanceProfile::of_platform(&base, 1.0);
            let pt = PerformanceProfile::of_platform(&target, 1.0);
            let v = VariabilityProfile::between(&pb, &pt).unwrap();
            criterion::black_box(v.histogram(0.1))
        });
    });
    group.bench_function("full_three_target_experiment", |b| {
        let config = VariabilityExperiment::default();
        b.iter(|| criterion::black_box(run_variability_experiment(&config)));
    });
    group.finish();
}

fn bench_real_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("torpor/real_kernels");
    group.sample_size(10);
    for name in ["cpu-int", "cpu-fp", "cpu-matmul", "vm-stream", "vm-ptr-chase", "cpu-hash"] {
        let s = by_name(name).expect("battery stressor");
        group.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, s| {
            b.iter(|| criterion::black_box(s.run_real(1)));
        });
    }
    group.finish();
    eprintln!("(battery size: {} stressors)", STRESSORS.len());
}

criterion_group!(benches, bench_profile_pipeline, bench_real_kernels);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
