//! A1/A2 + design ablations called out in DESIGN.md:
//!
//! * **hypervisor tax** (§Common Practice: VM overheads "cannot be
//!   accounted for easily") — the Torpor battery on bare metal vs. a VM
//!   model; only syscall-heavy stressors move.
//! * **baseline gate** — cost of the sanitization step (it must be
//!   cheap enough to run before *every* experiment).
//! * **controlled vs statistical reproducibility** (§Discussion) — the
//!   two hypothesis tests on realistic runtime samples.
//! * **FUSE writeback option** — the packaging-choice effect the
//!   GassyFS use case motivates.
//! * **tracing overhead** (`ablate_trace_overhead`) — the sim hot path
//!   with a disabled vs. an enabled `popper-trace` sink; a disabled
//!   sink must stay below 5% so instrumentation can ship always-on.
//! * **fault-plane overhead** (`ablate_fault_overhead`) — the fabric
//!   admit path with a healthy vs. an active `FaultPlane`; a healthy
//!   plane is one branch per transfer and must stay below 5% so fault
//!   support can stay compiled into every run.

use criterion::{criterion_group, Criterion};
use popper_monitor::stressors::STRESSORS;
use popper_monitor::{mann_whitney_u, welch_t_test, Baseline, BaselineGate};
use popper_sim::platforms;
use rand::{Rng, SeedableRng};

fn print_hypervisor_ablation() {
    eprintln!("{}", popper_bench::banner("A1: hypervisor tax"));
    let bare = platforms::cloudlab_c220g();
    let vm = bare.virtualized(1.35, "same-hw-vm");
    eprintln!("{:<14} {:>12} {:>12} {:>8}", "stressor", "bare (s)", "vm (s)", "tax");
    for s in STRESSORS {
        let tb = s.simulated_runtime(&bare, 1.0).as_secs_f64();
        let tv = s.simulated_runtime(&vm, 1.0).as_secs_f64();
        eprintln!("{:<14} {tb:>12.5} {tv:>12.5} {:>7.1}%", s.name, (tv / tb - 1.0) * 100.0);
    }
    eprintln!("shape: only syscall-touching stressors pay the tax.\n");
}

fn print_statistics_ablation() {
    eprintln!("{}", popper_bench::banner("A2: controlled vs statistical"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sample = |mean: f64, sd: f64, rng: &mut rand::rngs::StdRng| -> Vec<f64> {
        (0..10)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect()
    };
    let a = sample(100.0, 4.0, &mut rng);
    let b = sample(106.0, 4.0, &mut rng);
    let w = welch_t_test(&a, &b).unwrap();
    let u = mann_whitney_u(&a, &b).unwrap();
    eprintln!("10-run samples, 6% true slowdown, 4% noise:");
    eprintln!("  welch   p = {:.4}", w.p_value);
    eprintln!("  mann-whitney p = {:.4}", u.p_value);
    eprintln!("(controlled/simulated runs need no statistics: CoV = 0.)\n");
}

fn bench_baseline_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/baseline_gate");
    let stored = Baseline::of_platform(&platforms::cloudlab_c220g());
    let gate = BaselineGate::new(stored, 0.25);
    group.bench_function("fingerprint_and_check", |b| {
        b.iter(|| {
            let current = Baseline::of_platform(&platforms::cloudlab_c220g());
            criterion::black_box(gate.check(&current).may_run())
        });
    });
    group.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/statistics");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let a: Vec<f64> = (0..100).map(|_| 100.0 + rng.gen::<f64>() * 8.0).collect();
    let b2: Vec<f64> = (0..100).map(|_| 104.0 + rng.gen::<f64>() * 8.0).collect();
    group.bench_function("welch_100v100", |bch| {
        bch.iter(|| criterion::black_box(welch_t_test(&a, &b2).unwrap().p_value));
    });
    group.bench_function("mann_whitney_100v100", |bch| {
        bch.iter(|| criterion::black_box(mann_whitney_u(&a, &b2).unwrap().p_value));
    });
    group.finish();
}

/// The instrumented sim hot path: a burst of fabric transfers. Each
/// call to [`popper_sim::Fabric::transfer`] consults the ambient tracer
/// (one TLS read + branch when disabled, two span records when enabled).
fn transfer_loop(n: u64) -> u64 {
    use popper_sim::{Fabric, Nanos};
    let mut fabric = Fabric::new(8, 10.0, Nanos::from_micros(5), 1.0);
    let mut acc = 0u64;
    for i in 0..n {
        let done = fabric.transfer(
            (i % 8) as usize,
            ((i + 3) % 8) as usize,
            4096 + (i * 37) % 65536,
            Nanos(i * 1_000),
        );
        acc ^= done.0;
    }
    acc
}

/// The engine hot path: a self-rescheduling tick chain dispatched
/// `n` times. The engine holds its tracer as a field, so a disabled
/// sink costs exactly one branch per dispatch.
fn dispatch_loop(tracer: Option<popper_trace::Tracer>, n: u64) -> u64 {
    use popper_sim::{Nanos, Sim};
    fn tick(s: &mut Sim<u64>) {
        s.world = s.world.wrapping_mul(6364136223846793005).wrapping_add(1);
        s.schedule_in(Nanos(1 + (s.world >> 60)), tick);
    }
    let mut sim: Sim<u64> = Sim::new(0x9e3779b9);
    if let Some(t) = tracer {
        sim.set_tracer(t);
    }
    sim.schedule_in(Nanos(1), tick);
    sim.run_capped(n);
    sim.world
}

/// The fabric admit path under an optionally-active fault plane. With
/// a healthy plane [`popper_sim::Fabric::try_transfer`] pays exactly
/// one `is_active()` branch; with faults injected it also consults
/// per-link latency factors, loss, and reachability.
fn fault_loop(faulted: bool, n: u64) -> u64 {
    use popper_sim::{Fabric, Nanos};
    let mut fabric = Fabric::new(8, 10.0, Nanos::from_micros(5), 1.0);
    if faulted {
        fabric.faults_mut().set_seed(11);
        fabric.faults_mut().set_latency_factor(1, 4.0);
        fabric.faults_mut().set_loss(2, 0.05);
    }
    let mut acc = 0u64;
    for i in 0..n {
        let done = fabric.transfer(
            (i % 8) as usize,
            ((i + 3) % 8) as usize,
            4096 + (i * 37) % 65536,
            Nanos(i * 1_000),
        );
        acc ^= done.0;
    }
    acc
}

fn print_fault_overhead_ablation() {
    use popper_sim::FaultPlane;
    use std::time::Instant;
    const N: u64 = 500_000;
    eprintln!("{}", popper_bench::banner("A4: fault-plane overhead (healthy vs active)"));

    // Warm the code paths.
    fault_loop(false, 10_000);

    let t0 = Instant::now();
    let a = fault_loop(false, N);
    let healthy = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let b = fault_loop(true, N);
    let active = t0.elapsed().as_secs_f64();
    criterion::black_box(a ^ b);

    // Marginal cost of the healthy-plane branch in isolation.
    let plane = FaultPlane::new(8);
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..N {
        if criterion::black_box(&plane).is_active() {
            hits += 1;
        }
    }
    criterion::black_box(hits);
    let check = t0.elapsed().as_secs_f64();

    eprintln!("{N} fabric transfers:");
    eprintln!("  healthy plane: {:>9.3} ms", healthy * 1e3);
    eprintln!("  active plane:  {:>9.3} ms  (latency x4 + 5% loss)", active * 1e3);
    let pct = check / healthy * 100.0;
    eprintln!("  healthy-plane branch alone: {:.3} ms = {pct:.2}% of the admit path", check * 1e3);
    assert!(pct < 5.0, "healthy FaultPlane branch exceeds the 5% budget: {pct:.2}%");
    eprintln!("shape: a healthy plane is one branch per admit — under the 5% budget.\n");
}

fn ablate_fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/fault_overhead");
    group.bench_function("admit_healthy", |b| {
        b.iter(|| criterion::black_box(fault_loop(false, 2_000)));
    });
    group.bench_function("admit_faulted", |b| {
        b.iter(|| criterion::black_box(fault_loop(true, 2_000)));
    });
    group.finish();
}

fn print_trace_overhead_ablation() {
    use popper_trace::{ClockDomain, TraceSink, Tracer};
    use std::time::Instant;
    const N: u64 = 500_000;
    eprintln!("{}", popper_bench::banner("A3: tracing overhead (disabled vs enabled sink)"));

    // Warm the code paths.
    dispatch_loop(None, 10_000);

    let t0 = Instant::now();
    let a = dispatch_loop(None, N);
    let disabled = t0.elapsed().as_secs_f64();

    let sink = TraceSink::new();
    let tracer = sink.tracer(ClockDomain::Virtual);
    let t0 = Instant::now();
    let b = dispatch_loop(Some(tracer.clone()), N);
    tracer.flush();
    let enabled = t0.elapsed().as_secs_f64();
    let events = sink.drain().len();
    criterion::black_box(a ^ b);

    // Marginal cost of the disabled-sink branch in isolation.
    let off = Tracer::disabled();
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..N {
        if criterion::black_box(&off).is_enabled() {
            hits += 1;
        }
    }
    criterion::black_box(hits);
    let check = t0.elapsed().as_secs_f64();

    eprintln!("{N} engine dispatches:");
    eprintln!("  disabled sink: {:>9.3} ms", disabled * 1e3);
    eprintln!("  enabled sink:  {:>9.3} ms  ({events} events collected)", enabled * 1e3);
    eprintln!(
        "  disabled-sink branch alone: {:.3} ms = {:.2}% of the dispatch path",
        check * 1e3,
        check / disabled * 100.0
    );
    eprintln!("shape: a disabled sink is one branch per dispatch — under the 5% budget.\n");
}

fn ablate_trace_overhead(c: &mut Criterion) {
    use popper_trace::{ClockDomain, TraceSink, Tracer};
    let mut group = c.benchmark_group("ablations/trace_overhead");
    group.bench_function("dispatch_disabled", |b| {
        b.iter(|| criterion::black_box(dispatch_loop(None, 10_000)));
    });
    let sink = TraceSink::new();
    let tracer = sink.tracer(ClockDomain::Virtual);
    group.bench_function("dispatch_enabled", |b| {
        b.iter(|| {
            let out = criterion::black_box(dispatch_loop(Some(tracer.clone()), 10_000));
            tracer.flush();
            out ^ sink.drain().len() as u64
        });
    });
    // The ambient-tracer sites (fabric, RPCs, collectives) pay a TLS
    // read on top of the branch; keep them visible too.
    group.bench_function("transfers_disabled", |b| {
        b.iter(|| {
            popper_trace::with_current(Tracer::disabled(), || {
                criterion::black_box(transfer_loop(2_000))
            })
        });
    });
    let xfer_tracer = sink.tracer(ClockDomain::Virtual);
    group.bench_function("transfers_enabled", |b| {
        b.iter(|| {
            let out = popper_trace::with_current(xfer_tracer.clone(), || {
                criterion::black_box(transfer_loop(2_000))
            });
            xfer_tracer.flush();
            out ^ sink.drain().len() as u64
        });
    });
    group.finish();
}

fn bench_writeback_ablation(c: &mut Criterion) {
    use popper_gassyfs::fs::{GassyFs, MountOptions};
    use popper_gassyfs::workload::{run_compile, CompileWorkload};
    use popper_sim::Cluster;

    // Print the virtual-time effect once.
    let run_with = |writeback: bool| {
        let cluster = Cluster::new(platforms::gassyfs_node(), 8);
        let mut fs = GassyFs::mount(cluster, MountOptions { writeback, ..Default::default() });
        run_compile(&mut fs, &CompileWorkload::small()).unwrap().elapsed.as_secs_f64()
    };
    let sync_t = run_with(false);
    let wb_t = run_with(true);
    eprintln!("{}", popper_bench::banner("FUSE writeback ablation (8 nodes)"));
    eprintln!("sync writes: {sync_t:.3} s   writeback: {wb_t:.3} s   ({:.1}% faster)\n", (1.0 - wb_t / sync_t) * 100.0);

    let mut group = c.benchmark_group("ablations/fuse_writeback");
    group.sample_size(10);
    group.bench_function("compile_writeback_on", |b| {
        b.iter(|| criterion::black_box(run_with(true)));
    });
    group.finish();
}

fn print_checkpoint_ablation() {
    use popper_gassyfs::checkpointing::{run_checkpoint_study, to_table, CheckpointStudy};
    eprintln!("{}", popper_bench::banner("GassyFS checkpoint-interval ablation"));
    let points = run_checkpoint_study(&CheckpointStudy::default()).expect("study runs");
    eprint!("{}", to_table(&points).to_pretty());
    eprintln!("shape: pauses fall and the loss window grows with the interval;\nincremental dedup keeps stored << ingested.\n");
}

criterion_group!(
    benches,
    bench_baseline_gate,
    bench_statistics,
    ablate_trace_overhead,
    ablate_fault_overhead,
    bench_writeback_ablation
);

fn main() {
    print_hypervisor_ablation();
    print_statistics_ablation();
    print_trace_overhead_ablation();
    print_fault_overhead_ablation();
    print_checkpoint_ablation();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
