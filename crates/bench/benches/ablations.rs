//! A1/A2 + design ablations called out in DESIGN.md:
//!
//! * **hypervisor tax** (§Common Practice: VM overheads "cannot be
//!   accounted for easily") — the Torpor battery on bare metal vs. a VM
//!   model; only syscall-heavy stressors move.
//! * **baseline gate** — cost of the sanitization step (it must be
//!   cheap enough to run before *every* experiment).
//! * **controlled vs statistical reproducibility** (§Discussion) — the
//!   two hypothesis tests on realistic runtime samples.
//! * **FUSE writeback option** — the packaging-choice effect the
//!   GassyFS use case motivates.

use criterion::{criterion_group, Criterion};
use popper_monitor::stressors::STRESSORS;
use popper_monitor::{mann_whitney_u, welch_t_test, Baseline, BaselineGate};
use popper_sim::platforms;
use rand::{Rng, SeedableRng};

fn print_hypervisor_ablation() {
    eprintln!("{}", popper_bench::banner("A1: hypervisor tax"));
    let bare = platforms::cloudlab_c220g();
    let vm = bare.virtualized(1.35, "same-hw-vm");
    eprintln!("{:<14} {:>12} {:>12} {:>8}", "stressor", "bare (s)", "vm (s)", "tax");
    for s in STRESSORS {
        let tb = s.simulated_runtime(&bare, 1.0).as_secs_f64();
        let tv = s.simulated_runtime(&vm, 1.0).as_secs_f64();
        eprintln!("{:<14} {tb:>12.5} {tv:>12.5} {:>7.1}%", s.name, (tv / tb - 1.0) * 100.0);
    }
    eprintln!("shape: only syscall-touching stressors pay the tax.\n");
}

fn print_statistics_ablation() {
    eprintln!("{}", popper_bench::banner("A2: controlled vs statistical"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sample = |mean: f64, sd: f64, rng: &mut rand::rngs::StdRng| -> Vec<f64> {
        (0..10)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect()
    };
    let a = sample(100.0, 4.0, &mut rng);
    let b = sample(106.0, 4.0, &mut rng);
    let w = welch_t_test(&a, &b).unwrap();
    let u = mann_whitney_u(&a, &b).unwrap();
    eprintln!("10-run samples, 6% true slowdown, 4% noise:");
    eprintln!("  welch   p = {:.4}", w.p_value);
    eprintln!("  mann-whitney p = {:.4}", u.p_value);
    eprintln!("(controlled/simulated runs need no statistics: CoV = 0.)\n");
}

fn bench_baseline_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/baseline_gate");
    let stored = Baseline::of_platform(&platforms::cloudlab_c220g());
    let gate = BaselineGate::new(stored, 0.25);
    group.bench_function("fingerprint_and_check", |b| {
        b.iter(|| {
            let current = Baseline::of_platform(&platforms::cloudlab_c220g());
            criterion::black_box(gate.check(&current).may_run())
        });
    });
    group.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/statistics");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let a: Vec<f64> = (0..100).map(|_| 100.0 + rng.gen::<f64>() * 8.0).collect();
    let b2: Vec<f64> = (0..100).map(|_| 104.0 + rng.gen::<f64>() * 8.0).collect();
    group.bench_function("welch_100v100", |bch| {
        bch.iter(|| criterion::black_box(welch_t_test(&a, &b2).unwrap().p_value));
    });
    group.bench_function("mann_whitney_100v100", |bch| {
        bch.iter(|| criterion::black_box(mann_whitney_u(&a, &b2).unwrap().p_value));
    });
    group.finish();
}

fn bench_writeback_ablation(c: &mut Criterion) {
    use popper_gassyfs::fs::{GassyFs, MountOptions};
    use popper_gassyfs::workload::{run_compile, CompileWorkload};
    use popper_sim::Cluster;

    // Print the virtual-time effect once.
    let run_with = |writeback: bool| {
        let cluster = Cluster::new(platforms::gassyfs_node(), 8);
        let mut fs = GassyFs::mount(cluster, MountOptions { writeback, ..Default::default() });
        run_compile(&mut fs, &CompileWorkload::small()).unwrap().elapsed.as_secs_f64()
    };
    let sync_t = run_with(false);
    let wb_t = run_with(true);
    eprintln!("{}", popper_bench::banner("FUSE writeback ablation (8 nodes)"));
    eprintln!("sync writes: {sync_t:.3} s   writeback: {wb_t:.3} s   ({:.1}% faster)\n", (1.0 - wb_t / sync_t) * 100.0);

    let mut group = c.benchmark_group("ablations/fuse_writeback");
    group.sample_size(10);
    group.bench_function("compile_writeback_on", |b| {
        b.iter(|| criterion::black_box(run_with(true)));
    });
    group.finish();
}

fn print_checkpoint_ablation() {
    use popper_gassyfs::checkpointing::{run_checkpoint_study, to_table, CheckpointStudy};
    eprintln!("{}", popper_bench::banner("GassyFS checkpoint-interval ablation"));
    let points = run_checkpoint_study(&CheckpointStudy::default()).expect("study runs");
    eprint!("{}", to_table(&points).to_pretty());
    eprintln!("shape: pauses fall and the loss window grows with the interval;\nincremental dedup keeps stored << ingested.\n");
}

criterion_group!(benches, bench_baseline_gate, bench_statistics, bench_writeback_ablation);

fn main() {
    print_hypervisor_ablation();
    print_statistics_ablation();
    print_checkpoint_ablation();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
