//! Sharded simulation engine throughput: events/sec, serial vs sharded.
//!
//! The sharding claim is twofold. Determinism: `run_sharded(n)` is
//! byte-identical to the serial reference at every `n` (the bench
//! re-checks this on the bench model before timing anything). Speed:
//! with enough cores, sharding a ≥1000-node model across 8 workers
//! clears 2x the serial event rate. The speedup gate is armed only when
//! the host actually has 8 cores — on smaller hosts (CI containers are
//! often 1–2 cores) a wall-clock 2x is physically impossible, so the
//! gate degrades to an honest overhead bound: the sharded engine may
//! not fall below a fixed fraction of the serial rate even with all
//! workers multiplexed onto one core. The host core count is recorded
//! in `BENCH_sim.json` so a reader knows which claim was checked.

use criterion::{criterion_group, Criterion};
use popper_format::{json, Table, Value};
use popper_sim::{FabricSim, Nanos, NetCtx, ShardCtx, ShardedSim};
use std::time::Instant;

/// Simulated nodes (shards) in the bench model.
const NODES: usize = 1000;
/// Event hops seeded per node.
const SEEDS_PER_NODE: u64 = 3;
/// Hops each seeded chain makes before dying out.
const HOPS: u32 = 40;

/// Nodes in the contention-heavy fan-in model (node 0 is the hub).
const FAN_NODES: usize = 64;
/// Request/ack round trips each source drives into the hub.
const FAN_CHAIN: u64 = 16;

/// Speedup the 8-worker engine must clear on a ≥8-core host.
const GATE_SPEEDUP: &str = "expect avg(speedup_8w) >= 2";
/// Overhead bound for core-starved hosts: even multiplexed onto a
/// single core, epoch barriers and outbox merges may not eat more than
/// ~3/4 of the serial event rate.
const GATE_OVERHEAD: &str = "expect avg(relative_rate_8w) >= 0.25";

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The bench model: PHOLD over `NODES` shards. Every event does a
/// little state work (so there is something to parallelize), then hops
/// to a hashed destination with a hashed delay >= the lookahead.
fn model() -> ShardedSim<u64> {
    const LOOKAHEAD: Nanos = Nanos(100);
    let mut sim: ShardedSim<u64> = ShardedSim::new(vec![0u64; NODES], LOOKAHEAD);
    fn hop(ctx: &mut ShardCtx<'_, u64>, ttl: u32, key: u64) {
        // A few rounds of mixing stand in for per-event model work.
        let mut acc = key;
        for _ in 0..32 {
            acc = mix(acc);
        }
        *ctx.state() ^= acc;
        if ttl == 0 {
            return;
        }
        let h = mix(key ^ u64::from(ttl));
        let dst = (h as usize) % ctx.shards();
        let delay = Nanos(100 + h % 900);
        if dst == ctx.shard_id() {
            ctx.schedule_in(delay, move |c| hop(c, ttl - 1, h));
        } else {
            ctx.send_to(dst, delay, move |c| hop(c, ttl - 1, h));
        }
    }
    for node in 0..NODES {
        for i in 0..SEEDS_PER_NODE {
            let key = mix(((node as u64) << 24) ^ i);
            sim.schedule(node, Nanos(key % 500), move |ctx| hop(ctx, HOPS, key));
        }
    }
    sim
}

/// Events/sec for one full run at `workers` (0 = the serial `run()`
/// path). Returns the rate and the model's final state fingerprint.
fn measure(workers: usize) -> (f64, u64, u64) {
    let mut sim = model();
    let started = Instant::now();
    if workers == 0 {
        sim.run();
    } else {
        sim.run_sharded(workers);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let fingerprint = sim.states().fold(0u64, |a, s| mix(a ^ *s));
    (sim.events_fired() as f64 / elapsed, fingerprint, sim.events_fired())
}

/// The contention bench model: every source pours request/ack round
/// trips into one hub through the shard-native fabric, so the hub's
/// ingress incast and the shared core stage — the work the epoch
/// barrier replays — dominate instead of independent per-shard hops.
fn fanin_model() -> FabricSim<u64> {
    // A datacenter-RTT latency keeps the epoch count honest: with a
    // tiny lookahead the bench would measure barrier overhead alone
    // (~1 event per epoch), not contention replay.
    const LATENCY: Nanos = Nanos::from_micros(50);
    let mut sim = FabricSim::new(vec![0u64; FAN_NODES], 10.0, LATENCY, 2.0);
    fn churn(state: &mut u64, key: u64) {
        let mut acc = key;
        for _ in 0..32 {
            acc = mix(acc);
        }
        *state ^= acc;
    }
    fn send(ctx: &mut NetCtx<'_, '_, u64>, round: u64) {
        if round == 0 {
            return;
        }
        let src = ctx.node();
        let key = mix(((src as u64) << 32) | round);
        churn(ctx.state(), key);
        ctx.transfer(0, 8_192 + key % 8_192, move |hub| {
            churn(hub.state(), key);
            hub.transfer(src, 64, move |c| send(c, round - 1));
        });
    }
    for src in 1..FAN_NODES {
        sim.schedule(src, Nanos(mix(src as u64) % 1_000), move |ctx| send(ctx, FAN_CHAIN));
    }
    sim
}

/// Events/sec for one fan-in run at `workers` (0 = the serial `run()`
/// path). Returns the rate, a state+clock fingerprint and the event
/// count.
fn measure_fanin(workers: usize) -> (f64, u64, u64) {
    let mut sim = fanin_model();
    let started = Instant::now();
    if workers == 0 {
        sim.run();
    } else {
        sim.run_sharded(workers);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let fingerprint = sim.states().fold(mix(sim.now().0), |a, s| mix(a ^ *s));
    (sim.events_fired() as f64 / elapsed, fingerprint, sim.events_fired())
}

fn print_and_commit() {
    eprintln!("{}", popper_bench::banner("sim: sharded engine events/sec"));
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Determinism first: the bench model itself must agree byte-for-
    // byte between serial and sharded before any rate is worth quoting.
    let (serial_rate, serial_fp, events) = measure(0);
    let (rate_2w, fp_2w, ev_2w) = measure(2);
    let (rate_8w, fp_8w, ev_8w) = measure(8);
    assert_eq!((fp_2w, ev_2w), (serial_fp, events), "2-worker run diverged from serial");
    assert_eq!((fp_8w, ev_8w), (serial_fp, events), "8-worker run diverged from serial");

    let speedup_2w = rate_2w / serial_rate;
    let speedup_8w = rate_8w / serial_rate;
    eprintln!("model:  {NODES} nodes, {events} events");
    eprintln!("serial: {:.0} events/sec", serial_rate);
    eprintln!("2 workers: {:.0} events/sec ({speedup_2w:.2}x)", rate_2w);
    eprintln!("8 workers: {:.0} events/sec ({speedup_8w:.2}x)", rate_8w);

    // Same protocol for the contention-heavy fan-in: determinism first,
    // then the rate. Its shared-core stage is barrier-replayed work the
    // PHOLD model never exercises.
    let (fan_serial, fan_fp, fan_events) = measure_fanin(0);
    let (fan_rate_8w, fan_fp_8w, fan_ev_8w) = measure_fanin(8);
    assert_eq!((fan_fp_8w, fan_ev_8w), (fan_fp, fan_events), "8-worker fan-in diverged from serial");
    let fan_speedup_8w = fan_rate_8w / fan_serial;
    eprintln!("fan-in: {FAN_NODES} nodes, {fan_events} events");
    eprintln!("fan-in serial: {:.0} events/sec", fan_serial);
    eprintln!("fan-in 8 workers: {:.0} events/sec ({fan_speedup_8w:.2}x)", fan_rate_8w);

    // Gate selection is a fact about the host, not a tunable: the 2x
    // claim needs 8 cores to be falsifiable.
    let (gate, armed) = if host_cores >= 8 {
        (GATE_SPEEDUP, "speedup")
    } else {
        eprintln!("host has {host_cores} core(s) < 8: speedup gate disarmed, checking overhead bound");
        (GATE_OVERHEAD, "overhead")
    };
    let mut table = Table::new(["workload", "speedup_8w", "relative_rate_8w"]);
    table
        .push_record(&[
            ("workload", Value::from("phold")),
            ("speedup_8w", Value::from(speedup_8w)),
            ("relative_rate_8w", Value::from(speedup_8w)),
        ])
        .unwrap();
    table
        .push_record(&[
            ("workload", Value::from("fanin_fabric")),
            ("speedup_8w", Value::from(fan_speedup_8w)),
            ("relative_rate_8w", Value::from(fan_speedup_8w)),
        ])
        .unwrap();
    let verdict = popper_aver::check(gate, &table).unwrap();
    eprintln!("aver: {gate}\n  -> {verdict}");
    assert!(verdict.passed, "sharded engine gate failed: {verdict}");

    let mut rates = Value::empty_map();
    rates.insert("serial_events_per_sec", Value::from(serial_rate));
    rates.insert("workers_2_events_per_sec", Value::from(rate_2w));
    rates.insert("workers_8_events_per_sec", Value::from(rate_8w));
    rates.insert("speedup_2w", Value::from(speedup_2w));
    rates.insert("speedup_8w", Value::from(speedup_8w));
    let mut fanin = Value::empty_map();
    fanin.insert("nodes", Value::from(FAN_NODES as i64));
    fanin.insert("events", Value::from(fan_events as i64));
    fanin.insert("serial_events_per_sec", Value::from(fan_serial));
    fanin.insert("workers_8_events_per_sec", Value::from(fan_rate_8w));
    fanin.insert("speedup_8w", Value::from(fan_speedup_8w));
    fanin.insert("deterministic", Value::from(true));
    let mut modeldoc = Value::empty_map();
    modeldoc.insert("nodes", Value::from(NODES as i64));
    modeldoc.insert("events", Value::from(events as i64));
    modeldoc.insert("deterministic", Value::from(true));
    let mut assertions = Value::empty_map();
    assertions.insert("armed", Value::from(armed));
    assertions.insert("gate", Value::from(gate));
    let mut report = Value::empty_map();
    report.insert("bench", Value::from("sim_sharded_events_per_sec"));
    report.insert("unit", Value::from("events_per_sec"));
    report.insert("host_cores", Value::from(host_cores as i64));
    report.insert("model", modeldoc);
    report.insert("rates", rates);
    report.insert("fanin_fabric", fanin);
    report.insert("assertions", assertions);
    report.insert("verdict", Value::from(format!("{verdict}")));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, json::to_string_pretty(&report) + "\n").unwrap();
    eprintln!("wrote {path}\n");
}

fn bench_sharded_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    group.bench_function("phold_1000/serial", |b| b.iter(|| measure(0).2));
    group.bench_function("phold_1000/8_workers", |b| b.iter(|| measure(8).2));
    group.bench_function("fanin_fabric/serial", |b| b.iter(|| measure_fanin(0).2));
    group.bench_function("fanin_fabric/8_workers", |b| b.iter(|| measure_fanin(8).2));
    group.finish();
}

criterion_group!(benches, bench_sharded_window);

fn main() {
    print_and_commit();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
