//! Farm service-level objectives: scheduler throughput and badge
//! latency.
//!
//! The farm's claim is that multiplexing hundreds of pipelines over a
//! shared worker pool is cheap enough to run as a service: jobs flow
//! through admission, DRR dispatch, the memoized lifecycle, and batched
//! archival at a sustained rate, while the status endpoint answers
//! badge requests in the tail without disturbing the workers. The bench
//! measures both — 200 jobs across 8 tenants for throughput, 200
//! badge GETs over a real socket for latency — writes `BENCH_farm.json`
//! at the workspace root, and gates each with Aver.

use criterion::{criterion_group, Criterion};
use popper_core::ExperimentEngine;
use popper_farm::{Farm, FarmBuilder, FarmConfig, SubmitError};
use popper_format::{json, Table, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

const TENANTS: usize = 8;
const JOBS_PER_TENANT: u64 = 25;
const BADGE_SAMPLES: usize = 200;

// Conservative SLOs: a warm lifecycle replays in single-digit
// milliseconds, so even one busy core clears 20 jobs/s with a wide
// margin; a badge render is a lock-free-ish snapshot + string format.
const GATE_THROUGHPUT: &str = "expect avg(jobs_per_sec) >= 20";
const GATE_BADGE: &str = "expect p99(badge_ms) <= 100";

fn build_farm(workers: usize) -> Farm {
    let mut b = FarmBuilder::new(Arc::new(ExperimentEngine::new())).config(FarmConfig {
        workers,
        queue_capacity: 32,
        ..Default::default()
    });
    for i in 1..=TENANTS {
        b = b.tenant(&format!("t{i}"), "ceph-rados", "exp").unwrap();
    }
    b.build().unwrap()
}

fn submit_round(farm: &Farm) {
    for i in 1..=TENANTS {
        let tenant = format!("t{i}");
        loop {
            match farm.submit(&tenant, "exp") {
                Ok(_) => break,
                Err(SubmitError::QueueFull { retry_after_ms, .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(10)))
                }
                Err(e) => panic!("submit: {e}"),
            }
        }
    }
}

/// Sustained jobs/sec over a memo-warm farm (the steady state of a
/// long-lived service; the cold first build per tenant is excluded).
fn measure_throughput() -> (f64, f64) {
    let farm = build_farm(2);
    submit_round(&farm); // warm each tenant's memo cache
    farm.drain();
    let started = Instant::now();
    for _ in 0..JOBS_PER_TENANT {
        submit_round(&farm);
    }
    farm.drain();
    let elapsed = started.elapsed().as_secs_f64();
    let total = (TENANTS as u64 * JOBS_PER_TENANT) as f64;
    let report = farm.shutdown();
    assert_eq!(report.lost, 0, "{report}");
    (total / elapsed, elapsed * 1e3)
}

/// Badge GET latencies (ms) over a real socket against a loaded farm.
fn measure_badge_latencies() -> Vec<f64> {
    let farm = build_farm(2);
    submit_round(&farm);
    farm.drain();
    let server = farm.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let samples = (0..BADGE_SAMPLES)
        .map(|_| {
            let started = Instant::now();
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /badge.svg HTTP/1.1\r\nHost: farm\r\n\r\n").unwrap();
            let mut response = String::new();
            s.read_to_string(&mut response).unwrap();
            assert!(response.contains("passing"), "{response}");
            started.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    server.stop();
    farm.shutdown();
    samples
}

fn print_and_commit() {
    eprintln!("{}", popper_bench::banner("farm: scheduler throughput + badge p99"));

    let (jobs_per_sec, batch_ms) = measure_throughput();
    let mut throughput = Table::new(["jobs_per_sec"]);
    throughput.push_record(&[("jobs_per_sec", Value::from(jobs_per_sec))]).unwrap();
    let throughput_verdict = popper_aver::check(GATE_THROUGHPUT, &throughput).unwrap();
    eprintln!(
        "scheduler: {} jobs in {batch_ms:.1} ms -> {jobs_per_sec:.1} jobs/sec",
        TENANTS as u64 * JOBS_PER_TENANT,
    );
    eprintln!("aver: {GATE_THROUGHPUT}\n  -> {throughput_verdict}");
    assert!(throughput_verdict.passed, "throughput gate failed: {throughput_verdict}");

    let latencies = measure_badge_latencies();
    let mut badge = Table::new(["badge_ms"]);
    for ms in &latencies {
        badge.push_record(&[("badge_ms", Value::from(*ms))]).unwrap();
    }
    let badge_verdict = popper_aver::check(GATE_BADGE, &badge).unwrap();
    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p99 = sorted[(sorted.len() * 99) / 100 - 1];
    let p50 = sorted[sorted.len() / 2];
    eprintln!("badge:     {} GETs, p50 {p50:.2} ms, p99 {p99:.2} ms", latencies.len());
    eprintln!("aver: {GATE_BADGE}\n  -> {badge_verdict}");
    assert!(badge_verdict.passed, "badge latency gate failed: {badge_verdict}");

    let mut scheduler = Value::empty_map();
    scheduler.insert("tenants", Value::from(TENANTS as i64));
    scheduler.insert("jobs", Value::from((TENANTS as u64 * JOBS_PER_TENANT) as i64));
    scheduler.insert("jobs_per_sec", Value::from(jobs_per_sec));
    scheduler.insert("batch_ms", Value::from(batch_ms));
    let mut badge_doc = Value::empty_map();
    badge_doc.insert("samples", Value::from(latencies.len() as i64));
    badge_doc.insert("p50_ms", Value::from(p50));
    badge_doc.insert("p99_ms", Value::from(p99));
    let mut assertions = Value::empty_map();
    assertions.insert("throughput", Value::from(GATE_THROUGHPUT));
    assertions.insert("badge", Value::from(GATE_BADGE));
    let mut report = Value::empty_map();
    report.insert("bench", Value::from("farm_throughput_and_badge_p99"));
    report.insert("unit", Value::from("jobs_per_sec, ms_wall"));
    report.insert("scheduler", scheduler);
    report.insert("badge", badge_doc);
    report.insert("assertions", assertions);
    report.insert(
        "verdict",
        Value::from(format!("{throughput_verdict}; {badge_verdict}")),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_farm.json");
    std::fs::write(path, json::to_string_pretty(&report) + "\n").unwrap();
    eprintln!("wrote {path}\n");
}

fn bench_farm_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("farm");
    group.sample_size(10);
    let farm = build_farm(2);
    submit_round(&farm);
    farm.drain();
    group.bench_function("warm_round/8_tenants", |b| {
        b.iter(|| {
            submit_round(&farm);
            farm.drain();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_farm_round);

fn main() {
    print_and_commit();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
