//! F2 — Figure `gassyfs-git`: GassyFS git-compile runtime vs cluster
//! size, plus the Listing-3 validation and the page-cache ablation.

use criterion::{criterion_group, BenchmarkId, Criterion};
use popper_gassyfs::experiment::{run_scalability, to_table, ScalabilityConfig, LISTING3_ASSERTION};
use popper_gassyfs::fs::{GassyFs, MountOptions};
use popper_gassyfs::workload::{run_compile, CompileWorkload};
use popper_sim::{platforms, Cluster};

fn print_figure() {
    eprintln!("{}", popper_bench::banner("Fig. gassyfs-git"));
    let config = ScalabilityConfig::default();
    let points = run_scalability(&config).expect("scalability sweep");
    eprintln!("{:>6} {:>12} {:>9}", "nodes", "time (s)", "remote %");
    for p in &points {
        eprintln!("{:>6} {:>12.3} {:>8.1}%", p.nodes, p.time_secs, p.remote_fraction * 100.0);
    }
    let table = to_table(&points, "git", &config.machine_label);
    let verdict = popper_aver::check(LISTING3_ASSERTION, &table).expect("assertion evaluates");
    eprintln!("\naver: {LISTING3_ASSERTION}\n  -> {verdict}");
    let degradation = points.last().unwrap().time_secs / points[0].time_secs;
    eprintln!("shape: {degradation:.2}x degradation over {}x nodes (sublinear)\n", points.last().unwrap().nodes);
}

fn bench_compile_by_nodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gassyfs/compile_simulation");
    group.sample_size(10);
    for nodes in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            let workload = CompileWorkload::small();
            b.iter(|| {
                let cluster = Cluster::new(platforms::gassyfs_node(), nodes);
                let mut fs = GassyFs::mount(cluster, MountOptions::default());
                criterion::black_box(run_compile(&mut fs, &workload).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_fs_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gassyfs/fs_ops");
    group.sample_size(20);
    group.bench_function("write_read_1MiB", |b| {
        let data = vec![7u8; 1 << 20];
        b.iter(|| {
            let mut fs = GassyFs::mount(Cluster::new(platforms::gassyfs_node(), 4), MountOptions::default());
            let t = fs.write_file("/f", &data, popper_sim::Nanos::ZERO).unwrap();
            criterion::black_box(fs.read_timing("/f", t).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compile_by_nodes, bench_fs_ops);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}
