//! # popper-bench
//!
//! The benchmark harness of the reproduction. Every figure of the
//! paper's evaluation has a bench target that (1) prints the figure's
//! data series/rows to stderr and (2) measures the machinery that
//! produces it with Criterion:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig_torpor` | Fig. `torpor-variability` — speedup histogram |
//! | `fig_gassyfs` | Fig. `gassyfs-git` — scalability curve |
//! | `fig_mpi` | §5.3 — noisy-neighborhood runtime distributions |
//! | `fig_weather` | Fig. `bww-airtemp` — air-temperature panels |
//! | `substrates` | throughput of the DevOps substrates (SHA-256, CDC chunking, Myers diff, PML/JSON, fabric) |
//! | `ablations` | design-choice ablations: hypervisor tax, FUSE options, statistical tests |
//!
//! Run with `cargo bench -p popper-bench` (or a single target with
//! `--bench fig_gassyfs`).

/// Shared helper: a small separator banner so figure data is findable
/// in bench output.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} {}\n", "=".repeat(60_usize.saturating_sub(title.len())))
}
