//! The sharded LULESH proxy: one shard per rank's subdomain.
//!
//! The analytic proxy in [`lulesh`](crate::lulesh) advances every rank
//! on a single thread. This variant maps each rank's subdomain onto a
//! fabric-backed shard ([`popper_sim::FabricSim`]) and drives the same
//! compute / halo-exchange loop as discrete events: a rank computes
//! over its cells, ships one halo face to each neighbor *through the
//! shard-native fabric* — paying NIC serialization, core contention
//! and ingress incast, not just a fixed delay — and may not start step
//! `s + 1` until its own step-`s` compute is done *and* every
//! neighbor's step-`s` halo has arrived. That nearest-neighbor
//! synchronization lets distant subdomains drift apart by a step while
//! adjacent ones stay in lock-step (LULESH proper also agrees on a
//! global timestep; the sharded proxy keeps the halo dependency, which
//! is the part that partitions).
//!
//! The fabric's propagation latency is the conservative lookahead: a
//! halo can never land earlier than `now + latency`, so all ranks can
//! fire events within one lookahead window in parallel while the
//! shared core stage is replayed deterministically at each epoch
//! barrier. Determinism is inherited from the engine —
//! `run_sharded(n)` produces the same per-rank finish times and the
//! same trace bytes for every `n`.

use crate::lulesh::LuleshConfig;
use popper_sim::shard::partition;
use popper_sim::{FabricSim, Nanos, NetCtx, PlatformSpec};

/// Per-rank (per-shard) state of the sharded proxy.
struct RankState {
    /// Face neighbors of this rank in the decomposition.
    neighbors: Vec<usize>,
    /// Own compute finished, per step.
    compute_done: Vec<bool>,
    /// Halos received, per step.
    halos: Vec<usize>,
    /// Next step already started, per step (guards double advance).
    advanced: Vec<bool>,
    /// Virtual time this rank finished its last step.
    finish: Nanos,
}

/// Result of one sharded proxy run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedLuleshRun {
    /// End-to-end virtual runtime (latest rank finish).
    pub elapsed: Nanos,
    /// Per-rank finish times, rank order.
    pub per_rank_finish: Vec<Nanos>,
    /// Halo bytes every rank put on the wire (from the fabric's
    /// traffic counters).
    pub wire_bytes: u64,
    /// Total events dispatched.
    pub events: u64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
}

struct Timing {
    step: Nanos,
    halo_bytes: u64,
    iterations: usize,
}

/// Run the sharded proxy with `workers` threads (1 = the
/// single-threaded reference execution; results are identical either
/// way). The platform supplies both the compute rate and the fabric
/// the halo exchanges are routed through.
pub fn run_sharded(config: &LuleshConfig, platform: &PlatformSpec, workers: usize) -> ShardedLuleshRun {
    let ranks = config.ranks();
    let cells = (config.elements_per_rank as f64).powi(3);
    let step = platform.execute(&config.demand_per_element.scaled(cells));
    let latency = Nanos(platform.nic_lat_ns as u64).max(Nanos(1));
    let timing = std::sync::Arc::new(Timing {
        step,
        halo_bytes: config.halo_bytes(),
        iterations: config.iterations,
    });

    let mut adjacency = vec![Vec::new(); ranks];
    for (a, b) in config.neighbor_pairs() {
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    let states: Vec<RankState> = adjacency
        .into_iter()
        .map(|neighbors| RankState {
            neighbors,
            compute_done: vec![false; config.iterations],
            halos: vec![0; config.iterations],
            advanced: vec![false; config.iterations],
            finish: Nanos::ZERO,
        })
        .collect();

    let mut sim = FabricSim::new(states, platform.nic_gbit, latency, 1.0);
    for rank in 0..ranks {
        let timing = std::sync::Arc::clone(&timing);
        sim.schedule(rank, Nanos::ZERO, move |ctx| begin_step(ctx, 0, timing));
    }
    let elapsed = sim.run_sharded(workers);
    let wire_bytes = sim.total_bytes();
    ShardedLuleshRun {
        elapsed,
        per_rank_finish: sim.states().map(|s| s.finish).collect(),
        wire_bytes,
        events: sim.events_fired(),
        epochs: sim.epochs(),
        workers: workers.max(1),
    }
}

fn begin_step(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    let d = timing.step;
    ctx.schedule_in(d, move |c| complete_step(c, step, timing));
}

fn complete_step(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    ctx.state().compute_done[step] = true;
    let neighbors = ctx.state().neighbors.clone();
    if step + 1 == timing.iterations {
        // Last step: nothing downstream needs this halo.
        let now = ctx.now();
        ctx.state().finish = now;
        return;
    }
    for nb in neighbors {
        let timing = std::sync::Arc::clone(&timing);
        ctx.transfer(nb, timing.halo_bytes, move |c| receive_halo(c, step, timing));
    }
    try_advance(ctx, step, timing);
}

fn receive_halo(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    ctx.state().halos[step] += 1;
    try_advance(ctx, step, timing);
}

/// Start step `step + 1` once this rank's own compute for `step` is
/// done and every neighbor's halo for `step` has arrived.
fn try_advance(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    let state = ctx.state();
    let ready = state.compute_done[step]
        && state.halos[step] == state.neighbors.len()
        && !state.advanced[step];
    if !ready {
        return;
    }
    state.advanced[step] = true;
    ctx.schedule_in(Nanos::ZERO, move |c| begin_step(c, step + 1, timing));
}

// ---- chaos variant: the same compute / halo loop under a scheduled ----
// ---- fault timeline, with MPI-style retry/backoff on halo sends    ----

/// Halo send attempts before the sender abandons the face. Shrinking
/// the communicator on an unrecoverable loss stays serial-only for
/// now; the sharded proxy models a down NIC, not a dead subdomain.
const MAX_ATTEMPTS: usize = 12;

/// Retry backoff: 1, 2, 4, ... ms, capped at 32 ms.
fn backoff(attempt: usize) -> Nanos {
    Nanos::from_millis(1 << attempt.min(5))
}

/// Per-rank state of the chaos run.
struct ChaosRankState {
    neighbors: Vec<usize>,
    compute_done: Vec<bool>,
    halos: Vec<usize>,
    advanced: Vec<bool>,
    finish: Nanos,
    /// Send timeouts this rank observed.
    detections: u64,
    /// Halo sends that failed at least once before landing or dying.
    degraded: u64,
    /// Halos this rank received after one or more sender retries.
    recovered: u64,
    /// Halo sends abandoned after `MAX_ATTEMPTS`.
    lost: u64,
    first_fail: Option<Nanos>,
    last_recovery: Nanos,
}

/// Result of one sharded chaos run — identical at every worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedLuleshChaosRun {
    /// End-to-end virtual runtime (latest rank finish).
    pub elapsed: Nanos,
    /// Per-rank finish times, rank order.
    pub per_rank_finish: Vec<Nanos>,
    /// Halo bytes on the wire (retransmit draws included).
    pub wire_bytes: u64,
    /// Total events dispatched.
    pub events: u64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Halo sends the workload issues in a fault-free run.
    pub halos: u64,
    /// Send timeouts observed across the ranks.
    pub detections: u64,
    /// Halos delivered after one or more retries.
    pub recovered: u64,
    /// Halo sends abandoned after `MAX_ATTEMPTS` (expected 0 for every
    /// schedule that ends healed).
    pub lost: u64,
    /// First failure to last recovered delivery, in milliseconds.
    pub recovery_ms: f64,
    /// Fraction of halo sends that saw any failure.
    pub degraded_fraction: f64,
}

/// Start slot of step `s` so the step loop spans the schedule: a chaos
/// run must still be exchanging halos when the last fault lands.
fn step_slot(horizon: Nanos, iterations: usize, step: usize) -> Nanos {
    Nanos(horizon.0 * 5 / 4 / (iterations as u64).max(1)) * step as u64
}

/// Run the sharded proxy under a scheduled-fault timeline (see
/// [`popper_sim::FabricSim::set_fault_timeline`]): faults land at
/// epoch barriers mid-run and ranks retry failed halo sends with
/// exponential backoff until the fault heals. A crashed rank keeps
/// computing (its NIC is down, its subdomain is not dead); its
/// outgoing and incoming halos queue behind retries until the restart
/// crosses a barrier. Deterministic at every worker count.
pub fn run_sharded_chaos(
    config: &LuleshConfig,
    platform: &PlatformSpec,
    workers: usize,
    seed: u64,
    timeline: Vec<(Nanos, popper_sim::PlaneCmd)>,
) -> ShardedLuleshChaosRun {
    let ranks = config.ranks();
    let cells = (config.elements_per_rank as f64).powi(3);
    let step = platform.execute(&config.demand_per_element.scaled(cells));
    let latency = Nanos(platform.nic_lat_ns as u64).max(Nanos(1));
    let horizon = timeline.iter().map(|(at, _)| *at).max().unwrap_or(Nanos::ZERO);
    let timing = std::sync::Arc::new(Timing {
        step,
        halo_bytes: config.halo_bytes(),
        iterations: config.iterations,
    });

    let mut adjacency = vec![Vec::new(); ranks];
    for (a, b) in config.neighbor_pairs() {
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    let halos_expected: u64 = adjacency.iter().map(|n| n.len() as u64).sum::<u64>()
        * (config.iterations as u64 - 1);
    let states: Vec<ChaosRankState> = adjacency
        .into_iter()
        .map(|neighbors| ChaosRankState {
            neighbors,
            compute_done: vec![false; config.iterations],
            halos: vec![0; config.iterations],
            advanced: vec![false; config.iterations],
            finish: Nanos::ZERO,
            detections: 0,
            degraded: 0,
            recovered: 0,
            lost: 0,
            first_fail: None,
            last_recovery: Nanos::ZERO,
        })
        .collect();

    let mut sim = FabricSim::new(states, platform.nic_gbit, latency, 1.0);
    sim.set_fault_timeline(seed, timeline);
    for rank in 0..ranks {
        let timing = std::sync::Arc::clone(&timing);
        sim.schedule(rank, Nanos::ZERO, move |ctx| {
            chaos_begin_step(ctx, 0, horizon, timing)
        });
    }
    let elapsed = sim.run_sharded(workers);
    let wire_bytes = sim.total_bytes();
    let first_fail = sim.states().filter_map(|s| s.first_fail).min();
    let last_recovery = sim.states().map(|s| s.last_recovery).max().unwrap_or(Nanos::ZERO);
    let recovery_ms = match first_fail {
        Some(f) if last_recovery > f => (last_recovery - f).0 as f64 / 1e6,
        _ => 0.0,
    };
    let degraded: u64 = sim.states().map(|s| s.degraded).sum();
    let lost: u64 = sim.states().map(|s| s.lost).sum();
    ShardedLuleshChaosRun {
        elapsed,
        per_rank_finish: sim.states().map(|s| s.finish).collect(),
        wire_bytes,
        events: sim.events_fired(),
        epochs: sim.epochs(),
        workers: workers.max(1),
        halos: halos_expected,
        detections: sim.states().map(|s| s.detections).sum(),
        recovered: sim.states().map(|s| s.recovered).sum(),
        lost,
        recovery_ms,
        degraded_fraction: degraded as f64 / halos_expected.max(1) as f64,
    }
}

type ChaosCtx<'a, 'b> = NetCtx<'a, 'b, ChaosRankState>;

/// Begin step `step`, no earlier than its pacing slot.
fn chaos_begin_step(ctx: &mut ChaosCtx<'_, '_>, step: usize, horizon: Nanos, timing: std::sync::Arc<Timing>) {
    let start = step_slot(horizon, timing.iterations, step).max(ctx.now());
    let d = timing.step;
    ctx.schedule_at(start + d, move |c| chaos_complete_step(c, step, horizon, timing));
}

fn chaos_complete_step(ctx: &mut ChaosCtx<'_, '_>, step: usize, horizon: Nanos, timing: std::sync::Arc<Timing>) {
    ctx.state().compute_done[step] = true;
    let neighbors = ctx.state().neighbors.clone();
    if step + 1 == timing.iterations {
        let now = ctx.now();
        ctx.state().finish = now;
        return;
    }
    for nb in neighbors {
        let timing = std::sync::Arc::clone(&timing);
        ship_halo(ctx, nb, step, 0, horizon, timing);
    }
    chaos_try_advance(ctx, step, horizon, timing);
}

/// Ship one halo face, retrying with backoff on a send timeout. A
/// retry issued right after a heal event can still fail once — its
/// shard sees the refreshed fault snapshot only after the heal's
/// barrier — so the loop runs until the plane catches up.
fn ship_halo(
    ctx: &mut ChaosCtx<'_, '_>,
    nb: usize,
    step: usize,
    attempt: usize,
    horizon: Nanos,
    timing: std::sync::Arc<Timing>,
) {
    let bytes = timing.halo_bytes;
    let retry_timing = std::sync::Arc::clone(&timing);
    ctx.transfer_or(
        nb,
        bytes,
        move |c| {
            if attempt > 0 {
                let now = c.now();
                let state = c.state();
                state.recovered += 1;
                state.last_recovery = state.last_recovery.max(now);
            }
            chaos_receive_halo(c, step, horizon, timing);
        },
        move |c, u| {
            let state = c.state();
            state.detections += 1;
            state.first_fail = Some(state.first_fail.map_or(u.gave_up_at, |f| f.min(u.gave_up_at)));
            if attempt == 0 {
                state.degraded += 1;
            }
            if attempt + 1 >= MAX_ATTEMPTS {
                state.lost += 1;
                return;
            }
            c.schedule_in(backoff(attempt), move |cc| {
                ship_halo(cc, nb, step, attempt + 1, horizon, retry_timing)
            });
        },
    );
}

fn chaos_receive_halo(ctx: &mut ChaosCtx<'_, '_>, step: usize, horizon: Nanos, timing: std::sync::Arc<Timing>) {
    ctx.state().halos[step] += 1;
    chaos_try_advance(ctx, step, horizon, timing);
}

fn chaos_try_advance(ctx: &mut ChaosCtx<'_, '_>, step: usize, horizon: Nanos, timing: std::sync::Arc<Timing>) {
    let state = ctx.state();
    let ready = state.compute_done[step]
        && state.halos[step] == state.neighbors.len()
        && !state.advanced[step];
    if !ready {
        return;
    }
    state.advanced[step] = true;
    ctx.schedule_in(Nanos::ZERO, move |c| chaos_begin_step(c, step + 1, horizon, timing));
}

/// Map the decomposition's ranks onto at most `shards` balanced,
/// contiguous groups — the subdomain partition a coarser-grained
/// deployment would use. Exposed for callers that batch several ranks
/// per shard; the proxy itself runs one rank per shard.
pub fn subdomain_partition(config: &LuleshConfig, shards: usize) -> Vec<std::ops::Range<usize>> {
    partition(config.ranks(), shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_sim::platforms;

    #[test]
    fn sharded_proxy_matches_reference_at_every_worker_count() {
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        let reference = run_sharded(&config, &platform, 1);
        assert!(reference.elapsed >= Nanos(1));
        assert_eq!(reference.per_rank_finish.len(), config.ranks());
        assert!(reference.per_rank_finish.iter().all(|f| *f > Nanos::ZERO));
        for workers in [2, 4, 8] {
            let parallel = run_sharded(&config, &platform, workers);
            assert_eq!(parallel.elapsed, reference.elapsed, "workers={workers}");
            assert_eq!(parallel.per_rank_finish, reference.per_rank_finish);
            assert_eq!(parallel.events, reference.events);
            assert_eq!(parallel.wire_bytes, reference.wire_bytes);
        }
    }

    #[test]
    fn halo_dependencies_gate_progress() {
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        let run = run_sharded(&config, &platform, 1);
        let cells = (config.elements_per_rank as f64).powi(3);
        let step = platform.execute(&config.demand_per_element.scaled(cells));
        // Every rank must pay at least its own serial compute, and the
        // halo round trips push the total past it.
        assert!(run.elapsed > step * config.iterations as u64);
        // Multiple epochs: the lookahead is far smaller than a step.
        assert!(run.epochs > 1);
    }

    #[test]
    fn halo_traffic_is_on_the_wire() {
        // Every non-final step ships one halo face per neighbor pair,
        // in both directions, through the fabric.
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        let run = run_sharded(&config, &platform, 2);
        let faces = 2 * config.neighbor_pairs().len() as u64;
        let expected = faces * (config.iterations as u64 - 1) * config.halo_bytes();
        assert_eq!(run.wire_bytes, expected);
    }

    #[test]
    fn chaos_run_retries_halos_and_stays_deterministic() {
        use popper_sim::PlaneCmd;
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        // Crash rank 1's NIC mid-run and restart it: its halo exchanges
        // (both directions) retry with backoff until the restart
        // crosses a barrier. The schedule heals, so nothing is lost.
        let timeline = vec![
            (Nanos::from_millis(3), PlaneCmd::Crash(1)),
            (Nanos::from_millis(8), PlaneCmd::Restart(1)),
        ];
        let reference = run_sharded_chaos(&config, &platform, 1, 11, timeline.clone());
        assert!(reference.per_rank_finish.iter().all(|f| *f > Nanos::ZERO));
        assert!(reference.detections > 0, "the crash must be detected by halo timeouts");
        assert!(reference.recovered > 0);
        assert_eq!(reference.lost, 0, "the schedule heals; no halo may be abandoned");
        assert!(reference.recovery_ms > 0.0);
        assert!(reference.degraded_fraction > 0.0 && reference.degraded_fraction < 1.0);
        for workers in [2, 8] {
            let parallel = run_sharded_chaos(&config, &platform, workers, 11, timeline.clone());
            assert_eq!(
                ShardedLuleshChaosRun { workers: 1, ..parallel },
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn chaos_run_with_empty_timeline_matches_an_unpaced_healthy_run() {
        // No horizon, no pacing, no faults: the chaos loop degenerates
        // to the healthy loop and must agree on timing and traffic.
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        let healthy = run_sharded(&config, &platform, 2);
        let chaos = run_sharded_chaos(&config, &platform, 2, 1, Vec::new());
        assert_eq!(chaos.elapsed, healthy.elapsed);
        assert_eq!(chaos.per_rank_finish, healthy.per_rank_finish);
        assert_eq!(chaos.wire_bytes, healthy.wire_bytes);
        assert_eq!(chaos.detections + chaos.recovered + chaos.lost, 0);
    }

    #[test]
    fn subdomain_partition_covers_all_ranks() {
        let config = LuleshConfig::paper();
        let parts = subdomain_partition(&config, 4);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), config.ranks());
    }
}
