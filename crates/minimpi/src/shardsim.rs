//! The sharded LULESH proxy: one shard per rank's subdomain.
//!
//! The analytic proxy in [`lulesh`](crate::lulesh) advances every rank
//! on a single thread. This variant maps each rank's subdomain onto a
//! fabric-backed shard ([`popper_sim::FabricSim`]) and drives the same
//! compute / halo-exchange loop as discrete events: a rank computes
//! over its cells, ships one halo face to each neighbor *through the
//! shard-native fabric* — paying NIC serialization, core contention
//! and ingress incast, not just a fixed delay — and may not start step
//! `s + 1` until its own step-`s` compute is done *and* every
//! neighbor's step-`s` halo has arrived. That nearest-neighbor
//! synchronization lets distant subdomains drift apart by a step while
//! adjacent ones stay in lock-step (LULESH proper also agrees on a
//! global timestep; the sharded proxy keeps the halo dependency, which
//! is the part that partitions).
//!
//! The fabric's propagation latency is the conservative lookahead: a
//! halo can never land earlier than `now + latency`, so all ranks can
//! fire events within one lookahead window in parallel while the
//! shared core stage is replayed deterministically at each epoch
//! barrier. Determinism is inherited from the engine —
//! `run_sharded(n)` produces the same per-rank finish times and the
//! same trace bytes for every `n`.

use crate::lulesh::LuleshConfig;
use popper_sim::shard::partition;
use popper_sim::{FabricSim, Nanos, NetCtx, PlatformSpec};

/// Per-rank (per-shard) state of the sharded proxy.
struct RankState {
    /// Face neighbors of this rank in the decomposition.
    neighbors: Vec<usize>,
    /// Own compute finished, per step.
    compute_done: Vec<bool>,
    /// Halos received, per step.
    halos: Vec<usize>,
    /// Next step already started, per step (guards double advance).
    advanced: Vec<bool>,
    /// Virtual time this rank finished its last step.
    finish: Nanos,
}

/// Result of one sharded proxy run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedLuleshRun {
    /// End-to-end virtual runtime (latest rank finish).
    pub elapsed: Nanos,
    /// Per-rank finish times, rank order.
    pub per_rank_finish: Vec<Nanos>,
    /// Halo bytes every rank put on the wire (from the fabric's
    /// traffic counters).
    pub wire_bytes: u64,
    /// Total events dispatched.
    pub events: u64,
    /// Epoch barriers the engine crossed.
    pub epochs: u64,
    /// Worker threads used.
    pub workers: usize,
}

struct Timing {
    step: Nanos,
    halo_bytes: u64,
    iterations: usize,
}

/// Run the sharded proxy with `workers` threads (1 = the
/// single-threaded reference execution; results are identical either
/// way). The platform supplies both the compute rate and the fabric
/// the halo exchanges are routed through.
pub fn run_sharded(config: &LuleshConfig, platform: &PlatformSpec, workers: usize) -> ShardedLuleshRun {
    let ranks = config.ranks();
    let cells = (config.elements_per_rank as f64).powi(3);
    let step = platform.execute(&config.demand_per_element.scaled(cells));
    let latency = Nanos(platform.nic_lat_ns as u64).max(Nanos(1));
    let timing = std::sync::Arc::new(Timing {
        step,
        halo_bytes: config.halo_bytes(),
        iterations: config.iterations,
    });

    let mut adjacency = vec![Vec::new(); ranks];
    for (a, b) in config.neighbor_pairs() {
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    let states: Vec<RankState> = adjacency
        .into_iter()
        .map(|neighbors| RankState {
            neighbors,
            compute_done: vec![false; config.iterations],
            halos: vec![0; config.iterations],
            advanced: vec![false; config.iterations],
            finish: Nanos::ZERO,
        })
        .collect();

    let mut sim = FabricSim::new(states, platform.nic_gbit, latency, 1.0);
    for rank in 0..ranks {
        let timing = std::sync::Arc::clone(&timing);
        sim.schedule(rank, Nanos::ZERO, move |ctx| begin_step(ctx, 0, timing));
    }
    let elapsed = sim.run_sharded(workers);
    let wire_bytes = sim.total_bytes();
    ShardedLuleshRun {
        elapsed,
        per_rank_finish: sim.states().map(|s| s.finish).collect(),
        wire_bytes,
        events: sim.events_fired(),
        epochs: sim.epochs(),
        workers: workers.max(1),
    }
}

fn begin_step(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    let d = timing.step;
    ctx.schedule_in(d, move |c| complete_step(c, step, timing));
}

fn complete_step(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    ctx.state().compute_done[step] = true;
    let neighbors = ctx.state().neighbors.clone();
    if step + 1 == timing.iterations {
        // Last step: nothing downstream needs this halo.
        let now = ctx.now();
        ctx.state().finish = now;
        return;
    }
    for nb in neighbors {
        let timing = std::sync::Arc::clone(&timing);
        ctx.transfer(nb, timing.halo_bytes, move |c| receive_halo(c, step, timing));
    }
    try_advance(ctx, step, timing);
}

fn receive_halo(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    ctx.state().halos[step] += 1;
    try_advance(ctx, step, timing);
}

/// Start step `step + 1` once this rank's own compute for `step` is
/// done and every neighbor's halo for `step` has arrived.
fn try_advance(ctx: &mut NetCtx<'_, '_, RankState>, step: usize, timing: std::sync::Arc<Timing>) {
    let state = ctx.state();
    let ready = state.compute_done[step]
        && state.halos[step] == state.neighbors.len()
        && !state.advanced[step];
    if !ready {
        return;
    }
    state.advanced[step] = true;
    ctx.schedule_in(Nanos::ZERO, move |c| begin_step(c, step + 1, timing));
}

/// Map the decomposition's ranks onto at most `shards` balanced,
/// contiguous groups — the subdomain partition a coarser-grained
/// deployment would use. Exposed for callers that batch several ranks
/// per shard; the proxy itself runs one rank per shard.
pub fn subdomain_partition(config: &LuleshConfig, shards: usize) -> Vec<std::ops::Range<usize>> {
    partition(config.ranks(), shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_sim::platforms;

    #[test]
    fn sharded_proxy_matches_reference_at_every_worker_count() {
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        let reference = run_sharded(&config, &platform, 1);
        assert!(reference.elapsed >= Nanos(1));
        assert_eq!(reference.per_rank_finish.len(), config.ranks());
        assert!(reference.per_rank_finish.iter().all(|f| *f > Nanos::ZERO));
        for workers in [2, 4, 8] {
            let parallel = run_sharded(&config, &platform, workers);
            assert_eq!(parallel.elapsed, reference.elapsed, "workers={workers}");
            assert_eq!(parallel.per_rank_finish, reference.per_rank_finish);
            assert_eq!(parallel.events, reference.events);
            assert_eq!(parallel.wire_bytes, reference.wire_bytes);
        }
    }

    #[test]
    fn halo_dependencies_gate_progress() {
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        let run = run_sharded(&config, &platform, 1);
        let cells = (config.elements_per_rank as f64).powi(3);
        let step = platform.execute(&config.demand_per_element.scaled(cells));
        // Every rank must pay at least its own serial compute, and the
        // halo round trips push the total past it.
        assert!(run.elapsed > step * config.iterations as u64);
        // Multiple epochs: the lookahead is far smaller than a step.
        assert!(run.epochs > 1);
    }

    #[test]
    fn halo_traffic_is_on_the_wire() {
        // Every non-final step ships one halo face per neighbor pair,
        // in both directions, through the fabric.
        let config = LuleshConfig::small();
        let platform = platforms::hpc_node();
        let run = run_sharded(&config, &platform, 2);
        let faces = 2 * config.neighbor_pairs().len() as u64;
        let expected = faces * (config.iterations as u64 - 1) * config.halo_bytes();
        assert_eq!(run.wire_bytes, expected);
    }

    #[test]
    fn subdomain_partition_covers_all_ranks() {
        let config = LuleshConfig::paper();
        let parts = subdomain_partition(&config, 4);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), config.ranks());
    }
}
