//! Fault-tolerant LULESH: rank-failure recovery for the MPI use case.
//!
//! The variability study (§5.3) runs against a healthy cluster; this
//! module is what happens when `popper chaos` gremlins crash nodes
//! under it. The `try_*` collectives surface a typed
//! [`MpiError::RankFailed`] when the fault plane reports a crashed
//! node (and a heartbeat turns silent crashes into detections); two
//! recovery policies then keep the run going:
//!
//! * **shrink** (ULFM-style): the survivors agree on a new epoch
//!   (priced as two allreduce-shaped votes), the 3D decomposition is
//!   rebuilt over the shrunken rank count ([`boxiest_grid`]), the lost
//!   ranks' subdomains are redistributed over the fabric, and the run
//!   continues on fewer ranks. Capacity is lost (`degraded_fraction`),
//!   no work is replayed.
//! * **checkpoint-restart**: every `checkpoint_interval` steps each
//!   rank writes its surface state (sized by
//!   [`LuleshConfig::halo_bytes`]) to disk; on a failure the survivors
//!   idle until the schedule restarts the node (or respawn the ranks
//!   on surviving nodes when it never does), everyone reloads the last
//!   consistent checkpoint, and the lost steps are replayed. Fidelity
//!   is preserved, time is paid (`replayed` steps, checkpoint and
//!   restore I/O, idle waiting).
//!
//! Both policies ride out *transient* faults
//! ([`MpiError::PeerUnreachable`], i.e. partitions) by retrying the
//! interrupted step — each failed attempt burns the retry penalty, so
//! virtual time advances toward the schedule's heal event. Everything
//! is deterministic: the same seed and schedule produce byte-identical
//! recovery logs.

use crate::comm::{MpiError, MpiWorld};
use crate::lulesh::LuleshConfig;
use popper_chaos::{ChaosDriver, FaultSchedule};
use popper_format::Value;
use popper_sim::{Cluster, Nanos};
use std::collections::BTreeSet;

/// Checkpoint device bandwidth (GB/s) before the fault plane's
/// disk-slowdown factor is applied.
const CHECKPOINT_DISK_GBPS: f64 = 2.0;

/// Consecutive transient (partition) retries of one step before the
/// run is declared wedged. Every built-in schedule heals well within
/// this patience; a custom schedule that never heals is a failed run,
/// not a hang.
const MAX_TRANSIENT_RETRIES: usize = 64;

/// How a run recovers from a rank failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// ULFM-style communicator shrink: drop the dead ranks, rebuild
    /// the decomposition over the survivors, redistribute the lost
    /// subdomains, keep going at reduced capacity.
    #[default]
    Shrink,
    /// Periodic checkpoints + rollback: respawn the dead rank (after
    /// the schedule's restart, or on a surviving node), reload the
    /// last consistent checkpoint, replay the lost steps.
    CheckpointRestart {
        /// Steps between checkpoints (>= 1).
        interval: usize,
    },
}

impl RecoveryPolicy {
    /// Short label for result tables and `recovery.json`.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::Shrink => "shrink",
            RecoveryPolicy::CheckpointRestart { .. } => "checkpoint-restart",
        }
    }

    /// Decode from an experiment's `vars.pml`: `faults.policy` is
    /// `shrink` (the default) or `checkpoint-restart`, with
    /// `faults.checkpoint_interval` sizing the latter (default 5).
    pub fn from_vars(vars: &Value) -> Result<RecoveryPolicy, String> {
        let Some(spec) = vars.get("faults") else { return Ok(RecoveryPolicy::default()) };
        let interval = spec.get_num("checkpoint_interval").unwrap_or(5.0).max(1.0) as usize;
        match spec.get_str("policy") {
            None | Some("shrink") => Ok(RecoveryPolicy::Shrink),
            Some("checkpoint-restart") => Ok(RecoveryPolicy::CheckpointRestart { interval }),
            Some(other) => Err(format!(
                "unknown recovery policy '{other}' (expected 'shrink' or 'checkpoint-restart')"
            )),
        }
    }
}

/// One recovery transition: the failure that ended an epoch and the
/// protocol that opened the next one.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The epoch this recovery *entered*.
    pub epoch: u64,
    /// When the failure detector gave up on the dead rank(s).
    pub detected_at: Nanos,
    /// When the rebuilt world resumed stepping.
    pub recovered_at: Nanos,
    /// Nodes declared failed in this transition.
    pub nodes_lost: Vec<usize>,
    /// Ranks lost (shrink) or respawned (checkpoint-restart).
    pub ranks_lost: usize,
    /// Steps rolled back and replayed (checkpoint-restart only).
    pub replayed_steps: usize,
    /// Bytes moved by the protocol: redistributed subdomains (shrink)
    /// or checkpoint restore reads (checkpoint-restart).
    pub moved_bytes: u64,
}

/// Per-epoch accounting: one row of the chaos `results.csv`.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Communicator epoch (0 = the initial world).
    pub epoch: u64,
    /// Ranks alive during the epoch.
    pub ranks: usize,
    /// Steps completed during the epoch.
    pub steps: usize,
    /// Typed failures detected during the epoch (incl. transient
    /// partition stalls).
    pub detections: usize,
    /// Checkpoints written during the epoch.
    pub checkpoints: usize,
    /// Steps replayed at the start of the epoch (rollback depth).
    pub replayed: usize,
    /// Ranks lost entering the epoch (0 for epoch 0).
    pub ranks_lost: usize,
    /// Detection → resume cost of the recovery that opened the epoch,
    /// in virtual milliseconds (0 for epoch 0).
    pub recovery_ms: f64,
    /// Cumulative capacity degradation when the epoch closed:
    /// lost ranks / initial ranks (always 0 under checkpoint-restart,
    /// which conserves the problem).
    pub degraded_fraction: f64,
    /// Virtual time when the epoch closed, in milliseconds.
    pub end_ms: f64,
}

/// The outcome of one fault-tolerant LULESH run.
#[derive(Debug, Clone, PartialEq)]
pub struct FtLuleshRun {
    /// The recovery policy used.
    pub policy: RecoveryPolicy,
    /// Ranks at the start.
    pub initial_ranks: usize,
    /// Ranks at the end (shrink loses some).
    pub final_ranks: usize,
    /// Iterations completed (equals the configured count on success).
    pub iterations: usize,
    /// End-to-end virtual runtime.
    pub elapsed: Nanos,
    /// Per-epoch accounting, epoch-major.
    pub epochs: Vec<EpochRecord>,
    /// The recovery transitions, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// True when the run wedged (never-healing partition, all nodes
    /// dead) and could not complete the configured iterations.
    pub corrupt: bool,
}

impl FtLuleshRun {
    /// Total typed failures detected.
    pub fn detections(&self) -> usize {
        self.epochs.iter().map(|e| e.detections).sum()
    }

    /// Total steps replayed across all rollbacks.
    pub fn replayed_steps(&self) -> usize {
        self.epochs.iter().map(|e| e.replayed).sum()
    }

    /// Total checkpoints written.
    pub fn checkpoints(&self) -> usize {
        self.epochs.iter().map(|e| e.checkpoints).sum()
    }

    /// Final cumulative degradation (the last epoch's fraction).
    pub fn degraded_fraction(&self) -> f64 {
        self.epochs.last().map(|e| e.degraded_fraction).unwrap_or(0.0)
    }
}

/// The most cube-like factorization `a·b·c = n`: the decomposition a
/// shrunken communicator rebuilds over, minimizing surface area (halo
/// traffic) deterministically.
pub fn boxiest_grid(n: usize) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_surface = usize::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let m = n / a;
        for b in 1..=m {
            if !m.is_multiple_of(b) {
                continue;
            }
            let c = m / b;
            let surface = a * b + b * c + a * c;
            if surface < best_surface {
                best_surface = surface;
                best = (a, b, c);
            }
        }
    }
    best
}

/// Per-rank checkpointable state: the six halo faces (the surface
/// state neighbors need to resume the stencil).
fn state_bytes(config: &LuleshConfig) -> u64 {
    6 * config.halo_bytes()
}

/// A full subdomain's field state (what shrink redistributes).
fn subdomain_bytes(config: &LuleshConfig) -> u64 {
    let e = config.elements_per_rank as u64;
    e * e * e * config.bytes_per_face_cell
}

/// Durable I/O time for `bytes` at the checkpoint device rate, scaled
/// by the node's disk-slowdown factor.
fn disk_time(bytes: u64, factor: f64) -> Nanos {
    Nanos::from_secs_f64(bytes as f64 / (CHECKPOINT_DISK_GBPS * 1e9)).scale(factor.max(1.0))
}

/// Run the LULESH proxy to completion under `schedule`, recovering
/// from rank failures per `policy`. The world starts as
/// `config.ranks()` ranks placed round-robin over `cluster`; the
/// driver injects the schedule as the ranks' virtual clocks advance.
pub fn run_ft(
    cluster: Cluster,
    config: &LuleshConfig,
    schedule: &FaultSchedule,
    policy: RecoveryPolicy,
) -> Result<FtLuleshRun, String> {
    let initial_ranks = config.ranks();
    let nodes = cluster.len();
    if initial_ranks == 0 || nodes == 0 {
        return Err("fault-tolerant run needs at least one rank and one node".into());
    }
    let mut cfg = config.clone();
    let mut world = MpiWorld::new(cluster, initial_ranks);
    let mut driver = ChaosDriver::new(schedule.clone());
    let mut failed_nodes: BTreeSet<usize> = BTreeSet::new();

    // Per-epoch geometry, rebuilt after every shrink.
    let mut demand = cfg.demand_per_element.scaled((cfg.elements_per_rank as f64).powi(3));
    let mut exchange: Vec<(usize, usize, u64)> = cfg
        .neighbor_pairs()
        .into_iter()
        .map(|(a, b)| (a, b, cfg.halo_bytes()))
        .collect();

    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut current = EpochRecord {
        epoch: 0,
        ranks: initial_ranks,
        steps: 0,
        detections: 0,
        checkpoints: 0,
        replayed: 0,
        ranks_lost: 0,
        recovery_ms: 0.0,
        degraded_fraction: 0.0,
        end_ms: 0.0,
    };
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut lost_total = 0usize;
    let mut step = 0usize;
    let mut last_checkpoint = 0usize;
    let mut transient = 0usize;
    let mut corrupt = false;
    // A hard backstop against wedged custom schedules: the loop body
    // runs at most once per completed step plus a bounded number of
    // retries/recoveries per fault event.
    let mut spins = 0usize;
    let spin_budget = (cfg.iterations + 1) * (MAX_TRANSIENT_RETRIES + 4)
        + schedule.events.len() * (cfg.iterations + MAX_TRANSIENT_RETRIES + 4);

    while step < cfg.iterations {
        spins += 1;
        if spins > spin_budget {
            corrupt = true;
            break;
        }
        let now = world.elapsed();
        driver.advance(world.cluster.faults_mut(), now);
        let step_result = (|w: &mut MpiWorld| -> Result<(), MpiError> {
            w.try_heartbeat()?;
            for r in 0..w.size() {
                w.compute(r, &demand);
            }
            w.try_exchange(&exchange)?;
            w.try_allreduce(8)
        })(&mut world);
        match step_result {
            Ok(()) => {
                transient = 0;
                step += 1;
                current.steps += 1;
                if let RecoveryPolicy::CheckpointRestart { interval } = policy {
                    if step.is_multiple_of(interval) && step < cfg.iterations {
                        let bytes = state_bytes(&cfg);
                        for r in 0..world.size() {
                            let f = world.cluster.faults().disk_factor(world.node_of(r));
                            world.charge(r, disk_time(bytes, f), "checkpoint");
                        }
                        last_checkpoint = step;
                        current.checkpoints += 1;
                    }
                }
            }
            Err(MpiError::PeerUnreachable { .. }) => {
                // Transient: the retry penalty already advanced the
                // clocks, so the next driver.advance can apply the heal
                // the schedule promises. Retry the interrupted step.
                current.detections += 1;
                transient += 1;
                if transient > MAX_TRANSIENT_RETRIES {
                    corrupt = true;
                    break;
                }
            }
            Err(MpiError::RankFailed { detected_at, .. }) => {
                current.detections += 1;
                transient = 0;
                let newly_failed: Vec<usize> = world
                    .cluster
                    .faults()
                    .crashed_nodes()
                    .into_iter()
                    .filter(|n| !failed_nodes.contains(n))
                    .collect();
                let ranks_lost =
                    (0..world.size()).filter(|r| newly_failed.contains(&world.node_of(*r))).count();
                let epoch = world.epoch() + 1;
                let recovery = match policy {
                    RecoveryPolicy::Shrink => {
                        failed_nodes.extend(newly_failed.iter().copied());
                        match shrink(
                            &mut world,
                            &mut cfg,
                            &failed_nodes,
                            ranks_lost,
                            detected_at,
                            epoch,
                        ) {
                            Some(r) => {
                                // Shrunken geometry: new demand and halo map.
                                demand = cfg
                                    .demand_per_element
                                    .scaled((cfg.elements_per_rank as f64).powi(3));
                                exchange = cfg
                                    .neighbor_pairs()
                                    .into_iter()
                                    .map(|(a, b)| (a, b, cfg.halo_bytes()))
                                    .collect();
                                lost_total += ranks_lost;
                                RecoveryEvent { nodes_lost: newly_failed, ranks_lost, ..r }
                            }
                            None => {
                                corrupt = true;
                                break;
                            }
                        }
                    }
                    RecoveryPolicy::CheckpointRestart { .. } => {
                        let replay = step - last_checkpoint;
                        match respawn(
                            &mut world,
                            &mut driver,
                            &cfg,
                            schedule,
                            &newly_failed,
                            detected_at,
                            epoch,
                        ) {
                            Some(r) => {
                                // A node the schedule never restarts is
                                // permanently gone: its ranks now live
                                // elsewhere, so don't re-report it on the
                                // next failure.
                                failed_nodes.extend(
                                    newly_failed.iter().filter(|n| !schedule.ever_restarts(**n)),
                                );
                                step = last_checkpoint;
                                RecoveryEvent {
                                    nodes_lost: newly_failed,
                                    ranks_lost,
                                    replayed_steps: replay,
                                    ..r
                                }
                            }
                            None => {
                                corrupt = true;
                                break;
                            }
                        }
                    }
                };
                // Close the failed epoch's row and open the next one.
                current.end_ms = recovery.detected_at.as_millis_f64();
                current.degraded_fraction = lost_total as f64 / initial_ranks as f64;
                epochs.push(current);
                current = EpochRecord {
                    epoch,
                    ranks: world.size(),
                    steps: 0,
                    detections: 0,
                    checkpoints: 0,
                    replayed: recovery.replayed_steps,
                    ranks_lost: recovery.ranks_lost,
                    recovery_ms: (recovery.recovered_at - recovery.detected_at).as_millis_f64(),
                    degraded_fraction: lost_total as f64 / initial_ranks as f64,
                    end_ms: 0.0,
                };
                recoveries.push(recovery);
            }
        }
    }

    current.end_ms = world.elapsed().as_millis_f64();
    current.degraded_fraction = lost_total as f64 / initial_ranks as f64;
    epochs.push(current);
    Ok(FtLuleshRun {
        policy,
        initial_ranks,
        final_ranks: world.size(),
        iterations: step,
        elapsed: world.elapsed(),
        epochs,
        recoveries,
        corrupt,
    })
}

/// ULFM-style shrink: rebuild the world over the surviving nodes with
/// a re-boxed decomposition conserving total cells, charging the
/// survivors an agreement vote and the redistribution transfer.
/// Returns `None` when nothing survives.
fn shrink(
    world: &mut MpiWorld,
    cfg: &mut LuleshConfig,
    failed_nodes: &BTreeSet<usize>,
    ranks_lost: usize,
    detected_at: Nanos,
    epoch: u64,
) -> Option<RecoveryEvent> {
    let survivors = world.size().checked_sub(ranks_lost).filter(|s| *s > 0)?;
    let alive: Vec<usize> =
        (0..world.cluster.len()).filter(|n| !failed_nodes.contains(n)).collect();
    if alive.is_empty() {
        return None;
    }
    // Price the protocol with the old world's fabric model: two
    // allreduce-shaped votes (failure agreement + epoch agreement),
    // then one bulk scatter of the lost subdomains.
    let agreement = world.collective_cost(4 * MpiWorld::log2_ceil(survivors.max(2)), 8);
    let moved_bytes = ranks_lost as u64 * subdomain_bytes(cfg);
    let redistribution = world.collective_cost(1, moved_bytes);
    let recovered_at = detected_at + agreement + redistribution;

    // Conserve the problem: same total cells over fewer, fatter ranks.
    let total_cells = (cfg.ranks() as f64) * (cfg.elements_per_rank as f64).powi(3);
    cfg.grid = boxiest_grid(survivors);
    cfg.elements_per_rank =
        (((total_cells / survivors as f64).cbrt()).round() as usize).max(2);

    let placement: Vec<usize> = (0..survivors).map(|r| alive[r % alive.len()]).collect();
    let mut next = MpiWorld::with_placement(world.cluster.clone(), placement);
    next.set_epoch(epoch);
    next.advance_all_to(recovered_at);
    *world = next;
    Some(RecoveryEvent {
        epoch,
        detected_at,
        recovered_at,
        nodes_lost: Vec::new(), // caller fills
        ranks_lost: 0,          // caller fills
        replayed_steps: 0,
        moved_bytes,
    })
}

/// Checkpoint-restart respawn: idle until the schedule restarts the
/// crashed node(s) (respawning on surviving nodes when it never
/// does), rebuild the full-size world, and charge every rank the
/// checkpoint restore read. The caller rolls the step counter back.
fn respawn(
    world: &mut MpiWorld,
    driver: &mut ChaosDriver,
    cfg: &LuleshConfig,
    schedule: &FaultSchedule,
    newly_failed: &[usize],
    detected_at: Nanos,
    epoch: u64,
) -> Option<RecoveryEvent> {
    // How long must the survivors idle? The latest scheduled restart
    // among the dead nodes; a restart that was due but not yet applied
    // costs nothing extra, and a node with no restart at all is
    // permanent (its ranks respawn elsewhere).
    let mut wait_until = detected_at;
    for &n in newly_failed {
        if let Some(at) = schedule.restart_after(n, detected_at) {
            wait_until = wait_until.max(at);
        }
    }
    driver.advance(world.cluster.faults_mut(), wait_until);
    let alive: Vec<usize> =
        (0..world.cluster.len()).filter(|n| !world.cluster.faults().is_crashed(*n)).collect();
    if alive.is_empty() {
        return None;
    }
    let ranks = cfg.ranks();
    let nodes = world.cluster.len();
    let placement: Vec<usize> = (0..ranks)
        .map(|r| {
            let home = r % nodes;
            if world.cluster.faults().is_crashed(home) { alive[r % alive.len()] } else { home }
        })
        .collect();
    let mut next = MpiWorld::with_placement(world.cluster.clone(), placement);
    next.set_epoch(epoch);
    next.advance_all_to(wait_until);
    // Everyone reloads the last consistent checkpoint.
    let bytes = state_bytes(cfg);
    for r in 0..next.size() {
        let f = next.cluster.faults().disk_factor(next.node_of(r));
        next.charge(r, disk_time(bytes, f), "restore checkpoint");
    }
    let recovered_at = next.elapsed();
    *world = next;
    Some(RecoveryEvent {
        epoch,
        detected_at,
        recovered_at,
        nodes_lost: Vec::new(), // caller fills
        ranks_lost: 0,          // caller fills
        replayed_steps: 0,      // caller fills
        moved_bytes: bytes * ranks as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use popper_chaos::{FaultEvent, FaultKind};
    use popper_sim::platforms;

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(platforms::hpc_node(), nodes)
    }

    fn custom(nodes: usize, events: Vec<FaultEvent>) -> FaultSchedule {
        let mut s = FaultSchedule { name: "custom".into(), seed: 1, nodes, events };
        s.events.sort_by_key(|e| e.at);
        s
    }

    /// Crash node `n` immediately (fires before the first step).
    fn crash_now(nodes: usize, n: usize, restart_ms: Option<u64>) -> FaultSchedule {
        let mut events = vec![FaultEvent { at: Nanos::ZERO, kind: FaultKind::Crash { node: n } }];
        if let Some(ms) = restart_ms {
            events.push(FaultEvent {
                at: Nanos::from_millis(ms),
                kind: FaultKind::Restart { node: n },
            });
        }
        custom(nodes, events)
    }

    #[test]
    fn policy_parses_from_vars() {
        let vars = popper_format::pml::parse(
            "faults:\n  schedule: node-crash\n  policy: checkpoint-restart\n  checkpoint_interval: 3\n",
        )
        .unwrap();
        assert_eq!(
            RecoveryPolicy::from_vars(&vars).unwrap(),
            RecoveryPolicy::CheckpointRestart { interval: 3 }
        );
        let vars = popper_format::pml::parse("faults: {schedule: node-crash}\n").unwrap();
        assert_eq!(RecoveryPolicy::from_vars(&vars).unwrap(), RecoveryPolicy::Shrink);
        let vars = popper_format::pml::parse("faults: {policy: ouija}\n").unwrap();
        assert!(RecoveryPolicy::from_vars(&vars).is_err());
        assert_eq!(RecoveryPolicy::from_vars(&Value::empty_map()).unwrap(), RecoveryPolicy::Shrink);
    }

    #[test]
    fn boxiest_grid_prefers_cubes() {
        assert_eq!(boxiest_grid(27), (3, 3, 3));
        assert_eq!(boxiest_grid(8), (2, 2, 2));
        let (a, b, c) = boxiest_grid(24);
        assert_eq!(a * b * c, 24);
        assert_eq!(a * b + b * c + a * c, 2 * 3 + 3 * 4 + 2 * 4);
        // Primes degrade to pencils but stay valid.
        let (a, b, c) = boxiest_grid(13);
        assert_eq!(a * b * c, 13);
    }

    #[test]
    fn shrink_survives_a_crash_and_completes_every_iteration() {
        let cfg = LuleshConfig::small(); // 8 ranks over 4 nodes
        let schedule = crash_now(4, 3, None);
        let run = run_ft(cluster(4), &cfg, &schedule, RecoveryPolicy::Shrink).unwrap();
        assert!(!run.corrupt);
        assert_eq!(run.iterations, cfg.iterations, "every configured step must complete");
        assert_eq!(run.initial_ranks, 8);
        assert_eq!(run.final_ranks, 6, "node 3 hosted ranks 3 and 7");
        assert_eq!(run.recoveries.len(), 1);
        let rec = &run.recoveries[0];
        assert_eq!(rec.nodes_lost, vec![3]);
        assert_eq!(rec.ranks_lost, 2);
        assert!(rec.recovered_at > rec.detected_at, "recovery must cost virtual time");
        assert!(rec.moved_bytes > 0, "lost subdomains must be redistributed");
        assert!((run.degraded_fraction() - 0.25).abs() < 1e-9, "2 of 8 ranks lost");
        assert_eq!(run.epochs.len(), 2);
        assert_eq!(run.epochs[1].ranks, 6);
        assert!(run.epochs[1].recovery_ms > 0.0);
    }

    #[test]
    fn checkpoint_restart_rolls_back_and_conserves_the_problem() {
        let mut cfg = LuleshConfig::small();
        cfg.iterations = 12;
        let schedule = crash_now(4, 3, Some(5));
        let run = run_ft(
            cluster(4),
            &cfg,
            &schedule,
            RecoveryPolicy::CheckpointRestart { interval: 4 },
        )
        .unwrap();
        assert!(!run.corrupt);
        assert_eq!(run.iterations, cfg.iterations);
        assert_eq!(run.final_ranks, 8, "respawn keeps the world full-size");
        assert_eq!(run.recoveries.len(), 1);
        assert!(run.checkpoints() > 0, "periodic checkpoints must be written");
        assert_eq!(run.degraded_fraction(), 0.0, "checkpoint-restart conserves the problem");
        // The crash fired before step 1, so the rollback replays
        // nothing — but the respawn still waited for the restart.
        assert!(run.recoveries[0].recovered_at >= Nanos::from_millis(5));
    }

    #[test]
    fn checkpoint_restart_replays_lost_steps_after_midrun_crash() {
        // Crash once some steps have completed: roll back to the last
        // checkpoint and replay.
        let mut cfg = LuleshConfig::small();
        cfg.iterations = 10;
        // First run healthy to learn how long 6 steps take, then
        // schedule the crash there.
        let healthy =
            run_ft(cluster(4), &cfg, &custom(4, vec![]), RecoveryPolicy::Shrink).unwrap();
        let six_steps = Nanos::from_secs_f64(healthy.elapsed.as_secs_f64() * 0.6);
        let schedule = custom(
            4,
            vec![
                FaultEvent { at: six_steps, kind: FaultKind::Crash { node: 2 } },
                FaultEvent {
                    at: six_steps + Nanos::from_millis(2),
                    kind: FaultKind::Restart { node: 2 },
                },
            ],
        );
        let run = run_ft(
            cluster(4),
            &cfg,
            &schedule,
            RecoveryPolicy::CheckpointRestart { interval: 4 },
        )
        .unwrap();
        assert!(!run.corrupt);
        assert_eq!(run.iterations, 10);
        assert_eq!(run.recoveries.len(), 1);
        assert!(run.replayed_steps() > 0, "a mid-run crash must cost replay");
        assert!(run.replayed_steps() <= 4, "rollback depth is bounded by the interval");
        assert!(run.elapsed > healthy.elapsed, "resilience has a measurable cost");
    }

    #[test]
    fn permanent_crash_respawns_on_survivors() {
        let mut cfg = LuleshConfig::small();
        cfg.iterations = 6;
        let schedule = crash_now(4, 2, None); // no restart ever
        let run = run_ft(
            cluster(4),
            &cfg,
            &schedule,
            RecoveryPolicy::CheckpointRestart { interval: 3 },
        )
        .unwrap();
        assert!(!run.corrupt);
        assert_eq!(run.iterations, 6);
        assert_eq!(run.final_ranks, 8, "ranks respawn on surviving nodes");
        assert_eq!(run.recoveries.len(), 1);
    }

    #[test]
    fn transient_partition_is_ridden_out() {
        let mut cfg = LuleshConfig::small();
        cfg.iterations = 4;
        // Partition immediately, heal shortly after: the step stalls,
        // retries burn time past the heal, then the run completes
        // without any recovery transition.
        let schedule = custom(
            4,
            vec![
                FaultEvent { at: Nanos::ZERO, kind: FaultKind::Partition { side: vec![0, 1] } },
                FaultEvent { at: Nanos::from_millis(25), kind: FaultKind::Heal },
            ],
        );
        for policy in [RecoveryPolicy::Shrink, RecoveryPolicy::CheckpointRestart { interval: 2 }] {
            let run = run_ft(cluster(4), &cfg, &schedule, policy).unwrap();
            assert!(!run.corrupt, "{policy:?}");
            assert_eq!(run.iterations, 4);
            assert!(run.recoveries.is_empty(), "partitions are not rank failures");
            assert!(run.detections() > 0, "the stall must be detected");
            assert!(run.elapsed >= Nanos::from_millis(25), "the run waited for the heal");
        }
    }

    #[test]
    fn never_healing_partition_is_corrupt_not_a_hang() {
        let mut cfg = LuleshConfig::small();
        cfg.iterations = 3;
        let schedule = custom(
            4,
            vec![FaultEvent { at: Nanos::ZERO, kind: FaultKind::Partition { side: vec![0] } }],
        );
        let run = run_ft(cluster(4), &cfg, &schedule, RecoveryPolicy::Shrink).unwrap();
        assert!(run.corrupt, "a partition that never heals must fail the run, not hang it");
        assert!(run.iterations < 3);
    }

    #[test]
    fn ft_runs_are_deterministic() {
        let mut cfg = LuleshConfig::small();
        cfg.iterations = 8;
        let schedule = FaultSchedule::gremlin(4, 11);
        for policy in [RecoveryPolicy::Shrink, RecoveryPolicy::CheckpointRestart { interval: 3 }] {
            let a = run_ft(cluster(4), &cfg, &schedule, policy).unwrap();
            let b = run_ft(cluster(4), &cfg, &schedule, policy).unwrap();
            assert_eq!(a, b, "{policy:?}");
        }
    }
}
