//! The noisy-neighborhood variability study.
//!
//! "An MPI application runs multiple times and its communication
//! performance is measured with mpiP. The goal in this experiment is to
//! identify root causes of variability across executions." The study
//! runs the LULESH proxy repeatedly under a *quiet* configuration and
//! under *noisy* ones (periodic OS noise with a per-repetition phase,
//! and/or a co-located tenant), then compares the runtime
//! distributions and attributes the cause from the mpiP profiles.

use crate::comm::MpiWorld;
use crate::ft::{run_ft, FtLuleshRun, RecoveryPolicy};
use crate::lulesh::{run, LuleshConfig};
use popper_aver::stats;
use popper_chaos::FaultSchedule;
use popper_format::{Table, Value};
use popper_sim::noise::{NoisyNeighbor, OsNoise};
use popper_sim::{platforms, Cluster, Nanos, PlatformSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What disturbs the cluster in a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseScenario {
    /// Dedicated, quiet nodes (the HPC ideal).
    Quiet,
    /// Periodic OS noise on `nodes` with the given period/duration; the
    /// phase is re-drawn per repetition (that's where run-to-run
    /// variability comes from).
    OsNoise {
        /// Affected node ids.
        nodes: Vec<usize>,
        /// Noise period.
        period: Nanos,
        /// Stolen window per period.
        duration: Nanos,
    },
    /// A co-located tenant stealing CPU/NIC shares on `nodes`, with the
    /// share re-drawn per repetition in `cpu_share ± spread`.
    Neighbor {
        /// Affected node ids.
        nodes: Vec<usize>,
        /// Mean stolen CPU share.
        cpu_share: f64,
        /// Per-repetition uniform spread around the mean.
        spread: f64,
    },
}

impl NoiseScenario {
    /// Short label for result tables.
    pub fn label(&self) -> &'static str {
        match self {
            NoiseScenario::Quiet => "quiet",
            NoiseScenario::OsNoise { .. } => "os-noise",
            NoiseScenario::Neighbor { .. } => "neighbor",
        }
    }
}

/// The study configuration.
#[derive(Debug, Clone)]
pub struct VariabilityStudy {
    /// The proxy configuration.
    pub app: LuleshConfig,
    /// The platform.
    pub platform: PlatformSpec,
    /// Cluster size.
    pub nodes: usize,
    /// Repetitions per scenario (the paper's community habit: ~10).
    pub repetitions: usize,
    /// The scenarios to compare.
    pub scenarios: Vec<NoiseScenario>,
    /// RNG seed (phases and shares derive from it).
    pub seed: u64,
}

impl Default for VariabilityStudy {
    fn default() -> Self {
        VariabilityStudy {
            app: LuleshConfig::paper(),
            platform: platforms::hpc_node(),
            nodes: 9,
            repetitions: 10,
            scenarios: vec![
                NoiseScenario::Quiet,
                NoiseScenario::OsNoise {
                    nodes: vec![4],
                    period: Nanos::from_millis(10),
                    duration: Nanos::from_millis(1),
                },
                NoiseScenario::Neighbor { nodes: vec![2, 5], cpu_share: 0.2, spread: 0.15 },
            ],
            seed: 7,
        }
    }
}

/// One repetition's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Repetition {
    /// Scenario label.
    pub scenario: &'static str,
    /// Repetition index.
    pub rep: usize,
    /// Runtime in seconds.
    pub time_secs: f64,
    /// Mean MPI fraction.
    pub mpi_fraction: f64,
    /// The rank with the most compute time (the straggler) — root-cause
    /// attribution.
    pub straggler_rank: usize,
}

/// The study's full outcome.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// All repetitions, scenario-major.
    pub repetitions: Vec<Repetition>,
}

impl StudyResult {
    /// Runtimes of one scenario.
    pub fn times(&self, scenario: &str) -> Vec<f64> {
        self.repetitions
            .iter()
            .filter(|r| r.scenario == scenario)
            .map(|r| r.time_secs)
            .collect()
    }

    /// Coefficient of variation of a scenario's runtimes.
    pub fn cov(&self, scenario: &str) -> f64 {
        let times = self.times(scenario);
        if times.len() < 2 {
            return 0.0;
        }
        stats::stddev(&times) / stats::mean(&times)
    }

    /// Long-format results table: `scenario, rep, time, mpi_fraction,
    /// straggler`.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["scenario", "rep", "time", "mpi_fraction", "straggler"]);
        for r in &self.repetitions {
            t.push_row(vec![
                Value::from(r.scenario),
                Value::from(r.rep),
                Value::Num(r.time_secs),
                Value::Num(r.mpi_fraction),
                Value::from(r.straggler_rank),
            ])
            .expect("fixed schema");
        }
        t
    }
}

/// Run the study.
pub fn run_variability_study(study: &VariabilityStudy) -> StudyResult {
    let mut rng = StdRng::seed_from_u64(study.seed);
    let mut repetitions = Vec::new();
    for scenario in &study.scenarios {
        for rep in 0..study.repetitions {
            let mut cluster = Cluster::new(study.platform.clone(), study.nodes);
            match scenario {
                NoiseScenario::Quiet => {}
                NoiseScenario::OsNoise { nodes, period, duration } => {
                    for &n in nodes {
                        let phase = Nanos::from_nanos(rng.gen_range(0..period.as_nanos().max(1)));
                        cluster.set_noise(n, Some(OsNoise::new(*period, *duration, phase)));
                    }
                }
                NoiseScenario::Neighbor { nodes, cpu_share, spread } => {
                    for &n in nodes {
                        let share = (cpu_share + rng.gen_range(-*spread..*spread)).clamp(0.0, 0.9);
                        cluster.set_neighbor(n, NoisyNeighbor::new(share, share / 2.0));
                    }
                }
            }
            let mut world = MpiWorld::new(cluster, study.app.ranks());
            let result = run(&mut world, &study.app);
            let (_victim, straggler) = world.profile.extremes().unwrap_or((0, 0));
            repetitions.push(Repetition {
                scenario: scenario.label(),
                rep,
                time_secs: result.elapsed.as_secs_f64(),
                mpi_fraction: result.mpi_fraction,
                straggler_rank: straggler,
            });
        }
    }
    StudyResult { repetitions }
}

/// The chaos experiment: one LULESH run per fault schedule, recovering
/// from whatever the gremlins inject.
#[derive(Debug, Clone)]
pub struct ChaosStudy {
    /// The proxy configuration.
    pub app: LuleshConfig,
    /// The platform.
    pub platform: PlatformSpec,
    /// The fault schedule to survive (also fixes the cluster size).
    pub schedule: FaultSchedule,
    /// How rank failures are recovered.
    pub policy: RecoveryPolicy,
}

impl ChaosStudy {
    /// Paper-scale app on `hpc-node`, under `schedule`, with `policy`.
    pub fn new(schedule: FaultSchedule, policy: RecoveryPolicy) -> Self {
        ChaosStudy { app: LuleshConfig::paper(), platform: platforms::hpc_node(), schedule, policy }
    }
}

/// The chaos experiment's outcome: the recovery engine's report plus
/// the schedule identity, rendered as the long-format chaos table.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosStudyResult {
    /// The fault-tolerant run's full report.
    pub run: FtLuleshRun,
    /// Schedule name (the chaos lifecycle's `schedule` column).
    pub schedule: String,
    /// Schedule seed.
    pub seed: u64,
}

impl ChaosStudyResult {
    /// One row per communicator epoch: `schedule, policy, epoch, ranks,
    /// steps, detections, checkpoints, replayed, failovers, recovery_ms,
    /// degraded_fraction, corrupt, time_ms`. The chaos lifecycle's
    /// `recovery.json` reduces these (max over recovery_ms /
    /// degraded_fraction / corrupt, sums over the counters), and the
    /// default chaos gates (`recovers_within`, `degraded_at_most`,
    /// `max(corrupt) = 0`) check every row.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "schedule",
            "policy",
            "epoch",
            "ranks",
            "steps",
            "detections",
            "checkpoints",
            "replayed",
            "failovers",
            "recovery_ms",
            "degraded_fraction",
            "corrupt",
            "time_ms",
        ]);
        let corrupt = if self.run.corrupt { 1.0 } else { 0.0 };
        for e in &self.run.epochs {
            t.push_row(vec![
                Value::from(self.schedule.as_str()),
                Value::from(self.run.policy.label()),
                Value::from(e.epoch as usize),
                Value::from(e.ranks),
                Value::from(e.steps),
                Value::from(e.detections),
                Value::from(e.checkpoints),
                Value::from(e.replayed),
                Value::from(e.ranks_lost),
                Value::Num(e.recovery_ms),
                Value::Num(e.degraded_fraction),
                Value::Num(corrupt),
                Value::Num(e.end_ms),
            ])
            .expect("fixed schema");
        }
        t
    }
}

/// Run the LULESH proxy under the study's fault schedule, recovering
/// per its policy. Deterministic: schedule + seed fix everything.
pub fn run_lulesh_chaos(study: &ChaosStudy) -> Result<ChaosStudyResult, String> {
    let nodes = study.schedule.nodes.max(1);
    let cluster = Cluster::new(study.platform.clone(), nodes);
    let run = run_ft(cluster, &study.app, &study.schedule, study.policy)?;
    Ok(ChaosStudyResult {
        run,
        schedule: study.schedule.name.clone(),
        seed: study.schedule.seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> VariabilityStudy {
        VariabilityStudy {
            app: LuleshConfig::small(),
            nodes: 4,
            repetitions: 6,
            scenarios: vec![
                NoiseScenario::Quiet,
                NoiseScenario::OsNoise {
                    nodes: vec![1],
                    period: Nanos::from_millis(1),
                    duration: Nanos::from_micros(150),
                },
                NoiseScenario::Neighbor { nodes: vec![2], cpu_share: 0.25, spread: 0.2 },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn quiet_runs_are_identical_noisy_runs_vary() {
        let result = run_variability_study(&small_study());
        let quiet = result.times("quiet");
        assert_eq!(quiet.len(), 6);
        assert!(quiet.windows(2).all(|w| w[0] == w[1]), "controlled runs must be bit-identical");
        assert!(result.cov("quiet") < 1e-12);
        // OS noise with random phases: repetitions differ.
        assert!(result.cov("os-noise") > 0.0);
        // Neighbor share varies per rep: strong variability.
        assert!(result.cov("neighbor") > result.cov("quiet"));
    }

    #[test]
    fn noise_slows_the_application() {
        let result = run_variability_study(&small_study());
        let quiet_mean = stats::mean(&result.times("quiet"));
        let noise_mean = stats::mean(&result.times("os-noise"));
        let neighbor_mean = stats::mean(&result.times("neighbor"));
        assert!(noise_mean > quiet_mean);
        assert!(neighbor_mean > quiet_mean);
    }

    #[test]
    fn straggler_attribution_points_at_noisy_node() {
        let study = small_study();
        let result = run_variability_study(&study);
        // Under the neighbor scenario node 2 is disturbed; with 8 ranks
        // on 4 nodes, ranks 2 and 6 live there.
        for r in result.repetitions.iter().filter(|r| r.scenario == "neighbor") {
            assert!(
                r.straggler_rank % study.nodes == 2,
                "straggler rank {} not on the noisy node",
                r.straggler_rank
            );
        }
    }

    #[test]
    fn statistical_comparison_detects_noise() {
        // The §Discussion "statistical reproducibility" method: a rank
        // test distinguishes noisy from quiet distributions.
        let result = run_variability_study(&small_study());
        let quiet = result.times("quiet");
        let neighbor = result.times("neighbor");
        let test = popper_monitor::mann_whitney_u(&quiet, &neighbor).unwrap();
        assert!(test.p_value < 0.05, "p={}", test.p_value);
    }

    #[test]
    fn table_round_trips_and_aver_checks() {
        let result = run_variability_study(&small_study());
        let t = result.to_table();
        assert_eq!(t.len(), 18);
        let verdict = popper_aver::check(
            "when scenario = quiet expect constant(time, 1); \
             when scenario=* expect count(time) = 6",
            &t,
        )
        .unwrap();
        assert!(verdict.passed, "{:?}", verdict.failures);
    }

    #[test]
    fn chaos_study_survives_every_builtin_schedule() {
        for name in popper_chaos::BUILTIN_SCHEDULES {
            for policy in
                [RecoveryPolicy::Shrink, RecoveryPolicy::CheckpointRestart { interval: 5 }]
            {
                let schedule = FaultSchedule::named(name, 9, 3).unwrap();
                let study = ChaosStudy::new(schedule, policy);
                let result = run_lulesh_chaos(&study).unwrap();
                assert!(!result.run.corrupt, "{name}/{policy:?}");
                assert_eq!(
                    result.run.iterations,
                    study.app.iterations,
                    "{name}/{policy:?}: every configured step must complete"
                );
                assert!(
                    result.run.degraded_fraction() <= 0.5,
                    "{name}/{policy:?}: degraded {}",
                    result.run.degraded_fraction()
                );
            }
        }
    }

    #[test]
    fn chaos_table_passes_the_default_gates() {
        let schedule = FaultSchedule::named("node-crash", 9, 1).unwrap();
        let study = ChaosStudy::new(schedule, RecoveryPolicy::Shrink);
        let result = run_lulesh_chaos(&study).unwrap();
        assert!(result.run.recoveries.len() == 1, "node-crash kills exactly one node");
        let t = result.to_table();
        assert_eq!(t.len(), result.run.epochs.len());
        let verdict = popper_aver::check(popper_chaos::DEFAULT_ASSERTIONS, &t).unwrap();
        assert!(verdict.passed, "{:?}", verdict.failures);
    }

    #[test]
    fn chaos_policies_trade_capacity_for_time() {
        let schedule = FaultSchedule::named("node-crash", 9, 1).unwrap();
        let shrink =
            run_lulesh_chaos(&ChaosStudy::new(schedule.clone(), RecoveryPolicy::Shrink)).unwrap();
        let cr = run_lulesh_chaos(&ChaosStudy::new(
            schedule,
            RecoveryPolicy::CheckpointRestart { interval: 5 },
        ))
        .unwrap();
        // Shrink loses capacity but replays nothing; checkpoint-restart
        // conserves the problem but pays checkpoints + rollback.
        assert!(shrink.run.degraded_fraction() > 0.0);
        assert_eq!(shrink.run.replayed_steps(), 0);
        assert_eq!(cr.run.degraded_fraction(), 0.0);
        assert!(cr.run.checkpoints() > 0);
        assert!(cr.run.replayed_steps() > 0, "the mid-run crash must cost replay");
    }

    #[test]
    fn chaos_study_is_deterministic() {
        let schedule = FaultSchedule::gremlin(9, 42);
        let study = ChaosStudy::new(schedule, RecoveryPolicy::Shrink);
        let a = run_lulesh_chaos(&study).unwrap();
        let b = run_lulesh_chaos(&study).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_table().to_csv(), b.to_table().to_csv());
    }

    #[test]
    fn study_is_deterministic_given_seed() {
        let a = run_variability_study(&small_study());
        let b = run_variability_study(&small_study());
        assert_eq!(a.repetitions, b.repetitions);
        let mut different_seed = small_study();
        different_seed.seed = 99;
        let c = run_variability_study(&different_seed);
        // Quiet repetitions are seed-independent…
        assert_eq!(a.times("quiet"), c.times("quiet"));
        // …noisy ones are not.
        assert_ne!(a.times("os-noise"), c.times("os-noise"));
    }
}
